"""Reproduces Table 1: specifications of the evaluated GPU platforms."""

from repro.bench import Table, write_report
from repro.sim import PLATFORMS


def build_table() -> Table:
    t = Table(
        title="Table 1 — Specifications of GPU Platforms",
        columns=[
            "Platform", "GPU", "GPU Mem", "GPU BW (GB/s)", "PCIe (GB/s)",
            "Host Mem", "Host BW (GB/s)", "R_bw",
        ],
    )
    for key in ("laptop_4070m", "desktop_4080s", "server_h100"):
        p = PLATFORMS[key]
        t.add_row(
            p.kind,
            p.gpu.name,
            f"{p.gpu.memory_bytes / 2**30:.0f} GB",
            p.gpu.mem_bw / 1e9,
            p.pcie_bw / 1e9,
            f"{p.host_memory_bytes / 2**30:.0f} GB",
            p.cpu.mem_bw / 1e9,
            round(p.r_bw, 1),
        )
    return t


def test_table1(benchmark):
    table = benchmark(build_table)
    print("\n" + write_report("table1_platforms", table))
    rows = {r[0]: r for r in table.rows}
    assert rows["laptop"][-1] == 3.1
    assert rows["desktop"][-1] == 8.2
    assert rows["server"][-1] == 3.3
