"""Reproduces Table 3: training-quality impact of GS-Scale.

Functional experiment: the same synthetic scenes are trained end-to-end
with the Original pipeline (GPU-only, dense Adam) and with GS-Scale (all
optimizations, including the deferred update's epsilon approximation), and
evaluated on held-out views. Paper result: metrics match to the third
decimal — the approximation is quality-neutral."""

from repro.bench import Table, write_report
from repro.core import GSScaleConfig, Trainer
from repro.datasets import SyntheticSceneConfig, build_scene

SCENE_CONFIGS = {
    "Rubble-syn": SyntheticSceneConfig(
        name="Rubble-syn", num_points=220, width=32, height=24,
        num_train_cameras=5, num_test_cameras=2, altitude=10.0, seed=42,
    ),
    "Building-syn": SyntheticSceneConfig(
        name="Building-syn", num_points=260, width=32, height=24,
        num_buildings=10, num_train_cameras=5, num_test_cameras=2,
        altitude=11.0, seed=43,
    ),
}

ITERATIONS = 30


def train_and_eval(scene, system):
    trainer = Trainer(
        scene.initial.copy(),
        GSScaleConfig(
            system=system,
            scene_extent=scene.extent,
            ssim_lambda=0.2,
            mem_limit=1.0,
            seed=0,
        ),
    )
    trainer.train(scene.train_cameras, scene.train_images, ITERATIONS)
    return trainer.evaluate(scene.test_cameras, scene.test_images)


def build_table():
    t = Table(
        title="Table 3 — Impact of GS-Scale on Training Quality (functional)",
        columns=["Scene", "Method", "PSNR", "SSIM", "LPIPS-proxy"],
        notes=["Synthetic analogues trained end-to-end; 'Original' = "
               "GPU-only dense Adam, 'GS-Scale' = all optimizations incl. "
               "the deferred-update epsilon approximation."],
    )
    deltas = []
    for name, cfg in SCENE_CONFIGS.items():
        scene = build_scene(cfg)
        ev_orig = train_and_eval(scene, "gpu_only")
        ev_gs = train_and_eval(scene, "gsscale")
        t.add_row(name, "Original", ev_orig.psnr, ev_orig.ssim,
                  ev_orig.lpips_proxy)
        t.add_row(name, "GS-Scale", ev_gs.psnr, ev_gs.ssim,
                  ev_gs.lpips_proxy)
        deltas.append(
            (
                abs(ev_orig.psnr - ev_gs.psnr),
                abs(ev_orig.ssim - ev_gs.ssim),
                abs(ev_orig.lpips_proxy - ev_gs.lpips_proxy),
            )
        )
    return t, deltas


def test_table3_quality(benchmark):
    table, deltas = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print("\n" + write_report("table3_quality", table))
    for d_psnr, d_ssim, d_lpips in deltas:
        # Table 3: differences at the noise level (paper: <= 0.05 dB PSNR,
        # <= 0.001 SSIM/LPIPS)
        assert d_psnr < 0.1
        assert d_ssim < 0.005
        assert d_lpips < 0.005
