"""Reproduces Figure 15: sensitivity to mem_limit (a, b) and to the GPU
model (c).

Paper shape: lowering mem_limit saves GPU memory at a throughput cost
(more splits -> extra culling and transfers); GPUs with higher R_bw show
lower normalized GS-Scale throughput (less slack to hide CPU work)."""

from repro.bench import Table, write_report
from repro.datasets import get_scene, synthesize_trace
from repro.sim import get_platform, simulate_epoch


def build_mem_limit_tables():
    plat = get_platform("desktop_4080s")
    spec = get_scene("rubble")
    trace = synthesize_trace(spec, num_views=150, seed=7)
    mem_t = Table(
        title="Figure 15a — GPU Memory vs mem_limit (Rubble, desktop)",
        columns=["mem_limit", "Peak GPU Memory (GiB)"],
    )
    tp_t = Table(
        title="Figure 15b — Training Throughput vs mem_limit",
        columns=["mem_limit", "Images/s"],
    )
    mems, tps = [], []
    for ml in (0.3, 0.2, 0.1):
        r = simulate_epoch(plat, trace, "gsscale", spec.num_pixels, mem_limit=ml)
        assert not r.oom
        mem_t.add_row(ml, r.peak_memory_bytes / 2**30)
        tp_t.add_row(ml, r.images_per_second)
        mems.append(r.peak_memory_bytes)
        tps.append(r.images_per_second)
    return mem_t, tp_t, mems, tps


def build_gpu_table():
    spec = get_scene("lfls")
    trace = synthesize_trace(spec, num_views=150, seed=7, use_small=True)
    t = Table(
        title="Figure 15c — Normalized Throughput vs GPU (LFLS, desktop CPUs)",
        columns=["GPU", "R_bw", "GS-Scale / GPU-Only"],
    )
    ratios = []
    for pk in ("desktop_4070s", "desktop_4080s", "desktop_4090"):
        plat = get_platform(pk)
        g = simulate_epoch(plat, trace, "gpu_only", spec.num_pixels)
        s = simulate_epoch(plat, trace, "gsscale", spec.num_pixels)
        assert not g.oom
        ratio = g.seconds / s.seconds
        t.add_row(plat.gpu.name, round(plat.r_bw, 1), ratio)
        ratios.append(ratio)
    return t, ratios


def test_fig15ab_mem_limit(benchmark):
    mem_t, tp_t, mems, tps = benchmark(build_mem_limit_tables)
    print("\n" + write_report("fig15ab_mem_limit", mem_t, tp_t))
    # memory strictly decreases, throughput does not increase
    assert mems[0] > mems[1] > mems[2]
    assert tps[0] >= tps[1] >= tps[2]
    # but the throughput cost is moderate (the paper still recommends 0.3
    # only to *prioritize* speed; 0.1 remains usable)
    assert tps[2] > 0.5 * tps[0]


def test_fig15c_gpu_sensitivity(benchmark):
    table, ratios = benchmark(build_gpu_table)
    print("\n" + write_report("fig15c_gpu", table))
    # normalized GS-Scale throughput decreases with R_bw (Section 5.8)
    assert ratios[0] > ratios[1] > ratios[2]
    # RTX 4090 (R_bw = 11.3) is the least favorable for offloading
    assert ratios[2] < 1.0
