"""Reproduces Figure 1: maximum achievable quality on an RTX 4070 Mobile,
GPU-only vs GS-Scale (Rubble scene).

The memory model gives each system's largest trainable Gaussian count on
the 8 GB laptop GPU; the calibrated quality model maps counts to
PSNR/SSIM/LPIPS. Paper: 4M -> 18M Gaussians, 23-35% LPIPS improvement.
"""

from repro.bench import QualityModel, Table, write_report
from repro.datasets import get_scene
from repro.sim import get_platform, max_trainable_gaussians


def build_table() -> Table:
    spec = get_scene("rubble")
    gpu = get_platform("laptop_4070m").gpu
    model = QualityModel("rubble")
    t = Table(
        title="Figure 1 — Max Rendering Quality on RTX 4070 Mobile (Rubble)",
        columns=["System", "Max Gaussians (M)", "PSNR", "SSIM", "LPIPS"],
        notes=[
            "LPIPS values are from the calibrated quality model "
            "(LPIPS-proxy used in functional benches).",
            "Paper: GPU-only ~4M vs GS-Scale ~18M; LPIPS improves 35.3%.",
        ],
    )
    results = {}
    for system in ("gpu_only", "gsscale"):
        n_max = max_trainable_gaussians(
            gpu, spec.num_pixels, system,
            peak_active_ratio=spec.peak_active_ratio, mem_limit=0.3,
        )
        q = model.point(n_max)
        label = "GPU-Only" if system == "gpu_only" else "GS-Scale"
        t.add_row(label, round(n_max / 1e6, 1), q.psnr, q.ssim, q.lpips)
        results[system] = (n_max, q)
    return t, results


def test_fig01_max_quality(benchmark):
    table, results = benchmark(build_table)
    print("\n" + write_report("fig01_max_quality", table))

    n_gpu, q_gpu = results["gpu_only"]
    n_gs, q_gs = results["gsscale"]
    # Section 5.6: 4M -> 18M (factor ~4.5x)
    assert 3.0e6 <= n_gpu <= 5.5e6
    assert 14e6 <= n_gs <= 22e6
    # higher is better for PSNR/SSIM, lower for LPIPS
    assert q_gs.psnr > q_gpu.psnr
    assert q_gs.ssim > q_gpu.ssim
    assert q_gs.lpips < q_gpu.lpips
    # paper: 23-35% LPIPS improvement
    improvement = 1.0 - q_gs.lpips / q_gpu.lpips
    assert 0.15 <= improvement <= 0.45
