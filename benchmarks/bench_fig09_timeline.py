"""Reproduces Figure 9: execution timelines of the four systems.

Prints ASCII Gantt charts (and writes a Chrome trace for the full GS-Scale
schedule) for one steady-state iteration on the laptop platform."""

import os

from repro.bench import Table, output_dir, write_report
from repro.datasets import get_scene
from repro.sim import (
    CostModel,
    get_platform,
    render_ascii,
    simulate_iteration,
    write_chrome_trace,
)

SYSTEM_ORDER = [
    ("gpu_only", "(a) GPU-Only"),
    ("baseline_offload", "(b) Baseline GS-Scale"),
    ("gsscale_no_deferred", "(c) GS-Scale w/o Deferred Adam"),
    ("gsscale", "(d) GS-Scale (all optimizations)"),
]


def build_timelines():
    plat = get_platform("laptop_4070m")
    spec = get_scene("rubble")
    cost = CostModel(plat)
    sims = {}
    charts = []
    for system, label in SYSTEM_ORDER:
        it = simulate_iteration(
            system, cost,
            n_total=spec.small_total_gaussians,
            active_ratio=spec.avg_active_ratio,
            num_pixels=spec.num_pixels,
        )
        sims[system] = it
        charts.append(f"{label}  —  {it.time * 1e3:.1f} ms/iter")
        charts.append(render_ascii(it.segments))
        charts.append("")
    return sims, "\n".join(charts)


def test_fig09_timeline(benchmark):
    sims, text = benchmark(build_timelines)
    print("\n" + text)
    with open(os.path.join(output_dir(), "fig09_timeline.txt"), "w") as f:
        f.write(text)
    write_chrome_trace(
        sims["gsscale"].segments,
        os.path.join(output_dir(), "fig09_gsscale.trace.json"),
    )

    # Figure 9's ordering: each optimization tier strictly improves
    t = {k: v.time for k, v in sims.items()}
    assert t["baseline_offload"] > t["gsscale_no_deferred"] > t["gsscale"]
    # on the laptop, full GS-Scale beats even GPU-only (Section 5.3/5.4)
    assert t["gsscale"] < t["gpu_only"]

    summary = Table(
        title="Figure 9 — Iteration time per schedule (laptop, Rubble-small)",
        columns=["System", "ms/iteration"],
    )
    for system, label in SYSTEM_ORDER:
        summary.add_row(label, t[system] * 1e3)
    print("\n" + write_report("fig09_summary", summary))
