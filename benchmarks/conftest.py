"""Shared fixtures for the figure/table benchmarks."""

import pytest

from repro.datasets import SyntheticSceneConfig, build_scene


@pytest.fixture(scope="session")
def tiny_scene():
    """A small synthetic capture used by functional benches."""
    return build_scene(
        SyntheticSceneConfig(
            name="tiny-rubble",
            num_points=220,
            width=32,
            height=24,
            num_train_cameras=5,
            num_test_cameras=2,
            altitude=10.0,
            seed=42,
        )
    )
