"""Reproduces Figure 4: average active vs total Gaussians per scene.

Two parts: the registry's paper-reported statistics at full scale, and a
*functional* measurement — real frustum culling on a synthetic aerial
capture — demonstrating the sparse-workload property the whole design
rests on (Section 3.3)."""

import numpy as np

from repro.bench import Table, write_report
from repro.datasets import (
    PAPER_AVG_ACTIVE_RATIO,
    all_scenes,
    measure_trace,
)


def build_registry_table() -> Table:
    t = Table(
        title="Figure 4 — Active vs Total Gaussians (paper statistics)",
        columns=["Scene", "Total (M)", "Active %", "Active (M)"],
    )
    for s in all_scenes():
        t.add_row(
            s.name,
            s.total_gaussians / 1e6,
            100 * s.avg_active_ratio,
            s.total_gaussians * s.avg_active_ratio / 1e6,
        )
    t.notes.append(
        f"average active ratio {100 * np.mean([s.avg_active_ratio for s in all_scenes()]):.2f}% "
        f"(paper: {100 * PAPER_AVG_ACTIVE_RATIO}%)"
    )
    return t


def measure_functional(tiny_scene) -> Table:
    t = Table(
        title="Figure 4 (functional) — measured culling on synthetic capture",
        columns=["View", "Visible", "Total", "Active %"],
    )
    trace = measure_trace(tiny_scene.oracle, tiny_scene.train_cameras)
    for i, ratio in enumerate(trace.active_ratios):
        t.add_row(
            i,
            int(round(ratio * trace.total_gaussians)),
            trace.total_gaussians,
            100 * ratio,
        )
    t.notes.append(f"mean active ratio {100 * trace.avg_ratio:.1f}%")
    return t, trace


def test_fig04_registry(benchmark):
    table = benchmark(build_registry_table)
    print("\n" + write_report("fig04_active_ratio", table))
    ratios = [r[2] for r in table.rows]
    assert abs(np.mean(ratios) - 8.28) < 0.5  # paper's 8.28% average
    by_name = {r[0]: r[2] for r in table.rows}
    assert by_name["Aerial"] == min(ratios)  # Aerial is the sparsest (2.3%)


def test_fig04_functional(benchmark, tiny_scene):
    table, trace = benchmark.pedantic(
        measure_functional, args=(tiny_scene,), rounds=1, iterations=1
    )
    print("\n" + write_report("fig04_functional", table))
    # the sparse-workload property: no view needs all Gaussians
    assert trace.peak_ratio < 1.0
    assert trace.avg_ratio > 0.0
