"""Reproduces Figure 16: impact of image resolution on normalized memory
usage and training throughput (Rubble, desktop).

Paper shape: higher resolution -> relative memory savings shrink (growing
activations are not offloadable) while relative throughput *improves*
(slower GPU fwd/bwd leaves more slack to hide CPU optimizer work)."""

import dataclasses

from repro.bench import Table, write_report
from repro.datasets import get_scene, synthesize_trace
from repro.sim import get_platform, peak_memory, simulate_epoch

RESOLUTIONS = (("1K", 1_000_000), ("2K", 2_200_000), ("4K", 8_300_000))

#: Scene size chosen so GPU-only still fits the 16 GB desktop at 4K
#: (activation memory alone is ~9 GB there — Figure 3b's point).
NUM_GAUSSIANS = 1_500_000


def build_tables():
    plat = get_platform("desktop_4080s")
    spec = dataclasses.replace(
        get_scene("rubble"), total_gaussians=NUM_GAUSSIANS
    )
    trace = synthesize_trace(spec, num_views=150, seed=7)
    n = trace.total_gaussians

    mem_t = Table(
        title="Figure 16a — Normalized Memory Usage vs Resolution",
        columns=["Resolution", "GPU-Only (GiB)", "GS-Scale (GiB)", "Normalized"],
    )
    tp_t = Table(
        title="Figure 16b — Normalized Training Throughput vs Resolution",
        columns=["Resolution", "GS-Scale / GPU-Only"],
    )
    mem_ratio, tp_ratio = [], []
    for label, px in RESOLUTIONS:
        g_mem = peak_memory("gpu_only", n, px, trace.peak_ratio).total
        s_mem = peak_memory(
            "gsscale", n, px, trace.clipped(0.3).peak_ratio, 0.3
        ).total
        mem_t.add_row(label, g_mem / 2**30, s_mem / 2**30, s_mem / g_mem)
        mem_ratio.append(s_mem / g_mem)

        g = simulate_epoch(plat, trace, "gpu_only", px)
        s = simulate_epoch(plat, trace, "gsscale", px)
        ratio = (
            float("nan") if g.oom else g.seconds / s.seconds
        )
        tp_t.add_row(label, ratio)
        tp_ratio.append(ratio)
    return mem_t, tp_t, mem_ratio, tp_ratio


def test_fig16_resolution(benchmark):
    mem_t, tp_t, mem_ratio, tp_ratio = benchmark(build_tables)
    print("\n" + write_report("fig16_resolution", mem_t, tp_t))
    # memory savings shrink with resolution (activation share grows)
    assert mem_ratio[0] < mem_ratio[1] < mem_ratio[2]
    # relative throughput improves with resolution (more pipelining slack)
    assert tp_ratio[0] < tp_ratio[1] < tp_ratio[2]
