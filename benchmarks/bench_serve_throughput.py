"""Throughput benchmarks of the render-serving subsystem.

Two parts:

* ``test_farm_throughput_speedup`` — the PR acceptance gate: batched
  multi-worker serving must reach >= 2x the requests/sec of
  single-request serving on the same trace (skips below 4 cores; wall-
  clock gates are meaningless on oversubscribed runners).
* ``test_serve_throughput_matrix`` — a workers x LOD x cache matrix
  written to ``benchmarks/out/BENCH_serve.json``, the serving-side perf
  trajectory the CI ``perf-smoke`` job uploads (``GSSCALE_BENCH_QUICK=1``
  shrinks it; no speedup asserted there).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.cameras import trajectories
from repro.datasets.synthetic import SyntheticSceneConfig, generate_point_cloud
from repro.gaussians import GaussianModel, layout
from repro.render import shutdown_raster_pools
from repro.serve import (
    LODSet,
    PagedServingStore,
    RenderService,
    requests_from_cameras,
)

QUICK = os.environ.get("GSSCALE_BENCH_QUICK", "") not in ("", "0")


def serving_model(num_points: int) -> GaussianModel:
    """A serving-side model only (no ground-truth captures rendered)."""
    points, colors = generate_point_cloud(
        SyntheticSceneConfig(num_points=num_points, extent=10.0, seed=21)
    )
    return GaussianModel.from_point_cloud(
        points, colors, initial_opacity=0.6, scale_multiplier=1.2
    )


def client_trace(num_requests: int, resolution: int, lod: int = 0):
    """Distinct orbit poses (no dedupe, no cache reuse between them)."""
    cams = trajectories.orbit(
        np.zeros(3), radius=12.0, height=8.0, num_cameras=num_requests,
        width=resolution, height_px=resolution, fov_x_deg=70.0,
    )
    return requests_from_cameras(cams, lod=lod)


def measure_requests_per_s(service, requests, repeats: int = 1) -> float:
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        responses = service.serve(list(requests))
        dt = time.perf_counter() - t0
        assert len(responses) == len(requests)
        best = max(best, len(requests) / dt)
    return best


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="farm speedup gate needs >= 4 cores"
)
def test_farm_throughput_speedup(benchmark):
    """Acceptance gate: 4 farm workers >= 2x serial requests/sec."""
    model = serving_model(6_000 if QUICK else 30_000)
    requests = client_trace(8 if QUICK else 16, 96 if QUICK else 160)

    def compare():
        serial = RenderService(model, cache_bytes=0, workers=0)
        try:
            serial_rps = measure_requests_per_s(serial, requests)
        finally:
            serial.close()
        farmed = RenderService(model, cache_bytes=0, workers=4)
        try:
            farmed.serve(list(requests[:4]))  # spawn + warm the pool
            farmed_rps = measure_requests_per_s(farmed, requests)
        finally:
            farmed.close()
        return farmed_rps / serial_rps

    speedup = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert speedup >= 2.0, f"farm speedup only {speedup:.2f}x"
    shutdown_raster_pools()


def test_serve_throughput_matrix(benchmark):
    """Workers x LOD x cache serving matrix -> BENCH_serve.json."""
    num_points = 2_000 if QUICK else 12_000
    resolution = 64 if QUICK else 128
    num_requests = 6 if QUICK else 12
    worker_axis = (0, 2) if QUICK else (0, 2, 4)

    model = serving_model(num_points)
    lod_set = LODSet.build(model.params)

    def run_matrix():
        entries = []
        for workers in worker_axis:
            if workers > (os.cpu_count() or 1):
                continue
            for lod in (0, 2):
                service = RenderService(
                    model, lod_set=lod_set, cache_bytes=0, workers=workers
                )
                try:
                    requests = client_trace(num_requests, resolution, lod=lod)
                    if workers >= 2:
                        service.serve(list(requests[:workers]))  # warm pool
                    rps = measure_requests_per_s(service, requests)
                finally:
                    service.close()
                entries.append({
                    "workers": workers,
                    "lod": lod,
                    "keep_fraction": lod_set.levels[lod].keep_fraction,
                    "requests": num_requests,
                    "requests_per_s": rps,
                })
        # cached pass: the second identical trace is all hits
        service = RenderService(model, lod_set=lod_set, workers=0)
        try:
            requests = client_trace(num_requests, resolution)
            service.serve(list(requests))
            rps = measure_requests_per_s(service, requests)
            assert service.stats.cache_hits == len(requests)
        finally:
            service.close()
        entries.append({
            "workers": 0,
            "lod": 0,
            "keep_fraction": 1.0,
            "requests": num_requests,
            "requests_per_s": rps,
            "cached": True,
        })
        # paged tier ~10x past the host budget: same model served through
        # compressed pages under an enforced byte budget; the stall
        # fraction is the throughput give-up vs the in-memory serve above
        geo = layout.param_bytes(model.num_gaussians, layout.GEOMETRIC_DIM)
        nongeo = layout.param_bytes(
            model.num_gaussians, layout.NON_GEOMETRIC_DIM
        )
        paged_store = PagedServingStore.from_model(
            model, geo + nongeo // 10, num_shards=16, codec="float16"
        )
        service = RenderService(paged_store, lod_set=lod_set, workers=0)
        try:
            requests = client_trace(num_requests, resolution)
            rps = measure_requests_per_s(service, requests)
            page_ins = paged_store.ledger.page_in_count
            peak = paged_store.host_memory.peak_bytes
            budget = paged_store.host_memory.capacity_bytes
        finally:
            service.close()
        assert page_ins > 0 and peak <= budget
        inmem = next(
            e for e in entries
            if not e.get("cached") and e["workers"] == 0 and e["lod"] == 0
        )
        entries.append({
            "workers": 0,
            "lod": 0,
            "keep_fraction": 1.0,
            "requests": num_requests,
            "paged": True,
            "codec": "float16",
            "budget_fraction": 0.1,
            "requests_per_s": rps,
            "page_stall_fraction": round(
                max(0.0, 1.0 - rps / inmem["requests_per_s"]), 4
            ),
        })
        return entries

    entries = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    shutdown_raster_pools()
    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "quick": QUICK,
        "cpu_count": os.cpu_count(),
        "model_points": num_points,
        "resolution": f"{resolution}x{resolution}",
        "entries": entries,
    }
    with open(os.path.join(out_dir, "BENCH_serve.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
    assert entries and all(e["requests_per_s"] > 0 for e in entries)
    cached = [e for e in entries if e.get("cached")]
    uncached = [
        e for e in entries
        if not e.get("cached") and e["workers"] == 0 and e["lod"] == 0
    ]
    # a cache hit must beat rendering, whatever the hardware
    assert cached[0]["requests_per_s"] > uncached[0]["requests_per_s"]
