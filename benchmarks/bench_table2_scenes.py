"""Reproduces Table 2: the evaluated benchmark scenes."""

from repro.bench import Table, write_report
from repro.datasets import all_scenes


def build_table() -> Table:
    t = Table(
        title="Table 2 — Evaluated Benchmark Scenes",
        columns=["Dataset", "Scene", "Resolution", "Type", "Gaussians (M)"],
        notes=[
            "Gaussian counts estimated from Figure 4 bars and the text's "
            "memory anchors; raw photo datasets replaced by the registry + "
            "synthetic analogues (see DESIGN.md)."
        ],
    )
    for s in all_scenes():
        t.add_row(
            s.dataset,
            s.name,
            f"{s.width}x{s.height}",
            s.scene_type,
            round(s.total_gaussians / 1e6, 1),
        )
    return t


def test_table2(benchmark):
    table = benchmark(build_table)
    print("\n" + write_report("table2_scenes", table))
    assert len(table.rows) == 6
    datasets = {r[0] for r in table.rows}
    assert datasets == {"Mill-19", "GauU-Scene", "MatrixCity"}
    # Table 2 resolutions
    by_name = {r[1]: r[2] for r in table.rows}
    assert by_name["Rubble"] == "1152x864"
    assert by_name["LFLS"] == "1600x1064"
    assert by_name["Aerial"] == "1600x900"
