"""Micro-benchmarks of the library's hot kernels (pytest-benchmark).

These time the actual Python/numpy implementations — useful for tracking
regressions and for demonstrating the deferred update's traffic advantage
on real hardware (this machine's CPU), not just in the analytic model."""

import numpy as np
import pytest

from repro.cameras import Camera
from repro.gaussians import GaussianModel, layout
from repro.optim import AdamConfig, DeferredAdam, DenseAdam
from repro.render import frustum_cull, render, render_backward

N_ROWS = 60_000
ACTIVE = 5_000  # ~8.3%, the paper's average active ratio


@pytest.fixture(scope="module")
def param_store():
    rng = np.random.default_rng(0)
    return rng.normal(size=(N_ROWS, layout.PARAM_DIM)).astype(np.float64)


@pytest.fixture(scope="module")
def grads():
    rng = np.random.default_rng(1)
    return rng.normal(size=(ACTIVE, layout.PARAM_DIM)).astype(np.float64)


def test_dense_adam_step(benchmark, param_store, grads):
    opt = DenseAdam(param_store.copy(), AdamConfig(lr=1e-3))
    ids = np.arange(ACTIVE)

    def step():
        opt.step_sparse(ids, grads)

    benchmark(step)


def test_deferred_adam_step(benchmark, param_store, grads):
    opt = DeferredAdam(param_store.copy(), AdamConfig(lr=1e-3))
    ids = np.arange(ACTIVE)

    def step():
        opt.step(ids, grads)

    benchmark(step)


def test_deferred_vs_dense_speed(benchmark, param_store, grads):
    """The deferred update must beat dense at the paper's active ratio
    even in numpy (it touches ~12x fewer rows)."""
    import time

    def compare():
        ids = np.arange(ACTIVE)
        dense = DenseAdam(param_store.copy(), AdamConfig(lr=1e-3))
        deferred = DeferredAdam(param_store.copy(), AdamConfig(lr=1e-3))
        for _ in range(2):  # warmup
            dense.step_sparse(ids, grads)
            deferred.step(ids, grads)
        t0 = time.perf_counter()
        for _ in range(5):
            dense.step_sparse(ids, grads)
        t_dense = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(5):
            deferred.step(ids, grads)
        t_deferred = time.perf_counter() - t0
        return t_dense, t_deferred

    t_dense, t_deferred = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert t_deferred < t_dense


@pytest.fixture(scope="module")
def culling_scene():
    rng = np.random.default_rng(2)
    n = 50_000
    means = rng.uniform(-10, 10, size=(n, 3))
    log_scales = np.full((n, 3), np.log(0.05))
    quats = np.zeros((n, 4))
    quats[:, 0] = 1.0
    cam = Camera.look_at([0, -15.0, 5.0], [0, 0, 0], width=256, height=192)
    return means, log_scales, quats, cam


def test_frustum_culling(benchmark, culling_scene):
    means, log_scales, quats, cam = culling_scene
    result = benchmark(lambda: frustum_cull(means, log_scales, quats, cam))
    assert result.num_visible > 0


@pytest.fixture(scope="module")
def render_scene():
    rng = np.random.default_rng(3)
    n = 400
    means = rng.uniform(-1, 1, size=(n, 3))
    log_scales = rng.uniform(np.log(0.02), np.log(0.1), size=(n, 3))
    quats = rng.normal(size=(n, 4))
    op = rng.uniform(-1, 2, size=n)
    sh = rng.normal(size=(n, 16, 3)) * 0.2
    model = GaussianModel.from_attributes(means, log_scales, quats, op, sh,
                                          dtype=np.float64)
    cam = Camera.look_at([0, -3.0, 0.6], [0, 0, 0], width=64, height=48)
    return model, cam


def test_render_forward(benchmark, render_scene):
    model, cam = render_scene
    res = benchmark(lambda: render(model, cam))
    assert res.image.shape == (48, 64, 3)


def test_render_backward(benchmark, render_scene):
    model, cam = render_scene
    res = render(model, cam)
    grad = np.ones_like(res.image)
    out = benchmark(lambda: render_backward(model, cam, res, grad))
    assert out.param_grads.shape[1] == layout.PARAM_DIM


# ---------------------------------------------------------------------------
# raster engine comparison: reference loop vs vectorized engine
# ---------------------------------------------------------------------------

RASTER_N = 5_000  # ~5k visible splats, the paper's average active count
RASTER_WH = 256

#: The parallel-speedup acceptance scene: 50k visible splats.
RASTER_N_LARGE = 50_000


def make_raster_scene(n: int, wh: int, seed: int = 7):
    """Random splat arrays in the paper's regime.

    Splat scales (sigma 0.5-1.2 px) match multi-million-Gaussian scenes,
    where most visible splats project to a few pixels (the EPS_2D
    low-pass floor alone is sigma ~0.55).
    """
    rng = np.random.default_rng(seed)
    means2d = rng.uniform([0, 0], [wh, wh], size=(n, 2))
    sig = rng.uniform(0.5, 1.2, size=n)
    conics = np.stack([1 / sig**2, np.zeros(n), 1 / sig**2], axis=1)
    colors = rng.uniform(0, 1, size=(n, 3))
    opacities = rng.uniform(0.2, 1.0, size=n)
    depths = rng.uniform(1, 20, size=n)
    radii = 3 * sig
    return (means2d, conics, colors, opacities, depths, radii, wh, wh)


@pytest.fixture(scope="module")
def raster_scene():
    """~5k visible splats on a 256x256 render."""
    return make_raster_scene(RASTER_N, RASTER_WH)


def test_rasterize_forward_reference(benchmark, raster_scene):
    from repro.render.rasterize import rasterize

    res = benchmark(lambda: rasterize(*raster_scene))
    assert res.image.shape == (RASTER_WH, RASTER_WH, 3)


def test_rasterize_forward_vectorized(benchmark, raster_scene):
    from repro.render.engine import rasterize_vectorized

    res = benchmark(lambda: rasterize_vectorized(*raster_scene))
    assert res.image.shape == (RASTER_WH, RASTER_WH, 3)


def test_rasterize_backward_reference(benchmark, raster_scene):
    from repro.render.backward import rasterize_backward
    from repro.render.rasterize import rasterize

    res = rasterize(*raster_scene)
    grad = np.ones((RASTER_WH, RASTER_WH, 3))
    out = benchmark(
        lambda: rasterize_backward(
            raster_scene[0], raster_scene[1], raster_scene[2],
            raster_scene[3], res, grad,
        )
    )
    assert out.means2d.shape == (RASTER_N, 2)


def test_rasterize_backward_vectorized(benchmark, raster_scene):
    from repro.render.engine import (
        rasterize_backward_vectorized,
        rasterize_vectorized,
    )

    res = rasterize_vectorized(*raster_scene)
    grad = np.ones((RASTER_WH, RASTER_WH, 3))
    out = benchmark(
        lambda: rasterize_backward_vectorized(
            raster_scene[0], raster_scene[1], raster_scene[2],
            raster_scene[3], res, grad,
        )
    )
    assert out.means2d.shape == (RASTER_N, 2)


def test_raster_engine_speedup(benchmark, raster_scene):
    """The vectorized engine must beat the reference loop by >= 5x on both
    passes at the paper's active-splat scale (best-of-3 to be robust)."""
    import time

    from repro.render.backward import rasterize_backward
    from repro.render.engine import (
        rasterize_backward_vectorized,
        rasterize_vectorized,
    )
    from repro.render.rasterize import rasterize

    def best_of(fn, rounds=3):
        fn()  # warmup
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    def compare():
        ref_res = rasterize(*raster_scene)
        vec_res = rasterize_vectorized(*raster_scene)
        np.testing.assert_allclose(
            vec_res.image, ref_res.image, atol=1e-9, rtol=0
        )
        grad = np.ones((RASTER_WH, RASTER_WH, 3))
        fwd_ref = best_of(lambda: rasterize(*raster_scene))
        fwd_vec = best_of(lambda: rasterize_vectorized(*raster_scene))
        bwd_ref = best_of(
            lambda: rasterize_backward(
                raster_scene[0], raster_scene[1], raster_scene[2],
                raster_scene[3], ref_res, grad,
            )
        )
        bwd_vec = best_of(
            lambda: rasterize_backward_vectorized(
                raster_scene[0], raster_scene[1], raster_scene[2],
                raster_scene[3], vec_res, grad,
            )
        )
        return fwd_ref / fwd_vec, bwd_ref / bwd_vec

    fwd_speedup, bwd_speedup = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert fwd_speedup >= 5.0, f"forward speedup only {fwd_speedup:.1f}x"
    assert bwd_speedup >= 5.0, f"backward speedup only {bwd_speedup:.1f}x"


# ---------------------------------------------------------------------------
# parallel engine + float32 fast path
# ---------------------------------------------------------------------------

import json
import os
import time


def _best_of(fn, rounds=3):
    fn()  # warmup
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_rasterize_forward_parallel(benchmark, raster_scene, workers):
    from repro.render import RasterConfig
    from repro.render.parallel import rasterize_parallel

    cfg = RasterConfig(engine="parallel", workers=workers)
    res = benchmark(lambda: rasterize_parallel(*raster_scene, config=cfg))
    assert res.image.shape == (RASTER_WH, RASTER_WH, 3)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_rasterize_backward_parallel(benchmark, raster_scene, workers):
    from repro.render import RasterConfig
    from repro.render.parallel import (
        rasterize_backward_parallel,
        rasterize_parallel,
    )

    cfg = RasterConfig(engine="parallel", workers=workers)
    res = rasterize_parallel(*raster_scene, config=cfg)
    grad = np.ones((RASTER_WH, RASTER_WH, 3))
    out = benchmark(
        lambda: rasterize_backward_parallel(
            raster_scene[0], raster_scene[1], raster_scene[2],
            raster_scene[3], res, grad, config=cfg,
        )
    )
    assert out.means2d.shape == (RASTER_N, 2)


def test_rasterize_forward_vectorized_f32(benchmark, raster_scene):
    """The float32 inference fast path (micro-bench column; parity is
    pinned by tests/render/test_parallel_engine.py)."""
    from repro.render import RasterConfig
    from repro.render.engine import rasterize_vectorized

    cfg = RasterConfig(dtype="float32")
    res = benchmark(lambda: rasterize_vectorized(*raster_scene, config=cfg))
    assert res.image.dtype == np.float32


def _physical_cpu_count() -> int:
    """Physical cores (Linux /proc parse); logical count as fallback.

    The 2x gate needs 4 real cores — SMT siblings of a bandwidth-bound
    exp2/bincount workload don't double throughput, so counting logical
    CPUs would run (and flake) the gate on 2-core/4-thread laptops.
    """
    try:
        cores = set()
        phys = "0"
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith("physical id"):
                    phys = line.split(":", 1)[1].strip()
                elif line.startswith("core id"):
                    cores.add((phys, line.split(":", 1)[1].strip()))
        if cores:
            return len(cores)
    except OSError:
        pass
    return os.cpu_count() or 1


@pytest.mark.skipif(
    _physical_cpu_count() < 4,
    reason="parallel speedup gate needs >= 4 physical cores",
)
def test_raster_parallel_speedup(benchmark):
    """Acceptance gate: at 4 workers on the 50k-splat scene, the parallel
    engine must at least halve the combined forward+backward wall-clock
    of the vectorized engine."""
    from repro.render import RasterConfig
    from repro.render.engine import (
        rasterize_backward_vectorized,
        rasterize_vectorized,
    )
    from repro.render.parallel import (
        rasterize_backward_parallel,
        rasterize_parallel,
    )

    scene = make_raster_scene(RASTER_N_LARGE, RASTER_WH)
    cfg = RasterConfig(engine="parallel", workers=4)
    grad = np.ones((RASTER_WH, RASTER_WH, 3))

    def compare():
        vec_res = rasterize_vectorized(*scene)
        par_res = rasterize_parallel(*scene, config=cfg)
        np.testing.assert_allclose(
            par_res.image, vec_res.image, atol=1e-9, rtol=0
        )
        t_vec = _best_of(lambda: rasterize_vectorized(*scene)) + _best_of(
            lambda: rasterize_backward_vectorized(
                scene[0], scene[1], scene[2], scene[3], vec_res, grad
            )
        )
        t_par = _best_of(
            lambda: rasterize_parallel(*scene, config=cfg)
        ) + _best_of(
            lambda: rasterize_backward_parallel(
                scene[0], scene[1], scene[2], scene[3], par_res, grad,
                config=cfg,
            )
        )
        return t_vec / t_par

    speedup = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert speedup >= 2.0, f"parallel speedup only {speedup:.2f}x"


@pytest.mark.skipif(
    _physical_cpu_count() < 4,
    reason="fragment speedup gate needs >= 4 physical cores",
)
def test_raster_fragment_speedup(benchmark):
    """Acceptance gate: at 4 workers x 4 shards on the 50k-splat scene,
    the fragment engine (worker-side projection-free pair build + host
    transmittance merge) must beat the span-parallel engine by >= 1.3x
    combined forward+backward."""
    from repro.render import RasterConfig
    from repro.render.fragment import (
        rasterize_backward_fragment,
        rasterize_fragment,
    )
    from repro.render.parallel import (
        rasterize_backward_parallel,
        rasterize_parallel,
    )

    scene = make_raster_scene(RASTER_N_LARGE, RASTER_WH)
    par_cfg = RasterConfig(engine="parallel", workers=4)
    frag_cfg = RasterConfig(engine="fragment", workers=4, fragment_shards=4)
    grad = np.ones((RASTER_WH, RASTER_WH, 3))

    def compare():
        par_res = rasterize_parallel(*scene, config=par_cfg)
        frag_res = rasterize_fragment(*scene, config=frag_cfg)
        np.testing.assert_allclose(
            frag_res.image, par_res.image, atol=1e-9, rtol=0
        )
        t_par = _best_of(
            lambda: rasterize_parallel(*scene, config=par_cfg)
        ) + _best_of(
            lambda: rasterize_backward_parallel(
                scene[0], scene[1], scene[2], scene[3], par_res, grad,
                config=par_cfg,
            )
        )
        t_frag = _best_of(
            lambda: rasterize_fragment(*scene, config=frag_cfg)
        ) + _best_of(
            lambda: rasterize_backward_fragment(
                scene[0], scene[1], scene[2], scene[3], frag_res, grad,
                config=frag_cfg,
            )
        )
        return t_par / t_frag

    speedup = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert speedup >= 1.3, f"fragment speedup only {speedup:.2f}x"


def test_raster_engine_matrix(benchmark):
    """Engine x workers x splat-count x dtype timing matrix.

    Writes ``benchmarks/out/BENCH_raster.json`` — the perf-trajectory
    artifact the CI perf-smoke job uploads. ``GSSCALE_BENCH_QUICK=1``
    shrinks the grid so shared runners finish in seconds; no speedup is
    asserted here (timings on shared runners are informational). The
    fragment rows sweep a workers x shards grid, and quick mode adds a
    span-oversubscription axis for the parallel engine.
    """
    from repro.render import RasterConfig
    from repro.render.engine import (
        rasterize_backward_vectorized,
        rasterize_vectorized,
    )
    from repro.render.fragment import (
        rasterize_backward_fragment,
        rasterize_fragment,
    )
    from repro.render.parallel import (
        rasterize_backward_parallel,
        rasterize_parallel,
    )

    quick = os.environ.get("GSSCALE_BENCH_QUICK", "") not in ("", "0")
    sizes = (2_000,) if quick else (RASTER_N, RASTER_N_LARGE)
    worker_axis = (1, 2) if quick else (1, 2, 4)
    shard_axis = (1, 2) if quick else (1, 2, 4)
    oversub_axis = (1, 3, 6) if quick else (3,)
    rounds = 1 if quick else 2

    def run_matrix():
        entries = []
        for n in sizes:
            scene = make_raster_scene(n, RASTER_WH)
            grad = np.ones((RASTER_WH, RASTER_WH, 3))

            def add(engine, workers, dtype, fwd, bwd, **extra):
                entries.append({
                    "engine": engine, "workers": workers, "dtype": dtype,
                    "splats": n,
                    "forward_s": _best_of(fwd, rounds),
                    "backward_s": _best_of(bwd, rounds) if bwd else None,
                    **extra,
                })

            for dtype in (None, "float32"):
                cfg = RasterConfig(dtype=dtype)
                res = rasterize_vectorized(*scene, config=cfg)
                add(
                    "vectorized", 0, dtype or "float64",
                    lambda cfg=cfg: rasterize_vectorized(*scene, config=cfg),
                    lambda res=res, cfg=cfg: rasterize_backward_vectorized(
                        scene[0], scene[1], scene[2], scene[3], res, grad,
                        config=cfg,
                    ),
                )
            for workers in worker_axis:
                for oversub in oversub_axis:
                    cfg = RasterConfig(
                        engine="parallel", workers=workers,
                        span_oversubscription=oversub,
                    )
                    res = rasterize_parallel(*scene, config=cfg)
                    add(
                        "parallel", workers, "float64",
                        lambda cfg=cfg: rasterize_parallel(
                            *scene, config=cfg
                        ),
                        lambda res=res, cfg=cfg: rasterize_backward_parallel(
                            scene[0], scene[1], scene[2], scene[3], res,
                            grad, config=cfg,
                        ),
                        span_oversubscription=oversub,
                    )
            for workers in worker_axis:
                for shards in shard_axis:
                    cfg = RasterConfig(
                        engine="fragment", workers=workers,
                        fragment_shards=shards,
                    )
                    res = rasterize_fragment(*scene, config=cfg)
                    add(
                        "fragment", workers, "float64",
                        lambda cfg=cfg: rasterize_fragment(
                            *scene, config=cfg
                        ),
                        lambda res=res, cfg=cfg: rasterize_backward_fragment(
                            scene[0], scene[1], scene[2], scene[3], res,
                            grad, config=cfg,
                        ),
                        shards=shards,
                    )
        return entries

    entries = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "image": f"{RASTER_WH}x{RASTER_WH}",
        "entries": entries,
    }
    with open(os.path.join(out_dir, "BENCH_raster.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
    assert entries and all(e["forward_s"] > 0 for e in entries)


def test_ssim_with_grad(benchmark):
    from repro.metrics import ssim_with_grad

    rng = np.random.default_rng(4)
    a = rng.uniform(size=(128, 128, 3))
    b = rng.uniform(size=(128, 128, 3))
    val, grad = benchmark(lambda: ssim_with_grad(a, b))
    assert grad.shape == a.shape
