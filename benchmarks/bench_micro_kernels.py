"""Micro-benchmarks of the library's hot kernels (pytest-benchmark).

These time the actual Python/numpy implementations — useful for tracking
regressions and for demonstrating the deferred update's traffic advantage
on real hardware (this machine's CPU), not just in the analytic model."""

import numpy as np
import pytest

from repro.cameras import Camera
from repro.gaussians import GaussianModel, layout
from repro.optim import AdamConfig, DeferredAdam, DenseAdam
from repro.render import frustum_cull, render, render_backward

N_ROWS = 60_000
ACTIVE = 5_000  # ~8.3%, the paper's average active ratio


@pytest.fixture(scope="module")
def param_store():
    rng = np.random.default_rng(0)
    return rng.normal(size=(N_ROWS, layout.PARAM_DIM)).astype(np.float64)


@pytest.fixture(scope="module")
def grads():
    rng = np.random.default_rng(1)
    return rng.normal(size=(ACTIVE, layout.PARAM_DIM)).astype(np.float64)


def test_dense_adam_step(benchmark, param_store, grads):
    opt = DenseAdam(param_store.copy(), AdamConfig(lr=1e-3))
    ids = np.arange(ACTIVE)

    def step():
        opt.step_sparse(ids, grads)

    benchmark(step)


def test_deferred_adam_step(benchmark, param_store, grads):
    opt = DeferredAdam(param_store.copy(), AdamConfig(lr=1e-3))
    ids = np.arange(ACTIVE)

    def step():
        opt.step(ids, grads)

    benchmark(step)


def test_deferred_vs_dense_speed(benchmark, param_store, grads):
    """The deferred update must beat dense at the paper's active ratio
    even in numpy (it touches ~12x fewer rows)."""
    import time

    def compare():
        ids = np.arange(ACTIVE)
        dense = DenseAdam(param_store.copy(), AdamConfig(lr=1e-3))
        deferred = DeferredAdam(param_store.copy(), AdamConfig(lr=1e-3))
        for _ in range(2):  # warmup
            dense.step_sparse(ids, grads)
            deferred.step(ids, grads)
        t0 = time.perf_counter()
        for _ in range(5):
            dense.step_sparse(ids, grads)
        t_dense = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(5):
            deferred.step(ids, grads)
        t_deferred = time.perf_counter() - t0
        return t_dense, t_deferred

    t_dense, t_deferred = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert t_deferred < t_dense


@pytest.fixture(scope="module")
def culling_scene():
    rng = np.random.default_rng(2)
    n = 50_000
    means = rng.uniform(-10, 10, size=(n, 3))
    log_scales = np.full((n, 3), np.log(0.05))
    quats = np.zeros((n, 4))
    quats[:, 0] = 1.0
    cam = Camera.look_at([0, -15.0, 5.0], [0, 0, 0], width=256, height=192)
    return means, log_scales, quats, cam


def test_frustum_culling(benchmark, culling_scene):
    means, log_scales, quats, cam = culling_scene
    result = benchmark(lambda: frustum_cull(means, log_scales, quats, cam))
    assert result.num_visible > 0


@pytest.fixture(scope="module")
def render_scene():
    rng = np.random.default_rng(3)
    n = 400
    means = rng.uniform(-1, 1, size=(n, 3))
    log_scales = rng.uniform(np.log(0.02), np.log(0.1), size=(n, 3))
    quats = rng.normal(size=(n, 4))
    op = rng.uniform(-1, 2, size=n)
    sh = rng.normal(size=(n, 16, 3)) * 0.2
    model = GaussianModel.from_attributes(means, log_scales, quats, op, sh,
                                          dtype=np.float64)
    cam = Camera.look_at([0, -3.0, 0.6], [0, 0, 0], width=64, height=48)
    return model, cam


def test_render_forward(benchmark, render_scene):
    model, cam = render_scene
    res = benchmark(lambda: render(model, cam))
    assert res.image.shape == (48, 64, 3)


def test_render_backward(benchmark, render_scene):
    model, cam = render_scene
    res = render(model, cam)
    grad = np.ones_like(res.image)
    out = benchmark(lambda: render_backward(model, cam, res, grad))
    assert out.param_grads.shape[1] == layout.PARAM_DIM


def test_ssim_with_grad(benchmark):
    from repro.metrics import ssim_with_grad

    rng = np.random.default_rng(4)
    a = rng.uniform(size=(128, 128, 3))
    b = rng.uniform(size=(128, 128, 3))
    val, grad = benchmark(lambda: ssim_with_grad(a, b))
    assert grad.shape == a.shape
