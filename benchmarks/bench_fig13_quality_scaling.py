"""Reproduces Figure 13: rendering quality vs Gaussian count across
scenes, with per-platform maximum-scale markers.

Two layers: the calibrated quality model regenerates the paper-scale
curves (PSNR/SSIM up, LPIPS down, with GS-Scale extending each platform's
maximum), and a *functional* sweep — real training runs at increasing
Gaussian budgets on a synthetic scene — validates the monotone shape the
model assumes."""

import numpy as np

from repro.bench import QualityModel, Table, write_report
from repro.core import GSScaleConfig, Trainer
from repro.datasets import get_scene
from repro.densify import DensifyConfig
from repro.sim import get_platform, max_trainable_gaussians

SCENES = ("rubble", "building", "lfls", "sziit", "sztu")
COUNTS = (4e6, 9e6, 18e6, 30e6, 40e6)


def build_model_curves():
    tables = []
    curves = {}
    for key in SCENES:
        model = QualityModel(key)
        t = Table(
            title=f"Figure 13 — Quality vs Scale ({model.spec.name})",
            columns=["Gaussians (M)", "PSNR", "SSIM", "LPIPS"],
        )
        pts = model.sweep(COUNTS)
        for p in pts:
            t.add_row(p.num_gaussians / 1e6, p.psnr, p.ssim, p.lpips)
        curves[key] = pts
        tables.append(t)

    marker = Table(
        title="Figure 13 — Maximum trainable scale per platform/system",
        columns=["Platform", "System", "Max Gaussians (M)"],
    )
    spec = get_scene("rubble")
    for pk in ("laptop_4070m", "desktop_4080s"):
        gpu = get_platform(pk).gpu
        for system in ("gpu_only", "gsscale"):
            n = max_trainable_gaussians(
                gpu, spec.num_pixels, system,
                peak_active_ratio=spec.peak_active_ratio,
            )
            marker.add_row(gpu.name, system, n / 1e6)
    tables.append(marker)
    return tables, curves


def run_functional_sweep(tiny_scene):
    """Train the same synthetic scene at growing Gaussian budgets."""
    t = Table(
        title="Figure 13 (functional) — real training sweep, synthetic scene",
        columns=["Budget", "Final Gaussians", "Test PSNR", "Test LPIPS-proxy"],
    )
    points = []
    for budget in (60, 120, 240):
        initial = tiny_scene.initial.select(
            np.arange(min(budget // 2, tiny_scene.initial.num_gaussians))
        )
        trainer = Trainer(
            initial,
            GSScaleConfig(
                system="gsscale",
                scene_extent=tiny_scene.extent,
                ssim_lambda=0.0,
                mem_limit=1.0,
                seed=0,
            ),
            densify=DensifyConfig(
                interval=5, start_iteration=5, stop_iteration=40,
                grad_threshold=1e-9, percent_dense=0.05,
                max_gaussians=budget,
            ),
        )
        trainer.train(
            tiny_scene.train_cameras, tiny_scene.train_images, iterations=30
        )
        ev = trainer.evaluate(tiny_scene.test_cameras, tiny_scene.test_images)
        t.add_row(budget, trainer.num_gaussians, ev.psnr, ev.lpips_proxy)
        points.append((trainer.num_gaussians, ev.psnr, ev.lpips_proxy))
    return t, points


def test_fig13_model_curves(benchmark):
    tables, curves = benchmark(build_model_curves)
    print("\n" + write_report("fig13_quality_scaling", *tables))
    for key, pts in curves.items():
        psnr = [p.psnr for p in pts]
        ssim = [p.ssim for p in pts]
        lpips = [p.lpips for p in pts]
        assert psnr == sorted(psnr), key
        assert ssim == sorted(ssim), key
        assert lpips == sorted(lpips, reverse=True), key
    # Section 5.6 LPIPS deltas: ~28.7% from 4M to 18M
    m = QualityModel("rubble")
    delta = 1 - m.lpips(18e6) / m.lpips(4e6)
    assert abs(delta - 0.287) < 0.02


def test_fig13_functional_sweep(benchmark, tiny_scene):
    table, points = benchmark.pedantic(
        run_functional_sweep, args=(tiny_scene,), rounds=1, iterations=1
    )
    print("\n" + write_report("fig13_functional", table))
    counts = [p[0] for p in points]
    psnrs = [p[1] for p in points]
    assert counts[0] < counts[-1]  # budgets produce growing models
    # more Gaussians -> better quality (the figure's core trend)
    assert psnrs[-1] > psnrs[0]
