"""Reproduces Figure 3: (a) quality vs Gaussian count with GPU capacity
limits; (b) GPU memory breakdown vs image resolution."""

from repro.bench import QualityModel, Table, write_report
from repro.datasets import get_scene
from repro.sim import get_platform, gpu_only_breakdown, max_trainable_gaussians


def build_fig3a() -> Table:
    model = QualityModel("rubble")
    spec = get_scene("rubble")
    t = Table(
        title="Figure 3a — Quality vs #Gaussians (Rubble) + GPU ceilings",
        columns=["Gaussians (M)", "PSNR", "SSIM", "LPIPS"],
    )
    counts = [4e6, 9e6, 18e6, 30e6, 40e6]
    for n in counts:
        q = model.point(n)
        t.add_row(n / 1e6, q.psnr, q.ssim, q.lpips)
    for pk in ("laptop_4070m", "desktop_4080s"):
        gpu = get_platform(pk).gpu
        ceiling = max_trainable_gaussians(gpu, spec.num_pixels, "gpu_only")
        t.notes.append(
            f"{gpu.name} GPU-only ceiling: {ceiling / 1e6:.1f}M Gaussians"
        )
    return t


def build_fig3b() -> Table:
    t = Table(
        title="Figure 3b — GPU Memory Breakdown vs Resolution (Building-class)",
        columns=["Resolution", "Params %", "Grads %", "Opt.State %", "Activation %"],
        notes=["Gaussian state dominates (~90%) at 1-1.6K; activations grow "
               "with pixel count."],
    )
    n = 13_000_000
    for label, px in (("1K", 1_000_000), ("2K", 2_200_000), ("4K", 8_300_000)):
        b = gpu_only_breakdown(n, px)
        s = b.shares()
        t.add_row(
            label,
            100 * s["parameters"],
            100 * s["gradients"],
            100 * s["optimizer_states"],
            100 * s["activations"],
        )
    return t


def test_fig03a_quality_scaling(benchmark):
    table = benchmark(build_fig3a)
    print("\n" + write_report("fig03a_motivation", table))
    psnrs = [r[1] for r in table.rows]
    lpips = [r[3] for r in table.rows]
    assert psnrs == sorted(psnrs)  # more Gaussians -> better PSNR
    assert lpips == sorted(lpips, reverse=True)
    # text anchor: RTX 4080S limited to ~26.67 PSNR at ~9M
    q9m = psnrs[1]
    assert abs(q9m - 26.67) < 0.6


def test_fig03b_memory_breakdown(benchmark):
    table = benchmark(build_fig3b)
    print("\n" + write_report("fig03b_motivation", table))
    shares_1k = table.rows[0]
    gaussian_state = shares_1k[1] + shares_1k[2] + shares_1k[3]
    assert gaussian_state > 85.0  # Section 3.2: ~90% at low resolutions
    act = [r[4] for r in table.rows]
    assert act[0] < act[1] < act[2]  # activations grow with resolution
    # params:grads:opt = 1:1:2 by construction
    assert abs(shares_1k[3] - 2 * shares_1k[1]) < 0.5
