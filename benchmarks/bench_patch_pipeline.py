"""Patch-pipeline benchmark: farm vs monolithic, measured and modeled.

Feeds ``benchmarks/out/BENCH_recon.json`` (the committed baseline is the
quick-mode run the CI ``perf-smoke`` job diffs against and uploads):

* ``test_pipeline_vs_monolithic`` — one full partition -> train ->
  merge -> clean run against a monolithic ``Trainer`` run of the same
  scene, iterations, and system. Records both wall clocks and the
  modeled fp32-equivalent host peaks. The PR acceptance gate lives
  here: the pipeline's peak host bytes must be **strictly below** the
  monolithic training state.
* ``test_modeled_farm_schedule`` — ``sim.simulate_patch_farm`` over a
  jobs sweep on a calibrated platform: the modeled counterpart the
  figures use, pinned to stay consistent with the measured side (farm
  peak below monolithic at J < P).

``GSSCALE_BENCH_QUICK=1`` shrinks every axis for CI smoke runs.
"""

import json
import os
import tempfile
import time

from repro.core import GSScaleConfig, Trainer
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.recon import PatchPipelineConfig, run_patch_pipeline
from repro.sim import get_platform, simulate_patch_farm

QUICK = os.environ.get("GSSCALE_BENCH_QUICK", "") not in ("", "0")


def _emit(entries):
    """Merge this test's entries into the shared BENCH_recon payload."""
    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_recon.json")
    payload = {"quick": QUICK, "cpu_count": os.cpu_count(), "entries": []}
    if os.path.exists(path):
        with open(path) as fh:
            previous = json.load(fh)
        if previous.get("quick") == QUICK:
            payload["entries"] = [
                e for e in previous["entries"]
                if e["bench"] not in {x["bench"] for x in entries}
            ]
    payload["entries"].extend(entries)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)


def test_pipeline_vs_monolithic(benchmark):
    """Measured: 4-patch pipeline vs one whole-scene run."""
    scene = build_scene(
        SyntheticSceneConfig(
            num_points=220 if QUICK else 420,
            width=36, height=28,
            num_train_cameras=6, num_test_cameras=1,
            altitude=12.0, seed=9,
        )
    )
    iterations = 8 if QUICK else 24
    train = GSScaleConfig(
        system="gpu_only", scene_extent=scene.extent, seed=0
    )

    def run():
        with tempfile.TemporaryDirectory(prefix="gsscale-bench-") as workdir:
            t0 = time.perf_counter()
            result = run_patch_pipeline(
                scene.initial, scene.train_cameras, scene.train_images,
                workdir,
                PatchPipelineConfig(
                    num_patches=4, iterations=iterations, jobs=2, train=train
                ),
            )
            pipeline_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        trainer = Trainer(scene.initial.copy(), train)
        trainer.train(scene.train_cameras, scene.train_images, iterations)
        monolithic_s = time.perf_counter() - t0

        buffered = [p.num_buffered for p in result.patches]
        return {
            "bench": "pipeline",
            "num_gaussians": scene.initial.num_gaussians,
            "num_patches": 4,
            "jobs": 2,
            "iterations": iterations,
            "buffered_sizes": buffered,
            "merge_policy": result.merge.policy,
            "merged_rows": result.merge.num_gaussians,
            "final_rows": result.clean.kept_rows,
            "peak_host_bytes": result.peak_host_bytes,
            "monolithic_peak_host_bytes": result.monolithic_peak_host_bytes,
            "pipeline_s": pipeline_s,
            "monolithic_s": monolithic_s,
        }

    entry = benchmark.pedantic(run, rounds=1, iterations=1)
    # the PR acceptance gate: the farm never holds the whole training
    # state — its modeled peak is strictly below the monolithic run's
    assert entry["peak_host_bytes"] < entry["monolithic_peak_host_bytes"]
    # and the merge kept every splat exactly once
    assert entry["merged_rows"] == entry["num_gaussians"]
    _emit([entry])


def test_modeled_farm_schedule(benchmark):
    """Modeled: the same schedule on a calibrated platform."""
    patch_sizes = [50_000, 42_000, 38_000, 30_000]
    iterations = 200 if QUICK else 1000
    platform = get_platform("laptop_4070m")

    def run():
        entries = []
        for jobs in (1, 2, 4):
            farm = simulate_patch_farm(
                platform, patch_sizes, jobs, iterations=iterations,
                num_pixels=640 * 360,
            )
            entries.append({
                "bench": "farm_model",
                "platform": "laptop_4070m",
                "jobs": jobs,
                "patch_sizes": patch_sizes,
                "iterations": iterations,
                "makespan_s": round(farm.makespan_seconds, 3),
                "monolithic_s": round(farm.monolithic_seconds, 3),
                "speedup": round(farm.speedup, 3),
                "peak_host_bytes": farm.peak_host_bytes,
                "monolithic_peak_host_bytes": (
                    farm.monolithic_peak_host_bytes
                ),
            })
        return entries

    entries = benchmark.pedantic(run, rounds=1, iterations=1)
    by_jobs = {e["jobs"]: e for e in entries}
    # under-committed farms hold strictly less than the whole state
    for jobs in (1, 2):
        assert (
            by_jobs[jobs]["peak_host_bytes"]
            < by_jobs[jobs]["monolithic_peak_host_bytes"]
        )
    # and packing over more jobs monotonically shrinks wall clock
    assert (
        by_jobs[4]["makespan_s"]
        <= by_jobs[2]["makespan_s"]
        <= by_jobs[1]["makespan_s"]
    )
    _emit(entries)
