"""Reproduces Figure 12: peak GPU memory, GPU-only vs GS-Scale.

Paper: per-scene ratios 0.18x-0.30x, geomean 3.98x savings; Aerial saves
the most (lowest active ratio) but is floored by the 17% geometric
residency of selective offloading."""

from repro.bench import Table, write_report
from repro.datasets import all_scenes, synthesize_trace
from repro.sim import (
    disk_state_bytes,
    geomean,
    host_state_bytes,
    outofcore_host_state_bytes,
    peak_memory,
)


def build_table():
    t = Table(
        title="Figure 12 — Peak GPU Memory Usage (GiB) + Host/Disk Tiers",
        columns=["Scene", "GPU-Only", "GS-Scale", "Ratio", "Savings",
                 "Sharded/dev (K=4)", "Host GS-Scale", "Host OoC (R=1)",
                 "Host OoC async", "Host OoC async+WB", "Disk OoC",
                 "Disk OoC (f16)"],
        notes=["mem_limit = 0.3 (paper default); staged window uses the "
               "epoch's worst post-split view.",
               "Sharded/dev = per-device peak of the 4-way Gaussian-"
               "sharded system (each GPU holds ~1/4 of the scene).",
               "Host columns = DRAM floor of the offloaded training "
               "state; OoC keeps 1 of 4 shards resident and pages the "
               "rest through the Disk column's spill files.",
               "Host OoC async adds the prefetch leg's double buffer: "
               "one extra shard's pageable state staged while the "
               "current view renders.",
               "Host OoC async+WB additionally holds one detached shard "
               "working set queued for the write-behind writer.",
               "Disk OoC (f16) = the same spill files through the "
               "float16 page codec: exactly half the raw disk floor."],
    )
    ratios = {}
    shard_ratios = {}
    host_ratios = {}
    async_ratios = {}
    wb_ratios = {}
    disk_f16_ratios = {}
    for spec in all_scenes():
        trace = synthesize_trace(spec, num_views=150, seed=7)
        staged_peak = trace.clipped(0.3).peak_ratio
        g = peak_memory(
            "gpu_only", spec.total_gaussians, spec.num_pixels, trace.peak_ratio
        ).total
        s = peak_memory(
            "gsscale", spec.total_gaussians, spec.num_pixels, staged_peak, 0.3
        ).total
        sh = peak_memory(
            "sharded", spec.total_gaussians, spec.num_pixels, staged_peak, 0.3
        ).total
        host_gs = host_state_bytes(spec.total_gaussians, "gsscale")
        host_ooc = outofcore_host_state_bytes(
            spec.total_gaussians, num_shards=4, resident_shards=1
        )
        host_async = outofcore_host_state_bytes(
            spec.total_gaussians, num_shards=4, resident_shards=1,
            staging_shards=1,
        )
        host_wb = outofcore_host_state_bytes(
            spec.total_gaussians, num_shards=4, resident_shards=1,
            staging_shards=1, pending_writes=1,
        )
        disk_ooc = disk_state_bytes(
            spec.total_gaussians, num_shards=4, resident_shards=1
        )
        disk_f16 = disk_state_bytes(
            spec.total_gaussians, num_shards=4, resident_shards=1,
            page_compression_ratio=2.0,
        )
        t.add_row(
            spec.name, g / 2**30, s / 2**30, s / g, f"{g / s:.1f}x",
            sh / 2**30, host_gs / 2**30, host_ooc / 2**30,
            host_async / 2**30, host_wb / 2**30, disk_ooc / 2**30,
            disk_f16 / 2**30
        )
        ratios[spec.name.lower()] = s / g
        shard_ratios[spec.name.lower()] = sh / s
        host_ratios[spec.name.lower()] = host_ooc / host_gs
        async_ratios[spec.name.lower()] = host_async / host_gs
        wb_ratios[spec.name.lower()] = host_wb / host_gs
        disk_f16_ratios[spec.name.lower()] = disk_f16 / disk_ooc
    t.notes.append(
        f"geomean savings {geomean([1 / r for r in ratios.values()]):.2f}x "
        "(paper: 3.98x)"
    )
    return (t, ratios, shard_ratios, host_ratios, async_ratios, wb_ratios,
            disk_f16_ratios)


def test_fig12_memory(benchmark):
    (table, ratios, shard_ratios, host_ratios, async_ratios, wb_ratios,
     disk_f16_ratios) = benchmark(build_table)
    print("\n" + write_report("fig12_memory", table))

    savings = [1 / r for r in ratios.values()]
    # Section 5.2: 3.3x-5.6x range, geomean 3.98x
    assert 3.0 <= geomean(savings) <= 5.0
    for name, r in ratios.items():
        assert 0.15 <= r <= 0.40, name
    # Aerial achieves the largest saving (Figure 12's 0.18x)
    assert ratios["aerial"] == min(ratios.values())
    # ... but is floored by the 17% geometric residency (Section 5.2)
    assert ratios["aerial"] > 0.17 * 0.9
    # 4-way sharding shrinks each device's peak well below single-device
    # GS-Scale (Gaussian state quarters; activations shrink with the
    # pixel partition)
    for name, r in shard_ratios.items():
        assert r < 0.5, name
    # out-of-core placement: with 1 of 4 shards resident, the host-DRAM
    # floor drops to a bit over a quarter of GS-Scale's (the resident
    # shard's 4-copy state plus one defer counter byte per Gaussian)
    for name, r in host_ratios.items():
        assert 0.25 <= r <= 0.35, name
    # the async double buffer costs less than one extra resident shard
    # (3 pageable copies vs 4 training-state copies) and stays well
    # under half of GS-Scale's host floor
    for name, r in async_ratios.items():
        assert host_ratios[name] < r <= 0.5, name
    # the write-behind pending buffer adds one more detached shard
    # working set on top of the staging shard — same 3-copy cost — and
    # the stacked tier still sits well below the in-memory host floor
    for name, r in wb_ratios.items():
        assert async_ratios[name] < r <= 0.75, name
        assert abs((r - async_ratios[name]) -
                   (async_ratios[name] - host_ratios[name])) < 1e-9, name
    # the float16 page codec halves the disk tier exactly (2 bytes per
    # value against fp32-equivalent accounting)
    for name, r in disk_f16_ratios.items():
        assert abs(r - 0.5) < 1e-6, name
