"""Reproduces Figure 12: peak GPU memory, GPU-only vs GS-Scale.

Paper: per-scene ratios 0.18x-0.30x, geomean 3.98x savings; Aerial saves
the most (lowest active ratio) but is floored by the 17% geometric
residency of selective offloading."""

from repro.bench import Table, write_report
from repro.datasets import all_scenes, synthesize_trace
from repro.sim import geomean, peak_memory


def build_table():
    t = Table(
        title="Figure 12 — Peak GPU Memory Usage (GiB)",
        columns=["Scene", "GPU-Only", "GS-Scale", "Ratio", "Savings",
                 "Sharded/dev (K=4)"],
        notes=["mem_limit = 0.3 (paper default); staged window uses the "
               "epoch's worst post-split view.",
               "Sharded/dev = per-device peak of the 4-way Gaussian-"
               "sharded system (each GPU holds ~1/4 of the scene)."],
    )
    ratios = {}
    shard_ratios = {}
    for spec in all_scenes():
        trace = synthesize_trace(spec, num_views=150, seed=7)
        staged_peak = trace.clipped(0.3).peak_ratio
        g = peak_memory(
            "gpu_only", spec.total_gaussians, spec.num_pixels, trace.peak_ratio
        ).total
        s = peak_memory(
            "gsscale", spec.total_gaussians, spec.num_pixels, staged_peak, 0.3
        ).total
        sh = peak_memory(
            "sharded", spec.total_gaussians, spec.num_pixels, staged_peak, 0.3
        ).total
        t.add_row(
            spec.name, g / 2**30, s / 2**30, s / g, f"{g / s:.1f}x",
            sh / 2**30
        )
        ratios[spec.name.lower()] = s / g
        shard_ratios[spec.name.lower()] = sh / s
    t.notes.append(
        f"geomean savings {geomean([1 / r for r in ratios.values()]):.2f}x "
        "(paper: 3.98x)"
    )
    return t, ratios, shard_ratios


def test_fig12_memory(benchmark):
    table, ratios, shard_ratios = benchmark(build_table)
    print("\n" + write_report("fig12_memory", table))

    savings = [1 / r for r in ratios.values()]
    # Section 5.2: 3.3x-5.6x range, geomean 3.98x
    assert 3.0 <= geomean(savings) <= 5.0
    for name, r in ratios.items():
        assert 0.15 <= r <= 0.40, name
    # Aerial achieves the largest saving (Figure 12's 0.18x)
    assert ratios["aerial"] == min(ratios.values())
    # ... but is floored by the 17% geometric residency (Section 5.2)
    assert ratios["aerial"] > 0.17 * 0.9
    # 4-way sharding shrinks each device's peak well below single-device
    # GS-Scale (Gaussian state quarters; activations shrink with the
    # pixel partition)
    for name, r in shard_ratios.items():
        assert r < 0.5, name
