"""Disk-paging benchmarks of the deep out-of-core tier.

Three parts, all feeding ``benchmarks/out/BENCH_disk.json`` (the
committed ``BENCH_disk.json`` baseline is the quick-mode run the CI
``perf-smoke`` job diffs against and uploads):

* ``test_codec_page_bandwidth`` — spill/page-in roundtrips of a
  standalone :class:`~repro.core.stores.DiskStore` per codec. The
  acceptance gate lives here: the float16 codec must deliver >= 1.5x
  effective page-in bandwidth (decoded bytes per encoded byte actually
  read) over raw.
* ``test_disk_paging_matrix`` — short out-of-core training runs over the
  codec x prefetch-depth x write-behind grid on an alternating-cluster
  schedule, recording staging hit-rates, synchronous-spill bytes, and
  the ledger's two-sided disk channel. Depth >= 2 must reach a strictly
  higher staging hit-rate than the depth-1 double buffer, and
  write-behind must hold admit-path synchronous spill bytes at zero.
* ``test_tenx_budget_entry`` — the headline configuration: a model
  whose pageable state is ~10x the host budget training with all three
  axes on at once, under the enforced byte budget.

``GSSCALE_BENCH_QUICK=1`` shrinks every axis for CI smoke runs.
"""

import json
import os
import time

import numpy as np

from repro.cameras import Camera
from repro.core import GSScaleConfig, Trainer
from repro.core.stores import DiskStore
from repro.core.systems import TransferLedger
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import GaussianModel, layout
from repro.optim.base import AdamConfig
from repro.render import render
from repro.sim.memory import MemoryTracker

QUICK = os.environ.get("GSSCALE_BENCH_QUICK", "") not in ("", "0")

CLUSTER_CENTERS = np.array(
    [[-6.0, -6.0, 0.0], [6.0, -6.0, 0.0], [-6.0, 6.0, 0.0], [6.0, 6.0, 0.0]]
)


def clustered_fixture(per_cluster):
    """The alternating-cluster regime of the depth-D suites: each narrow
    camera culls to one spatial shard, so every step swaps shards."""
    rng = np.random.default_rng(3)
    means = np.concatenate(
        [c + rng.normal(scale=0.4, size=(per_cluster, 3))
         for c in CLUSTER_CENTERS]
    )
    n = means.shape[0]
    quats = np.zeros((n, 4))
    quats[:, 0] = 1.0
    model = GaussianModel.from_attributes(
        means, np.full((n, 3), np.log(0.05)), quats,
        rng.uniform(0.5, 1.5, size=n), rng.normal(size=(n, 16, 3)) * 0.2,
        dtype=np.float64,
    )
    cameras = [
        Camera.look_at(
            c + np.array([0.0, 0.0, 5.0]), c, up=(0.0, 1.0, 0.0),
            width=24, height=18, fov_x_deg=40.0,
        )
        for c in CLUSTER_CENTERS
    ]
    images = [render(model, cam).image for cam in cameras]
    return model, cameras, images


def _emit(entries):
    """Merge this test's entries into the shared BENCH_disk payload."""
    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_disk.json")
    payload = {"quick": QUICK, "cpu_count": os.cpu_count(), "entries": []}
    if os.path.exists(path):
        with open(path) as fh:
            previous = json.load(fh)
        if previous.get("quick") == QUICK:
            payload["entries"] = [
                e for e in previous["entries"]
                if e["bench"] not in {x["bench"] for x in entries}
            ]
    payload["entries"].extend(entries)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)


def test_codec_page_bandwidth(benchmark):
    """Effective page-in bandwidth per codec: decoded bytes delivered per
    encoded byte read off disk, over repeated spill/page-in roundtrips."""
    rows = 4_000 if QUICK else 20_000
    roundtrips = 4 if QUICK else 8
    rng = np.random.default_rng(17)
    # Adam-moment-shaped pages: smooth parameters, near-zero moments
    params = rng.normal(size=(rows, layout.PARAM_DIM))

    def run(tmp_root):
        entries = []
        for codec in ("raw", "float16", "lossless"):
            store = DiskStore(
                params.copy(), layout.ALL_BLOCK, AdamConfig(lr=5e-3),
                MemoryTracker(), TransferLedger(),
                spill_path=os.path.join(tmp_root, f"bw_{codec}"),
                codec=codec,
            )
            # a little training math so the moment pages are realistic
            ids = np.arange(rows)
            store.stage(ids)
            store.unstage(ids)
            store.commit()
            store.return_grads(ids, rng.normal(size=params.shape) * 1e-3)
            t0 = time.perf_counter()
            for _ in range(roundtrips):
                store.spill()
                store.page_in()
            elapsed = time.perf_counter() - t0
            ledger = store.ledger
            multiplier = ledger.page_in_bytes / ledger.page_in_disk_bytes
            entries.append({
                "bench": "codec",
                "codec": codec,
                "rows": rows,
                "roundtrips": roundtrips,
                "bandwidth_multiplier": round(multiplier, 4),
                "page_in_s": store.page_in_s,
                "sync_spill_s": store.sync_spill_s,
                "roundtrip_s": elapsed / roundtrips,
            })
        return entries

    import tempfile

    with tempfile.TemporaryDirectory(prefix="gsscale-bench-") as tmp_root:
        entries = benchmark.pedantic(
            run, args=(tmp_root,), rounds=1, iterations=1
        )
    by_codec = {e["codec"]: e for e in entries}
    assert by_codec["raw"]["bandwidth_multiplier"] == 1.0
    # the PR acceptance gate: compressed pages >= 1.5x effective bandwidth
    assert by_codec["float16"]["bandwidth_multiplier"] >= 1.5
    assert by_codec["lossless"]["bandwidth_multiplier"] > 0
    _emit(entries)


def test_disk_paging_matrix(benchmark):
    """codec x prefetch-depth x write-behind training grid."""
    per_cluster = 40 if QUICK else 60
    steps = 8 if QUICK else 12
    codecs = ("raw", "float16") if QUICK else ("raw", "float16", "lossless")
    depths = (1, 2) if QUICK else (1, 2, 3)
    model, cameras, images = clustered_fixture(per_cluster)

    def run_matrix():
        entries = []
        for codec in codecs:
            for depth in depths:
                for write_behind in (False, True):
                    cfg = GSScaleConfig(
                        system="outofcore", num_shards=4, resident_shards=2,
                        scene_extent=8.0, ssim_lambda=0.0, mem_limit=1.0,
                        seed=0, async_prefetch=True, prefetch_depth=depth,
                        write_behind=write_behind, page_codec=codec,
                    )
                    t = Trainer(model.copy(), cfg)
                    t0 = time.perf_counter()
                    # alternate two clusters: the depth-1 structural miss
                    t.train(cameras[:2], images[:2], steps)
                    step_s = (time.perf_counter() - t0) / steps
                    s = t.system
                    attempts = max(s.prefetch_hits + s.prefetch_misses, 1)
                    ledger = s.ledger
                    entries.append({
                        "bench": "matrix",
                        "codec": codec,
                        "prefetch_depth": depth,
                        "write_behind": write_behind,
                        "steps": steps,
                        "staging_hit_rate": round(
                            s.prefetch_hits / attempts, 4
                        ),
                        "page_in_count": ledger.page_in_count,
                        "sync_spill_bytes": s.sync_spill_bytes,
                        "write_behind_jobs": s.write_behind_jobs,
                        "disk_read_ratio": round(
                            ledger.page_in_bytes
                            / max(ledger.page_in_disk_bytes, 1), 4
                        ),
                        "step_s": step_s,
                        "sync_spill_s": s.sync_spill_seconds,
                    })
        return entries

    entries = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    def cell(codec, depth, wb):
        return next(
            e for e in entries
            if e["codec"] == codec and e["prefetch_depth"] == depth
            and e["write_behind"] is wb
        )

    for codec in codecs:
        for wb in (False, True):
            shallow, deep = cell(codec, 1, wb), cell(codec, depths[-1], wb)
            # the acceptance gates: a deeper staging queue strictly wins
            # the hit-rate, and write-behind zeroes the admit path
            assert deep["staging_hit_rate"] > shallow["staging_hit_rate"]
            assert deep["page_in_count"] < shallow["page_in_count"]
        for depth in depths:
            sync, behind = cell(codec, depth, False), cell(codec, depth, True)
            assert behind["sync_spill_bytes"] == 0
            assert behind["sync_spill_bytes"] < sync["sync_spill_bytes"]
            assert behind["write_behind_jobs"] > 0
    for e in entries:
        if e["codec"] == "float16":
            assert e["disk_read_ratio"] >= 1.5
    _emit(entries)


def test_tenx_budget_entry(benchmark):
    """Everything on at once, ~10x past the host budget."""
    scene = build_scene(
        SyntheticSceneConfig(
            num_points=260 if QUICK else 400,
            width=36, height=28, num_train_cameras=6, num_test_cameras=1,
            altitude=12.0, seed=11,
        )
    )
    steps = 10 if QUICK else 14

    def run():
        cfg = GSScaleConfig(
            system="outofcore", num_shards=10, resident_shards=1,
            scene_extent=scene.extent, ssim_lambda=0.0, mem_limit=1.0,
            seed=0, async_prefetch=True, prefetch_depth=2,
            write_behind=True, page_codec="float16",
        )
        t = Trainer(scene.initial.copy(), cfg)
        t0 = time.perf_counter()
        t.train(
            scene.train_cameras, scene.train_images, steps,
            view_order="locality",
        )
        step_s = (time.perf_counter() - t0) / steps
        s = t.system
        pageable = sum(
            3 * layout.param_bytes(r.size, layout.NON_GEOMETRIC_DIM)
            for r in s.shard_rows
        )
        return {
            "bench": "tenx",
            "codec": "float16",
            "prefetch_depth": 2,
            "write_behind": True,
            "num_shards": 10,
            "steps": steps,
            "pageable_over_host_peak": round(
                pageable / s.host_memory.peak_bytes, 2
            ),
            "sync_spill_bytes": s.sync_spill_bytes,
            "staging_hit_rate": round(
                s.prefetch_hits
                / max(s.prefetch_hits + s.prefetch_misses, 1), 4
            ),
            "step_s": step_s,
        }

    entry = benchmark.pedantic(run, rounds=1, iterations=1)
    # the deep tier's whole point: far past the budget, no admit-path
    # spill stall, still training
    assert entry["pageable_over_host_peak"] >= 6.0
    assert entry["sync_spill_bytes"] == 0
    _emit([entry])
