"""Reproduces Figure 11: training throughput of the four systems across
six scenes (plus Small variants) on laptop and desktop, normalized to
baseline GS-Scale, with OOM markers.

Paper headline numbers: GS-Scale all-optimizations achieves geomean 4.47x
(laptop) / 4.57x (desktop) over baseline, and 1.22x / 0.84x of GPU-only
throughput (excluding OOM cases)."""

import dataclasses

from repro.bench import Table, write_report
from repro.datasets import all_scenes, synthesize_trace
from repro.sim import SYSTEMS, geomean, get_platform, simulate_epoch

PLATFORM_KEYS = ("laptop_4070m", "desktop_4080s")

#: Per-platform full-scale Gaussian budget. The paper scales each scene up
#: to the platform's feasible maximum by adjusting densification settings
#: (Section 5.1, "following the Grendel methodology"); the laptop maxes out
#: around 16-18M under GS-Scale (Section 5.6). Aerial is exempt — its
#: initial point cloud is already too large to downsize (Section 5.3).
PLATFORM_FULL_CAP = {"laptop_4070m": 12_500_000, "desktop_4080s": None}


def _full_spec(spec, platform_key):
    cap = PLATFORM_FULL_CAP[platform_key]
    if cap is None or spec.name == "Aerial" or spec.total_gaussians <= cap:
        return spec
    return dataclasses.replace(spec, total_gaussians=cap)


def run_platform(platform_key: str):
    plat = get_platform(platform_key)
    t = Table(
        title=f"Figure 11 — Normalized Training Throughput ({plat.gpu.name})",
        columns=["Scene", "Baseline", "w/o Deferred", "GS-Scale (all)",
                 "GPU-Only", "Sharded (K=4)", "OoC (K=4,R=1)", "OoC async",
                 "OoC async+WB"],
        notes=["Throughput normalized to baseline GS-Scale; 'OOM' marks "
               "configurations that exceed GPU *or host* memory, '-' rows "
               "where only the baseline OOMs (no normalizer).",
               "Full-scale configs use each platform's feasible maximum "
               "(the paper scales scenes per platform via densification "
               "settings); Aerial cannot be downsized.",
               "Sharded = Gaussian-sharded GS-Scale across 4 devices "
               "joined by the fragment-compositing merge (per-shard "
               "renders ship compact fragment records instead of a "
               "Grendel-style all-gather; per-device memory in Figure 12).",
               "OoC = out-of-core sharded: only 1 of 4 shards' host state "
               "resident, the rest paged through disk — trades throughput "
               "for a ~4x lower host-DRAM floor.",
               "OoC async = same placement with the async prefetch leg: "
               "next-view page-ins overlap compute under view-locality "
               "ordering, so only the residual past the slowest leg "
               "stalls (one extra shard of host staging buffer).",
               "OoC async+WB = async prefetch plus write-behind spilling: "
               "a background writer lands evicted pages, so only the "
               "page-in half of each swap can still stall the admit "
               "path."],
    )
    stats = {"gs_vs_gpu": [], "speedup_full": [], "speedup_wo": [],
             "sharded_vs_gs": [], "ooc_slowdown": [],
             "ooc_trains": [], "sharded_trains": [],
             "async_speedup": [], "stall_sync": [], "stall_async": [],
             "stall_sync_wb": [], "stall_async_wb": [], "wb_speedup": [],
             "composite_share": []}
    variants = []
    for spec in all_scenes():
        if spec.small_total_gaussians is not None:
            variants.append((f"{spec.name}-Small", spec, True))
        variants.append((spec.name, _full_spec(spec, platform_key), False))
    for label, spec, small in variants:
        trace = synthesize_trace(
            spec, num_views=150, seed=7, use_small=small
        )
        results = {}
        for system in SYSTEMS:
            results[system] = simulate_epoch(
                plat, trace, system, spec.num_pixels
            )
        # write-behind variants of the paging tiers (same placement and
        # host floor; only the disk schedule changes)
        results["outofcore_wb"] = simulate_epoch(
            plat, trace, "outofcore", spec.num_pixels, write_behind=True
        )
        results["outofcore_async_wb"] = simulate_epoch(
            plat, trace, "outofcore_async", spec.num_pixels,
            write_behind=True,
        )
        base = results["baseline_offload"]
        row = [label]
        for system in ("baseline_offload", "gsscale_no_deferred", "gsscale",
                       "gpu_only", "sharded", "outofcore",
                       "outofcore_async", "outofcore_async_wb"):
            r = results[system]
            if r.oom:
                row.append("OOM")
            elif base.oom:
                row.append("-")
            else:
                row.append(round(base.seconds / r.seconds, 2))
        t.add_row(*row)
        if not results["sharded"].oom:
            sharded = results["sharded"]
            stats["composite_share"].append(
                sharded.breakdown.get("composite", 0.0) / sharded.seconds
            )
        stats["ooc_trains"].append((label, not results["outofcore"].oom))
        stats["sharded_trains"].append((label, not results["sharded"].oom))
        if not results["sharded"].oom and not results["outofcore"].oom:
            stats["ooc_slowdown"].append(
                results["outofcore"].seconds / results["sharded"].seconds
            )
        if not results["outofcore"].oom and not results["outofcore_async"].oom:
            # the async variant's host floor is strictly higher (staging
            # buffer), so it can OOM where the sync tier trains
            sync, async_ = results["outofcore"], results["outofcore_async"]
            stats["async_speedup"].append(sync.seconds / async_.seconds)
            stats["stall_sync"].append(sync.breakdown.get("disk_stall", 0.0))
            stats["stall_async"].append(
                async_.breakdown.get("disk_stall", 0.0)
            )
            stats["stall_sync_wb"].append(
                results["outofcore_wb"].breakdown.get("disk_stall", 0.0)
            )
            async_wb = results["outofcore_async_wb"]
            stats["stall_async_wb"].append(
                async_wb.breakdown.get("disk_stall", 0.0)
            )
            stats["wb_speedup"].append(async_.seconds / async_wb.seconds)
        if not base.oom and not results["gsscale"].oom:
            if not results["gpu_only"].oom:
                stats["gs_vs_gpu"].append(
                    results["gpu_only"].seconds / results["gsscale"].seconds
                )
            stats["speedup_full"].append(
                base.seconds / results["gsscale"].seconds
            )
            if not results["gsscale_no_deferred"].oom:
                stats["speedup_wo"].append(
                    base.seconds / results["gsscale_no_deferred"].seconds
                )
            if not results["sharded"].oom:
                stats["sharded_vs_gs"].append(
                    results["gsscale"].seconds / results["sharded"].seconds
                )
    t.notes.append(
        f"geomean speedup over baseline: {geomean(stats['speedup_full']):.2f}x "
        f"(paper ~4.5x); GS-Scale vs GPU-only: {geomean(stats['gs_vs_gpu']):.2f}x"
    )
    if stats["composite_share"]:
        t.notes.append(
            "fragment-merge compositing bandwidth is "
            f"{100.0 * max(stats['composite_share']):.1f}% of the sharded "
            "iteration at worst (pixel-bound: the per-shard fragment "
            "records scale with the image, not the visible splat count)."
        )
    return t, stats


def build_all():
    return {pk: run_platform(pk) for pk in PLATFORM_KEYS}


def test_fig11_throughput(benchmark):
    all_results = benchmark.pedantic(build_all, rounds=1, iterations=1)
    tables = [all_results[pk][0] for pk in PLATFORM_KEYS]
    print("\n" + write_report("fig11_throughput", *tables))

    laptop_stats = all_results["laptop_4070m"][1]
    desktop_stats = all_results["desktop_4080s"][1]

    # Section 5.4: ~4.5x geomean speedup from the three optimizations
    assert 3.5 <= geomean(laptop_stats["speedup_full"]) <= 8.0
    assert 3.5 <= geomean(desktop_stats["speedup_full"]) <= 8.0
    # deferred Adam contributes beyond forwarding+selective alone
    assert geomean(laptop_stats["speedup_full"]) > geomean(
        laptop_stats["speedup_wo"]
    )
    # Section 5.3: laptop GS-Scale beats GPU-only; desktop slightly behind
    assert geomean(laptop_stats["gs_vs_gpu"]) > 1.0
    assert geomean(desktop_stats["gs_vs_gpu"]) < 1.0
    # the 4-device sharded system beats single-device GS-Scale wherever
    # both train (more hardware, same placement policy)
    assert geomean(laptop_stats["sharded_vs_gs"]) > 1.0
    assert geomean(desktop_stats["sharded_vs_gs"]) > 1.0

    # OOM pattern: GPU-only fails on every full-scale scene on the laptop
    laptop_table = all_results["laptop_4070m"][0]
    full_rows = [r for r in laptop_table.rows if not r[0].endswith("-Small")]
    assert all(r[4] == "OOM" for r in full_rows)
    # ... while GS-Scale trains all laptop scenes except Aerial, which
    # cannot be downsized and only fits the desktop (Section 5.3)
    non_aerial = [r for r in full_rows if r[0] != "Aerial"]
    assert all(r[3] != "OOM" for r in non_aerial)
    laptop_aerial = next(r for r in full_rows if r[0] == "Aerial")
    assert laptop_aerial[3] == "OOM"
    # Aerial fits the desktop under GS-Scale (Section 5.3)
    desktop_table = all_results["desktop_4080s"][0]
    aerial = next(r for r in desktop_table.rows if r[0] == "Aerial")
    assert aerial[3] != "OOM"
    assert aerial[4] == "OOM"  # but not GPU-only

    # out-of-core placement: paging shard state through disk costs
    # throughput wherever the in-memory sharded system also trains ...
    for stats in (laptop_stats, desktop_stats):
        assert all(s >= 1.0 for s in stats["ooc_slowdown"])
        assert 1.5 <= geomean(stats["ooc_slowdown"]) <= 8.0
        # the async prefetch leg: page-stall time strictly below the
        # synchronous schedule wherever paging stalls at all, never
        # above it, and a real throughput win overall
        for sync_stall, async_stall in zip(
            stats["stall_sync"], stats["stall_async"]
        ):
            assert async_stall <= sync_stall
            if sync_stall > 0:
                assert async_stall < sync_stall
        assert all(s >= 1.0 for s in stats["async_speedup"])
        assert geomean(stats["async_speedup"]) > 1.05
        # write-behind: evictions leave the admit path, so the stalled
        # disk time strictly drops against the matching schedule wherever
        # that schedule stalls at all — on the synchronous tier ...
        for sync_stall, sync_wb_stall in zip(
            stats["stall_sync"], stats["stall_sync_wb"]
        ):
            assert sync_wb_stall <= sync_stall
            if sync_stall > 0:
                assert sync_wb_stall < sync_stall
        # ... and stacked on the async prefetch leg
        for async_stall, async_wb_stall in zip(
            stats["stall_async"], stats["stall_async_wb"]
        ):
            assert async_wb_stall <= async_stall
            if async_stall > 0:
                assert async_wb_stall < async_stall
        assert all(s >= 1.0 for s in stats["wb_speedup"])
    # ... but buys capability: laptop Aerial host-OOMs every in-memory
    # system (42 GB of host state vs 32 GB DRAM) and trains only with the
    # out-of-core tier's resident-set host floor
    ooc = dict(laptop_stats["ooc_trains"])
    sharded_ok = dict(laptop_stats["sharded_trains"])
    assert ooc["Aerial"] and not sharded_ok["Aerial"]
    laptop_aerial_row = next(r for r in full_rows if r[0] == "Aerial")
    assert laptop_aerial_row[6] == "-"  # trains; baseline OOMs, so no norm
    # out-of-core never trains less than the in-memory sharded system
    assert all(ooc[k] for k, ok in laptop_stats["sharded_trains"] if ok)
