"""Reproduces Figure 7: training-time breakdown of baseline GS-Scale on
the RTX 4070 Mobile laptop (Rubble and Building).

Paper shape: CPU frustum culling and CPU optimizer updates dominate
(together ~80%), GPU fwd/bwd is a minor share, transfers small."""

from repro.bench import Table, write_report
from repro.datasets import get_scene, synthesize_trace
from repro.sim import get_platform, simulate_epoch

STAGES = ["cull", "h2d", "fwd_bwd", "d2h", "optimizer", "misc"]
LABELS = {
    "cull": "CPU Frustum Culling",
    "h2d": "Host to Device",
    "fwd_bwd": "GPU Fwd/Bwd",
    "d2h": "Device to Host",
    "optimizer": "CPU Optimizer Update",
    "misc": "Misc",
}


def build_table():
    plat = get_platform("laptop_4070m")
    t = Table(
        title="Figure 7 — Baseline GS-Scale Time Breakdown (RTX 4070M)",
        columns=["Scene"] + [LABELS[s] + " %" for s in STAGES],
        notes=["Small scene variants (the baseline's staging window must "
               "fit the 8 GB GPU, as in the paper's measurement setup)."],
    )
    shares = {}
    for key in ("rubble", "building"):
        spec = get_scene(key)
        trace = synthesize_trace(spec, num_views=200, seed=3, use_small=True)
        res = simulate_epoch(plat, trace, "baseline_offload", spec.num_pixels)
        assert not res.oom
        total = sum(res.breakdown.values())
        row_shares = {s: 100 * res.breakdown.get(s, 0.0) / total for s in STAGES}
        t.add_row(spec.name, *[row_shares[s] for s in STAGES])
        shares[key] = row_shares
    return t, shares


def test_fig07_breakdown(benchmark):
    table, shares = benchmark(build_table)
    print("\n" + write_report("fig07_breakdown", table))
    for key in ("rubble", "building"):
        s = shares[key]
        # culling + optimizer dominate the baseline (Section 4.1)
        assert s["cull"] + s["optimizer"] > 60.0
        assert s["optimizer"] > s["fwd_bwd"]
        assert s["cull"] > s["h2d"]
        # transfers are visible but minor
        assert 0.0 < s["h2d"] + s["d2h"] < 25.0
