"""Ablation benches for the design choices called out in DESIGN.md.

1. Selective offloading: GPU vs CPU culling cost at scale.
2. Deferred-update counter width: saturation-driven extra updates.
3. Balance-aware split vs naive midpoint split.
4. Transfer chunk size: pipeline efficiency.
5. Epsilon approximation: weight drift vs exact dense replay.
"""

import numpy as np

from repro.bench import Table, write_report
from repro.datasets import get_scene
from repro.optim import AdamConfig, DeferredAdam, DenseAdam
from repro.sim import CostModel, get_platform
from repro.sim.costs import CHUNK_LATENCY_S
from repro.sim.memory import TRANSFER_CHUNK_BYTES


def test_ablation_selective_offloading_culling(benchmark):
    """Moving culling to the GPU (selective offloading's purpose) must win
    by a growing margin with scene size."""

    def build():
        cost = CostModel(get_platform("laptop_4070m"))
        t = Table(
            title="Ablation — Frustum culling location (laptop)",
            columns=["Gaussians (M)", "CPU (ms)", "GPU (ms)", "Speedup"],
        )
        speedups = []
        for n in (1e6, 4e6, 16e6):
            c = cost.cpu_cull(int(n)) * 1e3
            g = cost.gpu_cull(int(n)) * 1e3
            t.add_row(n / 1e6, c, g, c / g)
            speedups.append(c / g)
        return t, speedups

    table, speedups = benchmark(build)
    print("\n" + write_report("ablation_culling", table))
    assert all(s > 20 for s in speedups)


def test_ablation_counter_width(benchmark):
    """Paper Section 4.3.2: a 4-bit counter (MAX=15) bounds unnecessary
    updates at ~1/15 of idle rows per step. Narrower counters force more."""

    def run(max_defer):
        rng = np.random.default_rng(0)
        n, d, steps = 400, 4, 60
        opt = DeferredAdam(
            rng.normal(size=(n, d)), AdamConfig(lr=1e-3), max_defer=max_defer
        )
        active = 30  # 7.5% active per step
        extra = 0
        for _ in range(steps):
            ids = np.sort(rng.choice(n, size=active, replace=False))
            stats = opt.step(ids, rng.normal(size=(active, d)))
            extra += stats.rows_updated - opt.update_ids_for(ids).size + (
                stats.rows_updated - active
            )
        return extra / (steps * n)

    def build():
        t = Table(
            title="Ablation — Deferred counter width vs wasted updates",
            columns=["max_defer", "extra updates / Gaussian / step"],
        )
        rates = {}
        for max_defer in (3, 7, 15, 31):
            r = run(max_defer)
            t.add_row(max_defer, r)
            rates[max_defer] = r
        return t, rates

    table, rates = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + write_report("ablation_counter_width", table))
    # wider counters waste fewer updates
    assert rates[3] > rates[7] > rates[15] >= rates[31]
    # 4-bit bound: at most ~1/15 of idle rows saturate per step
    assert rates[15] <= 1.05 / 15


def test_ablation_balanced_vs_naive_split(benchmark):
    """Balance-aware search vs naive midpoint on a density-skewed scene."""
    from repro.cameras import Camera
    from repro.core import find_balanced_split
    from repro.core.splitting import count_visible
    from repro.gaussians import GaussianModel

    def build():
        rng = np.random.default_rng(5)
        # 85% of points crowd the left third of the view
        left = rng.uniform([-9, -3, 0], [-3, 3, 1], size=(500, 3))
        right = rng.uniform([3, -3, 0], [9, 3, 1], size=(90, 3))
        pts = np.concatenate([left, right])
        model = GaussianModel.from_point_cloud(
            pts, rng.uniform(0, 1, (590, 3))
        )
        cam = Camera.look_at([0, 0, 16.0], [0, 0.1, 0], width=96, height=64,
                             fov_x_deg=80.0)
        geo = (model.means, model.log_scales, model.quats)

        split = find_balanced_split(*geo, cam)
        naive_left = count_visible(*geo, cam.crop(0, cam.width // 2))
        naive_right = count_visible(*geo, cam.crop(cam.width // 2, cam.width))
        naive_balance = naive_left / max(naive_left + naive_right, 1)

        t = Table(
            title="Ablation — Balance-aware vs naive midpoint split",
            columns=["Strategy", "Left share", "Imbalance |0.5 - share|"],
            notes=["Paper reports 0.551:0.449 average balance with the "
                   "5-step search."],
        )
        t.add_row("naive midpoint", naive_balance, abs(0.5 - naive_balance))
        t.add_row("balance-aware", split.balance, abs(0.5 - split.balance))
        return t, split.balance, naive_balance

    table, balanced, naive = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + write_report("ablation_split", table))
    assert abs(0.5 - balanced) < abs(0.5 - naive)
    assert abs(0.5 - balanced) < 0.2


def test_ablation_chunk_size(benchmark):
    """32 MB chunks balance per-chunk latency against pipeline granularity."""

    def build():
        cost = CostModel(get_platform("laptop_4070m"))
        payload = 200 * 1024 * 1024  # a large forwarded-parameter batch
        t = Table(
            title="Ablation — Transfer chunk size (200 MB payload, laptop)",
            columns=["Chunk (MB)", "Chunks", "Latency overhead (ms)",
                     "Pipeline fill (ms)"],
        )
        rows = []
        for chunk_mb in (4, 32, 200):
            chunk = chunk_mb * 1024 * 1024
            chunks = -(-payload // chunk)
            latency = chunks * CHUNK_LATENCY_S * 1e3
            # pipeline fill: the first chunk cannot overlap
            fill = chunk / cost.platform.pcie_bw * 1e3
            t.add_row(chunk_mb, chunks, latency, fill)
            rows.append((chunk_mb, latency, fill))
        return t, rows

    table, rows = benchmark(build)
    print("\n" + write_report("ablation_chunk", table))
    # tiny chunks pay latency; huge chunks pay pipeline fill — 32 MB is a
    # sweet spot on both axes
    lat = {r[0]: r[1] for r in rows}
    fill = {r[0]: r[2] for r in rows}
    assert lat[4] > lat[32]
    assert fill[200] > fill[32]
    assert TRANSFER_CHUNK_BYTES == 32 * 1024 * 1024


def test_ablation_parameter_forwarding(benchmark):
    """Pipelining ablation: the same GS-Scale stage costs scheduled with
    and without parameter forwarding (serial vs overlapped legs)."""
    from repro.datasets import get_scene
    from repro.gaussians import layout

    def build():
        cost = CostModel(get_platform("laptop_4070m"))
        spec = get_scene("rubble")
        n = spec.small_total_gaussians
        n_act = int(n * spec.avg_active_ratio)
        px = spec.num_pixels

        gpu_leg = (
            cost.forward_backward(n_act, px)
            + cost.gpu_dense_update(n, layout.GEOMETRIC_DIM)
            + cost.gpu_cull(n)
        )
        peek = cost.cpu_forward_peek(n_act)
        n_upd = n_act + int((n - n_act) / 15)
        cpu_leg = peek + cost.cpu_deferred_update(n_upd, n)
        pcie_leg = cost.h2d_params(n_act, 49) + cost.d2h_grads(n_act, 49)

        pipelined = max(gpu_leg, cpu_leg, pcie_leg)
        serial = gpu_leg + cpu_leg + pcie_leg

        t = Table(
            title="Ablation — Parameter forwarding (pipelined vs serial legs)",
            columns=["Schedule", "ms/iteration"],
            notes=["Rubble-small on the laptop; same stage costs, different "
                   "dependency structure (Figure 9c/9d vs 9b)."],
        )
        t.add_row("serial (no forwarding)", serial * 1e3)
        t.add_row("pipelined (forwarding)", pipelined * 1e3)
        return t, serial, pipelined

    table, serial, pipelined = benchmark(build)
    print("\n" + write_report("ablation_forwarding", table))
    # forwarding must hide a substantial share of the CPU + PCIe legs
    assert pipelined < 0.8 * serial


def test_ablation_epsilon_drift(benchmark):
    """The epsilon-factoring approximation: drift vs a dense replay, as a
    function of eps (paper uses 1e-15 where it is invisible)."""

    def run(eps):
        rng = np.random.default_rng(7)
        n, d, steps = 16, 3, 40
        cfg = AdamConfig(lr=1e-2, eps=eps)
        p0 = rng.normal(size=(n, d))
        dense = DenseAdam(p0.copy(), cfg)
        deferred = DeferredAdam(p0.copy(), cfg)
        for _ in range(steps):
            ids = np.sort(rng.choice(n, size=4, replace=False))
            g = rng.normal(size=(4, d))
            full = np.zeros((n, d))
            full[ids] = g
            dense.step(full)
            deferred.step(ids, g)
        return float(
            np.abs(deferred.materialized_params() - dense.params).max()
        )

    def build():
        t = Table(
            title="Ablation — Epsilon approximation drift (max |dw|)",
            columns=["eps", "max drift"],
        )
        drifts = {}
        for eps in (1e-15, 1e-8, 1e-4):
            drift = run(eps)
            t.add_row(f"{eps:.0e}", drift)
            drifts[eps] = drift
        return t, drifts

    table, drifts = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + write_report("ablation_epsilon", table))
    assert drifts[1e-15] < 1e-10  # invisible at the paper's setting
    assert drifts[1e-15] <= drifts[1e-8] <= drifts[1e-4]
