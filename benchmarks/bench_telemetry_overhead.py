"""Telemetry overhead gate + measured-trace artifact.

Two jobs:

* ``test_disabled_overhead_gate`` — the hard CI gate: the disabled-mode
  tracer must cost <2% of the 50k-splat micro-bench (vectorized forward
  + backward, the hot path every span call site sits on). The check is
  analytic — per-call disabled ``span()`` cost times a generous
  spans-per-step budget, against the measured kernel time — so it is
  robust on noisy shared runners (the real margin is ~3 orders of
  magnitude). Writes ``benchmarks/out/BENCH_telemetry.json`` with the
  informational ``telemetry_overhead_pct`` key
  ``tools/diff_bench_baseline.py`` reports on.

* ``test_telemetry_trace_artifact`` — runs a short telemetry-enabled
  out-of-core training and writes ``benchmarks/out/trace.json``: the
  measured Chrome trace merged with the simulator's modeled timeline of
  the same config, the side-by-side artifact the perf-smoke job uploads.
"""

import json
import os
import time

import numpy as np

from repro.telemetry import export, metrics, trace

RASTER_WH = 256
RASTER_N_LARGE = 50_000

#: Spans a single training step can plausibly issue (measured out-of-core
#: steps issue ~30 including page traffic; 4x headroom).
SPANS_PER_STEP = 128

#: The gate: disabled-mode tracer cost as a fraction of step time.
MAX_OVERHEAD_PCT = 2.0

SPAN_CALLS = 200_000


def _out_dir() -> str:
    out = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out, exist_ok=True)
    return out


def _make_scene(n: int, wh: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    means2d = rng.uniform([0, 0], [wh, wh], size=(n, 2))
    sig = rng.uniform(0.5, 1.2, size=n)
    conics = np.stack([1 / sig**2, np.zeros(n), 1 / sig**2], axis=1)
    colors = rng.uniform(0, 1, size=(n, 3))
    opacities = rng.uniform(0.2, 1.0, size=n)
    depths = rng.uniform(1, 20, size=n)
    radii = 3 * sig
    return (means2d, conics, colors, opacities, depths, radii, wh, wh)


def _best_of(fn, rounds=3):
    fn()  # warmup
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _span_cost_s(calls: int = SPAN_CALLS) -> float:
    """Per-call cost of ``span()`` in the current tracer state."""
    span = trace.span
    for _ in range(1000):  # warmup
        with span("bench/span"):
            pass
    t0 = time.perf_counter()
    for _ in range(calls):
        with span("bench/span"):
            pass
    return (time.perf_counter() - t0) / calls


def test_disabled_overhead_gate(benchmark):
    """Disabled-mode tracer must stay under 2% of the 50k-splat bench."""
    from repro.render import RasterConfig
    from repro.render.engine import (
        rasterize_backward_vectorized,
        rasterize_vectorized,
    )

    quick = os.environ.get("GSSCALE_BENCH_QUICK", "") not in ("", "0")
    n = 10_000 if quick else RASTER_N_LARGE
    scene = _make_scene(n, RASTER_WH)
    grad = np.ones((RASTER_WH, RASTER_WH, 3))
    cfg = RasterConfig()

    def measure():
        res = rasterize_vectorized(*scene, config=cfg)
        t_work = _best_of(
            lambda: rasterize_vectorized(*scene, config=cfg)
        ) + _best_of(
            lambda: rasterize_backward_vectorized(
                scene[0], scene[1], scene[2], scene[3], res, grad,
                config=cfg,
            )
        )

        prev = trace.uninstall()  # true disabled mode
        try:
            disabled_s = _span_cost_s()
        finally:
            trace.set_tracer(prev)

        tracer = trace.install(capacity=SPAN_CALLS)
        try:
            enabled_s = _span_cost_s()
        finally:
            tracer.clear()
            trace.uninstall()
        return t_work, disabled_s, enabled_s

    t_work, disabled_s, enabled_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    overhead_pct = 100.0 * SPANS_PER_STEP * disabled_s / t_work

    payload = {
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "splats": n,
        "image": f"{RASTER_WH}x{RASTER_WH}",
        "entries": [{
            "bench": "telemetry_overhead",
            "step_s": t_work,
            "disabled_span_ns": disabled_s * 1e9,
            "enabled_span_ns": enabled_s * 1e9,
            "spans_per_step": SPANS_PER_STEP,
            "telemetry_overhead_pct": overhead_pct,
        }],
    }
    with open(os.path.join(_out_dir(), "BENCH_telemetry.json"), "w") as fh:
        json.dump(payload, fh, indent=2)

    # the gate: fail the build when disabled-mode tracing stops being free
    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"disabled-mode telemetry overhead {overhead_pct:.3f}% exceeds "
        f"{MAX_OVERHEAD_PCT}% ({disabled_s * 1e9:.0f}ns/span x "
        f"{SPANS_PER_STEP} spans vs {t_work * 1e3:.1f}ms step)"
    )


def test_telemetry_trace_artifact(benchmark):
    """Measured + modeled trace of one telemetry-enabled bench config."""
    from repro import (
        GSScaleConfig,
        GaussianModel,
        SyntheticSceneConfig,
        Trainer,
        build_scene,
    )
    from repro.sim import CostModel, PLATFORMS, get_platform, simulate_iteration
    from repro.sim.trace import to_chrome_trace as modeled_chrome_trace

    prev = trace.uninstall()
    iterations = 6
    try:
        scene = build_scene(SyntheticSceneConfig(
            num_points=400, width=48, height=36, num_train_cameras=6, seed=3,
        ))
        cfg = GSScaleConfig(
            system="outofcore", num_shards=4, resident_shards=2,
            async_prefetch=True, telemetry=True, scene_extent=scene.extent,
        )

        def run():
            trainer = Trainer(GaussianModel(scene.initial.params.copy()), cfg)
            trainer.train(
                scene.train_cameras, scene.train_images, iterations=iterations
            )
            trainer.system.finalize()
            return trace.get_tracer()

        tracer = benchmark.pedantic(run, rounds=1, iterations=1)
        names = {ev.name for ev in tracer.events()}
        assert {"train/forward", "train/backward", "train/commit"} <= names

        sim = simulate_iteration(
            "outofcore_async", CostModel(get_platform(sorted(PLATFORMS)[0])),
            n_total=400, active_ratio=0.5, num_pixels=48 * 36,
            num_shards=4, resident_shards=2,
        )
        modeled = modeled_chrome_trace(sim.segments)
        doc = export.write_chrome_trace(
            tracer, os.path.join(_out_dir(), "trace.json"), modeled=modeled
        )
        pids = {e.get("pid") for e in doc["traceEvents"]}
        assert pids >= {1, export.MEASURED_PID}
    finally:
        trace.uninstall()
        trace.set_tracer(prev)
        metrics.reset_registry()
