"""Reproduces Figure 14: training throughput on the H100 server.

Paper shape: similar trend to laptop/desktop; large speedup on Aerial
(deferred update wins most at the lowest active ratio); overall normalized
throughput lower than the laptop's despite a similar R_bw, because NUMA
hurts the deferred update's random accesses (Section 5.7)."""

from repro.bench import Table, write_report
from repro.datasets import all_scenes, synthesize_trace
from repro.sim import geomean, get_platform, simulate_epoch


def build_table():
    plat = get_platform("server_h100")
    t = Table(
        title="Figure 14 — Training Throughput on Server (H100 PCIe)",
        columns=["Scene", "GPU-Only", "GS-Scale (normalized)"],
        notes=["Normalized to GPU-only; full-scale scenes (80 GB fits all)."],
    )
    ratios = {}
    for spec in all_scenes():
        trace = synthesize_trace(spec, num_views=150, seed=7)
        g = simulate_epoch(plat, trace, "gpu_only", spec.num_pixels)
        s = simulate_epoch(plat, trace, "gsscale", spec.num_pixels)
        assert not g.oom and not s.oom  # 80 GB server fits everything
        ratio = g.seconds / s.seconds
        t.add_row(spec.name, 1.0, ratio)
        ratios[spec.name.lower()] = ratio
    t.notes.append(f"geomean {geomean(ratios.values()):.2f}x")
    return t, ratios


def test_fig14_server(benchmark):
    table, ratios = benchmark(build_table)
    print("\n" + write_report("fig14_server", table))

    # Aerial gets the largest speedup (deferred update at 2.3% active)
    assert ratios["aerial"] == max(ratios.values())
    assert ratios["aerial"] > 1.05
    # overall close to GPU-only
    assert 0.7 <= geomean(ratios.values()) <= 1.5

    # Section 5.7: server normalized throughput below the laptop's
    lap = get_platform("laptop_4070m")
    lap_ratios = []
    for spec in all_scenes():
        if spec.small_total_gaussians is None:
            continue
        trace = synthesize_trace(spec, num_views=150, seed=7, use_small=True)
        g = simulate_epoch(lap, trace, "gpu_only", spec.num_pixels)
        s = simulate_epoch(lap, trace, "gsscale", spec.num_pixels)
        if not g.oom:
            lap_ratios.append(g.seconds / s.seconds)
    srv_small = []
    for spec in all_scenes():
        if spec.small_total_gaussians is None:
            continue
        trace = synthesize_trace(spec, num_views=150, seed=7, use_small=True)
        g = simulate_epoch(get_platform("server_h100"), trace, "gpu_only",
                           spec.num_pixels)
        s = simulate_epoch(get_platform("server_h100"), trace, "gsscale",
                           spec.num_pixels)
        srv_small.append(g.seconds / s.seconds)
    assert geomean(srv_small) < geomean(lap_ratios)
