"""Per-stage cost model of one 3DGS training iteration.

Every stage time is derived from first-order work estimates (bytes moved /
bandwidth, FLOPs / compute rate) with a small set of named calibration
constants. The constants are fit to the paper's coarse anchors — baseline
host offloading ~4x slower than GPU-only on the laptop (Section 4.1),
GS-Scale ~1.22x / ~0.84x of GPU-only on laptop / desktop (Section 5.3) —
and then *every* figure is regenerated from the same constants; nothing is
per-figure tuned.

Key modeling choices, each traceable to the paper:

* Rasterization forward/backward is **memory-bandwidth-bound** per
  splat-pixel intersection (Section 5.4: "lower GPU memory bandwidth slows
  down the memory bound backward pass ... providing enough time for CPU
  updates to be pipelined").
* Optimizer updates are **bandwidth-bound** at 7 words per element
  (Section 4.3.2). The fused GPU/deferred-CPU kernels move exactly that;
  the framework (PyTorch) CPU path multiplies traffic by an unfused-pass
  factor — the paper implemented deferred updates as a custom C++/OpenMP
  extension precisely because the stock CPU path is this slow.
* The deferred update's scattered row access runs at the CPU's random-access
  bandwidth, further derated on multi-socket hosts (Section 5.7's NUMA
  observation).
"""

from __future__ import annotations

from ..gaussians import layout
from .devices import Platform
from .memory import TRANSFER_CHUNK_BYTES

# ---------------------------------------------------------------------------
# calibration constants
# ---------------------------------------------------------------------------

#: Average pixels covered per projected splat (3-sigma footprint after tile
#: binning) — sets blending work per active Gaussian.
MEAN_SPLAT_COVERAGE = 150.0

#: Bytes of GPU traffic per splat-pixel intersection, forward pass
#: (fetch splat record, read-modify-write pixel state).
FWD_BYTES_PER_INTERSECTION = 64.0

#: Bytes per intersection in the backward pass (re-fetch, atomic gradient
#: accumulation; DISTWAR-class works exist because this dominates).
BWD_BYTES_PER_INTERSECTION = 160.0

#: Per-splat projection/SH work, forward + backward (bytes-equivalent).
SPLAT_SETUP_BYTES = 600.0

#: GPU frustum culling reads the geometric block once and writes masks.
CULL_BYTES_PER_GAUSSIAN_GPU = 48.0

#: CPU frustum culling through framework tensor ops materializes dozens of
#: (N, k) temporaries (camera transform, Jacobian, 2D covariance, radii,
#: masks); the traffic is served at the CPU's *framework* bandwidth.
CULL_BYTES_PER_GAUSSIAN_CPU = 700.0

#: Framework (unfused) CPU optimizer passes re-read/re-write tensors per op;
#: traffic multiplier vs the fused 7-words-per-element ideal, served at the
#: framework bandwidth.
CPU_UNFUSED_UPDATE_FACTOR = 1.2

#: Parameter forwarding's peek reads param/m/v and writes a send buffer
#: (5 words per element vs 7 for a full update).
PEEK_WORDS_PER_ELEMENT = 5

#: Fixed per-iteration orchestration overhead (kernel launches, Python
#: driver, synchronization), seconds.
ITERATION_OVERHEAD_S = 1.5e-3

#: Per-transfer-chunk launch latency, seconds.
CHUNK_LATENCY_S = 30e-6

#: Per-paging-operation latency (file-system + queueing), seconds.
DISK_IO_LATENCY_S = 100e-6

_WORD = 4  # float32 bytes


class CostModel:
    """Stage-time calculator for one platform."""

    def __init__(self, platform: Platform):
        self.platform = platform

    # -- culling ---------------------------------------------------------
    def gpu_cull(self, n_total: int) -> float:
        """Frustum culling on the GPU (selective offloading keeps the
        geometric block resident, Section 4.2.1)."""
        bytes_ = n_total * CULL_BYTES_PER_GAUSSIAN_GPU
        flops = n_total * 250.0
        return max(bytes_ / self.platform.gpu.mem_bw, flops / self.platform.gpu.flops)

    def cpu_cull(self, n_total: int) -> float:
        """Frustum culling on the host CPU (baseline; Challenge 1)."""
        return (
            n_total * CULL_BYTES_PER_GAUSSIAN_CPU / self.platform.cpu.framework_bw
        )

    # -- rendering -------------------------------------------------------
    def forward_backward(self, n_active: int, num_pixels: int) -> float:
        """GPU forward + backward over the visible subset."""
        intersections = min(
            n_active * MEAN_SPLAT_COVERAGE, num_pixels * 512.0
        )
        bytes_ = intersections * (
            FWD_BYTES_PER_INTERSECTION + BWD_BYTES_PER_INTERSECTION
        )
        bytes_ += n_active * SPLAT_SETUP_BYTES
        bytes_ += num_pixels * 48.0  # image-space read/write
        return bytes_ / self.platform.gpu.mem_bw

    def serve_forward(self, n_active: int, num_pixels: int) -> float:
        """Forward-only render of one served frame (no backward pass, no
        gradient buffers): the intersection traffic drops to the forward
        bytes and the per-splat setup roughly halves (no backward
        context is saved)."""
        intersections = min(n_active * MEAN_SPLAT_COVERAGE, num_pixels * 512.0)
        bytes_ = intersections * FWD_BYTES_PER_INTERSECTION
        bytes_ += n_active * (SPLAT_SETUP_BYTES / 2.0)
        bytes_ += num_pixels * 24.0  # image-space write only
        return bytes_ / self.platform.gpu.mem_bw

    # -- optimizer updates -------------------------------------------------
    def gpu_dense_update(self, n_rows: int, dim: int = layout.PARAM_DIM) -> float:
        """Fused Adam on the GPU (GPU-only system; also the geometric
        M.S.Q. update under selective offloading with dim=10)."""
        bytes_ = 7 * n_rows * dim * _WORD
        return bytes_ / self.platform.gpu.mem_bw

    def cpu_dense_update(self, n_rows: int, dim: int = layout.PARAM_DIM) -> float:
        """Framework (unfused) dense Adam on the CPU — the Challenge-2
        bottleneck of the baseline and the w/o-deferred variant."""
        bytes_ = 7 * n_rows * dim * _WORD * CPU_UNFUSED_UPDATE_FACTOR
        return bytes_ / self.platform.cpu.framework_bw

    def cpu_deferred_update(
        self, n_updated: int, n_total: int, dim: int = layout.NON_GEOMETRIC_DIM
    ) -> float:
        """Fused deferred update (custom kernel): 7 words per updated
        element at random-access bandwidth + 2 counter bytes per Gaussian."""
        float_bytes = 7 * n_updated * dim * _WORD
        counter_bytes = 2 * n_total
        return (
            float_bytes / self.platform.cpu.random_bw
            + counter_bytes / self.platform.cpu.mem_bw
        )

    def cpu_forward_peek(self, n_rows: int, dim: int = layout.NON_GEOMETRIC_DIM) -> float:
        """Parameter forwarding's pre-update of next-iteration rows
        (Section 4.2.2): gather rows, compute, write the send buffer."""
        bytes_ = PEEK_WORDS_PER_ELEMENT * n_rows * dim * _WORD
        return bytes_ / self.platform.cpu.random_bw

    # -- transfers ---------------------------------------------------------
    def transfer(self, num_bytes: float) -> float:
        """PCIe transfer time including per-chunk launch latency."""
        if num_bytes <= 0:
            return 0.0
        chunks = max(int(-(-num_bytes // TRANSFER_CHUNK_BYTES)), 1)
        return num_bytes / self.platform.pcie_bw + chunks * CHUNK_LATENCY_S

    def h2d_params(self, n_rows: int, dim: int) -> float:
        """Host-to-device parameter staging."""
        return self.transfer(n_rows * dim * _WORD)

    def d2h_grads(self, n_rows: int, dim: int) -> float:
        """Device-to-host gradient return."""
        return self.transfer(n_rows * dim * _WORD)

    def disk_page(self, num_bytes: float) -> float:
        """Host<->disk paging time (out-of-core spill/prefetch)."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.platform.disk_bw + DISK_IO_LATENCY_S
