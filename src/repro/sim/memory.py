"""GPU memory model: byte-level accounting of training-state placement.

Reproduces the paper's memory analysis (Section 3.1-3.2, Figures 3b and
12): training state is parameters + gradients + two Adam moments (4x the
parameter bytes), activations scale with rendered pixels, and GS-Scale
moves all non-geometric state to the host, keeping only the geometric 17%
plus an on-demand staged window bounded by ``mem_limit`` image splitting.

Also provides :class:`MemoryTracker`, the runtime allocator ledger used by
the functional offload engine to assert it stays within a device budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gaussians import layout
from .devices import GPUSpec

#: Bytes of forward/backward activation state per rendered pixel
#: (intermediate buffers, tile lists, per-pixel blending state). Calibrated
#: so that Gaussian state is ~90% of GPU memory at 1-1.6K resolutions
#: (Figure 3b) for scenes in the 10-20M-Gaussian class.
ACTIVATION_BYTES_PER_PIXEL = 1100

#: GS-Scale partitions host->device transfers into 32 MB chunks
#: (Section 4.2.2); two are in flight for double buffering.
TRANSFER_CHUNK_BYTES = 32 * 1024 * 1024
TRANSFER_BUFFER_BYTES = 2 * TRANSFER_CHUNK_BYTES

#: PyTorch keeps reserved pools larger than allocated memory (the paper's
#: footnote 1: OOM can hit before allocated reaches capacity). The capacity
#: check divides the device limit by this factor.
ALLOCATOR_RESERVE_FACTOR = 1.5

#: Fixed runtime overhead (CUDA context, framework) counted against capacity.
RUNTIME_OVERHEAD_BYTES = 600 * 1024 * 1024


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bytes on the GPU by category (mirrors Figure 3b's categories)."""

    parameters: int
    gradients: int
    optimizer_states: int
    activations: int
    transfer_buffers: int = 0

    @property
    def total(self) -> int:
        """All accounted GPU bytes."""
        return (
            self.parameters
            + self.gradients
            + self.optimizer_states
            + self.activations
            + self.transfer_buffers
        )

    @property
    def gaussian_state(self) -> int:
        """Parameter-related bytes (the paper's ~90% at 1-1.6K)."""
        return self.parameters + self.gradients + self.optimizer_states

    def shares(self) -> dict[str, float]:
        """Fractional share per category."""
        t = max(self.total, 1)
        return {
            "parameters": self.parameters / t,
            "gradients": self.gradients / t,
            "optimizer_states": self.optimizer_states / t,
            "activations": self.activations / t,
            "transfer_buffers": self.transfer_buffers / t,
        }


def activation_bytes(num_pixels: int) -> int:
    """Forward/backward activation footprint for one rendered view."""
    return num_pixels * ACTIVATION_BYTES_PER_PIXEL


def effective_staged_ratio(peak_active_ratio: float, mem_limit: float) -> float:
    """Per-pass staged fraction after balance-aware image splitting.

    A view whose active ratio exceeds ``mem_limit`` is split into
    ``ceil(ratio / mem_limit)`` balanced sub-regions (Section 4.4; two
    sufficed in the paper's benchmarks), each staging ``ratio / splits`` of
    the scene.
    """
    if peak_active_ratio <= mem_limit:
        return peak_active_ratio
    import math

    splits = math.ceil(peak_active_ratio / mem_limit)
    return peak_active_ratio / splits


def gpu_only_breakdown(num_gaussians: int, num_pixels: int) -> MemoryBreakdown:
    """GPU-only training: everything resident (Section 3.1)."""
    p = layout.param_bytes(num_gaussians)
    return MemoryBreakdown(
        parameters=p,
        gradients=p,
        optimizer_states=2 * p,
        activations=activation_bytes(num_pixels),
    )


def baseline_offload_breakdown(
    num_gaussians: int, num_pixels: int, peak_active_ratio: float
) -> MemoryBreakdown:
    """Baseline GS-Scale (Section 4.1): no geometric residency, the peak
    view's full 59-parameter rows plus their gradients staged on demand."""
    staged = int(num_gaussians * peak_active_ratio)
    p = layout.param_bytes(staged)
    return MemoryBreakdown(
        parameters=p,
        gradients=p,
        optimizer_states=0,
        activations=activation_bytes(num_pixels),
    )


def gsscale_breakdown(
    num_gaussians: int,
    num_pixels: int,
    peak_active_ratio: float,
    mem_limit: float = 0.3,
) -> MemoryBreakdown:
    """GS-Scale with selective offloading + image splitting (Section 4.2/4.4).

    Resident: geometric parameters, gradients, and moments (10/59 of state);
    staged: non-geometric parameters + gradients for the worst view, capped
    by balance-aware splitting at ``mem_limit`` of the scene.
    """
    geo_param = layout.param_bytes(num_gaussians, layout.GEOMETRIC_DIM)
    effective_peak = effective_staged_ratio(peak_active_ratio, mem_limit)
    staged_rows = int(num_gaussians * effective_peak)
    staged_param = layout.param_bytes(staged_rows, layout.NON_GEOMETRIC_DIM)
    return MemoryBreakdown(
        parameters=geo_param + staged_param,
        gradients=geo_param + staged_param,
        optimizer_states=2 * geo_param,
        activations=activation_bytes(num_pixels),
        transfer_buffers=TRANSFER_BUFFER_BYTES,
    )


def sharded_breakdown(
    num_gaussians: int,
    num_pixels: int,
    peak_active_ratio: float,
    mem_limit: float = 0.3,
    num_shards: int = 4,
) -> MemoryBreakdown:
    """Per-device breakdown of the Gaussian-sharded GS-Scale system.

    Each of the ``num_shards`` devices holds a spatially balanced 1/K of
    the scene under the GS-Scale placement (geometric block resident,
    non-geometric staged) and rasterizes ~1/K of the pixels after the
    Grendel-style gather, so the per-device footprint is a GS-Scale
    breakdown of the shard.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    per_shard_n = -(-num_gaussians // num_shards)  # ceil: worst shard
    per_shard_px = -(-num_pixels // num_shards)
    return gsscale_breakdown(
        per_shard_n, per_shard_px, peak_active_ratio, mem_limit
    )


def fits(breakdown: MemoryBreakdown, gpu: GPUSpec) -> bool:
    """Whether a workload trains without OOM on ``gpu`` (reserve-adjusted)."""
    budget = gpu.memory_bytes / ALLOCATOR_RESERVE_FACTOR - RUNTIME_OVERHEAD_BYTES
    return breakdown.total <= budget


def max_trainable_gaussians(
    gpu: GPUSpec,
    num_pixels: int,
    system: str = "gpu_only",
    peak_active_ratio: float = 0.3,
    mem_limit: float = 0.3,
) -> int:
    """Largest Gaussian count that fits ``gpu`` for a given system.

    Inverts the per-system breakdown analytically. This is the quantity
    behind Figure 1 and Section 5.6's "4M -> 18M on an RTX 4070 Mobile".
    """
    budget = gpu.memory_bytes / ALLOCATOR_RESERVE_FACTOR - RUNTIME_OVERHEAD_BYTES
    budget -= activation_bytes(num_pixels)
    if budget <= 0:
        return 0
    per_g = bytes_per_gaussian(
        system, peak_active_ratio=peak_active_ratio, mem_limit=mem_limit
    )
    if system == "gsscale":
        budget -= TRANSFER_BUFFER_BYTES
    return max(int(budget / per_g), 0)


def bytes_per_gaussian(
    system: str, peak_active_ratio: float = 0.3, mem_limit: float = 0.3
) -> float:
    """Resident GPU bytes per scene Gaussian under each system."""
    full_state = layout.train_state_bytes(1)  # 944 B
    if system == "gpu_only":
        return float(full_state)
    if system == "baseline_offload":
        return 2 * layout.param_bytes(1) * peak_active_ratio
    if system == "gsscale":
        geo = layout.train_state_bytes(1, layout.GEOMETRIC_DIM)
        staged = (
            2
            * layout.param_bytes(1, layout.NON_GEOMETRIC_DIM)
            * effective_staged_ratio(peak_active_ratio, mem_limit)
        )
        return geo + staged
    raise ValueError(f"unknown system {system!r}")


#: Defaults of the out-of-core placement tier (mirrors
#: ``GSScaleConfig.num_shards`` / ``GSScaleConfig.resident_shards``).
DEFAULT_OUTOFCORE_SHARDS = 4
DEFAULT_RESIDENT_SHARDS = 1


def outofcore_host_state_bytes(
    num_gaussians: int,
    num_shards: int = DEFAULT_OUTOFCORE_SHARDS,
    resident_shards: int = DEFAULT_RESIDENT_SHARDS,
    staging_shards: int = 0,
    pending_writes: int = 0,
) -> int:
    """Host DRAM floor of the out-of-core system.

    Only the resident shards' non-geometric training state occupies host
    memory; the defer counters of *every* shard stay resident (1 byte per
    Gaussian — they are what lets a spilled shard tick without paging).
    ``staging_shards`` adds the async prefetch leg's staging queue: while
    the current view renders, up to that many preloaded shard snapshots
    (parameters + both Adam moments, no gradients) sit in host memory
    waiting to be adopted — ``prefetch_depth x resident_shards`` bounds
    it for a depth-D queue. ``pending_writes`` adds the write-behind
    term: detached working sets (same 3 copies) queued for the
    background writer but not yet landed on disk.
    """
    if not 1 <= resident_shards:
        raise ValueError("resident_shards must be >= 1")
    if staging_shards < 0:
        raise ValueError("staging_shards must be >= 0")
    if pending_writes < 0:
        raise ValueError("pending_writes must be >= 0")
    per_shard = -(-num_gaussians // num_shards)  # ceil: worst shards
    resident_rows = min(resident_shards, num_shards) * per_shard
    state = layout.train_state_bytes(resident_rows, layout.NON_GEOMETRIC_DIM)
    staging_rows = min(staging_shards, num_shards) * per_shard
    staging = 3 * layout.param_bytes(staging_rows, layout.NON_GEOMETRIC_DIM)
    pending_rows = min(pending_writes, num_shards) * per_shard
    pending = 3 * layout.param_bytes(pending_rows, layout.NON_GEOMETRIC_DIM)
    counters = num_gaussians
    return state + staging + pending + counters


def disk_state_bytes(
    num_gaussians: int,
    num_shards: int = DEFAULT_OUTOFCORE_SHARDS,
    resident_shards: int = DEFAULT_RESIDENT_SHARDS,
    page_compression_ratio: float = 1.0,
) -> int:
    """Bytes of training state the out-of-core system keeps on disk.

    The spilled shards' non-geometric parameters and both Adam moments
    (3 float copies — gradients never reach the disk tier), divided by
    the page codec's compression ratio (1.0 = raw pages; the ``float16``
    codec gives exactly 2.0 against fp32-equivalent accounting).
    """
    if page_compression_ratio <= 0:
        raise ValueError("page_compression_ratio must be > 0")
    per_shard = -(-num_gaussians // num_shards)
    spilled_rows = max(num_shards - resident_shards, 0) * per_shard
    raw = 3 * layout.param_bytes(spilled_rows, layout.NON_GEOMETRIC_DIM)
    return int(raw / page_compression_ratio)


def host_state_bytes(num_gaussians: int, system: str) -> int:
    """Host-memory footprint of the offloaded training state.

    GS-Scale keeps the non-geometric parameters and their two Adam moments
    (plus the returned gradients and the defer counters) in host DRAM; the
    baseline keeps all 59 columns there. The GPU-only system offloads
    nothing, and the out-of-core system hosts only its resident shard set
    (defaults; :func:`outofcore_host_state_bytes` takes explicit knobs).
    """
    if system == "gpu_only":
        return 0
    if system == "baseline_offload":
        return layout.train_state_bytes(num_gaussians)
    if system in ("gsscale", "gsscale_no_deferred", "sharded"):
        # sharding moves device state across GPUs; the host-side
        # non-geometric state (and its counters) is unchanged in total
        state = layout.train_state_bytes(num_gaussians, layout.NON_GEOMETRIC_DIM)
        counters = num_gaussians  # one byte each
        return state + counters
    if system == "outofcore":
        return outofcore_host_state_bytes(num_gaussians)
    if system == "outofcore_async":
        # the overlap leg double-buffers one shard's pageable state
        return outofcore_host_state_bytes(num_gaussians, staging_shards=1)
    raise ValueError(f"unknown system {system!r}")


def fits_host(num_gaussians: int, system: str, host_memory_bytes: int) -> bool:
    """Whether the offloaded state fits host DRAM (Table 1 capacities).

    Host offloading moves the memory wall, it does not remove it: e.g. the
    Aerial scene's ~42 GB of training state cannot be hosted by the
    laptop's 32 GB of DRAM no matter how little GPU memory is used.
    """
    # leave room for the OS, the framework, and the image cache
    budget = host_memory_bytes * 0.85
    return host_state_bytes(num_gaussians, system) <= budget


class MemoryTracker:
    """Runtime allocation ledger for the functional offload engine.

    Tracks live bytes per category and the high-water mark, mimicking
    ``torch.cuda.max_memory_allocated`` (the paper's measurement tool).

    Trackers compose into device groups: a per-device tracker constructed
    with a ``parent`` mirrors every allocate/free into the parent, so a
    sharded multi-device system can enforce per-device capacities on the
    children while the parent reports fleet-wide live/peak bytes (the
    quantity the trainer records). Parents may nest arbitrarily deep.
    """

    def __init__(
        self,
        capacity_bytes: int | None = None,
        parent: "MemoryTracker | None" = None,
    ):
        self.capacity_bytes = capacity_bytes
        self.parent = parent
        self._live: dict[str, int] = {}
        self.peak_bytes = 0

    @property
    def live_bytes(self) -> int:
        """Currently allocated bytes."""
        return sum(self._live.values())

    def allocate(self, category: str, num_bytes: int) -> None:
        """Record an allocation; raises MemoryError past capacity.

        A rejected allocation leaves every tracker in the chain unchanged:
        capacity is checked before anything is recorded, and the parent is
        charged (recursively, same rule) before this tracker commits, so a
        raise at any level cannot desynchronize child and parent.
        """
        if num_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        total = self.live_bytes + num_bytes
        if self.capacity_bytes is not None and total > self.capacity_bytes:
            raise MemoryError(
                f"device OOM: {total} bytes live > capacity "
                f"{self.capacity_bytes} (allocating {num_bytes} for "
                f"{category!r})"
            )
        if self.parent is not None:
            self.parent.allocate(category, num_bytes)
        self._live[category] = self._live.get(category, 0) + num_bytes
        self.peak_bytes = max(self.peak_bytes, total)

    def free(self, category: str, num_bytes: int) -> None:
        """Record a deallocation."""
        have = self._live.get(category, 0)
        if num_bytes > have:
            raise ValueError(
                f"freeing {num_bytes} bytes from {category!r} but only "
                f"{have} live"
            )
        self._live[category] = have - num_bytes
        if self.parent is not None:
            self.parent.free(category, num_bytes)

    def live_by_category(self) -> dict[str, int]:
        """Snapshot of live bytes per category."""
        return dict(self._live)
