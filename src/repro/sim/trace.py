"""Chrome-trace export of simulated timelines (open in chrome://tracing)."""

from __future__ import annotations

import json

from .timeline import Segment

_RESOURCE_TIDS = {"CPU": 1, "GPU": 2, "PCIe": 3}


def to_chrome_trace(segments: list[Segment], time_scale_us: float = 1e6) -> dict:
    """Convert timeline segments to the Chrome trace-event JSON format.

    Args:
        segments: resource-time intervals from a simulated iteration.
        time_scale_us: multiplier from model seconds to trace microseconds.

    Returns:
        A dict ready for ``json.dump``.
    """
    events = []
    for res, tid in _RESOURCE_TIDS.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": res},
            }
        )
    for seg in segments:
        events.append(
            {
                "name": seg.label,
                "ph": "X",
                "pid": 1,
                "tid": _RESOURCE_TIDS.get(seg.resource, 9),
                "ts": seg.start * time_scale_us,
                "dur": max(seg.duration * time_scale_us, 0.01),
                "cat": seg.resource,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(segments: list[Segment], path: str) -> None:
    """Write a Chrome trace JSON file for ``segments``."""
    with open(path, "w") as f:
        json.dump(to_chrome_trace(segments), f, indent=1)


def render_ascii(segments: list[Segment], width: int = 72) -> str:
    """ASCII Gantt chart of a simulated iteration (Figure 9 style)."""
    if not segments:
        return "(empty timeline)"
    t_end = max(s.end for s in segments)
    if t_end <= 0:
        return "(empty timeline)"
    lines = []
    for res in ("CPU", "GPU", "PCIe"):
        row = [" "] * width
        labels = []
        for seg in segments:
            if seg.resource != res:
                continue
            a = int(seg.start / t_end * (width - 1))
            b = max(int(seg.end / t_end * (width - 1)), a + 1)
            for i in range(a, min(b, width)):
                row[i] = "#"
            labels.append(f"{seg.label}[{seg.duration*1e3:.1f}ms]")
        lines.append(f"{res:>5} |{''.join(row)}| {' '.join(labels)}")
    lines.append(f"{'':>5}  total {t_end*1e3:.2f} ms")
    return "\n".join(lines)
