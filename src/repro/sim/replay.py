"""Replay functional training runs through the performance model.

The functional engines (:mod:`repro.core`) record exactly which Gaussians
every iteration touched; this module replays those measurements through the
analytic cost model to estimate what the same run would cost on a paper
platform. It bridges the two layers of the reproduction: small scenes that
*actually train* produce workload measurements, the calibrated model maps
them to paper-scale hardware."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.trainer import TrainingHistory
from .costs import CostModel
from .devices import Platform
from .timeline import simulate_iteration


@dataclass
class ReplayEstimate:
    """Modeled cost of a recorded training run on a target platform.

    Attributes:
        platform_key: target platform.
        system: system the history was recorded under.
        seconds: estimated wall-clock for the whole run.
        images_per_second: estimated throughput.
        breakdown: per-stage seconds.
    """

    platform_key: str
    system: str
    seconds: float
    images_per_second: float
    breakdown: dict[str, float]


def replay_history(
    history: TrainingHistory,
    platform: Platform,
    system: str,
    num_gaussians: int,
    num_pixels: int,
    mem_limit: float = 0.3,
) -> ReplayEstimate:
    """Estimate the recorded run's cost on ``platform``.

    Args:
        history: functional training history (its per-step visible counts
            drive the workload).
        platform: target hardware model.
        system: system schedule to replay under.
        num_gaussians: scene size during the run (post-densification runs
            should be replayed per segment).
        num_pixels: rendered pixels per view.
        mem_limit: image-splitting threshold.
    """
    if not history.steps:
        raise ValueError("history has no recorded steps")
    cost = CostModel(platform)
    total = 0.0
    breakdown: dict[str, float] = {}
    for step in history.steps:
        ratio = step.num_visible / max(num_gaussians, 1)
        it = simulate_iteration(
            system, cost, num_gaussians, ratio, num_pixels, mem_limit
        )
        total += it.time
        for k, v in it.breakdown.items():
            breakdown[k] = breakdown.get(k, 0.0) + v
    return ReplayEstimate(
        platform_key=platform.key,
        system=system,
        seconds=total,
        images_per_second=len(history.steps) / total,
        breakdown=breakdown,
    )
