"""Discrete-event timeline of training iterations for all four systems.

Reproduces the execution schedules of Figure 9:

* ``gpu_only`` — everything serial on the GPU (Figure 9a).
* ``baseline_offload`` — CPU culling, staged transfers, CPU dense updates,
  all serialized with GPU work (Figure 9b).
* ``gsscale_no_deferred`` — selective offloading + parameter forwarding:
  the CPU leg (framework dense update) overlaps the GPU leg (Figure 9c).
* ``gsscale`` — all optimizations; the CPU leg shrinks to the deferred
  update (Figure 9d).

``simulate_epoch`` runs a whole workload trace through one system and
reports throughput, a stage breakdown (Figure 7), and OOM status
(Figure 11's missing bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.workload import WorkloadTrace
from ..gaussians import layout
from .costs import CostModel, ITERATION_OVERHEAD_S
from .devices import Platform
from .memory import (
    baseline_offload_breakdown,
    fits,
    fits_host,
    gpu_only_breakdown,
    gsscale_breakdown,
    sharded_breakdown,
)

SYSTEMS = (
    "baseline_offload",
    "gsscale_no_deferred",
    "gsscale",
    "gpu_only",
    "sharded",
    "outofcore",
    "outofcore_async",
)

#: Deferred-update saturation overhead: with a 4-bit counter, 1/15 of the
#: inactive rows are force-updated per step on average (Section 4.3.2).
SATURATION_FRACTION = 1.0 / 15.0

#: Default device count of the modeled sharded system (Figure 11 entry).
DEFAULT_NUM_SHARDS = 4

#: Load imbalance of a spatially sharded render: median splits balance
#: populations, not per-view visible work (Grendel reports ~10-20%).
SHARD_IMBALANCE = 1.15

#: Bytes per merged fragment record crossing the interconnect in the
#: fragment-compositing schedule: the forward emit (premultiplied RGB,
#: 3 x f32 = 12 B; log-transmittance, f32 = 4 B; pixel and depth-run keys,
#: 2 x u32 = 8 B) plus the backward suffix return (pre-blend
#: transmittance + suffix offset, 2 x f32 = 8 B).
FRAGMENT_RECORD_BYTES = 32.0

#: Average shard runs per covered pixel: shards are spatial, so most
#: pixels composite one or two shard fragments — far below the
#: per-active-Gaussian traffic of a Grendel-style all-gather, which is
#: why the fragment merge replaces the exchange term.
FRAGMENT_RUNS_PER_PIXEL = 1.5

#: Marginal parallel efficiency of running the K per-shard host commits on
#: separate cores: the row sets are disjoint, but they share host DRAM
#: bandwidth (the Section 5.7 NUMA observation), so each extra shard
#: contributes only this fraction of a full worker.
SHARD_HOST_PARALLEL_EFFICIENCY = 0.5

#: Per-iteration cross-device synchronization overhead, seconds.
SHARD_SYNC_OVERHEAD_S = 0.3e-3

#: Resident shards of the modeled out-of-core system (host DRAM budget).
DEFAULT_RESIDENT_SHARDS = 1

#: Consecutive views served per shard residency: out-of-core trainers
#: (TideGS) order views so a paged-in block trains many nearby views
#: before being evicted, amortizing its page-in/out across them.
OUTOFCORE_VIEW_LOCALITY = 8.0

#: Paged bytes per shard state byte and swap: page the evicted shard out
#: and the incoming one in.
PAGE_ROUNDTRIP = 2.0


@dataclass(frozen=True)
class Segment:
    """One busy interval on one resource (for Figure 9 timelines)."""

    resource: str  # "GPU" | "CPU" | "PCIe"
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Segment length in seconds."""
        return self.end - self.start


@dataclass
class IterationSim:
    """One simulated training iteration.

    Attributes:
        time: wall-clock seconds for the iteration.
        breakdown: seconds attributed to each stage (overlapped stages
            still report their own duration).
        segments: resource-time intervals for visualization.
    """

    time: float
    breakdown: dict[str, float]
    segments: list[Segment] = field(default_factory=list)


def _num_sub_passes(ratio: float, mem_limit: float, system: str) -> int:
    """How many image-split passes a view needs (Section 4.4)."""
    if system in ("gpu_only", "baseline_offload") or ratio <= mem_limit:
        return 1
    return int(np.ceil(ratio / mem_limit))


def simulate_iteration(
    system: str,
    cost: CostModel,
    n_total: int,
    active_ratio: float,
    num_pixels: int,
    mem_limit: float = 0.3,
    num_shards: int = DEFAULT_NUM_SHARDS,
    resident_shards: int = DEFAULT_RESIDENT_SHARDS,
    page_compression_ratio: float = 1.0,
    write_behind: bool = False,
) -> IterationSim:
    """Simulate one training iteration under ``system``.

    ``page_compression_ratio`` scales the out-of-core tier's disk traffic
    (2.0 models the ``float16`` page codec); ``write_behind`` moves the
    page-out half of each swap off the admit path onto a background
    writer. Both are no-ops for the non-paging systems.
    """
    n_active = int(n_total * active_ratio)
    splits = _num_sub_passes(active_ratio, mem_limit, system)

    if system == "gpu_only":
        return _sim_gpu_only(cost, n_total, n_active, num_pixels)
    if system == "baseline_offload":
        return _sim_baseline(cost, n_total, n_active, num_pixels)
    if system in ("gsscale_no_deferred", "gsscale"):
        return _sim_gsscale(
            cost,
            n_total,
            n_active,
            num_pixels,
            deferred=(system == "gsscale"),
            splits=splits,
        )
    if system == "sharded":
        return _sim_sharded(
            cost, n_total, n_active, num_pixels, splits, num_shards
        )
    if system == "outofcore":
        return _sim_sharded(
            cost, n_total, n_active, num_pixels, splits, num_shards,
            resident_shards=resident_shards,
            page_compression_ratio=page_compression_ratio,
            write_behind=write_behind,
        )
    if system == "outofcore_async":
        return _sim_sharded(
            cost, n_total, n_active, num_pixels, splits, num_shards,
            resident_shards=resident_shards, async_prefetch=True,
            page_compression_ratio=page_compression_ratio,
            write_behind=write_behind,
        )
    raise ValueError(f"unknown system {system!r}; choose from {SYSTEMS}")


def _sim_gpu_only(
    cost: CostModel, n_total: int, n_active: int, num_pixels: int
) -> IterationSim:
    cull = cost.gpu_cull(n_total)
    fwd_bwd = cost.forward_backward(n_active, num_pixels)
    update = cost.gpu_dense_update(n_total)
    t = 0.0
    segments = []
    for label, dur in (("cull", cull), ("fwd-bwd", fwd_bwd), ("update", update)):
        segments.append(Segment("GPU", label, t, t + dur))
        t += dur
    t += ITERATION_OVERHEAD_S
    return IterationSim(
        time=t,
        breakdown={
            "cull": cull,
            "h2d": 0.0,
            "fwd_bwd": fwd_bwd,
            "d2h": 0.0,
            "optimizer": update,
            "misc": ITERATION_OVERHEAD_S,
        },
        segments=segments,
    )


def _sim_baseline(
    cost: CostModel, n_total: int, n_active: int, num_pixels: int
) -> IterationSim:
    cull = cost.cpu_cull(n_total)
    h2d = cost.h2d_params(n_active, layout.PARAM_DIM)
    fwd_bwd = cost.forward_backward(n_active, num_pixels)
    d2h = cost.d2h_grads(n_active, layout.PARAM_DIM)
    update = cost.cpu_dense_update(n_total)

    t = 0.0
    segments = []
    for res, label, dur in (
        ("CPU", "cull", cull),
        ("PCIe", "H2D", h2d),
        ("GPU", "fwd-bwd", fwd_bwd),
        ("PCIe", "D2H", d2h),
        ("CPU", "update", update),
    ):
        segments.append(Segment(res, label, t, t + dur))
        t += dur
    t += ITERATION_OVERHEAD_S
    return IterationSim(
        time=t,
        breakdown={
            "cull": cull,
            "h2d": h2d,
            "fwd_bwd": fwd_bwd,
            "d2h": d2h,
            "optimizer": update,
            "misc": ITERATION_OVERHEAD_S,
        },
        segments=segments,
    )


def _sim_gsscale(
    cost: CostModel,
    n_total: int,
    n_active: int,
    num_pixels: int,
    deferred: bool,
    splits: int,
) -> IterationSim:
    """Pipelined schedule (Figures 9c/9d): steady-state iteration time is
    the slowest of the GPU, CPU, and PCIe legs plus fixed overhead."""
    dim = layout.NON_GEOMETRIC_DIM

    # GPU leg: fwd/bwd (+ extra per-split culling), geometric M.S.Q. update,
    # next-view frustum culling.
    cull = cost.gpu_cull(n_total) * splits
    fwd_bwd = cost.forward_backward(n_active, num_pixels)
    geo_update = cost.gpu_dense_update(n_total, layout.GEOMETRIC_DIM)
    gpu_leg = fwd_bwd + geo_update + cull

    # CPU leg: parameter forwarding peek for the next view + the lazy
    # commit of this view's gradients.
    peek = cost.cpu_forward_peek(n_active, dim)
    if deferred:
        n_updated = n_active + int((n_total - n_active) * SATURATION_FRACTION)
        update = cost.cpu_deferred_update(n_updated, n_total, dim)
    else:
        update = cost.cpu_dense_update(n_total, dim)
    cpu_leg = peek + update

    # PCIe leg: forwarded parameters in, gradients out (chunk-pipelined).
    h2d = cost.h2d_params(n_active, dim)
    d2h = cost.d2h_grads(n_active, dim) * splits
    pcie_leg = h2d + d2h

    split_overhead = (splits - 1) * ITERATION_OVERHEAD_S
    time = max(gpu_leg, cpu_leg, pcie_leg) + ITERATION_OVERHEAD_S + split_overhead

    segments = [
        Segment("CPU", "fwd-update", 0.0, peek),
        Segment("PCIe", "H2D", peek * 0.2, peek * 0.2 + h2d),
        Segment("GPU", "fwd-bwd", max(peek * 0.2 + h2d * 0.3, 0.0),
                max(peek * 0.2 + h2d * 0.3, 0.0) + fwd_bwd),
        Segment("CPU", "deferred-update" if deferred else "dense-update",
                peek, peek + update),
        Segment("GPU", "msq-update",
                max(peek * 0.2 + h2d * 0.3, 0.0) + fwd_bwd,
                max(peek * 0.2 + h2d * 0.3, 0.0) + fwd_bwd + geo_update),
        Segment("GPU", "cull",
                max(peek * 0.2 + h2d * 0.3, 0.0) + fwd_bwd + geo_update,
                max(peek * 0.2 + h2d * 0.3, 0.0) + fwd_bwd + geo_update + cull),
        Segment("PCIe", "D2H", max(peek * 0.2 + h2d * 0.3, 0.0) + fwd_bwd,
                max(peek * 0.2 + h2d * 0.3, 0.0) + fwd_bwd + d2h),
    ]
    return IterationSim(
        time=time,
        breakdown={
            "cull": cull,
            "h2d": h2d,
            "fwd_bwd": fwd_bwd,
            "d2h": d2h,
            "optimizer": peek + update,
            "misc": ITERATION_OVERHEAD_S + split_overhead,
        },
        segments=segments,
    )


def _sim_sharded(
    cost: CostModel,
    n_total: int,
    n_active: int,
    num_pixels: int,
    splits: int,
    num_shards: int,
    resident_shards: int | None = None,
    async_prefetch: bool = False,
    page_compression_ratio: float = 1.0,
    write_behind: bool = False,
) -> IterationSim:
    """K-device Gaussian-sharded GS-Scale (Grendel-style schedule).

    Each device runs the GS-Scale GPU leg over its ~1/K shard (with a
    load-imbalance derate), the PCIe legs stage each shard's share in
    parallel, and the host leg — aggregation across shards plus the
    deferred commit — is unchanged in total work. The per-shard renders
    join through the fragment-compositing merge (the functional engine's
    ``fragment`` raster path): each shard ships compact per-pixel
    fragment records to the host and receives two scalars per fragment
    back for the backward split, a pixel-bound ``composite`` bandwidth
    term that replaces the Grendel-style all-gather of projected splats.

    With ``resident_shards`` set (the out-of-core tier), a fourth leg pages
    shard state between host DRAM and disk: the view's active shards
    beyond the resident budget swap in (amortized over
    ``OUTOFCORE_VIEW_LOCALITY`` consecutive views by TideGS-style view
    ordering), and each spilled shard additionally pages in once per
    ``max_defer`` steps when its deferred counters saturate. The
    *synchronous* schedule pays that paging on the critical path — the
    next view cannot stage until its shards are host-resident — while
    ``async_prefetch`` overlaps it with the other legs (the background
    preload of the functional engine): only the residual past the
    slowest compute/transfer leg stalls the iteration. Both report the
    stalled portion as ``breakdown["disk_stall"]``.

    ``page_compression_ratio`` divides the paged bytes (the page codec
    shrinks what actually crosses the disk interface; the deep tier's
    ``float16`` codec gives exactly 2.0). ``write_behind`` removes the
    page-out half of every swap from the critical path: the background
    writer lands evicted pages while the trainer runs, so only the
    page-in half can stall — the full round-trip still shows up in
    ``breakdown["disk"]`` (the device is busy either way).
    """
    dim = layout.NON_GEOMETRIC_DIM
    shard_total = -(-n_total // num_shards)
    shard_active = int(-(-n_active // num_shards) * SHARD_IMBALANCE)
    shard_px = -(-num_pixels // num_shards)

    # per-device GPU leg over the shard
    cull = cost.gpu_cull(shard_total) * splits
    fwd_bwd = cost.forward_backward(shard_active, shard_px)
    geo_update = cost.gpu_dense_update(shard_total, layout.GEOMETRIC_DIM)
    gpu_leg = fwd_bwd + geo_update + cull

    # host leg: forwarding peek + cross-shard aggregation + deferred
    # commit; the per-shard commits cover disjoint rows and fan out over
    # host cores with diminishing (bandwidth-bound) returns
    peek = cost.cpu_forward_peek(n_active, dim)
    n_updated = n_active + int((n_total - n_active) * SATURATION_FRACTION)
    host_speedup = 1.0 + (num_shards - 1) * SHARD_HOST_PARALLEL_EFFICIENCY
    update = cost.cpu_deferred_update(n_updated, n_total, dim) / host_speedup
    cpu_leg = peek + update

    # per-device PCIe leg (each shard stages its own share) plus the
    # fragment-merge composite: per covered pixel, each overlapping shard
    # run ships one fragment record (forward emit + backward suffix
    # return) — bounded by pixels and overlap, not by active splats
    h2d = cost.h2d_params(shard_active, dim)
    d2h = cost.d2h_grads(shard_active, dim) * splits
    composite = cost.transfer(
        num_pixels
        * min(FRAGMENT_RUNS_PER_PIXEL, float(num_shards))
        * FRAGMENT_RECORD_BYTES
    )
    pcie_leg = h2d + d2h + composite

    # disk leg (out-of-core tier only)
    disk_leg = 0.0
    disk_in_leg = 0.0
    if resident_shards is not None:
        if page_compression_ratio <= 0:
            raise ValueError("page_compression_ratio must be > 0")
        shard_state = 3 * layout.param_bytes(shard_total, dim)  # params+m+v
        active_shards = min(
            num_shards, max(1, int(np.ceil(n_active / max(n_total, 1) * num_shards)))
        )
        view_swaps = max(active_shards - resident_shards, 0) / OUTOFCORE_VIEW_LOCALITY
        spilled = max(num_shards - resident_shards, 0)
        saturation_swaps = spilled * SATURATION_FRACTION
        disk_bytes = (
            PAGE_ROUNDTRIP * (view_swaps + saturation_swaps) * shard_state
            / page_compression_ratio
        )
        disk_leg = cost.disk_page(disk_bytes)
        # the page-in half of every swap: all a write-behind schedule can
        # still stall on (evictions land in the background)
        disk_in_leg = cost.disk_page(disk_bytes / PAGE_ROUNDTRIP)

    split_overhead = (splits - 1) * ITERATION_OVERHEAD_S
    sync = SHARD_SYNC_OVERHEAD_S if num_shards > 1 else 0.0
    slowest_leg = max(gpu_leg, cpu_leg, pcie_leg)
    critical_disk = disk_in_leg if write_behind else disk_leg
    if resident_shards is None:
        disk_stall = 0.0
    elif async_prefetch:
        # the background preload hides page traffic behind whichever leg
        # bounds the iteration; only the residual stalls
        disk_stall = max(0.0, critical_disk - slowest_leg)
    else:
        # synchronous paging: staging waits for the page-ins; without
        # write-behind the page-outs also block the next admit
        disk_stall = critical_disk
    time = (
        slowest_leg
        + disk_stall
        + ITERATION_OVERHEAD_S
        + split_overhead
        + sync
    )
    segments = [
        Segment("CPU", "fwd-update", 0.0, peek),
        Segment("PCIe", "H2D", peek * 0.2, peek * 0.2 + h2d),
        Segment("PCIe", "composite", peek * 0.2 + h2d,
                peek * 0.2 + h2d + composite),
        Segment("GPU", "fwd-bwd", peek * 0.2 + h2d,
                peek * 0.2 + h2d + fwd_bwd),
        Segment("CPU", "aggregate+deferred-update", peek, peek + update),
        Segment("GPU", "msq-update", peek * 0.2 + h2d + fwd_bwd,
                peek * 0.2 + h2d + fwd_bwd + geo_update),
        Segment("GPU", "cull", peek * 0.2 + h2d + fwd_bwd + geo_update,
                peek * 0.2 + h2d + fwd_bwd + geo_update + cull),
        Segment("PCIe", "D2H", peek * 0.2 + h2d + fwd_bwd,
                peek * 0.2 + h2d + fwd_bwd + d2h),
    ]
    breakdown = {
        "cull": cull,
        "h2d": h2d,
        "fwd_bwd": fwd_bwd,
        "d2h": d2h,
        "composite": composite,
        "optimizer": peek + update,
        "misc": ITERATION_OVERHEAD_S + split_overhead + sync,
    }
    if resident_shards is not None:
        breakdown["disk"] = disk_leg
        breakdown["disk_stall"] = disk_stall
        segments.append(Segment("Disk", "page", 0.0, disk_leg))
    return IterationSim(time=time, breakdown=breakdown, segments=segments)


@dataclass
class EpochResult:
    """Simulated epoch of training on one platform/system/scene.

    Attributes:
        system: system name.
        platform_key: platform registry key.
        scene_name: workload label.
        oom: True when the system cannot train the scene at all (either
            GPU memory or — for offloading systems — host memory).
        host_oom: True when specifically the *host* DRAM is the limit.
        seconds: epoch wall-clock (inf when OOM).
        images_per_second: training throughput (0 when OOM).
        breakdown: per-stage seconds summed over the epoch.
        peak_memory_bytes: modeled peak GPU allocation.
    """

    system: str
    platform_key: str
    scene_name: str
    oom: bool
    seconds: float
    images_per_second: float
    breakdown: dict[str, float]
    peak_memory_bytes: int
    host_oom: bool = False


def peak_memory(
    system: str,
    n_total: int,
    num_pixels: int,
    peak_active_ratio: float,
    mem_limit: float = 0.3,
    num_shards: int = DEFAULT_NUM_SHARDS,
):
    """Memory breakdown at the epoch's worst view for ``system``.

    For ``sharded`` and ``outofcore`` this is the *per-device* breakdown
    (the quantity each of the K GPUs must fit); the out-of-core tier only
    changes where the *host* state lives, so its device footprint equals
    the sharded system's.
    """
    if system == "gpu_only":
        return gpu_only_breakdown(n_total, num_pixels)
    if system == "baseline_offload":
        return baseline_offload_breakdown(n_total, num_pixels, peak_active_ratio)
    if system in ("gsscale", "gsscale_no_deferred"):
        return gsscale_breakdown(n_total, num_pixels, peak_active_ratio, mem_limit)
    if system in ("sharded", "outofcore", "outofcore_async"):
        return sharded_breakdown(
            n_total, num_pixels, peak_active_ratio, mem_limit, num_shards
        )
    raise ValueError(f"unknown system {system!r}")


def simulate_epoch(
    platform: Platform,
    trace: WorkloadTrace,
    system: str,
    num_pixels: int,
    mem_limit: float = 0.3,
    page_compression_ratio: float = 1.0,
    write_behind: bool = False,
) -> EpochResult:
    """Run one epoch of ``trace`` through ``system`` on ``platform``.

    ``page_compression_ratio`` and ``write_behind`` configure the
    out-of-core tier's disk schedule (see :func:`simulate_iteration`);
    they are ignored by the non-paging systems.
    """
    n_total = trace.total_gaussians
    if system in (
        "gsscale", "gsscale_no_deferred", "sharded", "outofcore",
        "outofcore_async",
    ):
        # image splitting bounds the staged window by the worst *per-pass*
        # ratio across the epoch, not the worst raw view
        staged_peak = trace.clipped(mem_limit).peak_ratio
    else:
        staged_peak = trace.peak_ratio
    mem = peak_memory(system, n_total, num_pixels, staged_peak, mem_limit)
    gpu_ok = fits(mem, platform.gpu)
    host_ok = fits_host(n_total, system, platform.host_memory_bytes)
    if not gpu_ok or not host_ok:
        return EpochResult(
            system=system,
            platform_key=platform.key,
            scene_name=trace.scene_name,
            oom=True,
            seconds=float("inf"),
            images_per_second=0.0,
            breakdown={},
            peak_memory_bytes=mem.total,
            host_oom=not host_ok,
        )

    cost = CostModel(platform)
    total = 0.0
    breakdown: dict[str, float] = {}
    for ratio in trace.active_ratios:
        it = simulate_iteration(
            system, cost, n_total, float(ratio), num_pixels, mem_limit,
            page_compression_ratio=page_compression_ratio,
            write_behind=write_behind,
        )
        total += it.time
        for k, v in it.breakdown.items():
            breakdown[k] = breakdown.get(k, 0.0) + v
    return EpochResult(
        system=system,
        platform_key=platform.key,
        scene_name=trace.scene_name,
        oom=False,
        seconds=total,
        images_per_second=trace.num_views / total,
        breakdown=breakdown,
        peak_memory_bytes=mem.total,
    )


def geomean(values) -> float:
    """Geometric mean of positive values (paper's summary statistic)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
