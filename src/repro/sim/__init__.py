"""Performance simulator: devices, memory model, cost model, timelines."""

from .costs import CostModel
from .devices import PLATFORMS, CPUSpec, GPUSpec, Platform, get_platform
from .memory import (
    ACTIVATION_BYTES_PER_PIXEL,
    fits_host,
    host_state_bytes,
    MemoryBreakdown,
    MemoryTracker,
    baseline_offload_breakdown,
    bytes_per_gaussian,
    disk_state_bytes,
    fits,
    gpu_only_breakdown,
    gsscale_breakdown,
    max_trainable_gaussians,
    outofcore_host_state_bytes,
    sharded_breakdown,
)
from .recon import PatchFarmResult, simulate_patch_farm
from .serve import (
    ServeResult,
    ServeScenario,
    request_arrivals,
    simulate_serve,
)
from .timeline import (
    SYSTEMS,
    EpochResult,
    IterationSim,
    Segment,
    geomean,
    peak_memory,
    simulate_epoch,
    simulate_iteration,
)
from .trace import render_ascii, to_chrome_trace, write_chrome_trace

__all__ = [
    "ACTIVATION_BYTES_PER_PIXEL",
    "CPUSpec",
    "CostModel",
    "EpochResult",
    "GPUSpec",
    "IterationSim",
    "MemoryBreakdown",
    "MemoryTracker",
    "PLATFORMS",
    "PatchFarmResult",
    "Platform",
    "SYSTEMS",
    "Segment",
    "ServeResult",
    "ServeScenario",
    "request_arrivals",
    "simulate_serve",
    "baseline_offload_breakdown",
    "bytes_per_gaussian",
    "disk_state_bytes",
    "fits",
    "fits_host",
    "geomean",
    "get_platform",
    "gpu_only_breakdown",
    "host_state_bytes",
    "gsscale_breakdown",
    "max_trainable_gaussians",
    "outofcore_host_state_bytes",
    "peak_memory",
    "render_ascii",
    "sharded_breakdown",
    "simulate_epoch",
    "simulate_iteration",
    "simulate_patch_farm",
    "to_chrome_trace",
    "write_chrome_trace",
]
