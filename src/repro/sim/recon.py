"""Modeled patch-farm schedule: P patches over J jobs vs one big run.

The performance-model counterpart of :mod:`repro.recon`: given the
partition's patch sizes, estimate the wall clock of training every patch
on ``num_jobs`` concurrent workers (longest-processing-time-first
greedy assignment — the classic makespan heuristic) against the
monolithic single-run alternative, on any :class:`~repro.sim.devices.
Platform`. Per-patch iteration times come from the same calibrated
:func:`~repro.sim.timeline.simulate_iteration` the paper figures use,
so the comparison inherits the cost model's anchors rather than
inventing new constants.

Host memory uses the fp32-equivalent convention of
:mod:`repro.gaussians.layout`: the farm holds ``num_jobs`` concurrent
patch training states, the monolithic run holds the whole scene's.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gaussians import layout
from .costs import CostModel
from .devices import Platform
from .timeline import simulate_iteration

__all__ = ["PatchFarmResult", "simulate_patch_farm"]


@dataclass(frozen=True)
class PatchFarmResult:
    """Modeled farm schedule vs the monolithic run.

    Attributes:
        patch_seconds: per-patch training time (patch order, empties 0).
        assignments: job index each patch was scheduled on (-1: empty).
        makespan_seconds: farm wall clock (slowest job's total).
        monolithic_seconds: the single whole-scene run.
        speedup: monolithic over farm wall clock.
        peak_host_bytes: widest concurrent farm training state.
        monolithic_peak_host_bytes: whole-scene training state.
    """

    patch_seconds: tuple[float, ...]
    assignments: tuple[int, ...]
    makespan_seconds: float
    monolithic_seconds: float
    speedup: float
    peak_host_bytes: int
    monolithic_peak_host_bytes: int


def simulate_patch_farm(
    platform: Platform,
    patch_sizes: list[int],
    num_jobs: int,
    iterations: int,
    num_pixels: int,
    system: str = "gsscale",
    active_ratio: float = 0.3,
    mem_limit: float = 0.3,
) -> PatchFarmResult:
    """Model P patch trainings packed onto J jobs vs one monolithic run.

    Args:
        platform: hardware model (``get_platform``).
        patch_sizes: buffered Gaussian count per patch (zeros allowed —
            padded empty patches cost nothing).
        num_jobs: concurrent training jobs.
        iterations: optimizer steps per patch and for the monolith.
        num_pixels: rendered pixels per view.
        system: training system each job (and the monolith) runs.
        active_ratio: visible fraction per view of whatever model the
            run holds — a patch job renders its patch's visible subset,
            the monolith renders the whole scene's. This is the regime
            the real benchmark measures (wide views covering the site),
            and it is exactly why the farm wins wall clock: per-step
            render work shrinks with the patch.
        mem_limit: staging budget fraction (image splitting knob).
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be >= 1")
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    cost = CostModel(platform)
    n_total = int(sum(patch_sizes))

    def epoch_seconds(n: int, ratio: float) -> float:
        if n == 0:
            return 0.0
        it = simulate_iteration(
            system, cost, n, ratio, num_pixels, mem_limit
        )
        return it.time * iterations

    patch_seconds = [epoch_seconds(int(n), active_ratio) for n in patch_sizes]

    # LPT greedy: largest patch first onto the least-loaded job
    loads = [0.0] * num_jobs
    assignments = [-1] * len(patch_sizes)
    order = sorted(
        range(len(patch_sizes)), key=lambda i: -patch_seconds[i]
    )
    for i in order:
        if patch_sizes[i] == 0:
            continue
        job = min(range(num_jobs), key=lambda j: loads[j])
        loads[job] += patch_seconds[i]
        assignments[i] = job
    makespan = max(loads) if loads else 0.0
    monolithic = epoch_seconds(n_total, active_ratio)

    concurrent = sorted((int(n) for n in patch_sizes), reverse=True)[
        :num_jobs
    ]
    peak_host = sum(layout.train_state_bytes(n) for n in concurrent)
    return PatchFarmResult(
        patch_seconds=tuple(patch_seconds),
        assignments=tuple(assignments),
        makespan_seconds=makespan,
        monolithic_seconds=monolithic,
        speedup=monolithic / makespan if makespan > 0 else float("inf"),
        peak_host_bytes=peak_host,
        monolithic_peak_host_bytes=layout.train_state_bytes(n_total),
    )
