"""Discrete-event model of the render-serving subsystem.

The training timelines (:mod:`repro.sim.timeline`) answer "how fast does
one iteration go"; serving needs the *queueing* answer — what latency do
clients see at a given arrival rate, worker count, cache hit rate, and
LOD tier, and when does the farm saturate. :func:`simulate_serve` runs a
seeded request-arrival trace (Poisson arrivals) through a W-server queue
whose per-request service time comes from the same
:class:`~repro.sim.costs.CostModel` the training figures use:

* a cache hit costs a lookup;
* a render costs the forward-only pass over the LOD-reduced active set
  (:meth:`~repro.sim.costs.CostModel.serve_forward`);
* a paged model adds a disk page-in stall whenever the request's view
  leaves the resident shard set (probability ``page_stall_prob``), the
  serving-side analogue of the training tier's shard swaps.

The result reports the numbers a capacity planner reads: p50/p99
latency, sustained requests/sec, and worker utilization — alongside the
training schedules, from the same platform definitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gaussians import layout
from .costs import CostModel
from .devices import Platform
from .memory import DEFAULT_OUTOFCORE_SHARDS

__all__ = [
    "CACHE_LOOKUP_S",
    "ServeResult",
    "ServeScenario",
    "request_arrivals",
    "simulate_serve",
]

#: Pose-keyed cache lookup + response handoff, seconds.
CACHE_LOOKUP_S = 50e-6

#: Fixed per-request orchestration overhead (batching, dispatch), seconds.
REQUEST_OVERHEAD_S = 200e-6


@dataclass(frozen=True)
class ServeScenario:
    """One serving workload.

    Attributes:
        name: label for reports.
        num_requests: trace length.
        arrival_rate_hz: mean Poisson arrival rate.
        workers: render-farm worker count.
        cache_hit_rate: fraction of requests answered from the frame
            cache (pose revisit probability of the client mix).
        keep_fraction: LOD splat retention of the served tier (1.0 =
            full detail).
        page_stall_prob: probability a rendered request pages a shard in
            first (0 for an in-memory model).
        num_shards: shard count of the paged model (sizes the page).
        seed: RNG seed; the trace is deterministic in it.
    """

    name: str = "serve"
    num_requests: int = 200
    arrival_rate_hz: float = 100.0
    workers: int = 1
    cache_hit_rate: float = 0.0
    keep_fraction: float = 1.0
    page_stall_prob: float = 0.0
    num_shards: int = DEFAULT_OUTOFCORE_SHARDS
    seed: int = 0

    def __post_init__(self):
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.arrival_rate_hz <= 0:
            raise ValueError("arrival_rate_hz must be > 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if not 0.0 <= self.cache_hit_rate <= 1.0:
            raise ValueError("cache_hit_rate must be in [0, 1]")
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        if not 0.0 <= self.page_stall_prob <= 1.0:
            raise ValueError("page_stall_prob must be in [0, 1]")


@dataclass
class ServeResult:
    """Outcome of one simulated serving trace.

    Attributes:
        scenario: the scenario name.
        p50_latency_s, p99_latency_s: request latency percentiles
            (arrival to completion, queueing included).
        requests_per_s: sustained throughput over the trace.
        seconds: trace makespan (first arrival to last completion).
        worker_utilization: busy time over ``workers * seconds``.
        cache_hits / rendered: request counts by path.
        render_s: modeled per-frame render time at the scenario's LOD.
        page_stall_s: total seconds spent waiting on page-ins.
    """

    scenario: str
    p50_latency_s: float
    p99_latency_s: float
    requests_per_s: float
    seconds: float
    worker_utilization: float
    cache_hits: int
    rendered: int
    render_s: float
    page_stall_s: float


def request_arrivals(
    rate_hz: float, num_requests: int, seed: int = 0
) -> np.ndarray:
    """Poisson arrival times (seconds, ascending, starting near 0)."""
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate_hz, size=num_requests))


def simulate_serve(
    platform: Platform,
    n_total: int,
    active_ratio: float,
    num_pixels: int,
    scenario: ServeScenario,
) -> ServeResult:
    """Run one request trace through a W-worker serving farm.

    Requests are served FIFO by the earliest-free worker; a request's
    service time is a cache lookup (hit), or the LOD-reduced forward
    render plus any page-in stall (miss). Deterministic in the
    scenario's seed.
    """
    cost = CostModel(platform)
    render_s = cost.serve_forward(
        int(n_total * active_ratio * scenario.keep_fraction), num_pixels
    )
    shard_rows = -(-n_total // scenario.num_shards)
    page_s = cost.disk_page(
        layout.param_bytes(shard_rows, layout.NON_GEOMETRIC_DIM)
    )

    arrivals = request_arrivals(
        scenario.arrival_rate_hz, scenario.num_requests, scenario.seed
    )
    rng = np.random.default_rng(scenario.seed + 1)
    hits = rng.random(scenario.num_requests) < scenario.cache_hit_rate
    stalls = rng.random(scenario.num_requests) < scenario.page_stall_prob

    worker_free = np.zeros(scenario.workers)
    latencies = np.empty(scenario.num_requests)
    busy = 0.0
    page_stall_total = 0.0
    for i, arrival in enumerate(arrivals):
        if hits[i]:
            service = CACHE_LOOKUP_S
        else:
            service = REQUEST_OVERHEAD_S + render_s
            if stalls[i]:
                service += page_s
                page_stall_total += page_s
        w = int(np.argmin(worker_free))
        start = max(arrival, worker_free[w])
        worker_free[w] = start + service
        latencies[i] = worker_free[w] - arrival
        busy += service

    makespan = float(worker_free.max() - arrivals[0])
    return ServeResult(
        scenario=scenario.name,
        p50_latency_s=float(np.percentile(latencies, 50)),
        p99_latency_s=float(np.percentile(latencies, 99)),
        requests_per_s=scenario.num_requests / makespan,
        seconds=makespan,
        worker_utilization=busy / (scenario.workers * makespan),
        cache_hits=int(hits.sum()),
        rendered=int((~hits).sum()),
        render_s=render_s,
        page_stall_s=page_stall_total,
    )
