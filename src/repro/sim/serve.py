"""Discrete-event model of the render-serving subsystem.

The training timelines (:mod:`repro.sim.timeline`) answer "how fast does
one iteration go"; serving needs the *queueing* answer — what latency do
clients see at a given arrival rate, worker count, cache hit rate, and
LOD tier, and when does the farm saturate. :func:`simulate_serve` runs a
seeded request-arrival trace (Poisson arrivals) through a W-server queue
whose per-request service time comes from the same
:class:`~repro.sim.costs.CostModel` the training figures use:

* a cache hit costs a lookup;
* a render costs the forward-only pass over the LOD-reduced active set
  (:meth:`~repro.sim.costs.CostModel.serve_forward`);
* a paged model adds a disk page-in stall whenever the request's view
  leaves the resident shard set (probability ``page_stall_prob``), the
  serving-side analogue of the training tier's shard swaps.

The failure-aware extension models the fault-tolerant tier: workers
fail per-render with probability ``1 - exp(-service / worker_mtbf_s)``
and pay one bounded retry (``retry_penalty_s`` + a re-render), and a
``deadline_s`` admission policy answers late requests either by
*rejecting* them (no frame) or by *shedding* to a coarse LOD
(``shed_keep_fraction`` of the splats — cheap, degraded, but a frame).
The result's ``delivered_fps`` / ``availability`` / ``shed_fraction``
quantify the paper-style claim the chaos suite asserts: under overload,
LOD-shedding delivers strictly more frames per second than rejection.

The result reports the numbers a capacity planner reads: p50/p99
latency, sustained requests/sec, and worker utilization — alongside the
training schedules, from the same platform definitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gaussians import layout
from .costs import CostModel
from .devices import Platform
from .memory import DEFAULT_OUTOFCORE_SHARDS

__all__ = [
    "CACHE_LOOKUP_S",
    "ServeResult",
    "ServeScenario",
    "request_arrivals",
    "simulate_serve",
]

#: Pose-keyed cache lookup + response handoff, seconds.
CACHE_LOOKUP_S = 50e-6

#: Fixed per-request orchestration overhead (batching, dispatch), seconds.
REQUEST_OVERHEAD_S = 200e-6


@dataclass(frozen=True)
class ServeScenario:
    """One serving workload.

    Attributes:
        name: label for reports.
        num_requests: trace length.
        arrival_rate_hz: mean Poisson arrival rate.
        workers: render-farm worker count.
        cache_hit_rate: fraction of requests answered from the frame
            cache (pose revisit probability of the client mix).
        keep_fraction: LOD splat retention of the served tier (1.0 =
            full detail).
        page_stall_prob: probability a rendered request pages a shard in
            first (0 for an in-memory model).
        num_shards: shard count of the paged model (sizes the page).
        worker_mtbf_s: mean time between worker failures (seconds of
            busy render time); 0 disables failures. A failed render pays
            ``retry_penalty_s`` plus one full re-render (the supervised
            pool's respawn-and-retry, which is bounded and succeeds).
        retry_penalty_s: respawn + re-dispatch overhead per failure.
        deadline_s: per-request freshness budget; a request whose queue
            wait exceeds it is handled by ``overload_policy``. 0
            disables the deadline.
        overload_policy: what happens to deadline-missed requests —
            ``"reject"`` answers without a frame (cheap, nothing
            delivered) or ``"shed"`` renders at ``shed_keep_fraction``
            of the splats (cheap *and* a frame, degraded).
        shed_keep_fraction: LOD splat retention of the shed tier.
        seed: RNG seed; the trace is deterministic in it.
    """

    name: str = "serve"
    num_requests: int = 200
    arrival_rate_hz: float = 100.0
    workers: int = 1
    cache_hit_rate: float = 0.0
    keep_fraction: float = 1.0
    page_stall_prob: float = 0.0
    num_shards: int = DEFAULT_OUTOFCORE_SHARDS
    worker_mtbf_s: float = 0.0
    retry_penalty_s: float = 0.05
    deadline_s: float = 0.0
    overload_policy: str = "reject"
    shed_keep_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.arrival_rate_hz <= 0:
            raise ValueError("arrival_rate_hz must be > 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if not 0.0 <= self.cache_hit_rate <= 1.0:
            raise ValueError("cache_hit_rate must be in [0, 1]")
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        if not 0.0 <= self.page_stall_prob <= 1.0:
            raise ValueError("page_stall_prob must be in [0, 1]")
        if self.worker_mtbf_s < 0:
            raise ValueError("worker_mtbf_s must be >= 0 (0 disables)")
        if self.retry_penalty_s < 0:
            raise ValueError("retry_penalty_s must be >= 0")
        if self.deadline_s < 0:
            raise ValueError("deadline_s must be >= 0 (0 disables)")
        if self.overload_policy not in ("reject", "shed"):
            raise ValueError("overload_policy must be 'reject' or 'shed'")
        if not 0.0 < self.shed_keep_fraction <= 1.0:
            raise ValueError("shed_keep_fraction must be in (0, 1]")


@dataclass
class ServeResult:
    """Outcome of one simulated serving trace.

    Attributes:
        scenario: the scenario name.
        p50_latency_s, p99_latency_s: request latency percentiles
            (arrival to completion, queueing included).
        requests_per_s: sustained throughput over the trace.
        seconds: trace makespan (first arrival to last completion).
        worker_utilization: busy time over ``workers * seconds``.
        cache_hits / rendered: request counts by path.
        render_s: modeled per-frame render time at the scenario's LOD.
        page_stall_s: total seconds spent waiting on page-ins.
        delivered_fps: frames actually delivered (full or shed detail)
            per second of makespan — the figure-of-merit the shed-vs-
            reject comparison reads.
        availability: delivered frames over total requests.
        shed_fraction: fraction of requests served at the shed LOD.
        failures: worker failures absorbed by retry.
        retry_s: total seconds spent respawning and re-rendering.
        rejected: requests answered without a frame.
    """

    scenario: str
    p50_latency_s: float
    p99_latency_s: float
    requests_per_s: float
    seconds: float
    worker_utilization: float
    cache_hits: int
    rendered: int
    render_s: float
    page_stall_s: float
    delivered_fps: float = 0.0
    availability: float = 1.0
    shed_fraction: float = 0.0
    failures: int = 0
    retry_s: float = 0.0
    rejected: int = 0


def request_arrivals(
    rate_hz: float, num_requests: int, seed: int = 0
) -> np.ndarray:
    """Poisson arrival times (seconds, ascending, starting near 0)."""
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate_hz, size=num_requests))


def simulate_serve(
    platform: Platform,
    n_total: int,
    active_ratio: float,
    num_pixels: int,
    scenario: ServeScenario,
) -> ServeResult:
    """Run one request trace through a W-worker serving farm.

    Requests are served FIFO by the earliest-free worker; a request's
    service time is a cache lookup (hit), or the LOD-reduced forward
    render plus any page-in stall (miss). With ``worker_mtbf_s`` set,
    renders fail with probability ``1 - exp(-service / mtbf)`` and pay
    one bounded retry; with ``deadline_s`` set, deadline-missed
    requests are rejected or shed per ``overload_policy``. Deterministic
    in the scenario's seed.
    """
    cost = CostModel(platform)
    render_s = cost.serve_forward(
        int(n_total * active_ratio * scenario.keep_fraction), num_pixels
    )
    shed_render_s = cost.serve_forward(
        int(
            n_total * active_ratio
            * scenario.keep_fraction * scenario.shed_keep_fraction
        ),
        num_pixels,
    )
    shard_rows = -(-n_total // scenario.num_shards)
    page_s = cost.disk_page(
        layout.param_bytes(shard_rows, layout.NON_GEOMETRIC_DIM)
    )

    arrivals = request_arrivals(
        scenario.arrival_rate_hz, scenario.num_requests, scenario.seed
    )
    rng = np.random.default_rng(scenario.seed + 1)
    hits = rng.random(scenario.num_requests) < scenario.cache_hit_rate
    stalls = rng.random(scenario.num_requests) < scenario.page_stall_prob
    fail_draws = np.random.default_rng(scenario.seed + 2).random(
        scenario.num_requests
    )

    worker_free = np.zeros(scenario.workers)
    latencies = np.empty(scenario.num_requests)
    busy = 0.0
    page_stall_total = 0.0
    delivered = 0
    shed = 0
    rejected = 0
    failures = 0
    retry_total = 0.0
    for i, arrival in enumerate(arrivals):
        w = int(np.argmin(worker_free))
        start = max(arrival, worker_free[w])
        wait = start - arrival
        renders = False
        if hits[i]:
            service = CACHE_LOOKUP_S
            delivered += 1
        elif scenario.deadline_s > 0 and wait > scenario.deadline_s:
            if scenario.overload_policy == "reject":
                # answered (with the reason), but no frame delivered
                service = CACHE_LOOKUP_S
                rejected += 1
            else:
                # shed: a coarse frame beats no frame, and its cheap
                # render drains the queue faster than the full tier
                service = REQUEST_OVERHEAD_S + shed_render_s
                renders = True
                shed += 1
                delivered += 1
        else:
            service = REQUEST_OVERHEAD_S + render_s
            if stalls[i]:
                service += page_s
                page_stall_total += page_s
            renders = True
            delivered += 1
        if renders and scenario.worker_mtbf_s > 0:
            p_fail = 1.0 - float(np.exp(-service / scenario.worker_mtbf_s))
            if fail_draws[i] < p_fail:
                # supervised pool: respawn, re-dispatch, render again
                failures += 1
                extra = scenario.retry_penalty_s + service
                retry_total += extra
                service += extra
        worker_free[w] = start + service
        latencies[i] = worker_free[w] - arrival
        busy += service

    makespan = float(worker_free.max() - arrivals[0])
    return ServeResult(
        scenario=scenario.name,
        p50_latency_s=float(np.percentile(latencies, 50)),
        p99_latency_s=float(np.percentile(latencies, 99)),
        requests_per_s=scenario.num_requests / makespan,
        seconds=makespan,
        worker_utilization=busy / (scenario.workers * makespan),
        cache_hits=int(hits.sum()),
        rendered=int((~hits).sum()) - rejected,
        render_s=render_s,
        page_stall_s=page_stall_total,
        delivered_fps=delivered / makespan,
        availability=delivered / scenario.num_requests,
        shed_fraction=shed / scenario.num_requests,
        failures=failures,
        retry_s=retry_total,
        rejected=rejected,
    )
