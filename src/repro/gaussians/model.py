"""Structure-of-arrays container for a set of trainable 3D Gaussians."""

from __future__ import annotations

import numpy as np

from . import layout


class GaussianModel:
    """All trainable parameters of a 3DGS scene, stored as one packed array.

    Parameters live in a single ``(N, 59)`` float array (see
    :mod:`repro.gaussians.layout` for the column layout). Attribute views
    (``means``, ``log_scales``, ``quats``, ``opacity_logits``, ``sh``) are
    numpy views into that array, so in-place updates through either interface
    stay consistent — this mirrors how GS-Scale treats the parameter store as
    one flat buffer that can be split between host and device.
    """

    def __init__(self, params: np.ndarray):
        params = np.ascontiguousarray(params)
        if params.ndim != 2 or params.shape[1] != layout.PARAM_DIM:
            raise ValueError(
                f"params must have shape (N, {layout.PARAM_DIM}), got {params.shape}"
            )
        self.params = params

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_attributes(
        cls,
        means: np.ndarray,
        log_scales: np.ndarray,
        quats: np.ndarray,
        opacity_logits: np.ndarray,
        sh: np.ndarray,
        dtype=np.float32,
    ) -> "GaussianModel":
        """Assemble a model from separate per-attribute arrays.

        ``sh`` may be given as ``(N, 48)`` or ``(N, 16, 3)``.
        """
        n = means.shape[0]
        params = np.empty((n, layout.PARAM_DIM), dtype=dtype)
        params[:, layout.MEAN_SLICE] = means
        params[:, layout.SCALE_SLICE] = log_scales
        params[:, layout.QUAT_SLICE] = quats
        params[:, layout.OPACITY_SLICE] = np.reshape(opacity_logits, (n, 1))
        params[:, layout.SH_SLICE] = np.reshape(sh, (n, layout.SH_DIM))
        return cls(params)

    @classmethod
    def from_point_cloud(
        cls,
        points: np.ndarray,
        colors: np.ndarray,
        initial_opacity: float = 0.1,
        scale_multiplier: float = 1.0,
        dtype=np.float32,
    ) -> "GaussianModel":
        """Initialize Gaussians from an SfM-style colored point cloud.

        Follows the 3DGS recipe (Section 2.4): isotropic scales set from the
        mean distance to the 3 nearest neighbors, identity rotations, a low
        uniform opacity, and DC SH coefficients matching the point colors.

        Args:
            points: ``(N, 3)`` positions.
            colors: ``(N, 3)`` RGB in ``[0, 1]``.
            initial_opacity: initial opacity after sigmoid.
            scale_multiplier: multiplier on the nearest-neighbor scale.
        """
        from ..datasets.pointcloud import mean_knn_distance
        from .sh import C0

        n = points.shape[0]
        dists = mean_knn_distance(points, k=3)
        log_scales = np.log(np.maximum(dists * scale_multiplier, 1e-7))
        quats = np.zeros((n, 4))
        quats[:, 0] = 1.0
        opacity_logits = np.full(
            (n,), float(np.log(initial_opacity / (1.0 - initial_opacity)))
        )
        sh = np.zeros((n, layout.SH_COEFFS_PER_CHANNEL, 3))
        sh[:, 0, :] = (colors - 0.5) / C0
        return cls.from_attributes(
            means=points,
            log_scales=np.repeat(log_scales[:, None], 3, axis=1),
            quats=quats,
            opacity_logits=opacity_logits,
            sh=sh,
            dtype=dtype,
        )

    # ------------------------------------------------------------------
    # attribute views
    # ------------------------------------------------------------------
    @property
    def num_gaussians(self) -> int:
        """Number of Gaussians ``N``."""
        return self.params.shape[0]

    def __len__(self) -> int:
        return self.num_gaussians

    @property
    def dtype(self):
        """Floating dtype of the parameter store."""
        return self.params.dtype

    @property
    def means(self) -> np.ndarray:
        """World-space centers, view of shape ``(N, 3)``."""
        return self.params[:, layout.MEAN_SLICE]

    @property
    def log_scales(self) -> np.ndarray:
        """Log extents, view of shape ``(N, 3)``."""
        return self.params[:, layout.SCALE_SLICE]

    @property
    def quats(self) -> np.ndarray:
        """Raw quaternions, view of shape ``(N, 4)``."""
        return self.params[:, layout.QUAT_SLICE]

    @property
    def opacity_logits(self) -> np.ndarray:
        """Opacity logits, view of shape ``(N, 1)``."""
        return self.params[:, layout.OPACITY_SLICE]

    @property
    def sh(self) -> np.ndarray:
        """SH coefficients as a reshaped copy-free view ``(N, 16, 3)``."""
        return self.params[:, layout.SH_SLICE].reshape(
            self.num_gaussians, layout.SH_COEFFS_PER_CHANNEL, 3
        )

    @property
    def geometric(self) -> np.ndarray:
        """Geometric attribute block (mean+scale+quat), view ``(N, 10)``."""
        return self.params[:, layout.GEOMETRIC_SLICE]

    @property
    def non_geometric(self) -> np.ndarray:
        """Non-geometric block (opacity+SH), view ``(N, 49)``."""
        return self.params[:, layout.NON_GEOMETRIC_SLICE]

    @property
    def opacities(self) -> np.ndarray:
        """Activated opacities ``sigmoid(logit)``, shape ``(N,)`` (copy)."""
        logits = self.opacity_logits[:, 0]
        return 1.0 / (1.0 + np.exp(-logits))

    @property
    def scales(self) -> np.ndarray:
        """Activated scales ``exp(log_scale)``, shape ``(N, 3)`` (copy)."""
        return np.exp(self.log_scales)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def copy(self) -> "GaussianModel":
        """Deep copy of the model."""
        return GaussianModel(self.params.copy())

    def select(self, indices: np.ndarray) -> "GaussianModel":
        """New model with only the Gaussians at ``indices`` (copy)."""
        return GaussianModel(self.params[indices].copy())

    def append(self, other: "GaussianModel") -> "GaussianModel":
        """New model concatenating ``self`` and ``other`` (copy)."""
        return GaussianModel(np.concatenate([self.params, other.params], axis=0))

    def astype(self, dtype) -> "GaussianModel":
        """New model with the parameter store cast to ``dtype``."""
        return GaussianModel(self.params.astype(dtype))

    def state_bytes(self) -> int:
        """Bytes of the full training state at float32 (Section 3.1)."""
        return layout.train_state_bytes(self.num_gaussians)
