"""Gaussian primitive substrate: parameter layout, SH, covariance, model."""

from . import covariance, layout, quaternion, sh
from .model import GaussianModel

__all__ = ["GaussianModel", "covariance", "layout", "quaternion", "sh"]
