"""Parameter layout of a 3D Gaussian primitive.

The paper (Section 2.3) uses 59 trainable parameters per Gaussian:

====================  =====  =========================================
attribute             width  storage convention
====================  =====  =========================================
``mean``              3      world-space position, raw
``scale``             3      log of the per-axis extent (``exp`` on use)
``quat``              4      rotation quaternion ``(w, x, y, z)``, raw
                             (normalized on use)
``opacity``           1      logit (``sigmoid`` on use)
``sh``                48     spherical-harmonics coefficients, degree 3:
                             16 coefficients per RGB channel
====================  =====  =========================================

The *geometric* attributes are ``mean + scale + quat`` (10 of 59), which is
exactly the subset GS-Scale's selective offloading pins on the GPU
(Section 4.2.1): 10/59 = 17% of parameter memory.
"""

from __future__ import annotations

from dataclasses import dataclass

MEAN_DIM = 3
SCALE_DIM = 3
QUAT_DIM = 4
OPACITY_DIM = 1
SH_DEGREE = 3
SH_COEFFS_PER_CHANNEL = (SH_DEGREE + 1) ** 2  # 16
SH_DIM = 3 * SH_COEFFS_PER_CHANNEL  # 48

GEOMETRIC_DIM = MEAN_DIM + SCALE_DIM + QUAT_DIM  # 10
NON_GEOMETRIC_DIM = OPACITY_DIM + SH_DIM  # 49
PARAM_DIM = GEOMETRIC_DIM + NON_GEOMETRIC_DIM  # 59

# Fraction of per-Gaussian parameter memory held on the GPU by selective
# offloading (paper: "a modest 17% GPU memory overhead").
GEOMETRIC_FRACTION = GEOMETRIC_DIM / PARAM_DIM

MEAN_SLICE = slice(0, 3)
SCALE_SLICE = slice(3, 6)
QUAT_SLICE = slice(6, 10)
OPACITY_SLICE = slice(10, 11)
SH_SLICE = slice(11, 59)
GEOMETRIC_SLICE = slice(0, GEOMETRIC_DIM)
NON_GEOMETRIC_SLICE = slice(GEOMETRIC_DIM, PARAM_DIM)

BYTES_PER_FLOAT = 4

#: Bytes of trainable state per Gaussian during training: parameters,
#: gradients, and two Adam moments (Section 3.1: "over four times the
#: memory of the Gaussian parameters").
TRAIN_STATE_MULTIPLIER = 4  # param + grad + momentum + variance


@dataclass(frozen=True)
class AttributeSpec:
    """Name and column range of one attribute inside the packed layout."""

    name: str
    start: int
    width: int

    @property
    def sl(self) -> slice:
        """Column slice of this attribute within a packed ``(N, 59)`` array."""
        return slice(self.start, self.start + self.width)


ATTRIBUTES = (
    AttributeSpec("mean", 0, MEAN_DIM),
    AttributeSpec("scale", MEAN_DIM, SCALE_DIM),
    AttributeSpec("quat", MEAN_DIM + SCALE_DIM, QUAT_DIM),
    AttributeSpec("opacity", GEOMETRIC_DIM, OPACITY_DIM),
    AttributeSpec("sh", GEOMETRIC_DIM + OPACITY_DIM, SH_DIM),
)

GEOMETRIC_ATTRIBUTES = ("mean", "scale", "quat")
NON_GEOMETRIC_ATTRIBUTES = ("opacity", "sh")


@dataclass(frozen=True)
class ColumnBlock:
    """A named, contiguous column range of the packed ``(N, 59)`` layout.

    Parameter-placement stores (:mod:`repro.core.stores`) each own one
    block: GS-Scale pins the ``geometric`` block on the device and offloads
    the ``non_geometric`` block to the host. A block knows how to map
    packed-layout column slices into its own local coordinates, so code
    written against the packed layout (learning-rate vectors, the position
    columns of the lr schedule, geometry access for culling) works on a
    store that only holds its slice.
    """

    name: str
    start: int
    stop: int

    @property
    def sl(self) -> slice:
        """Column slice of this block within the packed layout."""
        return slice(self.start, self.stop)

    @property
    def dim(self) -> int:
        """Number of columns in the block."""
        return self.stop - self.start

    def contains(self, packed: slice) -> bool:
        """Whether a packed-layout column slice falls inside this block."""
        return self.start <= packed.start and packed.stop <= self.stop

    def local(self, packed: slice) -> slice:
        """Map a packed-layout column slice into block-local columns.

        Raises:
            ValueError: if ``packed`` is not fully inside the block.
        """
        if not self.contains(packed):
            raise ValueError(
                f"slice [{packed.start}:{packed.stop}) outside block "
                f"{self.name!r} [{self.start}:{self.stop})"
            )
        return slice(packed.start - self.start, packed.stop - self.start)


ALL_BLOCK = ColumnBlock("all", 0, PARAM_DIM)
GEOMETRIC_BLOCK = ColumnBlock("geometric", 0, GEOMETRIC_DIM)
NON_GEOMETRIC_BLOCK = ColumnBlock("non_geometric", GEOMETRIC_DIM, PARAM_DIM)

BLOCKS = (ALL_BLOCK, GEOMETRIC_BLOCK, NON_GEOMETRIC_BLOCK)


def column_block(name: str) -> ColumnBlock:
    """Return the :class:`ColumnBlock` for ``name``.

    Raises:
        KeyError: if ``name`` is not one of the named blocks.
    """
    for block in BLOCKS:
        if block.name == name:
            return block
    raise KeyError(f"unknown column block: {name!r}")


def attribute(name: str) -> AttributeSpec:
    """Return the :class:`AttributeSpec` for ``name``.

    Raises:
        KeyError: if ``name`` is not one of the five attributes.
    """
    for spec in ATTRIBUTES:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown Gaussian attribute: {name!r}")


def param_bytes(num_gaussians: int, dim: int = PARAM_DIM) -> int:
    """Bytes needed to store one float32 copy of ``dim`` params per Gaussian."""
    return num_gaussians * dim * BYTES_PER_FLOAT


def train_state_bytes(num_gaussians: int, dim: int = PARAM_DIM) -> int:
    """Bytes of the full training state (params + grads + 2 Adam moments)."""
    return TRAIN_STATE_MULTIPLIER * param_bytes(num_gaussians, dim)
