"""Real spherical harmonics up to degree 3, with analytic gradients.

The basis and constants follow the 3DGS/gsplat convention: colors are
``clip(sum_k basis_k(dir) * coeff_k + 0.5, 0, inf)`` where ``dir`` is the
unit vector from the camera center to the Gaussian mean.
"""

from __future__ import annotations

import numpy as np

from .layout import SH_DEGREE

C0 = 0.28209479177387814
C1 = 0.4886025119029199
C2 = (
    1.0925484305920792,
    -1.0925484305920792,
    0.31539156525252005,
    -1.0925484305920792,
    0.5462742152960396,
)
C3 = (
    -0.5900435899266435,
    2.890611442640554,
    -0.4570457994644658,
    0.3731763325901154,
    -0.4570457994644658,
    1.445305721320277,
    -0.5900435899266435,
)

#: Constant color offset added to the SH evaluation (3DGS convention).
SH_COLOR_OFFSET = 0.5


def num_coeffs(degree: int) -> int:
    """Number of SH coefficients per channel for ``degree``."""
    if not 0 <= degree <= SH_DEGREE:
        raise ValueError(f"SH degree must be in [0, {SH_DEGREE}], got {degree}")
    return (degree + 1) ** 2


def basis(dirs: np.ndarray, degree: int = SH_DEGREE) -> np.ndarray:
    """Evaluate the real SH basis at unit directions.

    Args:
        dirs: unit direction vectors, shape ``(N, 3)``.
        degree: maximum SH degree (0..3).

    Returns:
        Basis values, shape ``(N, (degree+1)**2)``.
    """
    n = num_coeffs(degree)
    x, y, z = dirs[..., 0], dirs[..., 1], dirs[..., 2]
    out = np.empty(dirs.shape[:-1] + (n,), dtype=dirs.dtype)
    out[..., 0] = C0
    if degree >= 1:
        out[..., 1] = -C1 * y
        out[..., 2] = C1 * z
        out[..., 3] = -C1 * x
    if degree >= 2:
        xx, yy, zz = x * x, y * y, z * z
        out[..., 4] = C2[0] * x * y
        out[..., 5] = C2[1] * y * z
        out[..., 6] = C2[2] * (2 * zz - xx - yy)
        out[..., 7] = C2[3] * x * z
        out[..., 8] = C2[4] * (xx - yy)
    if degree >= 3:
        out[..., 9] = C3[0] * y * (3 * xx - yy)
        out[..., 10] = C3[1] * x * y * z
        out[..., 11] = C3[2] * y * (4 * zz - xx - yy)
        out[..., 12] = C3[3] * z * (2 * zz - 3 * xx - 3 * yy)
        out[..., 13] = C3[4] * x * (4 * zz - xx - yy)
        out[..., 14] = C3[5] * z * (xx - yy)
        out[..., 15] = C3[6] * x * (xx - 3 * yy)
    return out


def basis_jacobian(dirs: np.ndarray, degree: int = SH_DEGREE) -> np.ndarray:
    """Partial derivatives of :func:`basis` w.r.t. the direction components.

    Args:
        dirs: unit direction vectors, shape ``(N, 3)``.
        degree: maximum SH degree (0..3).

    Returns:
        Jacobian of shape ``(N, (degree+1)**2, 3)`` where ``[..., k, a]`` is
        ``d basis_k / d dir_a`` treating ``dir`` components as free variables
        (normalization is the caller's responsibility to chain through).
    """
    n = num_coeffs(degree)
    x, y, z = dirs[..., 0], dirs[..., 1], dirs[..., 2]
    jac = np.zeros(dirs.shape[:-1] + (n, 3), dtype=dirs.dtype)
    if degree >= 1:
        jac[..., 1, 1] = -C1
        jac[..., 2, 2] = C1
        jac[..., 3, 0] = -C1
    if degree >= 2:
        jac[..., 4, 0] = C2[0] * y
        jac[..., 4, 1] = C2[0] * x
        jac[..., 5, 1] = C2[1] * z
        jac[..., 5, 2] = C2[1] * y
        jac[..., 6, 0] = C2[2] * (-2 * x)
        jac[..., 6, 1] = C2[2] * (-2 * y)
        jac[..., 6, 2] = C2[2] * (4 * z)
        jac[..., 7, 0] = C2[3] * z
        jac[..., 7, 2] = C2[3] * x
        jac[..., 8, 0] = C2[4] * (2 * x)
        jac[..., 8, 1] = C2[4] * (-2 * y)
    if degree >= 3:
        xx, yy, zz = x * x, y * y, z * z
        jac[..., 9, 0] = C3[0] * (6 * x * y)
        jac[..., 9, 1] = C3[0] * (3 * xx - 3 * yy)
        jac[..., 10, 0] = C3[1] * (y * z)
        jac[..., 10, 1] = C3[1] * (x * z)
        jac[..., 10, 2] = C3[1] * (x * y)
        jac[..., 11, 0] = C3[2] * (-2 * x * y)
        jac[..., 11, 1] = C3[2] * (4 * zz - xx - 3 * yy)
        jac[..., 11, 2] = C3[2] * (8 * y * z)
        jac[..., 12, 0] = C3[3] * (-6 * x * z)
        jac[..., 12, 1] = C3[3] * (-6 * y * z)
        jac[..., 12, 2] = C3[3] * (6 * zz - 3 * xx - 3 * yy)
        jac[..., 13, 0] = C3[4] * (4 * zz - 3 * xx - yy)
        jac[..., 13, 1] = C3[4] * (-2 * x * y)
        jac[..., 13, 2] = C3[4] * (8 * x * z)
        jac[..., 14, 0] = C3[5] * (2 * x * z)
        jac[..., 14, 1] = C3[5] * (-2 * y * z)
        jac[..., 14, 2] = C3[5] * (xx - yy)
        jac[..., 15, 0] = C3[6] * (3 * xx - 3 * yy)
        jac[..., 15, 1] = C3[6] * (-6 * x * y)
    return jac


def eval_colors(
    sh_coeffs: np.ndarray, dirs: np.ndarray, degree: int = SH_DEGREE
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate RGB colors from SH coefficients and view directions.

    Args:
        sh_coeffs: coefficients, shape ``(N, 16, 3)`` (coefficients beyond
            ``(degree+1)**2`` are ignored).
        dirs: unit view directions, shape ``(N, 3)``.
        degree: active SH degree.

    Returns:
        ``(colors, clamp_mask)``: colors ``(N, 3)`` clamped to ``>= 0`` and a
        boolean mask ``(N, 3)`` that is True where the clamp was *not* active
        (i.e. where gradients flow).
    """
    n = num_coeffs(degree)
    b = basis(dirs, degree)
    raw = np.einsum("nk,nkc->nc", b, sh_coeffs[:, :n, :]) + SH_COLOR_OFFSET
    clamp_mask = raw > 0
    return np.maximum(raw, 0.0), clamp_mask


def eval_colors_backward(
    sh_coeffs: np.ndarray,
    dirs: np.ndarray,
    clamp_mask: np.ndarray,
    grad_colors: np.ndarray,
    degree: int = SH_DEGREE,
) -> tuple[np.ndarray, np.ndarray]:
    """Backpropagate through :func:`eval_colors`.

    Args:
        sh_coeffs: coefficients used in the forward pass, ``(N, 16, 3)``.
        dirs: unit view directions from the forward pass, ``(N, 3)``.
        clamp_mask: mask returned by :func:`eval_colors`.
        grad_colors: gradient w.r.t. the clamped colors, ``(N, 3)``.
        degree: active SH degree.

    Returns:
        ``(grad_coeffs, grad_dirs)`` with shapes ``(N, 16, 3)`` and
        ``(N, 3)``. ``grad_dirs`` is the gradient w.r.t. the *unnormalized*
        direction components (chain through normalization separately).
    """
    n = num_coeffs(degree)
    g = np.where(clamp_mask, grad_colors, 0.0)
    b = basis(dirs, degree)
    grad_coeffs = np.zeros_like(sh_coeffs)
    grad_coeffs[:, :n, :] = b[:, :, None] * g[:, None, :]
    jac = basis_jacobian(dirs, degree)  # (N, n, 3)
    coeff_dot_g = np.einsum("nkc,nc->nk", sh_coeffs[:, :n, :], g)  # (N, n)
    grad_dirs = np.einsum("nk,nka->na", coeff_dot_g, jac)
    return grad_coeffs, grad_dirs
