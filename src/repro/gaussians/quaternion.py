"""Quaternion utilities with analytic gradients.

Rotations are parameterized by ``(w, x, y, z)`` quaternions stored raw and
normalized on use, matching the 3DGS/gsplat convention. All functions are
vectorized over a leading batch axis.
"""

from __future__ import annotations

import numpy as np


def normalize(quats: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Return unit quaternions for raw ``(N, 4)`` input."""
    norms = np.linalg.norm(quats, axis=-1, keepdims=True)
    return quats / np.maximum(norms, eps)


def normalize_backward(
    quats: np.ndarray, grad_unit: np.ndarray, eps: float = 1e-12
) -> np.ndarray:
    """Backpropagate through :func:`normalize`.

    Args:
        quats: raw quaternions, shape ``(N, 4)``.
        grad_unit: gradient w.r.t. the normalized quaternions, ``(N, 4)``.

    Returns:
        Gradient w.r.t. the raw quaternions, ``(N, 4)``. Uses
        ``d(q/|q|)/dq = (I - u u^T) / |q|`` with ``u = q/|q|``.
    """
    norms = np.maximum(np.linalg.norm(quats, axis=-1, keepdims=True), eps)
    unit = quats / norms
    inner = np.sum(unit * grad_unit, axis=-1, keepdims=True)
    return (grad_unit - unit * inner) / norms


def to_rotation_matrix(unit_quats: np.ndarray) -> np.ndarray:
    """Convert unit quaternions ``(N, 4)`` to rotation matrices ``(N, 3, 3)``."""
    w, x, y, z = (unit_quats[..., i] for i in range(4))
    rot = np.empty(unit_quats.shape[:-1] + (3, 3), dtype=unit_quats.dtype)
    rot[..., 0, 0] = 1 - 2 * (y * y + z * z)
    rot[..., 0, 1] = 2 * (x * y - w * z)
    rot[..., 0, 2] = 2 * (x * z + w * y)
    rot[..., 1, 0] = 2 * (x * y + w * z)
    rot[..., 1, 1] = 1 - 2 * (x * x + z * z)
    rot[..., 1, 2] = 2 * (y * z - w * x)
    rot[..., 2, 0] = 2 * (x * z - w * y)
    rot[..., 2, 1] = 2 * (y * z + w * x)
    rot[..., 2, 2] = 1 - 2 * (x * x + y * y)
    return rot


def rotation_matrix_backward(
    unit_quats: np.ndarray, grad_rot: np.ndarray
) -> np.ndarray:
    """Backpropagate ``dL/dR`` to ``dL/d(unit quaternion)``.

    Args:
        unit_quats: unit quaternions, ``(N, 4)``.
        grad_rot: gradient w.r.t. the rotation matrices, ``(N, 3, 3)``.

    Returns:
        Gradient w.r.t. the unit quaternions, ``(N, 4)``.
    """
    w, x, y, z = (unit_quats[..., i] for i in range(4))
    g = grad_rot

    # Each dR/dq_k is linear in (w, x, y, z); contract with grad_rot.
    grad_w = 2 * (
        -z * g[..., 0, 1]
        + y * g[..., 0, 2]
        + z * g[..., 1, 0]
        - x * g[..., 1, 2]
        - y * g[..., 2, 0]
        + x * g[..., 2, 1]
    )
    grad_x = 2 * (
        y * g[..., 0, 1]
        + z * g[..., 0, 2]
        + y * g[..., 1, 0]
        - 2 * x * g[..., 1, 1]
        - w * g[..., 1, 2]
        + z * g[..., 2, 0]
        + w * g[..., 2, 1]
        - 2 * x * g[..., 2, 2]
    )
    grad_y = 2 * (
        -2 * y * g[..., 0, 0]
        + x * g[..., 0, 1]
        + w * g[..., 0, 2]
        + x * g[..., 1, 0]
        + z * g[..., 1, 2]
        - w * g[..., 2, 0]
        + z * g[..., 2, 1]
        - 2 * y * g[..., 2, 2]
    )
    grad_z = 2 * (
        -2 * z * g[..., 0, 0]
        - w * g[..., 0, 1]
        + x * g[..., 0, 2]
        + w * g[..., 1, 0]
        - 2 * z * g[..., 1, 1]
        + y * g[..., 1, 2]
        + x * g[..., 2, 0]
        + y * g[..., 2, 1]
    )
    return np.stack([grad_w, grad_x, grad_y, grad_z], axis=-1)


def random_unit_quats(
    num: int, rng: np.random.Generator, dtype=np.float64
) -> np.ndarray:
    """Sample ``num`` uniformly distributed unit quaternions."""
    q = rng.normal(size=(num, 4)).astype(dtype)
    return normalize(q)
