"""3D covariance construction from scale + rotation, with gradients.

A Gaussian's world-space covariance is ``Sigma = R S S^T R^T`` where ``R``
is the rotation from its (normalized) quaternion and ``S = diag(exp(log_scale))``
(Section 2.3 of the paper; identical to 3DGS).
"""

from __future__ import annotations

import numpy as np

from . import quaternion


def build_covariance(
    log_scales: np.ndarray, quats: np.ndarray
) -> tuple[np.ndarray, dict]:
    """Build world-space covariances.

    Args:
        log_scales: per-axis log extents, ``(N, 3)``.
        quats: raw (unnormalized) quaternions, ``(N, 4)``.

    Returns:
        ``(cov, ctx)`` where ``cov`` is ``(N, 3, 3)`` and ``ctx`` caches the
        intermediates needed by :func:`build_covariance_backward`.
    """
    scales = np.exp(log_scales)
    unit = quaternion.normalize(quats)
    rot = quaternion.to_rotation_matrix(unit)
    # V = R S, Sigma = V V^T
    factor = rot * scales[:, None, :]
    cov = factor @ np.swapaxes(factor, -1, -2)
    ctx = {"scales": scales, "unit": unit, "rot": rot, "factor": factor}
    return cov, ctx


def build_covariance_backward(
    quats: np.ndarray, ctx: dict, grad_cov: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Backpropagate ``dL/dSigma`` to log-scales and raw quaternions.

    Args:
        quats: raw quaternions passed to :func:`build_covariance`.
        ctx: context dict returned by :func:`build_covariance`.
        grad_cov: gradient w.r.t. the covariances, ``(N, 3, 3)``. Need not
            be symmetric; it is symmetrized internally since ``Sigma`` is.

    Returns:
        ``(grad_log_scales, grad_quats)`` with shapes ``(N, 3)`` and ``(N, 4)``.
    """
    scales = ctx["scales"]
    rot = ctx["rot"]
    factor = ctx["factor"]

    sym = grad_cov + np.swapaxes(grad_cov, -1, -2)
    grad_factor = sym @ factor  # dL/dV for Sigma = V V^T
    grad_rot = grad_factor * scales[:, None, :]
    grad_scales = np.einsum("nik,nik->nk", rot, grad_factor)
    grad_log_scales = grad_scales * scales
    grad_unit = quaternion.rotation_matrix_backward(ctx["unit"], grad_rot)
    grad_quats = quaternion.normalize_backward(quats, grad_unit)
    return grad_log_scales, grad_quats
