"""GS-Scale reproduction: large-scale 3DGS training via host offloading.

Public API re-exports the pieces a downstream user needs: the Gaussian
model, the differentiable renderer, the optimizers (including the paper's
deferred optimizer update), the GS-Scale trainer and its system variants,
and the performance simulator used to regenerate the paper's figures.
"""

from . import bench, cameras, core, datasets, densify, faults, gaussians, io
from . import metrics, optim, recon, render, serve, sim, telemetry, train
from .cameras import Camera
from .core import (
    GSScaleConfig,
    ParameterStore,
    ShardedGSScaleSystem,
    Trainer,
    create_system,
)
from .core.checkpoint import load_checkpoint, resume_model, save_checkpoint
from .datasets import SceneSpec, SyntheticSceneConfig, build_scene, get_scene
from .densify import DensifyConfig
from .gaussians import GaussianModel
from .metrics import perceptual_distance, psnr, ssim
from .optim import AdamConfig, DeferredAdam, DenseAdam
from .datasets.colmap import load_colmap, write_colmap
from .render import frustum_cull, render, render_backward
from .render.maps import render_depth_alpha
from .sim.replay import replay_history
from .sim import PLATFORMS, get_platform, simulate_epoch

__all__ = [
    "AdamConfig",
    "Camera",
    "DeferredAdam",
    "DenseAdam",
    "DensifyConfig",
    "GSScaleConfig",
    "GaussianModel",
    "PLATFORMS",
    "ParameterStore",
    "SceneSpec",
    "ShardedGSScaleSystem",
    "SyntheticSceneConfig",
    "Trainer",
    "bench",
    "build_scene",
    "cameras",
    "core",
    "create_system",
    "datasets",
    "densify",
    "faults",
    "frustum_cull",
    "load_checkpoint",
    "load_colmap",
    "render_depth_alpha",
    "replay_history",
    "resume_model",
    "save_checkpoint",
    "write_colmap",
    "gaussians",
    "io",
    "get_platform",
    "get_scene",
    "metrics",
    "optim",
    "perceptual_distance",
    "psnr",
    "recon",
    "render",
    "render_backward",
    "serve",
    "simulate_epoch",
    "sim",
    "ssim",
    "telemetry",
    "train",
]

__version__ = "1.0.0"
