"""Peak signal-to-noise ratio."""

from __future__ import annotations

import numpy as np


def psnr(image: np.ndarray, reference: np.ndarray, data_range: float = 1.0) -> float:
    """PSNR in dB between two images of the same shape.

    Args:
        image: rendered image.
        reference: ground-truth image.
        data_range: dynamic range of the data (1.0 for float images).

    Returns:
        PSNR in dB; ``inf`` for identical images.
    """
    if image.shape != reference.shape:
        raise ValueError(f"shape mismatch: {image.shape} vs {reference.shape}")
    mse = float(np.mean((np.asarray(image, dtype=np.float64) - reference) ** 2))
    if mse == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range**2 / mse))
