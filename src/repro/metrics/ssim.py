"""Structural similarity (SSIM) with an exact analytic gradient.

3DGS trains on ``(1 - lambda) L1 + lambda (1 - SSIM)``, so the training
loop needs ``dSSIM/dimage``. The window here is a uniform box filter with
zero ("constant") padding: box correlation with zero padding is exactly
self-adjoint, which makes the hand-derived gradient the exact adjoint of
the forward pass (verified numerically in ``tests/metrics``).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

#: Default SSIM constants for data range 1.0 (Wang et al.).
C1 = 0.01**2
C2 = 0.03**2

DEFAULT_WINDOW = 11


def _filter(x: np.ndarray, window: int) -> np.ndarray:
    """Per-channel box filter with zero padding."""
    if x.ndim == 2:
        return uniform_filter(x, size=window, mode="constant")
    out = np.empty_like(x)
    for c in range(x.shape[2]):
        out[:, :, c] = uniform_filter(x[:, :, c], size=window, mode="constant")
    return out


def ssim(
    image: np.ndarray, reference: np.ndarray, window: int = DEFAULT_WINDOW
) -> float:
    """Mean SSIM between two images (grayscale or ``(H, W, C)``)."""
    value, _ = ssim_with_grad(image, reference, window=window, need_grad=False)
    return value


def ssim_with_grad(
    image: np.ndarray,
    reference: np.ndarray,
    window: int = DEFAULT_WINDOW,
    need_grad: bool = True,
) -> tuple[float, np.ndarray | None]:
    """Mean SSIM and its gradient w.r.t. ``image``.

    Args:
        image: rendered image ``x``.
        reference: ground truth ``y`` (treated as constant).
        window: box-window side length.
        need_grad: skip the gradient computation when False.

    Returns:
        ``(mean_ssim, grad)`` where ``grad`` has ``image``'s shape (or None).
    """
    if image.shape != reference.shape:
        raise ValueError(f"shape mismatch: {image.shape} vs {reference.shape}")
    x = np.asarray(image, dtype=np.float64)
    y = np.asarray(reference, dtype=np.float64)

    mu_x = _filter(x, window)
    mu_y = _filter(y, window)
    e_x2 = _filter(x * x, window)
    e_y2 = _filter(y * y, window)
    e_xy = _filter(x * y, window)

    var_x = e_x2 - mu_x * mu_x
    var_y = e_y2 - mu_y * mu_y
    cov = e_xy - mu_x * mu_y

    a1 = 2 * mu_x * mu_y + C1
    a2 = 2 * cov + C2
    b1 = mu_x * mu_x + mu_y * mu_y + C1
    b2 = var_x + var_y + C2

    s = (a1 * a2) / (b1 * b2)
    mean_s = float(s.mean())
    if not need_grad:
        return mean_s, None

    # partials of S w.r.t. the three x-dependent filtered statistics
    inv_b1b2 = 1.0 / (b1 * b2)
    d_mu = 2 * mu_y * (a2 - a1) * inv_b1b2 - 2 * mu_x * s * (1.0 / b1 - 1.0 / b2)
    d_ex2 = -s / b2
    d_exy = 2 * a1 * inv_b1b2

    n = s.size
    grad = (
        _filter(d_mu, window)
        + 2 * x * _filter(d_ex2, window)
        + y * _filter(d_exy, window)
    ) / n
    return mean_s, grad
