"""Deterministic perceptual distance — the offline LPIPS substitute.

The paper reports LPIPS (learned AlexNet features). No pretrained network
is available offline, so this module implements a multi-scale random-
projection distance: fixed-seed random 3x3 convolution banks extract
features at several pyramid levels, feature maps are channel-normalized
(as LPIPS normalizes its activations), and the mean squared difference is
averaged across scales. The measure is deterministic, zero for identical
images, symmetric, and — like LPIPS — decreases monotonically as a render
approaches the reference, which is the property Figures 1 and 13 rely on.
Reported throughout as "LPIPS-proxy".
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import convolve

_FEATURE_SEED = 20260610
_NUM_FILTERS = 12
_SCALES = 3


def _filter_bank(num_filters: int, in_channels: int = 3) -> np.ndarray:
    """Fixed random 3x3 filters, zero-mean and unit-norm per filter."""
    rng = np.random.default_rng(_FEATURE_SEED)
    bank = rng.normal(size=(num_filters, in_channels, 3, 3))
    bank -= bank.mean(axis=(1, 2, 3), keepdims=True)
    bank /= np.linalg.norm(bank.reshape(num_filters, -1), axis=1)[
        :, None, None, None
    ]
    return bank


_BANK = _filter_bank(_NUM_FILTERS)


def _features(image: np.ndarray) -> np.ndarray:
    """Channel-normalized random-projection feature maps, ``(H, W, F)``."""
    feats = np.empty(image.shape[:2] + (_NUM_FILTERS,), dtype=np.float64)
    for f in range(_NUM_FILTERS):
        acc = np.zeros(image.shape[:2], dtype=np.float64)
        for c in range(image.shape[2]):
            acc += convolve(image[:, :, c], _BANK[f, c], mode="nearest")
        feats[:, :, f] = acc
    norms = np.linalg.norm(feats, axis=2, keepdims=True)
    return feats / np.maximum(norms, 1e-10)


def _downsample(image: np.ndarray) -> np.ndarray:
    """2x average pooling (trims odd edges)."""
    h, w = image.shape[:2]
    h2, w2 = h // 2, w // 2
    trimmed = image[: h2 * 2, : w2 * 2]
    return 0.25 * (
        trimmed[0::2, 0::2]
        + trimmed[1::2, 0::2]
        + trimmed[0::2, 1::2]
        + trimmed[1::2, 1::2]
    )


def perceptual_distance(image: np.ndarray, reference: np.ndarray) -> float:
    """LPIPS-proxy distance between two ``(H, W, 3)`` images in [0, 1].

    Lower is better; 0 for identical inputs.
    """
    if image.shape != reference.shape:
        raise ValueError(f"shape mismatch: {image.shape} vs {reference.shape}")
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("expected (H, W, 3) images")
    x = np.asarray(image, dtype=np.float64)
    y = np.asarray(reference, dtype=np.float64)
    total = 0.0
    scales = 0
    for _ in range(_SCALES):
        if min(x.shape[:2]) < 4:
            break
        fx = _features(x)
        fy = _features(y)
        total += float(np.mean((fx - fy) ** 2))
        scales += 1
        x = _downsample(x)
        y = _downsample(y)
    if scales == 0:
        raise ValueError("image too small for perceptual distance (min side 4)")
    return total / scales
