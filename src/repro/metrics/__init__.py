"""Rendering-quality metrics: PSNR, SSIM (with gradient), LPIPS-proxy."""

from .perceptual import perceptual_distance
from .psnr import psnr
from .ssim import ssim, ssim_with_grad

__all__ = ["perceptual_distance", "psnr", "ssim", "ssim_with_grad"]
