"""Command-line regeneration of every paper table and figure.

``python -m repro.figures`` runs all experiments and writes their reports
to ``benchmarks/out/`` (the same code paths the pytest benches execute,
without the pytest machinery). ``python -m repro.figures fig11 fig12``
selects a subset.
"""

from __future__ import annotations

import importlib
import sys

#: Experiment id -> (bench module, builder entry points to run).
EXPERIMENTS = {
    "table1": ("bench_table1_platforms", ["build_table"]),
    "table2": ("bench_table2_scenes", ["build_table"]),
    "fig01": ("bench_fig01_max_quality", ["build_table"]),
    "fig03": ("bench_fig03_motivation", ["build_fig3a", "build_fig3b"]),
    "fig04": ("bench_fig04_active_ratio", ["build_registry_table"]),
    "fig07": ("bench_fig07_breakdown", ["build_table"]),
    "fig09": ("bench_fig09_timeline", ["build_timelines"]),
    "fig11": ("bench_fig11_throughput", ["build_all"]),
    "fig12": ("bench_fig12_memory", ["build_table"]),
    "fig13": ("bench_fig13_quality_scaling", ["build_model_curves"]),
    "fig14": ("bench_fig14_server", ["build_table"]),
    "fig15": ("bench_fig15_sensitivity", ["build_mem_limit_tables",
                                          "build_gpu_table"]),
    "fig16": ("bench_fig16_resolution", ["build_tables"]),
}


def _load_bench_module(name: str):
    """Import a bench module from the repository's benchmarks/ directory."""
    import os

    bench_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
        "benchmarks",
    )
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    return importlib.import_module(name)


def _render(result) -> list[str]:
    """Pull printable tables/strings out of a builder's return value."""
    from .bench.harness import Table

    out = []
    if isinstance(result, Table):
        out.append(result.render())
    elif isinstance(result, str):
        out.append(result)
    elif isinstance(result, (tuple, list)):
        for item in result:
            out.extend(_render(item))
    elif isinstance(result, dict):
        for item in result.values():
            out.extend(_render(item))
    return out


def run(experiment_ids: list[str] | None = None) -> int:
    """Regenerate the selected experiments (all by default)."""
    ids = experiment_ids or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}")
        return 2
    for exp in ids:
        module_name, builders = EXPERIMENTS[exp]
        module = _load_bench_module(module_name)
        chunks = []
        for builder in builders:
            result = getattr(module, builder)()
            chunks.extend(_render(result))
        text = "\n\n".join(chunks)
        # persist through the same report channel the benches use
        from .bench.harness import output_dir
        import os

        path = os.path.join(output_dir(), f"{exp}_cli.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print(f"=== {exp} ===")
        print(text)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:] or None))
