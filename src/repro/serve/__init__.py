"""Render-serving subsystem: batched multi-client inference.

Turns a trained (possibly larger-than-host) model into a request-serving
endpoint: read-only serving stores with out-of-core paging
(:mod:`~repro.serve.store`), nested level-of-detail subsets
(:mod:`~repro.serve.lod`), a pose-keyed frame cache
(:mod:`~repro.serve.cache`), a multi-worker render farm
(:mod:`~repro.serve.farm`), and the :class:`~repro.serve.service.\
RenderService` that batches client requests across all of them. The
modeled counterpart lives in :mod:`repro.sim.serve`; see the serving
section of ``docs/architecture.md``.
"""

from .cache import FrameCache, frame_key
from .farm import FrameTask, RenderFarm, render_frame
from .lod import (
    DEFAULT_LOD_LEVELS,
    LODLevel,
    LODSet,
    lod_quality_report,
    splat_importance,
)
from .service import (
    RenderRequest,
    RenderResponse,
    RenderService,
    ServeConfig,
    ServeStats,
    default_serve_raster_config,
    requests_from_cameras,
)
from .store import (
    InMemoryServingStore,
    PagedServingStore,
    PageQuarantinedError,
    ServingStore,
)

__all__ = [
    "DEFAULT_LOD_LEVELS",
    "FrameCache",
    "FrameTask",
    "InMemoryServingStore",
    "LODLevel",
    "LODSet",
    "PageQuarantinedError",
    "PagedServingStore",
    "RenderFarm",
    "RenderRequest",
    "RenderResponse",
    "RenderService",
    "ServeConfig",
    "ServeStats",
    "ServingStore",
    "default_serve_raster_config",
    "frame_key",
    "lod_quality_report",
    "render_frame",
    "requests_from_cameras",
    "splat_importance",
]
