"""Pose-keyed frame cache: byte-budgeted LRU over rendered images.

Serving traffic is heavily repetitive — orbit clients revisit poses,
dashboards poll fixed viewpoints — so the cheapest render is the one not
rendered. A :class:`FrameCache` maps a **frame key** (the exact camera
pose + intrinsics + image size + LOD level + model version, hashed) to
the composited image, evicting least-recently-used frames past a byte
budget.

The model version in the key is what makes hot-swapping safe: swapping
the served model bumps the service's version, so every pre-swap key
misses by construction, *and* the service flushes the cache eagerly so
the stale frames' bytes are reclaimed immediately rather than aging out.
A cached frame is marked read-only before it is stored — and a frame
that arrives as a view of a larger buffer is snapshotted first, since
read-only views do not protect their base — so neither a client mutating
a response nor a renderer reusing its pixel buffer can poison later
hits.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..cameras.camera import Camera

__all__ = ["FrameCache", "frame_key"]


def frame_key(camera: Camera, lod: int, model_version: int) -> bytes:
    """Exact-match cache key for one (pose, size, LOD, model) frame.

    Byte-hashes the float fields — no rounding: two cameras produce one
    key iff they render identical frames from an identical model. The
    one normalization is ``-0.0`` -> ``+0.0`` (adding ``0.0`` flips only
    the sign of negative zeros in IEEE 754): the two zeros are
    bit-different but render identically, and axis-aligned ``look_at``
    poses routinely emit ``-0.0`` rotation entries, so without it equal
    poses would miss each other's cache lines.
    """
    parts = [
        np.asarray(
            [camera.width, camera.height, lod, model_version], dtype=np.int64
        ).tobytes(),
        (
            np.asarray(
                [
                    camera.fx,
                    camera.fy,
                    camera.cx,
                    camera.cy,
                    camera.near,
                    camera.far,
                ],
                dtype=np.float64,
            )
            + 0.0
        ).tobytes(),
        (camera.world_to_cam_rot + 0.0).tobytes(),
        (camera.world_to_cam_trans + 0.0).tobytes(),
    ]
    import hashlib

    return hashlib.blake2b(b"".join(parts), digest_size=16).digest()


class FrameCache:
    """Byte-budgeted LRU cache of rendered frames.

    Args:
        capacity_bytes: total byte budget; frames larger than the budget
            are never stored (they would evict everything for one entry).
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 1:
            raise ValueError("cache capacity must be >= 1 byte")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self.live_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: bytes) -> np.ndarray | None:
        """The cached frame for ``key`` (refreshing its recency), or None."""
        image = self._entries.get(key)
        if image is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return image

    def put(self, key: bytes, image: np.ndarray) -> np.ndarray:
        """Insert a frame, evicting LRU entries past the byte budget.

        Returns the array actually stored — callers must hand *that* to
        clients so responses alias the frozen cached buffer. When
        ``image`` owns its buffer it is frozen in place; a *view* is
        snapshotted first, because freezing a view leaves its base
        writable, so a caller holding the base — e.g. the renderer's
        flat pixel buffer that the ``(H, W, 3)`` result reshapes —
        could still rewrite cached bytes and poison later hits.
        Oversized frames are returned unstored (and unfrozen).
        """
        if image.nbytes > self.capacity_bytes:
            return image
        old = self._entries.pop(key, None)
        if old is not None:
            self.live_bytes -= old.nbytes
        while self.live_bytes + image.nbytes > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.live_bytes -= evicted.nbytes
            self.evictions += 1
        if image.base is not None or not image.flags.owndata:
            image = image.copy()
        image.flags.writeable = False
        self._entries[key] = image
        self.live_bytes += image.nbytes
        return image

    def invalidate(self) -> int:
        """Drop every cached frame (model swap); returns frames dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.live_bytes = 0
        self.invalidations += 1
        return dropped
