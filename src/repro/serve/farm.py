"""Multi-worker render farm: whole frames fanned out over the shared pool.

The ``parallel`` raster engine splits *one* frame across cores; a serving
tick has the opposite shape — many independent frames — so the farm ships
each frame to its own worker process and keeps the per-frame pipeline
single-core. Both fan-outs draw from the same
:func:`~repro.render.parallel.get_raster_pool` registry of persistent
pools, so a process that trains, serves, and benchmarks never holds two
worker fleets for the same core count.

The model reaches the workers the same way span tables reach the raster
workers: :meth:`RenderFarm.publish` packs the packed parameter matrix and
the LOD drop-level array into one shared-memory segment, and each task
pickles only a camera plus a few scalars. Workers attach read-only, run
:func:`render_frame` — the *same* function the service runs inline, so a
farm frame is bit-identical to a single-process frame — and ship the
composited image back.

:meth:`RenderFarm.publish_sharded` is the out-of-core variant for a
:class:`~repro.serve.store.PagedServingStore`: the shared segment holds
only the resident geometric block and the shard row ids, workers re-open
the non-geometric page files read-only, and frames composite shard by
shard through :func:`render_frame_sharded` (the render-side twin of the
training systems' fragment path) — the packed ``(N, 59)`` matrix is
never assembled anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cameras.camera import Camera
from ..core.pagecodec import get_page_codec
from ..gaussians import layout
from ..gaussians.model import GaussianModel
from ..render import (
    FragmentSource,
    frustum_cull,
    projection,
    rasterize_fragment_sources,
    render,
)
from ..render.parallel import _pack_shm, _attach_shm, _shm_views, get_raster_pool
from ..render.rasterize import RasterConfig
from ..telemetry.trace import span as _span
from .store import InMemoryServingStore, PagedServingStore, ServingStore, _members

__all__ = [
    "FrameTask",
    "RenderFarm",
    "render_frame",
    "render_frame_sharded",
]


@dataclass(frozen=True)
class FrameTask:
    """One frame to render: pose + level + raster knobs."""

    camera: Camera
    lod: int
    sh_degree: int
    config: RasterConfig | None = None
    background: np.ndarray | None = None


def render_frame(
    store: ServingStore,
    drop_level: np.ndarray | None,
    task: FrameTask,
) -> np.ndarray:
    """Render one frame from a serving store (the single serving path).

    Culls against the store's resident geometry, restricts the visible
    ids to the task's LOD subset (``drop_level > lod``; ``lod == 0`` or a
    missing array keeps everything), gathers the packed rows, and
    composites at the task's SH degree. Inline service renders and farm
    workers both run exactly this function.
    """
    with _span("serve/frame", "serve", lod=task.lod):
        means, log_scales, quats = store.geometry()
        cull = frustum_cull(means, log_scales, quats, task.camera)
        ids = cull.valid_ids
        if drop_level is not None and task.lod > 0:
            ids = ids[drop_level[ids] > task.lod]
        compact = GaussianModel(store.gather(ids))
        return render(
            compact,
            task.camera,
            sh_degree=task.sh_degree,
            background=task.background,
            valid_ids=np.arange(ids.size),
            config=task.config,
        ).image


class _WorkerPagedStore:
    """Worker-side read-only view of a published :class:`PagedServingStore`.

    Built from the shared geometric block plus the page-file paths: the
    worker re-opens each shard's non-geometric page as a read-only memmap
    on first touch. No packed ``(N, 59)`` matrix exists on either side of
    the fan-out — only per-shard compact slices, exactly like the
    training-side fragment path.
    """

    def __init__(self, geo, shard_rows, page_specs):
        self.geo = geo
        self.shard_rows = shard_rows
        self._specs = page_specs
        self._pages: dict[int, np.ndarray] = {}

    @property
    def dtype(self):
        return self.geo.dtype

    def geometry(self):
        return (
            self.geo[:, layout.MEAN_SLICE],
            self.geo[:, layout.SCALE_SLICE],
            self.geo[:, layout.QUAT_SLICE],
        )

    def _page(self, k: int) -> np.ndarray:
        page = self._pages.get(k)
        if page is None:
            path, num_rows, codec_name = self._specs[k]
            if num_rows and path:
                if codec_name == "raw":
                    page = np.memmap(
                        path, dtype=self.dtype, mode="r",
                        shape=(num_rows, layout.NON_GEOMETRIC_DIM),
                    )
                else:
                    # an encoded page is a whole-file read + decode (no
                    # partial mapping), still read-only on the worker;
                    # decode_page validates the GSP1 seal so a corrupt
                    # page fails this worker's frame, not the fleet
                    with open(path, "rb") as fh:
                        buf = fh.read()
                    page = get_page_codec(codec_name).decode_page(
                        buf,
                        (num_rows, layout.NON_GEOMETRIC_DIM),
                        self.dtype,
                        path=path,
                    )
            else:
                page = np.empty(
                    (0, layout.NON_GEOMETRIC_DIM), dtype=self.dtype
                )
            self._pages[k] = page
        return page

    def gather_shard(self, k, ids, local):
        out = np.empty((local.size, layout.PARAM_DIM), dtype=self.dtype)
        out[:, layout.GEOMETRIC_SLICE] = self.geo[ids]
        out[:, layout.NON_GEOMETRIC_SLICE] = self._page(k)[local]
        return out

    def close(self) -> None:
        self._pages.clear()


def render_frame_sharded(
    store,
    drop_level: np.ndarray | None,
    task: FrameTask,
) -> np.ndarray:
    """Render one frame shard by shard — the gather-free serving path.

    Same culling and LOD semantics as :func:`render_frame`, but the
    visible union is never gathered into one packed model: each serve
    shard contributes only its own compact rows (one page touched at a
    time), projected into a :class:`~repro.render.fragment.FragmentSource`,
    and the frame is composited with the fragment transmittance merge.
    ``store`` is a :class:`~repro.serve.store.PagedServingStore` (inline
    service) or the farm workers' :class:`_WorkerPagedStore` — both speak
    ``geometry()`` / ``shard_rows`` / ``gather_shard``. The task config's
    thresholds/dtype/workers apply; its ``engine`` is moot (this *is* the
    fragment path). Output matches a joint :func:`render_frame` to
    compositing-rounding precision (~1e-12) and is bit-identical between
    the inline and farmed executions.
    """
    means, log_scales, quats = store.geometry()
    cull = frustum_cull(means, log_scales, quats, task.camera)
    ids = cull.valid_ids
    if drop_level is not None and task.lod > 0:
        ids = ids[drop_level[ids] > task.lod]
    config = task.config
    camera = task.camera
    sources = []
    for k, rows in enumerate(store.shard_rows):
        sel, local = _members(ids, rows)
        if sel.size == 0:
            continue
        compact = GaussianModel(store.gather_shard(k, ids[sel], local))
        proj = projection.project(
            compact.means, compact.log_scales, compact.quats,
            compact.opacity_logits, compact.sh, camera,
            sh_degree=task.sh_degree,
        )
        sources.append(
            FragmentSource(
                means2d=proj.geom.means2d,
                conics=proj.geom.conics,
                colors=proj.colors,
                opacities=proj.opacities,
                depths=proj.geom.depths,
                radii=proj.geom.radii,
            )
        )
    if not sources:
        dtype = store.dtype
        background = (
            np.zeros(3, dtype=dtype)
            if task.background is None
            else np.asarray(task.background, dtype=dtype)
        )
        image = np.empty((camera.height, camera.width, 3), dtype=dtype)
        image[:] = background
        return image
    return rasterize_fragment_sources(
        sources, camera.width, camera.height,
        background=(
            None
            if task.background is None
            else np.asarray(task.background, dtype=store.dtype)
        ),
        config=config,
    ).image


def _sharded_frame_task(args):
    """Pool task: attach the shared geometry, map the pages, render."""
    shm_name, metas, page_specs, task = args
    shm = _attach_shm(shm_name)
    views = store = None
    try:
        views = _shm_views(shm, metas)
        flat = views["shard_rows_flat"]
        offsets = views["shard_offsets"]
        shard_rows = [
            flat[offsets[k] : offsets[k + 1]]
            for k in range(offsets.size - 1)
        ]
        store = _WorkerPagedStore(views["geo"], shard_rows, page_specs)
        image = render_frame_sharded(store, views.get("drop_level"), task)
    finally:
        if store is not None:
            store.close()
        del views, store  # drop buffer views so close() cannot see exports
        shm.close()
    return image


def _frame_task(args):
    """Pool task: attach the published model, render one frame, detach."""
    shm_name, metas, task = args
    shm = _attach_shm(shm_name)
    views = store = None
    try:
        views = _shm_views(shm, metas)
        store = InMemoryServingStore(views["params"], copy=False)
        image = render_frame(store, views.get("drop_level"), task)
    finally:
        del views, store  # drop buffer views so close() cannot see exports
        shm.close()
    return image


class RenderFarm:
    """Fan independent frames out over the shared persistent pool.

    Args:
        workers: worker-process count; ``<= 1`` renders every batch
            inline (useful as a parity oracle for the pooled path).
        map_timeout_s: per-batch deadline handed to the supervised
            pool's :meth:`~repro.render.parallel.PersistentPool.map`
            (``None`` = the pool's own default).
        map_retries: worker-death/deadline retry budget per batch
            (``None`` = the pool's own default).
    """

    def __init__(
        self,
        workers: int,
        map_timeout_s: float | None = None,
        map_retries: int | None = None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.map_timeout_s = map_timeout_s
        self.map_retries = map_retries
        self._shm = None
        self._metas = None
        self._store: ServingStore | None = None
        self._drop_level: np.ndarray | None = None
        self._sharded = False
        self._page_specs: list[tuple[str, int, str]] | None = None

    @property
    def published(self) -> bool:
        """Whether a model is currently published to the workers."""
        return self._store is not None

    def publish(
        self, store: InMemoryServingStore, drop_level: np.ndarray | None
    ) -> None:
        """Make ``store`` the served model (replacing any previous one).

        Packs the parameter matrix + LOD ranks into a fresh shared-memory
        segment; the old segment is unlinked, so a hot swap leaks
        nothing. ``drop_level=None`` serves every task at full detail
        (no LOD filtering, whatever the task's ``lod``).
        """
        self.unpublish()
        self._store = store
        self._drop_level = (
            None if drop_level is None
            else np.asarray(drop_level, dtype=np.int16)
        )
        if self.workers >= 2:
            arrays = {"params": store.params}
            if self._drop_level is not None:
                arrays["drop_level"] = self._drop_level
            self._shm, self._metas = _pack_shm(arrays)

    def publish_sharded(
        self, store: PagedServingStore, drop_level: np.ndarray | None
    ) -> None:
        """Publish a paged store without packing the model.

        The shared segment carries only the resident geometric block and
        the shard row ids (~1/6 of the packed matrix); workers re-open
        each shard's non-geometric page file read-only on demand, so no
        process — host or worker — ever holds the ``(N, 59)`` union.
        Frames render through :func:`render_frame_sharded` on both the
        inline and pooled paths.
        """
        self.unpublish()
        self._store = store
        self._sharded = True
        self._drop_level = (
            None if drop_level is None
            else np.asarray(drop_level, dtype=np.int16)
        )
        if self.workers >= 2:
            self._page_specs = store.page_paths()
            arrays = {
                "geo": store.geo,
                "shard_rows_flat": (
                    np.concatenate(store.shard_rows)
                    if store.shard_rows
                    else np.empty(0, dtype=np.int64)
                ),
                "shard_offsets": np.concatenate(
                    [[0], np.cumsum([r.size for r in store.shard_rows])]
                ).astype(np.int64),
            }
            if self._drop_level is not None:
                arrays["drop_level"] = self._drop_level
            self._shm, self._metas = _pack_shm(arrays)

    def unpublish(self) -> None:
        """Release the published model's shared segment (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            self._shm.unlink()
            self._shm = None
            self._metas = None
        self._store = None
        self._drop_level = None
        self._sharded = False
        self._page_specs = None

    def render_batch(self, tasks: list[FrameTask]) -> list[np.ndarray]:
        """Render every task, one worker per frame (inline below 2)."""
        if self._store is None:
            raise RuntimeError("no model published to the farm")
        if self.workers <= 1 or len(tasks) <= 1:
            frame = render_frame_sharded if self._sharded else render_frame
            return [
                frame(self._store, self._drop_level, task) for task in tasks
            ]
        pool = get_raster_pool(self.workers)
        if self._sharded:
            return pool.map(
                _sharded_frame_task,
                [
                    (self._shm.name, self._metas, self._page_specs, task)
                    for task in tasks
                ],
                timeout=self.map_timeout_s,
                retries=self.map_retries,
            )
        return pool.map(
            _frame_task,
            [(self._shm.name, self._metas, task) for task in tasks],
            timeout=self.map_timeout_s,
            retries=self.map_retries,
        )

    def close(self) -> None:
        """Release the shared segment (the pooled workers are shared
        process-level state, reaped by
        :func:`~repro.render.parallel.shutdown_raster_pools`)."""
        self.unpublish()

    def __enter__(self) -> "RenderFarm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
