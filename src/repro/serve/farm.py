"""Multi-worker render farm: whole frames fanned out over the shared pool.

The ``parallel`` raster engine splits *one* frame across cores; a serving
tick has the opposite shape — many independent frames — so the farm ships
each frame to its own worker process and keeps the per-frame pipeline
single-core. Both fan-outs draw from the same
:func:`~repro.render.parallel.get_raster_pool` registry of persistent
pools, so a process that trains, serves, and benchmarks never holds two
worker fleets for the same core count.

The model reaches the workers the same way span tables reach the raster
workers: :meth:`RenderFarm.publish` packs the packed parameter matrix and
the LOD drop-level array into one shared-memory segment, and each task
pickles only a camera plus a few scalars. Workers attach read-only, run
:func:`render_frame` — the *same* function the service runs inline, so a
farm frame is bit-identical to a single-process frame — and ship the
composited image back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cameras.camera import Camera
from ..gaussians.model import GaussianModel
from ..render import frustum_cull, render
from ..render.parallel import _pack_shm, _attach_shm, _shm_views, get_raster_pool
from ..render.rasterize import RasterConfig
from .store import InMemoryServingStore, ServingStore

__all__ = ["FrameTask", "RenderFarm", "render_frame"]


@dataclass(frozen=True)
class FrameTask:
    """One frame to render: pose + level + raster knobs."""

    camera: Camera
    lod: int
    sh_degree: int
    config: RasterConfig | None = None
    background: np.ndarray | None = None


def render_frame(
    store: ServingStore,
    drop_level: np.ndarray | None,
    task: FrameTask,
) -> np.ndarray:
    """Render one frame from a serving store (the single serving path).

    Culls against the store's resident geometry, restricts the visible
    ids to the task's LOD subset (``drop_level > lod``; ``lod == 0`` or a
    missing array keeps everything), gathers the packed rows, and
    composites at the task's SH degree. Inline service renders and farm
    workers both run exactly this function.
    """
    means, log_scales, quats = store.geometry()
    cull = frustum_cull(means, log_scales, quats, task.camera)
    ids = cull.valid_ids
    if drop_level is not None and task.lod > 0:
        ids = ids[drop_level[ids] > task.lod]
    compact = GaussianModel(store.gather(ids))
    return render(
        compact,
        task.camera,
        sh_degree=task.sh_degree,
        background=task.background,
        valid_ids=np.arange(ids.size),
        config=task.config,
    ).image


def _frame_task(args):
    """Pool task: attach the published model, render one frame, detach."""
    shm_name, metas, task = args
    shm = _attach_shm(shm_name)
    views = store = None
    try:
        views = _shm_views(shm, metas)
        store = InMemoryServingStore(views["params"], copy=False)
        image = render_frame(store, views.get("drop_level"), task)
    finally:
        del views, store  # drop buffer views so close() cannot see exports
        shm.close()
    return image


class RenderFarm:
    """Fan independent frames out over the shared persistent pool.

    Args:
        workers: worker-process count; ``<= 1`` renders every batch
            inline (useful as a parity oracle for the pooled path).
    """

    def __init__(self, workers: int):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self._shm = None
        self._metas = None
        self._store: InMemoryServingStore | None = None
        self._drop_level: np.ndarray | None = None

    @property
    def published(self) -> bool:
        """Whether a model is currently published to the workers."""
        return self._store is not None

    def publish(
        self, store: InMemoryServingStore, drop_level: np.ndarray | None
    ) -> None:
        """Make ``store`` the served model (replacing any previous one).

        Packs the parameter matrix + LOD ranks into a fresh shared-memory
        segment; the old segment is unlinked, so a hot swap leaks
        nothing. ``drop_level=None`` serves every task at full detail
        (no LOD filtering, whatever the task's ``lod``).
        """
        self.unpublish()
        self._store = store
        self._drop_level = (
            None if drop_level is None
            else np.asarray(drop_level, dtype=np.int16)
        )
        if self.workers >= 2:
            arrays = {"params": store.params}
            if self._drop_level is not None:
                arrays["drop_level"] = self._drop_level
            self._shm, self._metas = _pack_shm(arrays)

    def unpublish(self) -> None:
        """Release the published model's shared segment (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            self._shm.unlink()
            self._shm = None
            self._metas = None
        self._store = None
        self._drop_level = None

    def render_batch(self, tasks: list[FrameTask]) -> list[np.ndarray]:
        """Render every task, one worker per frame (inline below 2)."""
        if self._store is None:
            raise RuntimeError("no model published to the farm")
        if self.workers <= 1 or len(tasks) <= 1:
            return [
                render_frame(self._store, self._drop_level, task)
                for task in tasks
            ]
        pool = get_raster_pool(self.workers)
        return pool.map(
            _frame_task,
            [(self._shm.name, self._metas, task) for task in tasks],
        )

    def close(self) -> None:
        """Release the shared segment (the pooled workers are shared
        process-level state, reaped by
        :func:`~repro.render.parallel.shutdown_raster_pools`)."""
        self.unpublish()

    def __enter__(self) -> "RenderFarm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
