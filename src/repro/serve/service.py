"""RenderService: batched multi-client inference over a trained model.

The serving vertical the training stack was missing: a
:class:`RenderService` owns a read-only :class:`~repro.serve.store.\
ServingStore` (in-memory, or :class:`~repro.serve.store.\
PagedServingStore` for models over a host byte budget), an optional
:class:`~repro.serve.lod.LODSet`, a pose-keyed
:class:`~repro.serve.cache.FrameCache`, and an optional
:class:`~repro.serve.farm.RenderFarm`. Clients :meth:`~RenderService.\
submit` :class:`RenderRequest` objects; each :meth:`~RenderService.tick`
drains the queue as one batch:

1. resolve each request's camera (optional width/height override scales
   the intrinsics) and frame key (pose + size + LOD + model version);
2. serve cache hits;
3. deduplicate the misses — identical frames wanted by many clients
   render once;
4. render the unique frames, fanned over the farm when it pays, inline
   otherwise — always through :func:`~repro.serve.farm.render_frame`, so
   a full-LOD served frame is bit-identical to a direct
   :func:`repro.render.pipeline.render` call;
5. fill the cache and answer every request in submission order.

Serving defaults to the raster stack's inference fast path
(``vectorized`` engine, ``dtype="float32"``). :meth:`~RenderService.\
swap_model` hot-swaps the served model: the version bump plus an eager
cache flush guarantee no post-swap request is ever answered with a
pre-swap frame.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from ..cameras.camera import Camera
from ..gaussians.model import GaussianModel
from ..render.rasterize import RasterConfig
from .cache import FrameCache, frame_key
from .farm import FrameTask, RenderFarm, render_frame
from .lod import LODSet
from .store import InMemoryServingStore, PagedServingStore, ServingStore

__all__ = [
    "RenderRequest",
    "RenderResponse",
    "RenderService",
    "ServeStats",
    "default_serve_raster_config",
    "requests_from_cameras",
]


def default_serve_raster_config() -> RasterConfig:
    """Serving renders forward-only: the float32 fast path of the flat
    vectorized engine is the default (training keeps full precision)."""
    return RasterConfig(engine="vectorized", dtype="float32")


@dataclass(frozen=True)
class RenderRequest:
    """One client's frame request.

    Attributes:
        camera: requested viewpoint (pose + intrinsics).
        width, height: optional output-size override; the camera's
            intrinsics are rescaled proportionally (``None`` keeps the
            camera's own size).
        lod: level-of-detail index into the service's LOD set
            (0 = full detail).
    """

    camera: Camera
    width: int | None = None
    height: int | None = None
    lod: int = 0

    def resolved_camera(self) -> Camera:
        """The camera actually rendered (size override applied)."""
        if self.width is None and self.height is None:
            return self.camera
        width = self.width if self.width is not None else self.camera.width
        height = self.height if self.height is not None else self.camera.height
        if width < 1 or height < 1:
            raise ValueError(f"invalid request size {width}x{height}")
        if width == self.camera.width and height == self.camera.height:
            return self.camera
        sx = width / self.camera.width
        sy = height / self.camera.height
        return replace(
            self.camera,
            width=width,
            height=height,
            fx=self.camera.fx * sx,
            fy=self.camera.fy * sy,
            cx=self.camera.cx * sx,
            cy=self.camera.cy * sy,
        )


@dataclass
class RenderResponse:
    """One served frame.

    Attributes:
        request: the request this answers.
        image: composited RGB ``(H, W, 3)`` (read-only when it came from
            or went into the cache).
        lod: level the frame was rendered at.
        cache_hit: whether the frame came from the pose-keyed cache.
        batch_size: unique frames rendered by the tick that served this.
        latency_s: wall-clock seconds from tick start to batch completion.
    """

    request: RenderRequest
    image: np.ndarray
    lod: int
    cache_hit: bool
    batch_size: int
    latency_s: float


@dataclass
class ServeStats:
    """Service-lifetime counters."""

    requests: int = 0
    ticks: int = 0
    frames_rendered: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    deduped: int = 0
    model_swaps: int = 0
    busy_s: float = 0.0

    def as_dict(self) -> dict:
        """Plain-dict view (for JSON benchmark payloads)."""
        return dict(vars(self))


class RenderService:
    """Serve render requests from a trained (possibly paged) model.

    Args:
        store: the served model's placement; a
            :class:`~repro.gaussians.model.GaussianModel` is wrapped in
            an :class:`~repro.serve.store.InMemoryServingStore`.
        lod_set: nested LOD subsets; ``None`` restricts requests to
            ``lod=0`` (full detail).
        cache_bytes: frame-cache byte budget; ``0`` disables caching.
        workers: render-farm process count (``<= 1`` serves inline; the
            farm requires an in-memory store — a paged store's point is
            that no process holds the whole model).
        config: raster backend knobs; defaults to
            :func:`default_serve_raster_config`. The ``parallel`` engine
            is rejected with ``workers >= 2`` (pools must not nest).
        background: render background color (black when ``None``).
    """

    def __init__(
        self,
        store: ServingStore | GaussianModel,
        lod_set: LODSet | None = None,
        cache_bytes: int = 64 * 1024 * 1024,
        workers: int = 0,
        config: RasterConfig | None = None,
        background: np.ndarray | None = None,
    ):
        if isinstance(store, GaussianModel):
            store = InMemoryServingStore.from_model(store)
        self.config = config if config is not None else default_serve_raster_config()
        if workers >= 2 and self.config.engine == "parallel":
            raise ValueError(
                "farm workers cannot nest the parallel raster engine; "
                "use the vectorized engine for farmed serving"
            )
        if workers >= 2 and isinstance(store, PagedServingStore):
            raise ValueError(
                "the render farm needs an in-memory store; a paged model "
                "serves inline (workers <= 1)"
            )
        self.store = store
        self.lod_set = lod_set
        self.background = background
        self.cache = FrameCache(cache_bytes) if cache_bytes else None
        self.model_version = 0
        self.stats = ServeStats()
        self._queue: list[RenderRequest] = []
        self._farm = RenderFarm(workers) if workers >= 2 else None
        self._publish()

    # -- model lifecycle ---------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        host_budget_bytes: int | None = None,
        num_shards: int = 4,
        page_dir: str | None = None,
        codec: str = "raw",
        **kwargs,
    ) -> "RenderService":
        """Open a trained checkpoint for serving.

        With ``host_budget_bytes`` set, the checkpoint streams into a
        :class:`~repro.serve.store.PagedServingStore` (read-only open,
        no full materialization — see
        :class:`~repro.core.checkpoint.CheckpointReader`); ``codec``
        then selects the on-disk page encoding (half-size ``"float16"``
        pages halve the budget's disk traffic). Otherwise the committed
        model loads in-memory.
        """
        if host_budget_bytes is None:
            store: ServingStore = InMemoryServingStore.from_checkpoint(path)
        else:
            store = PagedServingStore.from_checkpoint(
                path, host_budget_bytes,
                num_shards=num_shards, page_dir=page_dir, codec=codec,
            )
        return cls(store, **kwargs)

    def _publish(self) -> None:
        if self._farm is not None:
            drop = self.lod_set.drop_level if self.lod_set is not None else None
            self._farm.publish(self.store, drop)

    def swap_model(
        self,
        store: ServingStore | GaussianModel,
        lod_set: LODSet | None = None,
    ) -> None:
        """Hot-swap the served model.

        Bumps the model version (pre-swap frame keys can never match
        again), flushes the pose-keyed cache eagerly, republishes to the
        farm, and closes the old store. LOD sets are model-specific, so
        the new one must be supplied (or omitted for full-detail-only).
        Requests already queued against a taller old LOD ladder are
        clamped to the new set's coarsest level at the next tick rather
        than dropped.
        """
        if isinstance(store, GaussianModel):
            store = InMemoryServingStore.from_model(store)
        if self._farm is not None and isinstance(store, PagedServingStore):
            raise ValueError("cannot hot-swap a paged store into a farmed service")
        old = self.store
        self.store = store
        self.lod_set = lod_set
        self.model_version += 1
        self.stats.model_swaps += 1
        if self.cache is not None:
            self.cache.invalidate()
        self._publish()
        if old is not store:
            old.close()

    # -- request path ------------------------------------------------------
    def submit(self, request: RenderRequest) -> None:
        """Queue a request for the next :meth:`tick`."""
        self._validate(request)
        self._queue.append(request)

    def _validate(self, request: RenderRequest) -> int:
        num_levels = 1 if self.lod_set is None else self.lod_set.num_levels
        if not 0 <= request.lod < num_levels:
            raise ValueError(
                f"request lod {request.lod} out of range [0, {num_levels}) "
                f"{'(no LOD set loaded)' if self.lod_set is None else ''}"
            )
        request.resolved_camera()  # validates the size override
        return request.lod

    def tick(self) -> list[RenderResponse]:
        """Serve every queued request as one batch (submission order)."""
        queue, self._queue = self._queue, []
        if not queue:
            return []
        t0 = time.perf_counter()
        self.stats.ticks += 1
        self.stats.requests += len(queue)

        # 1-2: keys + cache hits. The lod is re-clamped against the
        # *current* LOD set: a hot swap may have shrunk the ladder since
        # the request was validated, and losing the whole batch over a
        # stale level would be worse than serving it at the coarsest
        # surviving level.
        num_levels = 1 if self.lod_set is None else self.lod_set.num_levels
        plan = []  # (request, lod, camera, key, cached image | None)
        for request in queue:
            lod = min(request.lod, num_levels - 1)
            camera = request.resolved_camera()
            key = frame_key(camera, lod, self.model_version)
            cached = self.cache.get(key) if self.cache is not None else None
            plan.append((request, lod, camera, key, cached))

        # 3: dedupe the misses into unique frames
        unique: dict[bytes, FrameTask] = {}
        for request, lod, camera, key, cached in plan:
            if cached is None and key not in unique:
                sh_degree = (
                    self.lod_set.sh_degree(lod)
                    if self.lod_set is not None
                    else self.config_sh_degree()
                )
                unique[key] = FrameTask(
                    camera=camera,
                    lod=lod,
                    sh_degree=sh_degree,
                    config=self.config,
                    background=self.background,
                )

        # 4: render the unique frames (farm when it pays)
        tasks = list(unique.items())
        if self._farm is not None and len(tasks) >= 2:
            images = self._farm.render_batch([t for _, t in tasks])
        else:
            drop = self.lod_set.drop_level if self.lod_set is not None else None
            images = [render_frame(self.store, drop, t) for _, t in tasks]
        rendered = dict(zip((k for k, _ in tasks), images))

        # 5: fill the cache, answer in submission order. Responses must
        # alias the *stored* array: put() freezes it (snapshotting
        # renderer-buffer views), so clients cannot poison later hits.
        for key, image in rendered.items():
            if self.cache is not None:
                rendered[key] = self.cache.put(key, image)
        elapsed = time.perf_counter() - t0
        self.stats.busy_s += elapsed
        self.stats.frames_rendered += len(rendered)
        responses = []
        for request, lod, _, key, cached in plan:
            hit = cached is not None
            if hit:
                self.stats.cache_hits += 1
            else:
                self.stats.cache_misses += 1
                if rendered.get(key) is None:
                    raise AssertionError("miss neither rendered nor cached")
            responses.append(
                RenderResponse(
                    request=request,
                    image=cached if hit else rendered[key],
                    lod=lod,
                    cache_hit=hit,
                    batch_size=len(rendered),
                    latency_s=elapsed,
                )
            )
        self.stats.deduped += sum(
            1 for *_, cached in plan if cached is None
        ) - len(rendered)
        return responses

    def config_sh_degree(self) -> int:
        """SH degree served without a LOD set (the model's full degree)."""
        from ..gaussians.layout import SH_DEGREE

        return SH_DEGREE

    def render(self, request: RenderRequest) -> RenderResponse:
        """Serve one request immediately.

        Ticks the whole queue (earlier :meth:`submit` calls ride along in
        the same batch) and returns the response to *this* request.
        """
        self.submit(request)
        return next(
            resp for resp in self.tick() if resp.request is request
        )

    def serve(self, requests: list[RenderRequest]) -> list[RenderResponse]:
        """Serve a request trace as one batched tick per call."""
        for request in requests:
            self.submit(request)
        return self.tick()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release the farm's shared segment and the store's pages."""
        if self._farm is not None:
            self._farm.close()
        self.store.close()

    def __enter__(self) -> "RenderService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def requests_from_cameras(
    cameras: list[Camera],
    lod: int = 0,
    width: int | None = None,
    height: int | None = None,
) -> list[RenderRequest]:
    """Wrap a camera trajectory as a request trace.

    Client sessions are camera trajectories — an orbit inspection, a
    walkthrough (:func:`repro.cameras.trajectories.orbit` /
    :func:`~repro.cameras.trajectories.walkthrough`) — plus a quality
    tier; this adapts one to the service's request model.
    """
    return [
        RenderRequest(camera=cam, lod=lod, width=width, height=height)
        for cam in cameras
    ]
