"""RenderService: batched multi-client inference over a trained model.

The serving vertical the training stack was missing: a
:class:`RenderService` owns a read-only :class:`~repro.serve.store.\
ServingStore` (in-memory, or :class:`~repro.serve.store.\
PagedServingStore` for models over a host byte budget), an optional
:class:`~repro.serve.lod.LODSet`, a pose-keyed
:class:`~repro.serve.cache.FrameCache`, and an optional
:class:`~repro.serve.farm.RenderFarm`. Clients :meth:`~RenderService.\
submit` :class:`RenderRequest` objects; each :meth:`~RenderService.tick`
drains the queue as one batch:

1. resolve each request's camera (optional width/height override scales
   the intrinsics) and frame key (pose + size + LOD + model version);
2. serve cache hits;
3. deduplicate the misses — identical frames wanted by many clients
   render once;
4. render the unique frames, fanned over the farm when it pays, inline
   otherwise — always through :func:`~repro.serve.farm.render_frame`, so
   a full-LOD served frame is bit-identical to a direct
   :func:`repro.render.pipeline.render` call;
5. fill the cache and answer every request in submission order.

Serving defaults to the raster stack's inference fast path
(``vectorized`` engine, ``dtype="float32"``). :meth:`~RenderService.\
swap_model` hot-swaps the served model: the version bump plus an eager
cache flush guarantee no post-swap request is ever answered with a
pre-swap frame.

Overload and faults degrade gracefully instead of growing the queue or
killing the tick (:class:`ServeConfig`):

* requests older than ``deadline_s`` at tick time are answered
  ``rejected``/``deadline`` immediately (rendering them would only make
  every later request later);
* when the unique-miss count exceeds ``max_frames_per_tick``, pending
  misses are *degraded* one LOD at a time — coarser frames are cheaper
  and re-key onto warmer cache entries — before anything is rejected
  with ``overload``;
* one poisoned frame (a quarantined page, a raster error) fails alone:
  its requests answer ``status="error"`` with the reason while the rest
  of the batch serves, and a farm-batch failure falls back to inline
  per-frame rendering rather than failing every frame in it.

Every request submitted is always answered — ok, degraded, rejected
(with reason), or error (with reason) — never dropped or deadlocked, and
the retry/respawn/quarantine counts surface in :class:`ServeStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from ..cameras.camera import Camera
from ..gaussians.model import GaussianModel
from ..render.parallel import raster_pool_fault_stats
from ..render.rasterize import RasterConfig
from ..telemetry import metrics as _metrics
from ..telemetry import trace as _trace
from ..telemetry.trace import span as _span
from .cache import FrameCache, frame_key
from .farm import FrameTask, RenderFarm, render_frame
from .lod import LODSet
from .store import InMemoryServingStore, PagedServingStore, ServingStore

__all__ = [
    "RenderRequest",
    "RenderResponse",
    "RenderService",
    "ServeConfig",
    "ServeStats",
    "default_serve_raster_config",
    "requests_from_cameras",
]


def default_serve_raster_config() -> RasterConfig:
    """Serving renders forward-only: the float32 fast path of the flat
    vectorized engine is the default (training keeps full precision)."""
    return RasterConfig(engine="vectorized", dtype="float32")


@dataclass(frozen=True)
class ServeConfig:
    """Overload and fault-handling knobs for a :class:`RenderService`.

    The defaults reproduce the unguarded service exactly: no deadline,
    no admission limit, the pool's own supervision defaults.

    Attributes:
        deadline_s: per-request freshness budget. A request that has
            been queued longer than this at tick time answers
            ``rejected``/``deadline`` instead of rendering (``None``
            disables the check).
        max_frames_per_tick: admission limit on *unique rendered frames*
            per tick (cache hits are free and never count). Overflow is
            first degraded to coarser LODs (see below), then rejected
            with reason ``overload`` (``None`` = unlimited).
        degrade_before_reject: when the unique-miss count exceeds the
            admission limit, bump pending misses one LOD coarser at a
            time — coarser frames cost less and re-key onto warmer cache
            entries — and only reject what still exceeds the limit at
            the coarsest level. ``False`` rejects immediately.
        map_timeout_s: per-batch deadline for the render farm's
            supervised pool map (``None`` = the pool's default).
        map_retries: worker-death/deadline retry budget per farm batch
            (``None`` = the pool's default).
        telemetry: record measured spans and latency histograms through
            :mod:`repro.telemetry` (installs the process-wide tracer at
            service construction; tick/request lifecycles, serve
            page-ins, and farm worker spans all land in one buffer).
    """

    deadline_s: float | None = None
    max_frames_per_tick: int | None = None
    degrade_before_reject: bool = True
    map_timeout_s: float | None = None
    map_retries: int | None = None
    telemetry: bool = False

    def __post_init__(self):
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if (
            self.max_frames_per_tick is not None
            and self.max_frames_per_tick < 1
        ):
            raise ValueError("max_frames_per_tick must be >= 1 (or None)")
        if self.map_timeout_s is not None and self.map_timeout_s <= 0:
            raise ValueError("map_timeout_s must be positive (or None)")
        if self.map_retries is not None and self.map_retries < 0:
            raise ValueError("map_retries must be >= 0 (or None)")


@dataclass(frozen=True)
class RenderRequest:
    """One client's frame request.

    Attributes:
        camera: requested viewpoint (pose + intrinsics).
        width, height: optional output-size override; the camera's
            intrinsics are rescaled proportionally (``None`` keeps the
            camera's own size).
        lod: level-of-detail index into the service's LOD set
            (0 = full detail).
    """

    camera: Camera
    width: int | None = None
    height: int | None = None
    lod: int = 0

    def resolved_camera(self) -> Camera:
        """The camera actually rendered (size override applied)."""
        if self.width is None and self.height is None:
            return self.camera
        width = self.width if self.width is not None else self.camera.width
        height = self.height if self.height is not None else self.camera.height
        if width < 1 or height < 1:
            raise ValueError(f"invalid request size {width}x{height}")
        if width == self.camera.width and height == self.camera.height:
            return self.camera
        sx = width / self.camera.width
        sy = height / self.camera.height
        return replace(
            self.camera,
            width=width,
            height=height,
            fx=self.camera.fx * sx,
            fy=self.camera.fy * sy,
            cx=self.camera.cx * sx,
            cy=self.camera.cy * sy,
        )


@dataclass
class RenderResponse:
    """One served frame (or the reason there is none).

    Attributes:
        request: the request this answers.
        image: composited RGB ``(H, W, 3)`` (read-only when it came from
            or went into the cache); ``None`` for rejected/errored
            requests.
        lod: level the frame was rendered at (for a degraded response,
            coarser than the request asked for).
        cache_hit: whether the frame came from the pose-keyed cache.
        batch_size: unique frames rendered by the tick that served this.
        latency_s: wall-clock seconds from tick start to batch completion.
        status: ``"ok"`` | ``"degraded"`` (served coarser than asked) |
            ``"rejected"`` (never rendered) | ``"error"`` (render failed).
        reason: why a non-ok response is non-ok (``"deadline"``,
            ``"overload"``, or the render error text).
    """

    request: RenderRequest
    image: np.ndarray | None
    lod: int
    cache_hit: bool
    batch_size: int
    latency_s: float
    status: str = "ok"
    reason: str = ""

    @property
    def ok(self) -> bool:
        """Whether a frame was delivered (full or degraded detail)."""
        return self.image is not None


@dataclass
class ServeStats:
    """Service-lifetime counters.

    The ``pool_*`` and ``quarantined_pages`` entries mirror the shared
    raster pools' fault counters and the store's quarantine set at the
    end of the last tick — they surface infrastructure faults absorbed
    below the request path (retried maps, respawned workers, pages
    benched for failing their checksum).
    """

    requests: int = 0
    ticks: int = 0
    frames_rendered: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    deduped: int = 0
    model_swaps: int = 0
    busy_s: float = 0.0
    degraded: int = 0
    rejected: int = 0
    deadline_rejects: int = 0
    render_errors: int = 0
    quarantined_pages: int = 0
    pool_worker_deaths: int = 0
    pool_respawns: int = 0
    pool_retries: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (for JSON benchmark payloads)."""
        return dict(vars(self))


@dataclass
class _PlanEntry:
    """Mutable per-request state threaded through one tick."""

    request: RenderRequest
    lod: int = 0
    camera: Camera | None = None
    key: bytes = b""
    cached: np.ndarray | None = None
    status: str = "pending"  # "pending" | "rejected"
    reason: str = ""
    degraded: bool = False


class RenderService:
    """Serve render requests from a trained (possibly paged) model.

    Args:
        store: the served model's placement; a
            :class:`~repro.gaussians.model.GaussianModel` is wrapped in
            an :class:`~repro.serve.store.InMemoryServingStore`.
        lod_set: nested LOD subsets; ``None`` restricts requests to
            ``lod=0`` (full detail).
        cache_bytes: frame-cache byte budget; ``0`` disables caching.
        workers: render-farm process count (``<= 1`` serves inline; the
            farm requires an in-memory store — a paged store's point is
            that no process holds the whole model).
        config: raster backend knobs; defaults to
            :func:`default_serve_raster_config`. The ``parallel`` engine
            is rejected with ``workers >= 2`` (pools must not nest).
        background: render background color (black when ``None``).
        serve_config: overload/fault-handling knobs
            (:class:`ServeConfig`); defaults to the unguarded service.
    """

    def __init__(
        self,
        store: ServingStore | GaussianModel,
        lod_set: LODSet | None = None,
        cache_bytes: int = 64 * 1024 * 1024,
        workers: int = 0,
        config: RasterConfig | None = None,
        background: np.ndarray | None = None,
        serve_config: ServeConfig | None = None,
    ):
        if isinstance(store, GaussianModel):
            store = InMemoryServingStore.from_model(store)
        self.config = config if config is not None else default_serve_raster_config()
        if workers >= 2 and self.config.engine == "parallel":
            raise ValueError(
                "farm workers cannot nest the parallel raster engine; "
                "use the vectorized engine for farmed serving"
            )
        if workers >= 2 and isinstance(store, PagedServingStore):
            raise ValueError(
                "the render farm needs an in-memory store; a paged model "
                "serves inline (workers <= 1)"
            )
        self.store = store
        self.lod_set = lod_set
        self.background = background
        self.serve_config = (
            serve_config if serve_config is not None else ServeConfig()
        )
        if self.serve_config.telemetry:
            # idempotent: shares the tracer with any telemetry=True trainer
            _trace.install()
        self.cache = FrameCache(cache_bytes) if cache_bytes else None
        self.model_version = 0
        self.stats = ServeStats()
        self._queue: list[tuple[RenderRequest, float]] = []
        self._farm = (
            RenderFarm(
                workers,
                map_timeout_s=self.serve_config.map_timeout_s,
                map_retries=self.serve_config.map_retries,
            )
            if workers >= 2
            else None
        )
        self._publish()

    # -- model lifecycle ---------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        host_budget_bytes: int | None = None,
        num_shards: int = 4,
        page_dir: str | None = None,
        codec: str = "raw",
        **kwargs,
    ) -> "RenderService":
        """Open a trained checkpoint for serving.

        With ``host_budget_bytes`` set, the checkpoint streams into a
        :class:`~repro.serve.store.PagedServingStore` (read-only open,
        no full materialization — see
        :class:`~repro.core.checkpoint.CheckpointReader`); ``codec``
        then selects the on-disk page encoding (half-size ``"float16"``
        pages halve the budget's disk traffic). Otherwise the committed
        model loads in-memory.
        """
        if host_budget_bytes is None:
            store: ServingStore = InMemoryServingStore.from_checkpoint(path)
        else:
            store = PagedServingStore.from_checkpoint(
                path, host_budget_bytes,
                num_shards=num_shards, page_dir=page_dir, codec=codec,
            )
        return cls(store, **kwargs)

    def _publish(self) -> None:
        if self._farm is not None:
            drop = self.lod_set.drop_level if self.lod_set is not None else None
            self._farm.publish(self.store, drop)

    def swap_model(
        self,
        store: ServingStore | GaussianModel,
        lod_set: LODSet | None = None,
    ) -> None:
        """Hot-swap the served model.

        Bumps the model version (pre-swap frame keys can never match
        again), flushes the pose-keyed cache eagerly, republishes to the
        farm, and closes the old store. LOD sets are model-specific, so
        the new one must be supplied (or omitted for full-detail-only).
        Requests already queued against a taller old LOD ladder are
        clamped to the new set's coarsest level at the next tick rather
        than dropped.
        """
        if isinstance(store, GaussianModel):
            store = InMemoryServingStore.from_model(store)
        if self._farm is not None and isinstance(store, PagedServingStore):
            raise ValueError("cannot hot-swap a paged store into a farmed service")
        old = self.store
        self.store = store
        self.lod_set = lod_set
        self.model_version += 1
        self.stats.model_swaps += 1
        if self.cache is not None:
            self.cache.invalidate()
        self._publish()
        if old is not store:
            old.close()

    # -- request path ------------------------------------------------------
    def submit(self, request: RenderRequest) -> None:
        """Queue a request for the next :meth:`tick`."""
        self._validate(request)
        self._queue.append((request, time.monotonic()))

    def _validate(self, request: RenderRequest) -> int:
        num_levels = 1 if self.lod_set is None else self.lod_set.num_levels
        if not 0 <= request.lod < num_levels:
            raise ValueError(
                f"request lod {request.lod} out of range [0, {num_levels}) "
                f"{'(no LOD set loaded)' if self.lod_set is None else ''}"
            )
        request.resolved_camera()  # validates the size override
        return request.lod

    def _key_and_probe(self, entry: _PlanEntry) -> None:
        """(Re)key an entry at its current LOD and probe the cache."""
        entry.key = frame_key(entry.camera, entry.lod, self.model_version)
        entry.cached = (
            self.cache.get(entry.key) if self.cache is not None else None
        )

    def _miss_keys(self, plan: list[_PlanEntry]) -> set[bytes]:
        """Unique frames the tick would have to render right now."""
        return {
            e.key
            for e in plan
            if e.status == "pending" and e.cached is None
        }

    def _admit(self, plan: list[_PlanEntry], num_levels: int) -> None:
        """Fit the pending misses into the tick's admission budget.

        Degradation first (when enabled): bump every pending miss one
        LOD coarser per round — coarser levels are cheaper *and* re-key
        onto cache entries earlier requests already warmed — until the
        unique-miss count fits or everything sits at the coarsest level.
        Whatever still exceeds the budget is rejected with ``overload``,
        keeping the first admitted keys in submission order.
        """
        budget = self.serve_config.max_frames_per_tick
        if budget is None:
            return
        if self.serve_config.degrade_before_reject and num_levels > 1:
            while len(self._miss_keys(plan)) > budget:
                bumped = False
                for e in plan:
                    if (
                        e.status == "pending"
                        and e.cached is None
                        and e.lod < num_levels - 1
                    ):
                        e.lod += 1
                        e.degraded = True
                        self._key_and_probe(e)
                        bumped = True
                if not bumped:
                    break
        if len(self._miss_keys(plan)) <= budget:
            return
        kept: set[bytes] = set()
        for e in plan:
            if e.status != "pending" or e.cached is not None:
                continue
            if e.key in kept:
                continue
            if len(kept) < budget:
                kept.add(e.key)
            else:
                e.status, e.reason = "rejected", "overload"

    def _render_tasks(
        self, tasks: list[tuple[bytes, FrameTask]]
    ) -> tuple[dict[bytes, np.ndarray], dict[bytes, str]]:
        """Render unique frames; one poisoned frame fails alone.

        The farm path renders all-or-nothing per batch, so a farm
        failure (worker deaths past the retry budget, a poisoned task)
        falls back to inline per-frame rendering where each exception is
        contained to its own frame. Returns ``(images, errors)`` keyed
        by frame key.
        """
        drop = self.lod_set.drop_level if self.lod_set is not None else None
        images: dict[bytes, np.ndarray] = {}
        errors: dict[bytes, str] = {}
        pending = tasks
        if self._farm is not None and len(tasks) >= 2:
            try:
                batch = self._farm.render_batch([t for _, t in tasks])
                images = dict(zip((k for k, _ in tasks), batch))
                pending = []
            except Exception:  # noqa: BLE001 - containment boundary
                pending = tasks
        for key, task in pending:
            try:
                images[key] = render_frame(self.store, drop, task)
            except Exception as exc:  # noqa: BLE001 - containment boundary
                errors[key] = f"{type(exc).__name__}: {exc}"
                self.stats.render_errors += 1
        return images, errors

    def tick(self) -> list[RenderResponse]:
        """Serve every queued request as one batch (submission order).

        Every queued request gets a response: ``ok``, ``degraded``,
        ``rejected`` (with reason), or ``error`` (with reason) — the
        tick never raises for a single bad frame and never drops a
        request on the floor.
        """
        queue, self._queue = self._queue, []
        if not queue:
            return []
        tick_tok = _trace.begin("serve/tick", "serve")
        t0 = time.perf_counter()
        now = time.monotonic()
        self.stats.ticks += 1
        self.stats.requests += len(queue)
        deadline_s = self.serve_config.deadline_s

        # 1-2: keys + cache hits. The lod is re-clamped against the
        # *current* LOD set: a hot swap may have shrunk the ladder since
        # the request was validated, and losing the whole batch over a
        # stale level would be worse than serving it at the coarsest
        # surviving level. Requests already past their deadline reject
        # up front: rendering them only delays everything younger.
        num_levels = 1 if self.lod_set is None else self.lod_set.num_levels
        plan: list[_PlanEntry] = []
        for request, submitted in queue:
            entry = _PlanEntry(request=request, lod=request.lod)
            if deadline_s is not None and now - submitted > deadline_s:
                entry.status, entry.reason = "rejected", "deadline"
                self.stats.deadline_rejects += 1
            else:
                entry.lod = min(request.lod, num_levels - 1)
                entry.camera = request.resolved_camera()
                self._key_and_probe(entry)
            plan.append(entry)

        # 3: admission (degrade, then reject) + dedupe into unique frames
        self._admit(plan, num_levels)
        unique: dict[bytes, FrameTask] = {}
        for e in plan:
            if (
                e.status == "pending"
                and e.cached is None
                and e.key not in unique
            ):
                sh_degree = (
                    self.lod_set.sh_degree(e.lod)
                    if self.lod_set is not None
                    else self.config_sh_degree()
                )
                unique[e.key] = FrameTask(
                    camera=e.camera,
                    lod=e.lod,
                    sh_degree=sh_degree,
                    config=self.config,
                    background=self.background,
                )

        # 4: render the unique frames (farm when it pays), each failure
        # contained to its own frame
        tasks = list(unique.items())
        with _span("serve/render", "serve", frames=len(tasks)):
            images, errors = self._render_tasks(tasks)

        # 5: fill the cache, answer in submission order. Responses must
        # alias the *stored* array: put() freezes it (snapshotting
        # renderer-buffer views), so clients cannot poison later hits.
        if self.cache is not None:
            for key, image in images.items():
                images[key] = self.cache.put(key, image)
        elapsed = time.perf_counter() - t0
        self.stats.busy_s += elapsed
        self.stats.frames_rendered += len(images)
        responses = []
        misses = 0
        for e in plan:
            if e.status == "rejected":
                self.stats.rejected += 1
                image, hit, status, reason = None, False, "rejected", e.reason
            elif e.cached is not None:
                self.stats.cache_hits += 1
                image, hit = e.cached, True
                status = "degraded" if e.degraded else "ok"
                reason = "overload" if e.degraded else ""
            else:
                self.stats.cache_misses += 1
                misses += 1
                hit = False
                image = images.get(e.key)
                if image is not None:
                    status = "degraded" if e.degraded else "ok"
                    reason = "overload" if e.degraded else ""
                else:
                    status = "error"
                    reason = errors.get(e.key, "frame not rendered")
            if status == "degraded":
                self.stats.degraded += 1
            responses.append(
                RenderResponse(
                    request=e.request,
                    image=image,
                    lod=e.lod,
                    cache_hit=hit,
                    batch_size=len(images),
                    latency_s=elapsed,
                    status=status,
                    reason=reason,
                )
            )
        self.stats.deduped += misses - len(tasks)
        self._sync_fault_stats()
        if _trace.enabled():
            tracer = _trace.get_tracer()
            t_end = time.perf_counter()
            latency = _metrics.get_registry().histogram("serve/latency_s")
            for resp in responses:
                latency.observe(resp.latency_s)
                tracer.record(
                    "serve/request", t0, t_end, cat="serve",
                    attrs={"status": resp.status, "lod": resp.lod},
                )
        _trace.end(tick_tok)
        return responses

    def _sync_fault_stats(self) -> None:
        """Mirror infrastructure fault counters into the serve stats.

        One source: the pool counters come from
        :func:`raster_pool_fault_stats` and fan out to the ``pool_*``
        stats fields — and, when telemetry is live, into the metrics
        registry — without re-listing the keys.
        """
        self.stats.quarantined_pages = len(
            getattr(self.store, "quarantined", ())
        )
        pool = raster_pool_fault_stats()
        for key in ("worker_deaths", "respawns", "retries"):
            setattr(self.stats, f"pool_{key}", pool[key])
        if _trace.enabled():
            registry = _metrics.get_registry()
            _metrics.mirror_pool_faults(registry, pool)
            _metrics.mirror_serve_stats(registry, self.stats)

    def config_sh_degree(self) -> int:
        """SH degree served without a LOD set (the model's full degree)."""
        from ..gaussians.layout import SH_DEGREE

        return SH_DEGREE

    def render(self, request: RenderRequest) -> RenderResponse:
        """Serve one request immediately.

        Ticks the whole queue (earlier :meth:`submit` calls ride along in
        the same batch) and returns the response to *this* request.
        """
        self.submit(request)
        return next(
            resp for resp in self.tick() if resp.request is request
        )

    def serve(self, requests: list[RenderRequest]) -> list[RenderResponse]:
        """Serve a request trace as one batched tick per call."""
        for request in requests:
            self.submit(request)
        return self.tick()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release the farm's shared segment and the store's pages."""
        if self._farm is not None:
            self._farm.close()
        self.store.close()

    def __enter__(self) -> "RenderService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def requests_from_cameras(
    cameras: list[Camera],
    lod: int = 0,
    width: int | None = None,
    height: int | None = None,
) -> list[RenderRequest]:
    """Wrap a camera trajectory as a request trace.

    Client sessions are camera trajectories — an orbit inspection, a
    walkthrough (:func:`repro.cameras.trajectories.orbit` /
    :func:`~repro.cameras.trajectories.walkthrough`) — plus a quality
    tier; this adapts one to the service's request model.
    """
    return [
        RenderRequest(camera=cam, lod=lod, width=width, height=height)
        for cam in cameras
    ]
