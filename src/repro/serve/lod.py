"""Level-of-detail reduction for serving: nested splat subsets + SH clamps.

Scale-GS's observation, applied inference-side: most of a large scene's
splats contribute almost nothing to most frames, so serving throughput
comes from *redundancy filtering*, not faster blending. A
:class:`LODSet` precomputes, once per model, a per-splat **importance**
score — activated opacity times a screen-area proxy (the splat's
projected footprint at unit depth, ``(geometric-mean scale)^2``) — and
derives one *nested* subset per :class:`LODLevel`: level 0 keeps every
splat at full SH degree (bit-identical to the unfiltered render), deeper
levels keep a shrinking top fraction by importance and clamp the SH
degree. Nesting makes the precompute a single ``(N,)`` array
(:attr:`LODSet.drop_level`), cheap to ship to render-farm workers and to
intersect with a frustum cull.

:func:`lod_quality_report` measures what each level costs: PSNR of the
reduced render against the full-detail render over a probe camera set —
the number a deployment reads before picking a level per client tier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cameras.camera import Camera
from ..gaussians import layout
from ..gaussians.layout import SH_DEGREE
from ..gaussians.model import GaussianModel
from ..metrics import psnr
from ..render.rasterize import RasterConfig

__all__ = [
    "DEFAULT_LOD_LEVELS",
    "LODLevel",
    "LODSet",
    "lod_quality_report",
    "splat_importance",
]


@dataclass(frozen=True)
class LODLevel:
    """One level of detail.

    Attributes:
        sh_degree: spherical-harmonics degree the level renders with
            (clamping degree 3 -> 0 drops 45 of 48 SH coefficients'
            influence without touching the stored model).
        keep_fraction: fraction of splats kept, by descending importance.
    """

    sh_degree: int
    keep_fraction: float

    def __post_init__(self):
        if not 0 <= self.sh_degree <= SH_DEGREE:
            raise ValueError(f"sh_degree must be in [0, {SH_DEGREE}]")
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")


#: Level 0 is always full detail (the bit-identity anchor); deeper levels
#: roughly halve the splat budget and shed one SH degree each.
DEFAULT_LOD_LEVELS = (
    LODLevel(sh_degree=SH_DEGREE, keep_fraction=1.0),
    LODLevel(sh_degree=2, keep_fraction=0.5),
    LODLevel(sh_degree=1, keep_fraction=0.25),
    LODLevel(sh_degree=0, keep_fraction=0.1),
)


def splat_importance(params: np.ndarray) -> np.ndarray:
    """Per-splat contribution score ``(N,)``: opacity x screen-area proxy.

    The screen-area proxy is the squared geometric-mean scale — the
    splat's projected pixel footprint at unit depth, up to the shared
    focal constant — so filtering drops small, transparent splats first:
    exactly the ones whose blended contribution is below perception at
    serving resolutions.
    """
    logits = params[:, layout.OPACITY_SLICE.start]
    opacity = 1.0 / (1.0 + np.exp(-logits.astype(np.float64)))
    mean_log_scale = params[:, layout.SCALE_SLICE].astype(np.float64).mean(axis=1)
    return opacity * np.exp(2.0 * mean_log_scale)


class LODSet:
    """Nested level-of-detail subsets of one model.

    ``drop_level[i]`` is the shallowest level at which splat ``i`` is
    dropped (``num_levels`` when it survives every level), so the level-
    ``lod`` subset is ``drop_level > lod`` — one int8-sized array answers
    membership for every level, and subsets are nested by construction.
    """

    def __init__(self, levels, drop_level: np.ndarray):
        self.levels = tuple(levels)
        if not self.levels:
            raise ValueError("need at least one LOD level")
        if self.levels[0].keep_fraction != 1.0:
            raise ValueError("level 0 must keep every splat (full detail)")
        fracs = [lvl.keep_fraction for lvl in self.levels]
        if any(b > a for a, b in zip(fracs, fracs[1:])):
            raise ValueError("keep fractions must be non-increasing")
        self.drop_level = np.asarray(drop_level, dtype=np.int16)

    @classmethod
    def build(cls, params: np.ndarray, levels=DEFAULT_LOD_LEVELS) -> "LODSet":
        """Rank splats by importance and cut the nested subsets.

        Deterministic: ties in importance break by splat index.
        """
        levels = tuple(levels)
        n = params.shape[0]
        importance = splat_importance(params)
        # position 0 = most important; stable sort makes ties index-ordered
        order = np.argsort(-importance, kind="stable")
        position = np.empty(n, dtype=np.int64)
        position[order] = np.arange(n)
        counts = [int(np.ceil(lvl.keep_fraction * n)) for lvl in levels]
        drop = np.full(n, len(levels), dtype=np.int16)
        for lod in range(len(levels) - 1, -1, -1):
            drop[position >= counts[lod]] = lod
        return cls(levels, drop)

    @property
    def num_levels(self) -> int:
        """How many levels (valid ``lod`` values are ``0..num_levels-1``)."""
        return len(self.levels)

    @property
    def num_rows(self) -> int:
        """Number of splats the set was built over."""
        return self.drop_level.shape[0]

    def sh_degree(self, lod: int) -> int:
        """SH degree of level ``lod``."""
        return self.levels[self._check(lod)].sh_degree

    def mask(self, lod: int) -> np.ndarray:
        """Boolean membership mask ``(N,)`` of level ``lod``."""
        return self.drop_level > self._check(lod)

    def subset_ids(self, lod: int) -> np.ndarray:
        """Sorted splat ids of level ``lod`` (nested across levels)."""
        return np.nonzero(self.mask(lod))[0]

    def filter_ids(self, ids: np.ndarray, lod: int) -> np.ndarray:
        """Restrict already-sorted ``ids`` (a frustum cull) to a level."""
        if self._check(lod) == 0:
            return ids  # full detail: the cull is the subset
        return ids[self.drop_level[ids] > lod]

    def _check(self, lod: int) -> int:
        if not 0 <= lod < self.num_levels:
            raise ValueError(
                f"lod {lod} out of range [0, {self.num_levels})"
            )
        return lod


def render_at_lod(
    model: GaussianModel,
    camera: Camera,
    lod_set: LODSet,
    lod: int,
    config: RasterConfig | None = None,
    background: np.ndarray | None = None,
) -> np.ndarray:
    """Render one view at one level (the serving path, minus the service).

    Delegates to :func:`~repro.serve.farm.render_frame` — the *same*
    function every :class:`~repro.serve.service.RenderService` frame
    (inline and farmed) runs — so quality measurement and serving cannot
    drift apart.
    """
    from .farm import FrameTask, render_frame
    from .store import InMemoryServingStore

    task = FrameTask(
        camera=camera,
        lod=lod,
        sh_degree=lod_set.sh_degree(lod),
        config=config,
        background=background,
    )
    store = InMemoryServingStore(model.params, copy=False)
    return render_frame(store, lod_set.drop_level, task)


def lod_quality_report(
    model: GaussianModel,
    cameras: list[Camera],
    lod_set: LODSet,
    config: RasterConfig | None = None,
    background: np.ndarray | None = None,
) -> list[dict]:
    """Measured PSNR delta of every level vs the full-detail render.

    Returns one entry per level: ``lod``, ``sh_degree``,
    ``keep_fraction``, ``num_splats`` (subset size), and
    ``psnr_vs_full`` averaged over ``cameras`` (``inf`` for level 0,
    which is the full-detail render itself).
    """
    full = [
        render_at_lod(model, cam, lod_set, 0, config, background)
        for cam in cameras
    ]
    report = []
    for lod, level in enumerate(lod_set.levels):
        scores = []
        for cam, reference in zip(cameras, full):
            image = (
                reference
                if lod == 0
                else render_at_lod(model, cam, lod_set, lod, config, background)
            )
            scores.append(psnr(image, reference))
        report.append({
            "lod": lod,
            "sh_degree": level.sh_degree,
            "keep_fraction": level.keep_fraction,
            "num_splats": int(lod_set.subset_ids(lod).size),
            "psnr_vs_full": float(np.mean(scores)),
        })
    return report
