"""Read-only serving stores: where a trained model lives while it serves.

Training placements (:mod:`repro.core.stores`) carry optimizer state and
gradient plumbing; serving needs none of that — just the committed
``(N, 59)`` parameter matrix, gatherable per view. Two placements:

* :class:`InMemoryServingStore` — the whole packed matrix resident in
  host memory. Fast, simple, and what the render farm publishes to its
  workers.
* :class:`PagedServingStore` — the out-of-core tier for models larger
  than the host budget (TideGS's regime, inference-side): the geometric
  columns (17%) stay resident for culling, while the non-geometric
  columns are spatially sharded into memory-mapped page files and at
  most ``resident`` shards occupy host DRAM at once. Residency reuses
  the training tier's LRU machinery (:class:`~repro.core.stores.\
ResidentSet`), page traffic is metered on the
  :class:`~repro.core.systems.TransferLedger` page channel, and a
  capacity-capped :class:`~repro.sim.memory.MemoryTracker` *enforces*
  the byte budget — an accounting bug raises instead of silently
  overshooting.

Both expose the same three-method surface the frame renderer needs:
``geometry()`` for culling, ``gather(ids)`` for the visible rows, and
``num_rows``. Placement never changes pixels: a paged gather returns the
same bytes an in-memory gather would.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from ..core import integrity as _integrity
from ..core.checkpoint import CheckpointReader
from ..core.integrity import CorruptPageError, atomic_write_bytes
from ..core.pagecodec import get_page_codec
from ..core.splitting import spatial_partition
from ..core.stores import ResidentSet
from ..core.systems import TransferLedger
from ..gaussians import layout
from ..sim.memory import MemoryTracker
from ..telemetry import metrics as _metrics
from ..telemetry import trace as _trace
from ..telemetry.trace import span as _span

__all__ = [
    "InMemoryServingStore",
    "PageQuarantinedError",
    "PagedServingStore",
    "ServingStore",
]


class PageQuarantinedError(RuntimeError):
    """A serving shard's page failed integrity checks and was fenced off.

    Raised on the page-in that detects the corruption and on every later
    attempt to touch the quarantined shard — requests needing it fail
    individually (and are reported) while the rest of the model keeps
    serving; the store as a whole never crashes on a bad page.
    """


def _members(ids: np.ndarray, rows: np.ndarray):
    """``(sel, local)``: positions within ``ids`` of this shard's members
    and their shard-local row indices (rows sorted ascending)."""
    if rows.size == 0 or ids.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    pos = np.searchsorted(rows, ids)
    pos = np.clip(pos, 0, rows.size - 1)
    hit = rows[pos] == ids
    sel = np.nonzero(hit)[0]
    return sel, pos[sel]


class ServingStore:
    """Read-only model placement surface the frame renderer draws from."""

    @property
    def num_rows(self) -> int:
        """Number of Gaussians in the served model."""
        raise NotImplementedError

    @property
    def dtype(self):
        """Floating dtype of the served parameters."""
        raise NotImplementedError

    @property
    def model_bytes(self) -> int:
        """fp32-equivalent bytes of the full packed parameter matrix."""
        return layout.param_bytes(self.num_rows)

    def geometry(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resident ``(means, log_scales, quats)`` for frustum culling."""
        raise NotImplementedError

    def gather(self, ids: np.ndarray) -> np.ndarray:
        """Packed ``(M, 59)`` rows for ``ids`` (copy)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any backing resources (idempotent)."""


class InMemoryServingStore(ServingStore):
    """The whole committed model resident in host memory.

    Args:
        params: packed ``(N, 59)`` matrix.
        copy: defensively copy ``params`` (the render farm's workers wrap
            shared-memory views without copying).
    """

    def __init__(self, params: np.ndarray, copy: bool = True):
        if params.ndim != 2 or params.shape[1] != layout.PARAM_DIM:
            raise ValueError(
                f"params must be (N, {layout.PARAM_DIM}), got {params.shape}"
            )
        self.params = params.copy() if copy else params

    @classmethod
    def from_model(cls, model) -> "InMemoryServingStore":
        """Wrap a :class:`~repro.gaussians.model.GaussianModel` (copy)."""
        return cls(model.params)

    @classmethod
    def from_checkpoint(cls, path: str) -> "InMemoryServingStore":
        """Load the committed model of a checkpoint, any placement."""
        from ..core.checkpoint import resume_model

        return cls(resume_model(path).params, copy=False)

    @property
    def num_rows(self) -> int:
        return self.params.shape[0]

    @property
    def dtype(self):
        return self.params.dtype

    def geometry(self):
        return (
            self.params[:, layout.MEAN_SLICE],
            self.params[:, layout.SCALE_SLICE],
            self.params[:, layout.QUAT_SLICE],
        )

    def gather(self, ids: np.ndarray) -> np.ndarray:
        return self.params[ids]  # advanced indexing already copies


class _ServeShard:
    """One spatial shard's non-geometric page: a memmap file plus an
    optional paged-in host copy, driven through the shared
    :class:`~repro.core.stores.ResidentSet` (which calls :meth:`spill`
    on the LRU shard to make room — the same protocol the training
    tier's :class:`~repro.core.stores.DiskStore` speaks)."""

    def __init__(self, store: "PagedServingStore", index: int, num_rows: int):
        self._store = store
        self.index = index
        self.num_rows = num_rows
        self.codec = store.codec
        #: encoded on-disk bytes of the sealed page (0 = raw/unsealed:
        #: the ledger then meters fp32-equivalent bytes on both sides)
        self.disk_nbytes = 0
        self.page_path = ""
        if num_rows:
            # the build buffer is always a raw memmap — checkpoint blocks
            # stream into it incrementally; :meth:`seal` encodes it once
            # building is done (non-raw codecs only)
            path = os.path.join(store.page_dir, f"serve_shard{index}.dat")
            self._mm = np.memmap(
                path, dtype=store.dtype, mode="w+",
                shape=(num_rows, layout.NON_GEOMETRIC_DIM),
            )
            self.page_path = path
        else:  # zero bytes cannot be memory-mapped
            self._mm = np.empty(
                (0, layout.NON_GEOMETRIC_DIM), dtype=store.dtype
            )
        self.values: np.ndarray | None = None

    def flush(self) -> None:
        """Flush the page file (no-op for an empty shard)."""
        if isinstance(self._mm, np.memmap):
            self._mm.flush()

    def seal(self) -> None:
        """Finish building: under a non-raw codec, encode the build
        memmap into the shard's page file (framed with the GSP1 integrity
        header, written atomically) and delete the raw buffer (serving
        then decodes whole pages); raw pages flush and record a CRC
        sidecar. One shard's rows are transient at a time."""
        if self.codec.name == "raw" or not self.num_rows:
            self.flush()
            if self.page_path:
                _integrity.write_array_sidecar(
                    self.page_path, np.ascontiguousarray(self._mm)
                )
            return
        buf = self.codec.encode_page(np.asarray(self._mm))
        enc_path = os.path.join(
            self._store.page_dir,
            f"serve_shard{self.index}.{self.codec.name}.pagez",
        )
        atomic_write_bytes(enc_path, buf)
        build_path = self.page_path
        self._mm = None
        os.remove(build_path)
        self.page_path = enc_path
        self.disk_nbytes = len(buf)

    def _read_page(self) -> np.ndarray:
        """Read + validate the page (:class:`~repro.core.integrity.
        CorruptPageError` on a torn or bit-rotted file)."""
        if self._mm is not None:  # raw (or not yet sealed)
            arr = np.array(self._mm)
            if self.page_path:
                _integrity.verify_sidecar(self.page_path, arr)
            return arr
        with open(self.page_path, "rb") as fh:
            buf = fh.read()
        return self.codec.decode_page(
            buf,
            (self.num_rows, layout.NON_GEOMETRIC_DIM),
            self._store.dtype,
            path=self.page_path,
        )

    @property
    def is_resident(self) -> bool:
        return self.values is not None

    @property
    def state_bytes(self) -> int:
        """fp32-equivalent bytes of the paged columns."""
        return layout.param_bytes(self.num_rows, layout.NON_GEOMETRIC_DIM)

    def write(self, local_rows, values: np.ndarray) -> None:
        """Fill page-file rows (build time only, before serving starts)."""
        if self._mm is None:
            raise RuntimeError(
                f"serve shard {self.index} is sealed; pages are read-only"
            )
        self._mm[local_rows] = values
        self.flush()
        # a write invalidates any CRC sidecar a previous seal recorded
        if self.page_path:
            side = _integrity.sidecar_path(self.page_path)
            if os.path.exists(side):
                os.unlink(side)

    def page_in(self) -> None:
        """Make the shard's columns host-resident (LRU-admitting).

        A page that fails integrity validation quarantines the shard:
        this call — and every later one for the same shard — raises
        :class:`PageQuarantinedError`, leaving the rest of the store
        serving.
        """
        store = self._store
        quarantined = store.quarantined.get(self.index)
        if quarantined is not None:
            raise PageQuarantinedError(
                f"serving shard {self.index} is quarantined: {quarantined}"
            )
        if self.is_resident:
            store.resident_set.touch(self)
            return
        store.resident_set.admit(self)  # spills the LRU shard first
        tok = _trace.begin("serve/page_in", "page")
        try:
            self.values = self._read_page()
        except CorruptPageError as exc:
            store.resident_set.drop(self)
            store._quarantine(self, exc)
        finally:
            if tok is not None:
                _trace.end(tok)
                _metrics.get_registry().histogram(
                    "page_in_seconds", store="serve"
                ).observe(time.perf_counter() - tok[3])
        store.host_memory.allocate("serve_resident_shards", self.state_bytes)
        store.ledger.record_page_in(
            self.state_bytes, self.disk_nbytes or None
        )

    def spill(self) -> None:
        """Drop the host copy (the page file stays authoritative)."""
        if not self.is_resident:
            return
        store = self._store
        with _span("serve/page_out", "page", shard=self.index):
            self.values = None
            store.resident_set.drop(self)
            store.host_memory.free(
                "serve_resident_shards", self.state_bytes
            )
            # serving pages are immutable: a spill writes nothing to disk
            store.ledger.record_page_out(self.state_bytes, 0)


class PagedServingStore(ServingStore):
    """Serve a model larger than host memory by paging shard columns.

    The geometric block ``(N, 10)`` stays resident (every request culls
    against it); the non-geometric ``(N, 49)`` lives in per-shard memmap
    page files under ``page_dir`` and at most ``resident`` shards are
    paged into host DRAM at once, where::

        resident = (host_budget_bytes - geo_bytes) // worst_shard_bytes

    A :class:`~repro.sim.memory.MemoryTracker` capped at
    ``host_budget_bytes`` charges the geometric block and every page-in,
    so the budget is enforced, not just reported; page traffic lands on
    the ledger's ``page_in``/``page_out`` channel.

    Args:
        geo: resident geometric columns ``(N, 10)``.
        shard_rows: sorted disjoint global row ids per shard (a
            :func:`~repro.core.splitting.spatial_partition`).
        host_budget_bytes: byte cap on tracked host memory.
        page_dir: directory of the page files (a temporary directory
            that dies with the store when ``None``).
        ledger: transfer ledger for the page channel (fresh when
            ``None``).
        codec: page codec name (see :mod:`repro.core.pagecodec`). Under
            a non-raw codec each shard's page is stored encoded (sealed
            once building finishes) and decoded on page-in; the ledger's
            ``page_in_disk_bytes`` then meters the encoded size next to
            the fp32-equivalent ``page_in_bytes``.
    """

    def __init__(
        self,
        geo: np.ndarray,
        shard_rows: list[np.ndarray],
        host_budget_bytes: int,
        page_dir: str | None = None,
        ledger: TransferLedger | None = None,
        codec: str = "raw",
    ):
        if geo.ndim != 2 or geo.shape[1] != layout.GEOMETRIC_DIM:
            raise ValueError(
                f"geo must be (N, {layout.GEOMETRIC_DIM}), got {geo.shape}"
            )
        self.geo = np.ascontiguousarray(geo)
        self.codec = get_page_codec(codec)
        self.shard_rows = [np.asarray(r, dtype=np.int64) for r in shard_rows]
        if int(sum(r.size for r in self.shard_rows)) != geo.shape[0]:
            raise ValueError("shard rows must partition the model's rows")
        self.ledger = ledger if ledger is not None else TransferLedger()
        if page_dir is None:
            self._page_tmp = tempfile.TemporaryDirectory(prefix="gsscale-serve-")
            self.page_dir = self._page_tmp.name
        else:
            self._page_tmp = None
            self.page_dir = page_dir
            os.makedirs(page_dir, exist_ok=True)

        geo_bytes = layout.param_bytes(self.num_rows, layout.GEOMETRIC_DIM)
        worst = max(
            layout.param_bytes(int(r.size), layout.NON_GEOMETRIC_DIM)
            for r in self.shard_rows
        )
        resident = (host_budget_bytes - geo_bytes) // max(worst, 1)
        if resident < 1:
            raise ValueError(
                f"host budget {host_budget_bytes} cannot hold the resident "
                f"geometry ({geo_bytes} B) plus one shard page ({worst} B)"
            )
        self.host_memory = MemoryTracker(capacity_bytes=host_budget_bytes)
        self.host_memory.allocate("serve_geo", geo_bytes)
        self.resident_set = ResidentSet(min(int(resident), len(self.shard_rows)))
        #: shard index -> corruption detail for pages fenced off by a
        #: failed integrity check (surfaced in serving stats)
        self.quarantined: dict[int, str] = {}
        self.shards = [
            _ServeShard(self, k, int(r.size))
            for k, r in enumerate(self.shard_rows)
        ]

    def _quarantine(self, shard: _ServeShard, exc: CorruptPageError) -> None:
        """Fence off a corrupt shard page and re-raise as quarantined."""
        detail = str(exc)
        self.quarantined[shard.index] = detail
        raise PageQuarantinedError(
            f"serving shard {shard.index} quarantined: {detail}"
        ) from exc

    # -- construction ------------------------------------------------------
    def seal(self) -> None:
        """Finish building every shard page (encode under a non-raw
        codec); pages are read-only afterwards."""
        for shard in self.shards:
            shard.seal()

    @classmethod
    def from_model(
        cls,
        model,
        host_budget_bytes: int,
        num_shards: int = 4,
        page_dir: str | None = None,
        ledger: TransferLedger | None = None,
        codec: str = "raw",
    ) -> "PagedServingStore":
        """Shard a in-memory model into page files and serve it paged."""
        params = model.params
        shard_rows = spatial_partition(
            params[:, layout.MEAN_SLICE], num_shards
        )
        store = cls(
            params[:, layout.GEOMETRIC_SLICE],
            shard_rows,
            host_budget_bytes,
            page_dir=page_dir,
            ledger=ledger,
            codec=codec,
        )
        for shard, rows in zip(store.shards, store.shard_rows):
            if rows.size:
                shard.write(slice(None), params[rows][:, layout.NON_GEOMETRIC_SLICE])
        store.seal()
        return store

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        host_budget_bytes: int,
        num_shards: int = 4,
        page_dir: str | None = None,
        ledger: TransferLedger | None = None,
        codec: str = "raw",
    ) -> "PagedServingStore":
        """Open a trained checkpoint for paged serving.

        Streams the checkpoint block by block through
        :class:`~repro.core.checkpoint.CheckpointReader`: the packed
        ``(N, 59)`` matrix is never materialized — only the geometric
        columns (resident anyway) plus one checkpoint block at a time —
        so a spilled out-of-core checkpoint opens for serving within
        roughly the same host footprint it trained under.
        """
        with CheckpointReader(path) as reader:
            geo = reader.assemble_columns(layout.GEOMETRIC_SLICE)
            shard_rows = spatial_partition(
                geo[:, layout.MEAN_SLICE], num_shards
            )
            store = cls(
                geo, shard_rows, host_budget_bytes,
                page_dir=page_dir, ledger=ledger, codec=codec,
            )
            # global row -> (owning serve shard, local row)
            n = reader.num_gaussians
            shard_of = np.empty(n, dtype=np.int64)
            local_of = np.empty(n, dtype=np.int64)
            for k, rows in enumerate(store.shard_rows):
                shard_of[rows] = k
                local_of[rows] = np.arange(rows.size)
            base = layout.NON_GEOMETRIC_SLICE.start
            for rows, csl, values in reader.iter_column_blocks(
                layout.NON_GEOMETRIC_SLICE
            ):
                if rows is None:
                    rows = np.arange(n)
                cols = slice(csl.start - base, csl.stop - base)
                for k in np.unique(shard_of[rows]):
                    sel = shard_of[rows] == k
                    store.shards[k]._mm[local_of[rows[sel]], cols] = values[sel]
            store.seal()
        return store

    # -- serving surface ---------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.geo.shape[0]

    @property
    def dtype(self):
        return self.geo.dtype

    @property
    def resident_budget(self) -> int:
        """How many shard pages may be host-resident at once."""
        return self.resident_set.budget

    def geometry(self):
        return (
            self.geo[:, layout.MEAN_SLICE],
            self.geo[:, layout.SCALE_SLICE],
            self.geo[:, layout.QUAT_SLICE],
        )

    def gather(self, ids: np.ndarray) -> np.ndarray:
        out = np.empty((ids.size, layout.PARAM_DIM), dtype=self.dtype)
        out[:, layout.GEOMETRIC_SLICE] = self.geo[ids]
        for shard, rows in zip(self.shards, self.shard_rows):
            sel, local = _members(ids, rows)
            if sel.size == 0:
                continue
            # copy while resident: a later shard's admit may spill this one
            shard.page_in()
            out[sel, layout.NON_GEOMETRIC_SLICE] = shard.values[local]
        return out

    def gather_shard(
        self, k: int, ids: np.ndarray, local: np.ndarray
    ) -> np.ndarray:
        """Packed rows of shard ``k``'s members only.

        ``ids`` are the members' global row ids and ``local`` their
        shard-local rows (a :func:`_members` pair). Exactly one page is
        touched, so the per-shard serving path
        (:func:`repro.serve.farm.render_frame_sharded`) holds at most one
        shard's compact rows at a time instead of the visible union.
        """
        out = np.empty((local.size, layout.PARAM_DIM), dtype=self.dtype)
        out[:, layout.GEOMETRIC_SLICE] = self.geo[ids]
        shard = self.shards[k]
        shard.page_in()
        out[:, layout.NON_GEOMETRIC_SLICE] = shard.values[local]
        return out

    def page_paths(self) -> list[tuple[str, int, str]]:
        """``(page file path, row count, codec name)`` per shard (path
        ``""`` when empty).

        The render farm's sharded publish hands these to its workers,
        which re-open the pages read-only — memory-mapping raw pages,
        decoding encoded ones — instead of receiving a packed copy of
        the model.
        """
        specs: list[tuple[str, int, str]] = []
        for shard in self.shards:
            if shard.num_rows and shard.page_path:
                # an unsealed non-raw shard still serves its raw build
                # memmap; only a sealed page needs the worker to decode
                name = "raw" if shard._mm is not None else shard.codec.name
                specs.append((shard.page_path, shard.num_rows, name))
            else:
                specs.append(("", shard.num_rows, "raw"))
        return specs

    def close(self) -> None:
        for shard in self.shards:
            shard.spill()
            shard._mm = None
        if self._page_tmp is not None:
            self._page_tmp.cleanup()
            self._page_tmp = None
