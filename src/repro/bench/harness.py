"""Reporting helpers shared by the figure/table benchmarks.

Every bench regenerates one paper artifact and emits a plain-text table;
``write_report`` persists it under ``benchmarks/out/`` so the artifacts
survive pytest's output capture.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass
class Table:
    """A printable results table tagged with the paper artifact it
    reproduces.

    Attributes:
        title: e.g. "Figure 12 — Peak GPU Memory".
        columns: column headers.
        rows: row values (stringified on render).
        notes: free-form caveats (substitutions, calibration notes).
    """

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Format as an aligned plain-text table."""
        str_rows = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in str_rows))
            if str_rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        )
        lines.append(sep)
        for row in str_rows:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def output_dir() -> str:
    """Directory for persisted bench artifacts (created on demand)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    path = os.path.join(here, "benchmarks", "out")
    os.makedirs(path, exist_ok=True)
    return path


def write_report(name: str, *tables: Table) -> str:
    """Write tables to ``benchmarks/out/<name>.txt`` and return the text."""
    text = "\n\n".join(t.render() for t in tables) + "\n"
    path = os.path.join(output_dir(), f"{name}.txt")
    with open(path, "w") as f:
        f.write(text)
    return text
