"""Benchmark support: quality-scaling model and report harness."""

from .harness import Table, output_dir, write_report
from .quality_model import (
    LPIPS_DECADE_FACTOR,
    PSNR_REL_SLOPE,
    SSIM_REL_SLOPE,
    TABLE3_QUALITY,
    QualityModel,
    QualityPoint,
)

__all__ = [
    "LPIPS_DECADE_FACTOR",
    "PSNR_REL_SLOPE",
    "QualityModel",
    "QualityPoint",
    "SSIM_REL_SLOPE",
    "TABLE3_QUALITY",
    "Table",
    "output_dir",
    "write_report",
]
