"""Quality-vs-scale model calibrated to the paper's reported numbers.

Figures 1, 3a, and 13 plot rendering quality against Gaussian count at
scales (tens of millions of Gaussians, thousands of real photographs) that
cannot be trained functionally offline. The paper's curves are close to
log-linear in the count over the evaluated range, so this module fits one
log-linear law per scene through two kinds of published anchors:

* Table 3 gives each scene's (PSNR, SSIM, LPIPS) at its full-scale count.
* Section 5.6 gives the geomean quality deltas across the scaling range
  (laptop 4M -> 18M: +2.6% PSNR, +5.1% SSIM, -28.7% LPIPS; desktop
  9M -> 40M: +1.6% PSNR, +3.6% SSIM, -30.5% LPIPS), which pin the slopes.

The *functional* counterpart — real training sweeps on synthetic scenes in
``benchmarks/bench_fig13_quality_scaling.py`` — validates the monotone
shape the model assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.registry import SceneSpec, get_scene

# Section 5.6 laptop deltas over 4M -> 18M (0.6532 decades): slopes per
# decade of Gaussian count, expressed relative to the reference value.
_DECADES_4_TO_18M = float(np.log10(18 / 4))
PSNR_REL_SLOPE = 0.026 / _DECADES_4_TO_18M
SSIM_REL_SLOPE = 0.051 / _DECADES_4_TO_18M
#: LPIPS shrinks multiplicatively: 4M -> 18M is -28.7%.
LPIPS_DECADE_FACTOR = float((1.0 - 0.287) ** (1.0 / _DECADES_4_TO_18M))

#: Table 3 quality at each scene's full-scale configuration.
TABLE3_QUALITY = {
    "rubble": (26.63, 0.808, 0.194),
    "building": (22.74, 0.777, 0.211),
    "lfls": (24.04, 0.752, 0.234),
    "sziit": (26.28, 0.797, 0.213),
    "sztu": (24.90, 0.835, 0.155),
    "aerial": (27.69, 0.873, 0.127),
}


@dataclass(frozen=True)
class QualityPoint:
    """Rendering quality at one Gaussian count."""

    num_gaussians: int
    psnr: float
    ssim: float
    lpips: float


class QualityModel:
    """Log-linear quality-vs-count law for one benchmark scene."""

    def __init__(self, scene_key: str):
        self.spec: SceneSpec = get_scene(scene_key)
        key = scene_key.lower()
        if key not in TABLE3_QUALITY:
            raise KeyError(f"no Table-3 anchor for scene {scene_key!r}")
        self.ref_psnr, self.ref_ssim, self.ref_lpips = TABLE3_QUALITY[key]
        self.ref_n = self.spec.total_gaussians

    def _decades(self, num_gaussians: float) -> float:
        n = max(float(num_gaussians), 1.0)
        return float(np.log10(n / self.ref_n))

    def psnr(self, num_gaussians: float) -> float:
        """PSNR (dB) at a Gaussian count."""
        d = self._decades(num_gaussians)
        return self.ref_psnr * (1.0 + PSNR_REL_SLOPE * d)

    def ssim(self, num_gaussians: float) -> float:
        """SSIM at a Gaussian count (clamped to (0, 1))."""
        d = self._decades(num_gaussians)
        return float(np.clip(self.ref_ssim * (1.0 + SSIM_REL_SLOPE * d), 0.0, 0.999))

    def lpips(self, num_gaussians: float) -> float:
        """LPIPS at a Gaussian count (lower is better)."""
        d = self._decades(num_gaussians)
        return self.ref_lpips * LPIPS_DECADE_FACTOR**d

    def point(self, num_gaussians: float) -> QualityPoint:
        """All three metrics at a count."""
        return QualityPoint(
            num_gaussians=int(num_gaussians),
            psnr=self.psnr(num_gaussians),
            ssim=self.ssim(num_gaussians),
            lpips=self.lpips(num_gaussians),
        )

    def sweep(self, counts) -> list[QualityPoint]:
        """Quality curve over a list of counts (Figure 13 series)."""
        return [self.point(n) for n in counts]
