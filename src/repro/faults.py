"""Deterministic fault injection for the chaos suite.

The fault-tolerance layer (supervised pools, checksummed pages, patch
checkpoint rotation, serving degradation) is only trustworthy if its
recovery paths run under test. This module makes faults *schedulable*: a
:class:`FaultPlan` names, ahead of time, exactly which fault fires where
— kill the worker that reaches task N, delay a span kernel, tear or
corrupt the bytes of a matching file write — and the hooks compiled into
the hot paths (:func:`fault_point` in the raster kernels and pool task
wrapper, :func:`check_write_fault` in the atomic writers) consult the
installed plan and fire each fault exactly the scheduled number of times.

Two properties make the injected runs reproducible:

* **Cross-process exactly-once firing.** Pool workers, the training
  process, and the serving process may all visit the same fault point;
  each visit atomically claims the next ordinal for that fault via
  ``open(token, "x")`` in the plan's shared ``token_dir``, so "fire on
  the third visit, once" means the same thing whether the visits race
  across four workers or run serially in-process.
* **Zero-cost when disarmed.** Every hook starts with one module-global
  ``None`` check; production runs never pay more than that. Plans reach
  pool workers by riding the task pickles (see
  :class:`~repro.render.parallel.PersistentPool`), never through
  inherited globals, so a plan installed after the pool spawned still
  governs its workers.

Kill-action faults only fire inside pool worker processes — firing one
in the driving process would take the test (or the user's session) down
with it; an in-process visit claims its ordinal and moves on.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import signal
import time
from dataclasses import dataclass

__all__ = [
    "Fault",
    "FaultPlan",
    "FileFault",
    "InjectedFaultError",
    "active_plan",
    "check_write_fault",
    "clear_plan",
    "corrupt_file",
    "fault_point",
    "get_plan",
    "install_plan",
    "truncate_file",
]


class InjectedFaultError(RuntimeError):
    """Raised by ``raise``-action faults and simulated mid-write crashes."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault at a named :func:`fault_point`.

    Attributes:
        point: fault-point name (``"pool:task"``, ``"fragment:pairs"``,
            ``"span:backward"``, ...).
        action: ``"kill"`` (SIGKILL the visiting pool worker),
            ``"delay"`` (sleep ``seconds``), or ``"raise"``
            (:class:`InjectedFaultError`).
        index: restrict to visits reporting this task index
            (``None`` matches any; only ``"pool:task"`` reports one).
        after: skip this many eligible visits before firing.
        times: how many eligible visits fire (1 = exactly once).
        seconds: sleep length of a ``"delay"`` fault.
    """

    point: str
    action: str = "kill"
    index: int | None = None
    after: int = 0
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self):
        if self.action not in ("kill", "delay", "raise"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.after < 0 or self.times < 1:
            raise ValueError("after must be >= 0 and times >= 1")


@dataclass(frozen=True)
class FileFault:
    """One scheduled write fault, matched against destination paths.

    Applied by the atomic writers in :mod:`repro.core.integrity` to the
    temp file *before* the rename, so the mangled bytes land at the final
    path exactly like a real torn write that a crash made durable.

    Attributes:
        match: substring of the destination path this fault arms for.
        kind: ``"torn"`` truncates the payload to ``keep_fraction``;
            ``"corrupt"`` flips ``length`` bytes at ``offset``.
        keep_fraction: surviving prefix fraction of a torn write.
        offset, length: byte range a ``"corrupt"`` fault inverts.
        crash: torn writes then raise :class:`InjectedFaultError` —
            a torn file only ever lands because the writer died mid-way,
            so the simulated tear simulates the crash too.
        after, times: as :class:`Fault` (counted per matching write).
    """

    match: str
    kind: str = "torn"
    keep_fraction: float = 0.5
    offset: int = 0
    length: int = 8
    crash: bool = True
    after: int = 0
    times: int = 1

    def __post_init__(self):
        if self.kind not in ("torn", "corrupt"):
            raise ValueError(f"unknown file-fault kind {self.kind!r}")
        if not 0.0 < self.keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in (0, 1)")
        if self.after < 0 or self.times < 1:
            raise ValueError("after must be >= 0 and times >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable schedule of faults.

    Attributes:
        token_dir: directory of the claim tokens — must be shared by
            every process the plan governs (the pool wrapper ships the
            plan itself through the task pickles; the filesystem carries
            the visit counts back).
        faults: :class:`Fault` entries armed at fault points.
        file_faults: :class:`FileFault` entries armed at atomic writes.
        seed: recorded for reports; the plan itself is deterministic.
    """

    token_dir: str
    faults: tuple[Fault, ...] = ()
    file_faults: tuple[FileFault, ...] = ()
    seed: int = 0


#: The process-local installed plan (``None`` = every hook is a no-op).
_PLAN: FaultPlan | None = None


def install_plan(plan: FaultPlan) -> None:
    """Arm ``plan`` in this process (creates its token dir)."""
    global _PLAN
    os.makedirs(plan.token_dir, exist_ok=True)
    _PLAN = plan


def clear_plan() -> None:
    """Disarm any installed plan in this process."""
    global _PLAN
    _PLAN = None


def get_plan() -> FaultPlan | None:
    """The currently installed plan (``None`` when disarmed)."""
    return _PLAN


@contextlib.contextmanager
def active_plan(plan: FaultPlan):
    """Context manager: install ``plan``, disarm on exit."""
    install_plan(plan)
    try:
        yield plan
    finally:
        clear_plan()


def _claim_ordinal(token_dir: str, fault_id: str) -> int:
    """Atomically claim this visit's global ordinal for ``fault_id``.

    ``open(..., "x")`` is atomic on every platform we run on, so racing
    visits — across processes included — each get a distinct ordinal.
    """
    n = 0
    while True:
        try:
            with open(os.path.join(token_dir, f"{fault_id}.{n}"), "x"):
                return n
        except FileExistsError:
            n += 1


def _in_worker_process() -> bool:
    return mp.current_process().name != "MainProcess"


def fault_point(name: str, index: int | None = None) -> None:
    """Visit the fault point ``name`` (no-op without an armed plan).

    Compiled into the span/fragment kernels and the supervised pool's
    task wrapper; ``index`` is the pool task index where one exists.
    """
    plan = _PLAN
    if plan is None:
        return
    for i, fault in enumerate(plan.faults):
        if fault.point != name:
            continue
        if fault.index is not None and fault.index != index:
            continue
        if fault.action == "kill" and not _in_worker_process():
            continue  # never take the driving process down
        ordinal = _claim_ordinal(plan.token_dir, f"f{i}")
        if not fault.after <= ordinal < fault.after + fault.times:
            continue
        if fault.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault.action == "delay":
            time.sleep(fault.seconds)
        else:
            raise InjectedFaultError(
                f"injected fault at {name!r} (visit {ordinal})"
            )


def check_write_fault(path: str) -> FileFault | None:
    """The armed :class:`FileFault` for a write landing at ``path``.

    Claims the visit ordinal, so each matching write consumes one slot
    whether or not it fires. The atomic writers apply the returned fault
    to their temp file; ``None`` means write normally.
    """
    plan = _PLAN
    if plan is None:
        return None
    for i, fault in enumerate(plan.file_faults):
        if fault.match not in str(path):
            continue
        ordinal = _claim_ordinal(plan.token_dir, f"w{i}")
        if fault.after <= ordinal < fault.after + fault.times:
            return fault
    return None


def truncate_file(path: str, keep_fraction: float = 0.5) -> None:
    """Tear ``path`` in place (test helper for already-written files)."""
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(max(1, int(size * keep_fraction)))


def corrupt_file(path: str, offset: int = 0, length: int = 8) -> None:
    """Flip ``length`` bytes of ``path`` at ``offset`` (test helper)."""
    size = os.path.getsize(path)
    if size == 0:
        return
    offset = min(offset, size - 1)
    length = min(length, size - offset)
    with open(path, "r+b") as fh:
        fh.seek(offset)
        chunk = fh.read(length)
        fh.seek(offset)
        fh.write(bytes(b ^ 0xFF for b in chunk))
