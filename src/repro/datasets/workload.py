"""Per-view workload traces: how many Gaussians each training view touches.

The performance model's inputs are per-iteration active-Gaussian counts.
Two sources produce them:

* :func:`measure_trace` runs real frustum culling over a (synthetic) scene —
  exact, but bounded by what fits in RAM.
* :func:`synthesize_trace` draws ratios from a calibrated lognormal around a
  :class:`~repro.datasets.registry.SceneSpec`'s Figure-4 statistics — this
  is how paper-scale scenes (tens of millions of Gaussians) are driven.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cameras import Camera
from ..gaussians import GaussianModel
from ..render import frustum_cull
from .registry import SceneSpec


@dataclass
class WorkloadTrace:
    """Sequence of per-view active ratios for one scene.

    Attributes:
        scene_name: label.
        total_gaussians: N at measurement time.
        active_ratios: fraction of Gaussians visible per view, ``(V,)``.
    """

    scene_name: str
    total_gaussians: int
    active_ratios: np.ndarray

    @property
    def num_views(self) -> int:
        """Number of views in the trace."""
        return len(self.active_ratios)

    @property
    def avg_ratio(self) -> float:
        """Mean active ratio (the Figure 4 statistic)."""
        return float(np.mean(self.active_ratios))

    @property
    def peak_ratio(self) -> float:
        """Worst-case active ratio (binds peak memory, Challenge 3)."""
        return float(np.max(self.active_ratios))

    def active_counts(self) -> np.ndarray:
        """Active Gaussian counts per view."""
        return np.round(self.active_ratios * self.total_gaussians).astype(int)

    def clipped(self, mem_limit: float) -> "WorkloadTrace":
        """Trace after balance-aware image splitting with ``mem_limit``.

        Views whose ratio exceeds ``mem_limit`` are processed as
        ``ceil(ratio / mem_limit)`` balanced sub-views (Section 4.4; two
        sufficed in the paper's benchmarks), so the per-pass staged
        fraction drops to ``ratio / splits``.
        """
        ratios = self.active_ratios.copy()
        over = ratios > mem_limit
        splits = np.ceil(ratios[over] / mem_limit)
        ratios[over] = ratios[over] / splits
        return WorkloadTrace(
            scene_name=self.scene_name,
            total_gaussians=self.total_gaussians,
            active_ratios=ratios,
        )


def measure_trace(
    model: GaussianModel, cameras: list[Camera], scene_name: str = "measured"
) -> WorkloadTrace:
    """Exact workload trace via frustum culling every camera."""
    ratios = np.empty(len(cameras))
    for i, cam in enumerate(cameras):
        res = frustum_cull(model.means, model.log_scales, model.quats, cam)
        ratios[i] = res.active_ratio
    return WorkloadTrace(
        scene_name=scene_name,
        total_gaussians=model.num_gaussians,
        active_ratios=ratios,
    )


def synthesize_trace(
    spec: SceneSpec,
    num_views: int | None = None,
    seed: int = 0,
    use_small: bool = False,
) -> WorkloadTrace:
    """Stochastic trace matching a registry scene's Figure-4 statistics.

    Ratios are lognormal with the spec's mean, right-tail calibrated so the
    maximum over an epoch lands near ``spec.peak_active_ratio`` (the paper's
    Challenge 3: one far viewpoint dominates peak memory).
    """
    if num_views is None:
        num_views = spec.num_train_images
    total = spec.small_total_gaussians if use_small else spec.total_gaussians
    if total is None:
        raise ValueError(f"scene {spec.name} has no small variant")
    rng = np.random.default_rng(seed)

    mean = spec.avg_active_ratio
    peak = spec.peak_active_ratio
    # lognormal: choose sigma so that the ~99.9th percentile hits the peak
    sigma = np.log(peak / mean) / 3.1 if peak > mean else 0.1
    mu = np.log(mean) - 0.5 * sigma**2
    ratios = rng.lognormal(mean=mu, sigma=sigma, size=num_views)
    ratios = np.clip(ratios, mean * 0.2, peak)
    # pin the epoch's worst view at the spec's peak (deterministic anchor)
    ratios[rng.integers(num_views)] = peak
    return WorkloadTrace(
        scene_name=spec.name, total_gaussians=total, active_ratios=ratios
    )
