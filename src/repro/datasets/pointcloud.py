"""Point-cloud helpers used for Gaussian initialization (SfM substitute)."""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree


def mean_knn_distance(points: np.ndarray, k: int = 3) -> np.ndarray:
    """Mean distance from each point to its ``k`` nearest neighbors.

    Used by the 3DGS initialization recipe to pick per-Gaussian scales.

    Args:
        points: ``(N, 3)`` positions.
        k: number of neighbors (excluding the point itself).

    Returns:
        ``(N,)`` array of mean neighbor distances. For clouds with fewer than
        ``k + 1`` points, uses as many neighbors as exist; a single point
        gets distance 1.0.
    """
    n = points.shape[0]
    if n == 1:
        return np.ones(1, dtype=points.dtype)
    k_eff = min(k, n - 1)
    tree = cKDTree(points)
    # query returns the point itself at distance 0 in column 0
    dists, _ = tree.query(points, k=k_eff + 1)
    return np.asarray(dists[:, 1:].mean(axis=1))
