"""Scene data: synthetic generation, paper-scene registry, workload traces."""

from .pointcloud import mean_knn_distance
from .registry import PAPER_AVG_ACTIVE_RATIO, SCENES, SceneSpec, all_scenes, get_scene
from .synthetic import (
    SyntheticScene,
    SyntheticSceneConfig,
    build_scene,
    generate_point_cloud,
)
from .workload import WorkloadTrace, measure_trace, synthesize_trace

__all__ = [
    "PAPER_AVG_ACTIVE_RATIO",
    "SCENES",
    "SceneSpec",
    "SyntheticScene",
    "SyntheticSceneConfig",
    "WorkloadTrace",
    "all_scenes",
    "build_scene",
    "generate_point_cloud",
    "get_scene",
    "mean_knn_distance",
    "measure_trace",
    "synthesize_trace",
]
