"""Procedural scene generation — the offline substitute for the paper's
multi-view capture datasets.

A scene is a colored point cloud over a terrain heightfield with box
"buildings" (mimicking the aerial urban captures of Mill-19/GauU-Scene),
an *oracle* Gaussian model built from that cloud, ground-truth images
rendered from the oracle, and an intentionally degraded *initial* model
playing the role of the sparse SfM initialization. Training then has real
signal: the initial model must move toward the oracle to explain the
ground-truth images.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.ndimage import gaussian_filter

from ..cameras import Camera, trajectories
from ..gaussians import GaussianModel
from ..render import RasterConfig, render


@dataclass
class SyntheticSceneConfig:
    """Knobs of the procedural generator.

    Attributes:
        name: label for reports.
        extent: half-width of the square site in world units.
        num_points: oracle point-cloud size (== oracle Gaussian count).
        num_buildings: box clusters placed on the terrain.
        terrain_roughness: amplitude of the heightfield.
        width, height: rendered image size.
        num_train_cameras / num_test_cameras: capture set sizes.
        altitude: flight altitude of the aerial sweep; lower altitude gives
            smaller frustum footprints and therefore lower active ratios.
        fov_x_deg: horizontal field of view.
        init_fraction: fraction of oracle points kept for the degraded
            initial model (SfM clouds are much sparser than final models).
        seed: RNG seed; everything downstream is deterministic in it.
    """

    name: str = "synthetic"
    extent: float = 10.0
    num_points: int = 1500
    num_buildings: int = 6
    terrain_roughness: float = 1.0
    width: int = 64
    height: int = 48
    num_train_cameras: int = 12
    num_test_cameras: int = 4
    altitude: float = 9.0
    fov_x_deg: float = 60.0
    init_fraction: float = 0.5
    seed: int = 0


@dataclass
class SyntheticScene:
    """A fully materialized synthetic capture session.

    Attributes:
        config: generator configuration.
        oracle: the "true" scene the ground-truth images are rendered from.
        initial: degraded starting model for training (SfM substitute).
        train_cameras / test_cameras: capture poses.
        train_images / test_images: ground-truth renders from the oracle.
    """

    config: SyntheticSceneConfig
    oracle: GaussianModel
    initial: GaussianModel
    train_cameras: list[Camera]
    test_cameras: list[Camera]
    train_images: list[np.ndarray] = field(repr=False)
    test_images: list[np.ndarray] = field(repr=False)

    @property
    def extent(self) -> float:
        """Scene extent (drives position learning rate and densify scale)."""
        return self.config.extent


def generate_point_cloud(
    config: SyntheticSceneConfig,
) -> tuple[np.ndarray, np.ndarray]:
    """Terrain + buildings colored point cloud, ``(points, colors)``."""
    rng = np.random.default_rng(config.seed)
    n = config.num_points
    e = config.extent

    n_buildings = min(config.num_buildings, max(n // 50, 1))
    n_building_pts = n // 3 if n_buildings > 0 else 0
    n_terrain = n - n_building_pts

    # terrain: smooth random heightfield sampled at random (x, y)
    grid = gaussian_filter(rng.normal(size=(32, 32)), sigma=4.0)
    grid *= config.terrain_roughness / max(np.abs(grid).max(), 1e-9)
    xy = rng.uniform(-e, e, size=(n_terrain, 2))
    gi = ((xy + e) / (2 * e) * 31).astype(int)
    z = grid[gi[:, 0], gi[:, 1]]
    terrain = np.column_stack([xy, z])
    greens = np.clip(
        0.35 + 0.25 * (z[:, None] / max(config.terrain_roughness, 1e-9))
        + rng.normal(scale=0.05, size=(n_terrain, 3)),
        0.05,
        0.95,
    )
    greens[:, 1] += 0.15  # bias toward green ground
    terrain_colors = np.clip(greens, 0.0, 1.0)

    # buildings: axis-aligned boxes of surface points
    points = [terrain]
    colors = [terrain_colors]
    if n_building_pts > 0:
        per = n_building_pts // n_buildings
        for b in range(n_buildings):
            cx, cy = rng.uniform(-0.7 * e, 0.7 * e, size=2)
            w, d = rng.uniform(0.05 * e, 0.15 * e, size=2)
            h = rng.uniform(0.1 * e, 0.35 * e)
            count = per if b < n_buildings - 1 else n_building_pts - per * (
                n_buildings - 1
            )
            pts = np.column_stack(
                [
                    rng.uniform(cx - w, cx + w, size=count),
                    rng.uniform(cy - d, cy + d, size=count),
                    rng.uniform(0, h, size=count),
                ]
            )
            # push points to the box surface for a shell-like look
            face = rng.integers(0, 3, size=count)
            pts[face == 0, 0] = np.where(
                rng.random((face == 0).sum()) < 0.5, cx - w, cx + w
            )
            pts[face == 1, 1] = np.where(
                rng.random((face == 1).sum()) < 0.5, cy - d, cy + d
            )
            pts[face == 2, 2] = h
            base = rng.uniform(0.3, 0.8, size=3)
            cols = np.clip(
                base + rng.normal(scale=0.05, size=(count, 3)), 0.0, 1.0
            )
            points.append(pts)
            colors.append(cols)

    return np.concatenate(points), np.concatenate(colors)


def build_scene(config: SyntheticSceneConfig | None = None) -> SyntheticScene:
    """Generate a complete synthetic capture session."""
    config = config or SyntheticSceneConfig()
    rng = np.random.default_rng(config.seed + 1)
    points, colors = generate_point_cloud(config)

    oracle = GaussianModel.from_point_cloud(
        points, colors, initial_opacity=0.8, scale_multiplier=1.2,
        dtype=np.float64,
    )
    # mild SH detail so view-dependence exists
    oracle.sh[:, 1:4, :] = rng.normal(scale=0.05, size=(len(oracle), 3, 3))

    # one dense sweep; every k-th view is held out for testing (the
    # standard 3DGS evaluation protocol)
    total_cams = config.num_train_cameras + config.num_test_cameras
    rows = max(2, int(np.sqrt(total_cams)))
    cols = max(2, int(np.ceil(total_cams / rows)))
    all_cameras = trajectories.aerial_grid(
        extent=0.8 * config.extent,
        altitude=config.altitude,
        rows=rows,
        cols=cols,
        width=config.width,
        height_px=config.height,
        fov_x_deg=config.fov_x_deg,
        far=20.0 * config.extent,
    )[:total_cams]
    if config.num_test_cameras > 0:
        stride = max(total_cams // config.num_test_cameras, 2)
        test_idx = set(range(1, total_cams, stride)[: config.num_test_cameras])
    else:
        test_idx = set()
    test_cameras = [c for i, c in enumerate(all_cameras) if i in test_idx][
        : config.num_test_cameras
    ]
    train_cameras = [c for i, c in enumerate(all_cameras) if i not in test_idx][
        : config.num_train_cameras
    ]

    cfg = RasterConfig()
    train_images = [render(oracle, cam, config=cfg).image for cam in train_cameras]
    test_images = [render(oracle, cam, config=cfg).image for cam in test_cameras]

    # degraded initial model: subsample points, perturb, forget colors a bit
    keep = max(int(len(oracle) * config.init_fraction), 4)
    ids = rng.choice(len(oracle), size=keep, replace=False)
    init_points = points[ids] + rng.normal(
        scale=0.01 * config.extent, size=(keep, 3)
    )
    init_colors = np.clip(
        colors[ids] + rng.normal(scale=0.1, size=(keep, 3)), 0.0, 1.0
    )
    initial = GaussianModel.from_point_cloud(
        init_points, init_colors, initial_opacity=0.1, scale_multiplier=1.5,
        dtype=np.float64,
    )
    return SyntheticScene(
        config=config,
        oracle=oracle,
        initial=initial,
        train_cameras=train_cameras,
        test_cameras=test_cameras,
        train_images=train_images,
        test_images=test_images,
    )
