"""COLMAP text-format ingestion — the real 3DGS input pipeline.

3DGS training sessions (including every dataset in the paper's Table 2)
start from a COLMAP Structure-from-Motion reconstruction: ``cameras.txt``
(intrinsics), ``images.txt`` (per-image poses), ``points3D.txt`` (sparse
colored cloud). This module parses that layout into :class:`Camera` and
point-cloud arrays, and can write it back, so synthetic captures generated
here are interchangeable with real SfM outputs.

Supported camera models: ``PINHOLE`` (fx fy cx cy) and
``SIMPLE_PINHOLE`` (f cx cy).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..cameras.camera import Camera
from ..gaussians.quaternion import normalize, to_rotation_matrix


@dataclass
class ColmapScene:
    """A parsed COLMAP reconstruction.

    Attributes:
        cameras: one calibrated :class:`Camera` per registered image, in
            ``images.txt`` order.
        image_names: file names aligned with ``cameras``.
        points: sparse cloud positions, ``(P, 3)``.
        colors: per-point RGB in [0, 1], ``(P, 3)``.
    """

    cameras: list[Camera]
    image_names: list[str]
    points: np.ndarray
    colors: np.ndarray


def _strip_comments(path: str) -> list[str]:
    with open(path) as f:
        return [
            line.strip()
            for line in f
            if line.strip() and not line.lstrip().startswith("#")
        ]


def _parse_intrinsics(path: str) -> dict[int, tuple]:
    intrinsics = {}
    for line in _strip_comments(path):
        parts = line.split()
        cam_id = int(parts[0])
        model = parts[1]
        width, height = int(parts[2]), int(parts[3])
        params = [float(p) for p in parts[4:]]
        if model == "PINHOLE":
            fx, fy, cx, cy = params[:4]
        elif model == "SIMPLE_PINHOLE":
            fx = fy = params[0]
            cx, cy = params[1], params[2]
        else:
            raise ValueError(f"unsupported COLMAP camera model {model!r}")
        intrinsics[cam_id] = (width, height, fx, fy, cx, cy)
    return intrinsics


def load_colmap(
    directory: str, near: float = 0.01, far: float = 1000.0
) -> ColmapScene:
    """Parse ``cameras.txt``, ``images.txt``, and ``points3D.txt``.

    Args:
        directory: folder holding the three text files.
        near, far: clipping planes assigned to every camera.
    """
    intrinsics = _parse_intrinsics(os.path.join(directory, "cameras.txt"))

    cameras: list[Camera] = []
    names: list[str] = []
    # images.txt alternates pose lines and 2D-feature lines (the feature
    # line may be empty, so empties must be preserved for the alternation)
    with open(os.path.join(directory, "images.txt")) as f:
        lines = [
            line.rstrip("\n")
            for line in f
            if not line.lstrip().startswith("#")
        ]
    while lines and not lines[-1].strip():
        lines.pop()
    for pose_line in lines[0::2]:
        parts = pose_line.split()
        qw, qx, qy, qz = (float(v) for v in parts[1:5])
        tx, ty, tz = (float(v) for v in parts[5:8])
        cam_id = int(parts[8])
        name = parts[9] if len(parts) > 9 else f"image_{len(names)}"
        width, height, fx, fy, cx, cy = intrinsics[cam_id]
        rot = to_rotation_matrix(
            normalize(np.array([[qw, qx, qy, qz]], dtype=np.float64))
        )[0]
        cameras.append(
            Camera(
                width=width, height=height, fx=fx, fy=fy, cx=cx, cy=cy,
                world_to_cam_rot=rot,
                world_to_cam_trans=np.array([tx, ty, tz]),
                near=near, far=far,
            )
        )
        names.append(name)

    pts, cols = [], []
    points_path = os.path.join(directory, "points3D.txt")
    if os.path.exists(points_path):
        for line in _strip_comments(points_path):
            parts = line.split()
            pts.append([float(v) for v in parts[1:4]])
            cols.append([int(v) / 255.0 for v in parts[4:7]])
    points = np.asarray(pts, dtype=np.float64).reshape(-1, 3)
    colors = np.asarray(cols, dtype=np.float64).reshape(-1, 3)
    return ColmapScene(
        cameras=cameras, image_names=names, points=points, colors=colors
    )


def write_colmap(
    directory: str,
    cameras: list[Camera],
    points: np.ndarray,
    colors: np.ndarray,
    image_names: list[str] | None = None,
) -> None:
    """Write a reconstruction in COLMAP text format (PINHOLE model).

    Rotations are exported via the world-to-camera matrix converted to a
    quaternion; round-trips through :func:`load_colmap` reproduce the
    original cameras to float precision.
    """
    os.makedirs(directory, exist_ok=True)
    if image_names is None:
        image_names = [f"img_{i:05d}.png" for i in range(len(cameras))]

    with open(os.path.join(directory, "cameras.txt"), "w") as f:
        f.write("# Camera list: CAMERA_ID MODEL WIDTH HEIGHT PARAMS[]\n")
        for i, cam in enumerate(cameras, start=1):
            f.write(
                f"{i} PINHOLE {cam.width} {cam.height} "
                f"{cam.fx:.10g} {cam.fy:.10g} {cam.cx:.10g} {cam.cy:.10g}\n"
            )

    with open(os.path.join(directory, "images.txt"), "w") as f:
        f.write("# Image list: IMAGE_ID QW QX QY QZ TX TY TZ CAMERA_ID NAME\n")
        for i, (cam, name) in enumerate(zip(cameras, image_names), start=1):
            qw, qx, qy, qz = _rotation_to_quat(cam.world_to_cam_rot)
            t = cam.world_to_cam_trans
            f.write(
                f"{i} {qw:.10g} {qx:.10g} {qy:.10g} {qz:.10g} "
                f"{t[0]:.10g} {t[1]:.10g} {t[2]:.10g} {i} {name}\n"
            )
            f.write("\n")  # empty 2D-feature line

    with open(os.path.join(directory, "points3D.txt"), "w") as f:
        f.write("# 3D point list: POINT3D_ID X Y Z R G B ERROR TRACK[]\n")
        for i, (p, c) in enumerate(zip(points, colors), start=1):
            rgb = np.clip(np.round(np.asarray(c) * 255), 0, 255).astype(int)
            f.write(
                f"{i} {p[0]:.10g} {p[1]:.10g} {p[2]:.10g} "
                f"{rgb[0]} {rgb[1]} {rgb[2]} 0.0\n"
            )


def _rotation_to_quat(rot: np.ndarray) -> tuple[float, float, float, float]:
    """Rotation matrix -> (w, x, y, z) quaternion (Shepperd's method)."""
    m = rot
    trace = m[0, 0] + m[1, 1] + m[2, 2]
    if trace > 0:
        s = 2.0 * np.sqrt(trace + 1.0)
        w = 0.25 * s
        x = (m[2, 1] - m[1, 2]) / s
        y = (m[0, 2] - m[2, 0]) / s
        z = (m[1, 0] - m[0, 1]) / s
    elif m[0, 0] > m[1, 1] and m[0, 0] > m[2, 2]:
        s = 2.0 * np.sqrt(1.0 + m[0, 0] - m[1, 1] - m[2, 2])
        w = (m[2, 1] - m[1, 2]) / s
        x = 0.25 * s
        y = (m[0, 1] + m[1, 0]) / s
        z = (m[0, 2] + m[2, 0]) / s
    elif m[1, 1] > m[2, 2]:
        s = 2.0 * np.sqrt(1.0 + m[1, 1] - m[0, 0] - m[2, 2])
        w = (m[0, 2] - m[2, 0]) / s
        x = (m[0, 1] + m[1, 0]) / s
        y = 0.25 * s
        z = (m[1, 2] + m[2, 1]) / s
    else:
        s = 2.0 * np.sqrt(1.0 + m[2, 2] - m[0, 0] - m[1, 1])
        w = (m[1, 0] - m[0, 1]) / s
        x = (m[0, 2] + m[2, 0]) / s
        y = (m[1, 2] + m[2, 1]) / s
        z = 0.25 * s
    return float(w), float(x), float(y), float(z)
