"""Scene partitioning for the reconstruction farm: patches + cameras.

The patch pipeline's first stage: cut the initial model into overlap-
buffered spatial patches (:func:`~repro.core.splitting.
buffered_spatial_partition`) and give each patch the subset of the
capture's cameras that actually see it, so every patch is a complete,
independently trainable problem — its own Gaussians, its own views.

Camera assignment is frustum-based: a camera belongs to a patch when the
patch's buffered geometry survives its frustum cull. Cameras may (and
should) appear in several patches — a view that straddles a boundary
supervises both sides. A non-empty patch that no frustum reaches still
gets its ``min_cameras`` nearest views, so no owned Gaussian goes
entirely unsupervised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cameras.camera import Camera
from ..core.splitting import SpatialPatch, buffered_spatial_partition
from ..gaussians import GaussianModel
from ..render import frustum_cull

__all__ = ["ScenePatch", "default_buffer", "partition_scene"]


@dataclass(frozen=True)
class ScenePatch:
    """One independently trainable unit of a partitioned capture.

    Attributes:
        index: position of the patch in the partition (stable across
            resumes; names the patch's checkpoint files).
        patch: the spatial cell — core/buffered ids and the core box.
        camera_ids: sorted indices into the capture's camera list that
            this patch trains with.
    """

    index: int
    patch: SpatialPatch
    camera_ids: np.ndarray

    @property
    def core_ids(self) -> np.ndarray:
        """Sorted global ids this patch owns."""
        return self.patch.core_ids

    @property
    def buffered_ids(self) -> np.ndarray:
        """Sorted global ids this patch trains on."""
        return self.patch.buffered_ids

    @property
    def num_core(self) -> int:
        """Gaussians owned by the patch."""
        return self.patch.num_core

    @property
    def num_buffered(self) -> int:
        """Gaussians the patch trains on."""
        return self.patch.num_buffered

    @property
    def num_cameras(self) -> int:
        """Views assigned to the patch."""
        return int(self.camera_ids.size)


def default_buffer(means: np.ndarray, fraction: float = 0.1) -> float:
    """Overlap buffer as a fraction of the scene's widest extent.

    The 3D-Reefs recipe sizes the overlap relative to the site, not the
    patch: a tenth of the widest axis comfortably covers the splats whose
    footprints straddle a cut.
    """
    if means.shape[0] == 0:
        return 0.0
    return float(np.max(np.ptp(means, axis=0)) * fraction)


def _camera_position(camera: Camera) -> np.ndarray:
    # world-space camera center: x_cam = R x_world + t  =>  c = -R^T t
    return -camera.world_to_cam_rot.T @ camera.world_to_cam_trans


def partition_scene(
    model: GaussianModel,
    cameras: list[Camera],
    num_patches: int,
    buffer: float | None = None,
    min_cameras: int = 1,
) -> list[ScenePatch]:
    """Split a capture into overlap-buffered, camera-assigned patches.

    Args:
        model: initial Gaussians (the SfM-style starting model).
        cameras: every training camera of the capture.
        num_patches: spatial cells to cut (empty cells are kept so patch
            indices stay aligned with the partition).
        buffer: overlap distance in world units; ``None`` uses
            :func:`default_buffer`.
        min_cameras: floor on views per non-empty patch — patches no
            frustum reaches are assigned their nearest views instead.

    Returns:
        One :class:`ScenePatch` per cell, in partition order.
    """
    if not cameras:
        raise ValueError("need at least one camera")
    if min_cameras < 1:
        raise ValueError("min_cameras must be >= 1")
    means = model.means
    if buffer is None:
        buffer = default_buffer(means)
    cells = buffered_spatial_partition(means, num_patches, buffer)

    positions = np.stack([_camera_position(c) for c in cameras])
    patches = []
    for index, cell in enumerate(cells):
        ids = cell.buffered_ids
        if ids.size == 0:
            patches.append(
                ScenePatch(index, cell, np.empty(0, dtype=np.int64))
            )
            continue
        sub_means = means[ids]
        sub_scales = model.log_scales[ids]
        sub_quats = model.quats[ids]
        seen = [
            cam_id
            for cam_id, cam in enumerate(cameras)
            if frustum_cull(sub_means, sub_scales, sub_quats, cam).num_visible
            > 0
        ]
        if len(seen) < min_cameras:
            # fall back to proximity: the views closest to the patch
            # centroid, so every owned Gaussian has some supervision
            centroid = sub_means.mean(axis=0)
            dist = np.linalg.norm(positions - centroid, axis=1)
            nearest = np.argsort(dist, kind="stable")[:min_cameras]
            seen = sorted(set(seen) | set(int(i) for i in nearest))
        patches.append(
            ScenePatch(index, cell, np.asarray(sorted(seen), dtype=np.int64))
        )
    return patches
