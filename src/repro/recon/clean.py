"""Merged-model cleanup: drop artifact splats before serving.

Independently trained patches leave characteristic junk a monolithic run
would have optimized away: boundary splats stretched across a cut,
buffer-zone stragglers that drifted off their geometry, and near-
transparent residue from opacity decay. Three filters (the
``clean_splats.py`` recipe of reef-scale reconstruction pipelines):

* **oversized** — drop splats whose largest two extents' geometric mean
  exceeds ``max_extent`` (an area cap: huge flat disks are boundary
  artifacts, not geometry);
* **isolated** — drop splats whose ``min_neighbors``-th nearest neighbor
  is farther than ``neighbor_radius`` (a splat with no spatial support
  is floating debris);
* **transparent** — drop splats whose opacity falls below
  ``min_opacity`` (they cost render time and contribute nothing).

Thresholds default to scale-free multiples of the model's own median
splat statistics, so one config works across scene scales. The pass
streams the merged checkpoint: the filter decisions need only columns
``[0, 11)`` (geometry + opacity), then kept rows are gathered block by
block into the final servable single-block checkpoint — the one array
the pipeline ever fully materializes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.checkpoint import CheckpointReader, write_model_checkpoint
from ..gaussians import GaussianModel, layout

__all__ = [
    "CleanConfig",
    "CleanReport",
    "clean_checkpoint",
    "clean_mask",
    "clean_model",
]


@dataclass(frozen=True)
class CleanConfig:
    """Thresholds of the three quality filters.

    Attributes:
        max_extent: absolute cap on a splat's effective radius (geometric
            mean of its two largest extents), world units; ``None``
            derives it as ``max_extent_factor`` x the median extent.
        max_extent_factor: multiplier for the derived cap.
        neighbor_radius: isolation radius, world units; ``None`` derives
            it as ``neighbor_radius_factor`` x the median nearest-
            neighbor distance.
        neighbor_radius_factor: multiplier for the derived radius.
        min_neighbors: neighbors required within the radius (0 disables
            the isolation filter).
        min_opacity: post-sigmoid opacity floor.
    """

    max_extent: float | None = None
    max_extent_factor: float = 20.0
    neighbor_radius: float | None = None
    neighbor_radius_factor: float = 8.0
    min_neighbors: int = 1
    min_opacity: float = 0.005


@dataclass(frozen=True)
class CleanReport:
    """What the clean pass dropped (each splat counted once, in filter
    priority order: transparent, then oversized, then isolated)."""

    input_rows: int
    kept_rows: int
    dropped_transparent: int
    dropped_oversized: int
    dropped_isolated: int
    max_extent: float
    neighbor_radius: float
    path: str = ""


def clean_mask(
    means: np.ndarray,
    log_scales: np.ndarray,
    opacity_logits: np.ndarray,
    config: CleanConfig = CleanConfig(),
) -> tuple[np.ndarray, CleanReport]:
    """Keep-mask over splats plus the per-filter drop accounting.

    Operates on just the columns the filters consult, so callers can
    stream the rest of the parameter matrix.
    """
    n = means.shape[0]
    if n == 0:
        return (
            np.zeros(0, dtype=bool),
            CleanReport(0, 0, 0, 0, 0, np.inf, 0.0),
        )

    extents = np.exp(log_scales)
    top2 = np.sort(extents, axis=1)[:, -2:]
    radius = np.sqrt(top2[:, 0] * top2[:, 1])
    max_extent = config.max_extent
    if max_extent is None:
        max_extent = float(np.median(radius)) * config.max_extent_factor
    oversized = radius > max_extent

    opacity = 1.0 / (1.0 + np.exp(-np.asarray(opacity_logits, dtype=np.float64)))
    transparent = opacity.reshape(n) < config.min_opacity

    neighbor_radius = 0.0
    isolated = np.zeros(n, dtype=bool)
    if config.min_neighbors > 0 and n > config.min_neighbors:
        from scipy.spatial import cKDTree

        tree = cKDTree(means)
        k = config.min_neighbors + 1  # query includes the point itself
        dists, _ = tree.query(means, k=k)
        nn = dists[:, 1]
        neighbor_radius = config.neighbor_radius
        if neighbor_radius is None:
            neighbor_radius = (
                float(np.median(nn)) * config.neighbor_radius_factor
            )
        isolated = dists[:, k - 1] > neighbor_radius

    keep = ~(transparent | oversized | isolated)
    report = CleanReport(
        input_rows=n,
        kept_rows=int(np.count_nonzero(keep)),
        dropped_transparent=int(np.count_nonzero(transparent)),
        dropped_oversized=int(np.count_nonzero(oversized & ~transparent)),
        dropped_isolated=int(
            np.count_nonzero(isolated & ~transparent & ~oversized)
        ),
        max_extent=float(max_extent),
        neighbor_radius=float(neighbor_radius),
    )
    return keep, report


def clean_model(
    model: GaussianModel, config: CleanConfig = CleanConfig()
) -> tuple[GaussianModel, CleanReport]:
    """Filtered copy of an in-memory model (unit-test convenience)."""
    keep, report = clean_mask(
        model.means, model.log_scales, model.params[:, layout.OPACITY_SLICE],
        config,
    )
    return GaussianModel(model.params[keep].copy()), report


def clean_checkpoint(
    in_path: str,
    out_path: str,
    config: CleanConfig = CleanConfig(),
) -> CleanReport:
    """Filter a (merged) checkpoint into the final servable checkpoint.

    Two streaming passes over ``in_path``: assemble the 11 decision
    columns for the masks, then gather kept rows block by block into one
    ``(N_kept, 59)`` array and write it as a single-block format-v2
    checkpoint that ``RenderService.from_checkpoint`` loads directly.
    """
    with CheckpointReader(in_path) as reader:
        if reader.num_gaussians == 0:
            # an all-empty partition merges to a zero-row model; pass it
            # through so the pipeline still ends with a loadable file
            write_model_checkpoint(
                out_path,
                [("", None, np.empty((0, layout.PARAM_DIM), np.float32))],
                system="merged",
                iteration=reader.iteration,
                num_gaussians=0,
            )
            return CleanReport(0, 0, 0, 0, 0, np.inf, 0.0, path=out_path)
        head = reader.assemble_columns(slice(0, layout.GEOMETRIC_DIM + 1))
        keep, report = clean_mask(
            head[:, layout.MEAN_SLICE],
            head[:, layout.SCALE_SLICE],
            head[:, layout.OPACITY_SLICE],
            config,
        )
        del head
        n_keep = int(np.count_nonzero(keep))
        remap = np.cumsum(keep) - 1  # global row -> cleaned row
        out = None
        for rows, cols, values in reader.iter_column_blocks(
            slice(0, layout.PARAM_DIM)
        ):
            if out is None:
                out = np.empty((n_keep, layout.PARAM_DIM), values.dtype)
            block_rows = (
                np.arange(values.shape[0], dtype=np.int64)
                if rows is None
                else rows
            )
            sel = keep[block_rows]
            out[remap[block_rows[sel]], cols] = values[sel]
        if out is None:
            out = np.empty((0, layout.PARAM_DIM), dtype=np.float32)
    write_model_checkpoint(
        out_path,
        [("", None, out)],
        system="merged",
        iteration=reader.iteration,
        num_gaussians=n_keep,
    )
    return CleanReport(
        input_rows=report.input_rows,
        kept_rows=report.kept_rows,
        dropped_transparent=report.dropped_transparent,
        dropped_oversized=report.dropped_oversized,
        dropped_isolated=report.dropped_isolated,
        max_extent=report.max_extent,
        neighbor_radius=report.neighbor_radius,
        path=out_path,
    )
