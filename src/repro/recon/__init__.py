"""Reconstruction farm: scene-scale patch pipeline.

Turns "a trainer" into "a reconstruction farm": captures too large for
one training run are cut into overlap-buffered spatial patches
(:mod:`~repro.recon.partition`), trained as independent, restartable
jobs on the persistent process pool (:mod:`~repro.recon.jobs`), fused
with exactly-once boundary dedup through the lazy checkpoint reader
(:mod:`~repro.recon.merge`), and filtered into one servable checkpoint
(:mod:`~repro.recon.clean`). :func:`~repro.recon.pipeline.
run_patch_pipeline` drives the four stages end to end; the modeled
schedule lives in :func:`repro.sim.simulate_patch_farm`. See the
patch-pipeline section of ``docs/architecture.md``.
"""

from .clean import CleanConfig, CleanReport, clean_checkpoint, clean_mask, clean_model
from .jobs import (
    PatchJobResult,
    PatchJobSpec,
    PatchRunReport,
    run_patch_job,
    train_patches,
)
from .merge import MergeReport, merge_patch_checkpoints
from .partition import ScenePatch, default_buffer, partition_scene
from .pipeline import (
    PatchPipelineConfig,
    PipelineResult,
    monolithic_peak_host_bytes,
    pipeline_peak_host_bytes,
    run_patch_pipeline,
)

__all__ = [
    "CleanConfig",
    "CleanReport",
    "MergeReport",
    "PatchJobResult",
    "PatchJobSpec",
    "PatchPipelineConfig",
    "PatchRunReport",
    "PipelineResult",
    "ScenePatch",
    "clean_checkpoint",
    "clean_mask",
    "clean_model",
    "default_buffer",
    "merge_patch_checkpoints",
    "monolithic_peak_host_bytes",
    "partition_scene",
    "pipeline_peak_host_bytes",
    "run_patch_job",
    "run_patch_pipeline",
    "train_patches",
]
