"""Patch training jobs: independent Trainer runs on the persistent pool.

Each patch of a partitioned capture trains as one ordinary
:class:`~repro.core.trainer.Trainer` run over its buffered Gaussians and
assigned views, fanned out over the :class:`~repro.render.parallel.
PersistentPool` process machinery. A job is restartable by construction:

* it checkpoints every ``checkpoint_every`` iterations (format-v2, the
  same :func:`~repro.core.checkpoint.save_checkpoint` a monolithic run
  uses) next to a small JSON manifest recording how far it got;
* on entry it reads the manifest — a finished patch is skipped, a
  partial one reloads its checkpoint and continues the same
  deterministic schedule via ``Trainer.train(start_iteration=...)``.

So a killed farm run is resumed simply by calling :func:`train_patches`
again with the same work directory: completed patches cost one manifest
read, the interrupted one picks up from its last checkpoint.

Failures are contained: a job that raises reports ``status="failed"``
with the exception text instead of poisoning the pool, and the driver
surfaces every failure in its :class:`PatchRunReport`.

Checkpoints are crash-safe end to end: saves are atomic and the previous
checkpoint is rotated to ``<path>.prev`` first, so a save torn by a
mid-write crash costs one chunk of progress, not the patch — the next
run detects the tear (:class:`~repro.core.integrity.
CorruptCheckpointError`), reloads ``.prev``, and takes its resume
position from the checkpoint's own iteration counter. Manifests that
claim completion are never trusted without validating the checkpoint
they point at.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from ..cameras.camera import Camera
from ..core.checkpoint import (
    load_checkpoint,
    save_checkpoint,
    validate_checkpoint,
)
from ..core.config import GSScaleConfig
from ..core.integrity import CorruptCheckpointError
from ..core.trainer import Trainer
from ..gaussians import GaussianModel
from ..render.parallel import PersistentPool
from .partition import ScenePatch

__all__ = [
    "PatchJobResult",
    "PatchJobSpec",
    "PatchRunReport",
    "run_patch_job",
    "train_patches",
]


@dataclass
class PatchJobSpec:
    """Everything one worker needs to train (or resume) a patch.

    Self-contained and picklable: the parameter subset, the patch's
    views, and the paths its checkpoint/manifest live at.
    """

    index: int
    params: np.ndarray
    cameras: list[Camera]
    images: list[np.ndarray]
    iterations: int
    config: GSScaleConfig
    checkpoint_path: str
    manifest_path: str
    checkpoint_every: int = 0  # 0: checkpoint only on completion


@dataclass
class PatchJobResult:
    """Outcome of one patch job (also reconstructed from manifests)."""

    index: int
    status: str  # "trained" | "resumed" | "skipped" | "empty" | "failed"
    iterations_done: int
    num_gaussians: int
    checkpoint_path: str
    error: str = ""

    @property
    def ok(self) -> bool:
        """Whether the patch reached its iteration target."""
        return self.status != "failed"


@dataclass
class PatchRunReport:
    """Per-patch outcomes of one :func:`train_patches` call."""

    results: list[PatchJobResult] = field(default_factory=list)

    @property
    def failed(self) -> list[PatchJobResult]:
        """Jobs that did not reach their target."""
        return [r for r in self.results if not r.ok]

    @property
    def all_done(self) -> bool:
        """Whether every patch reached its iteration target."""
        return not self.failed

    def checkpoint_paths(self) -> list[str]:
        """Checkpoints of the non-empty patches, in patch order."""
        return [
            r.checkpoint_path
            for r in self.results
            if r.status != "empty" and r.checkpoint_path
        ]


def _paths(workdir: str, index: int) -> tuple[str, str]:
    return (
        os.path.join(workdir, f"patch{index}.npz"),
        os.path.join(workdir, f"patch{index}.json"),
    )


def _read_manifest(path: str) -> dict | None:
    """Read a job manifest; unreadable or torn manifests read as absent.

    The manifest only memoizes progress — treating a damaged one as "no
    manifest" costs at most a re-resume from the checkpoint, which is
    strictly safer than trusting half a JSON file.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            manifest = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or not {
        "status", "iterations_done", "num_gaussians"
    } <= manifest.keys():
        return None
    return manifest


def _write_manifest(path: str, manifest: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(manifest, fh)
    os.replace(tmp, path)  # atomic: a killed job never leaves half a file


def run_patch_job(spec: PatchJobSpec) -> PatchJobResult:
    """Train one patch to its iteration target, resuming if partial.

    Runs in a pool worker (top-level, picklable). Exceptions are folded
    into a ``failed`` result so sibling jobs keep running.
    """
    try:
        return _run_patch_job(spec)
    except Exception as exc:  # noqa: BLE001 - job isolation boundary
        return PatchJobResult(
            index=spec.index,
            status="failed",
            iterations_done=0,
            num_gaussians=int(spec.params.shape[0]),
            checkpoint_path=spec.checkpoint_path,
            error=f"{type(exc).__name__}: {exc}",
        )


def _run_patch_job(spec: PatchJobSpec) -> PatchJobResult:
    n = int(spec.params.shape[0])
    if n == 0:
        _write_manifest(
            spec.manifest_path,
            {"status": "empty", "iterations_done": 0, "num_gaussians": 0},
        )
        return PatchJobResult(
            index=spec.index,
            status="empty",
            iterations_done=0,
            num_gaussians=0,
            checkpoint_path="",
        )

    manifest = _read_manifest(spec.manifest_path)
    done = int(manifest["iterations_done"]) if manifest else 0
    resumable = (
        manifest is not None
        and manifest["status"] != "empty"
        and done > 0
        and os.path.exists(spec.checkpoint_path)
    )
    if (
        resumable
        and done >= spec.iterations
        and validate_checkpoint(spec.checkpoint_path) is None
    ):
        return PatchJobResult(
            index=spec.index,
            status="skipped",
            iterations_done=done,
            num_gaussians=int(manifest["num_gaussians"]),
            checkpoint_path=spec.checkpoint_path,
        )

    trainer = Trainer(GaussianModel(spec.params), spec.config)
    status = "trained"
    start = 0
    if resumable:
        try:
            load_checkpoint(spec.checkpoint_path, trainer.system)
            start, status = done, "resumed"
        except CorruptCheckpointError:
            # torn mid-write: fall back to the rotated last-good
            # checkpoint. The start position comes from the checkpoint
            # itself (system.iteration counts completed steps), so a
            # manifest that ran ahead of — or behind — the tear cannot
            # desynchronize the deterministic schedule.
            trainer = Trainer(GaussianModel(spec.params), spec.config)
            prev = spec.checkpoint_path + ".prev"
            if os.path.exists(prev):
                try:
                    load_checkpoint(prev, trainer.system)
                    start = int(trainer.system.iteration)
                    status = "resumed"
                except CorruptCheckpointError:
                    trainer = Trainer(GaussianModel(spec.params), spec.config)

    def snapshot(iterations_done: int) -> None:
        # rotate the last good checkpoint aside before overwriting it:
        # should this save tear (crash mid-write), the next attempt
        # resumes from .prev instead of starting over
        if os.path.exists(spec.checkpoint_path):
            os.replace(
                spec.checkpoint_path, spec.checkpoint_path + ".prev"
            )
        save_checkpoint(spec.checkpoint_path, trainer.system)
        _write_manifest(
            spec.manifest_path,
            {
                "status": status,
                "iterations_done": iterations_done,
                "num_gaussians": trainer.num_gaussians,
            },
        )

    chunk = spec.checkpoint_every
    pos = start
    while pos < spec.iterations:
        step = (
            spec.iterations - pos
            if chunk <= 0
            else min(chunk, spec.iterations - pos)
        )
        trainer.train(spec.cameras, spec.images, step, start_iteration=pos)
        pos += step
        snapshot(pos)
    if pos == start:
        snapshot(spec.iterations)  # zero remaining work: still emit a model
    return PatchJobResult(
        index=spec.index,
        status=status,
        iterations_done=spec.iterations,
        num_gaussians=trainer.num_gaussians,
        checkpoint_path=spec.checkpoint_path,
    )


def build_specs(
    patches: list[ScenePatch],
    model: GaussianModel,
    cameras: list[Camera],
    images: list[np.ndarray],
    config: GSScaleConfig,
    iterations: int,
    workdir: str,
    checkpoint_every: int = 0,
) -> list[PatchJobSpec]:
    """One :class:`PatchJobSpec` per patch, subsetting model and views."""
    specs = []
    for patch in patches:
        checkpoint_path, manifest_path = _paths(workdir, patch.index)
        specs.append(
            PatchJobSpec(
                index=patch.index,
                params=np.ascontiguousarray(model.params[patch.buffered_ids]),
                cameras=[cameras[i] for i in patch.camera_ids],
                images=[images[i] for i in patch.camera_ids],
                iterations=iterations,
                config=config,
                checkpoint_path=checkpoint_path,
                manifest_path=manifest_path,
                checkpoint_every=checkpoint_every,
            )
        )
    return specs


def train_patches(
    patches: list[ScenePatch],
    model: GaussianModel,
    cameras: list[Camera],
    images: list[np.ndarray],
    config: GSScaleConfig,
    iterations: int,
    workdir: str,
    jobs: int = 2,
    checkpoint_every: int = 0,
    pool: PersistentPool | None = None,
) -> PatchRunReport:
    """Train every patch on a persistent process pool.

    Patches whose manifests already show the target iteration count are
    skipped on the driver side (their spec is never even pickled); the
    rest fan out ``jobs`` wide. Call again with the same ``workdir``
    after a crash to resume: finished patches skip, partial ones reload
    their checkpoints.

    Args:
        pool: an existing :class:`PersistentPool` to reuse; by default a
            private ``jobs``-wide pool is created and torn down here.
    """
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    os.makedirs(workdir, exist_ok=True)
    specs = build_specs(
        patches, model, cameras, images, config, iterations, workdir,
        checkpoint_every=checkpoint_every,
    )

    slots = {spec.index: slot for slot, spec in enumerate(specs)}
    report = PatchRunReport(results=[None] * len(specs))
    pending = []
    for spec in specs:
        manifest = _read_manifest(spec.manifest_path)
        if (
            manifest is not None
            and manifest["status"] != "failed"
            and int(manifest["iterations_done"]) >= iterations
            and (
                manifest["status"] == "empty"
                or (
                    os.path.exists(spec.checkpoint_path)
                    # a complete-looking manifest next to a torn
                    # checkpoint must re-dispatch, not skip forever
                    and validate_checkpoint(spec.checkpoint_path) is None
                )
            )
        ):
            report.results[slots[spec.index]] = PatchJobResult(
                index=spec.index,
                status="skipped" if manifest["status"] != "empty" else "empty",
                iterations_done=int(manifest["iterations_done"]),
                num_gaussians=int(manifest["num_gaussians"]),
                checkpoint_path=(
                    "" if manifest["status"] == "empty"
                    else spec.checkpoint_path
                ),
            )
        else:
            pending.append(spec)

    if pending:
        own_pool = pool is None
        active = pool if pool is not None else PersistentPool(max(jobs, 1))
        try:
            outcomes = active.map(run_patch_job, pending)
        finally:
            if own_pool:
                active.close()
        for result in outcomes:
            report.results[slots[result.index]] = result
    return report
