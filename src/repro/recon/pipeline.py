"""The patch pipeline driver: partition -> train -> merge -> clean.

One call turns a capture (initial model + cameras + images) into a
single servable checkpoint without ever training the whole scene in one
process: the scene is cut into overlap-buffered patches, each patch
trains as an independent job on a persistent process pool, the trained
patch models fuse with exactly-once boundary dedup, and the quality
filters strip patch-seam artifacts. The result loads straight into
``RenderService.from_checkpoint`` (in-memory or paged).

The driver is resumable: job state lives in ``workdir`` manifests, so
re-running :func:`run_patch_pipeline` after a crash skips finished
patches and resumes partial ones from their checkpoints.

Host-memory accounting follows the repo's fp32-equivalent convention
(:mod:`repro.gaussians.layout`): the pipeline's peak is the widest
concurrent set of patch training states, vs the monolithic run's full
training state — the quantity the patch farm exists to shrink, gated in
``benchmarks/bench_patch_pipeline.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..cameras.camera import Camera
from ..core.config import GSScaleConfig
from ..gaussians import GaussianModel, layout
from ..render.parallel import PersistentPool
from .clean import CleanConfig, CleanReport, clean_checkpoint
from .jobs import PatchRunReport, train_patches
from .merge import MergeReport, merge_patch_checkpoints
from .partition import ScenePatch, partition_scene

__all__ = [
    "PatchPipelineConfig",
    "PipelineResult",
    "monolithic_peak_host_bytes",
    "pipeline_peak_host_bytes",
    "run_patch_pipeline",
]


@dataclass(frozen=True)
class PatchPipelineConfig:
    """Knobs of one partition -> train -> merge -> clean run.

    Attributes:
        num_patches: spatial cells to cut the scene into.
        buffer: overlap distance in world units (``None``: a tenth of the
            widest scene axis).
        iterations: optimizer steps per patch.
        jobs: concurrent patch-training processes.
        checkpoint_every: patch-job checkpoint cadence (0: only on
            completion).
        train: training configuration template for every patch job.
        clean: quality-filter thresholds.
        merge_policy: boundary-dedup policy (see :mod:`.merge`).
        min_cameras: floor on views per non-empty patch.
    """

    num_patches: int = 4
    buffer: float | None = None
    iterations: int = 50
    jobs: int = 2
    checkpoint_every: int = 0
    train: GSScaleConfig = field(default_factory=GSScaleConfig)
    clean: CleanConfig = field(default_factory=CleanConfig)
    merge_policy: str = "auto"
    min_cameras: int = 1


@dataclass
class PipelineResult:
    """Everything one pipeline run produced.

    Attributes:
        patches: the partition (cores, buffers, camera assignments).
        jobs: per-patch training outcomes.
        merge: boundary-dedup accounting; ``merge.path`` is the fused
            (pre-clean) checkpoint.
        clean: filter accounting; ``clean.path`` is the final servable
            checkpoint.
        checkpoint_path: the final servable checkpoint (= ``clean.path``).
        peak_host_bytes: modeled fp32-equivalent host high-water mark of
            the pipeline (see :func:`pipeline_peak_host_bytes`).
        monolithic_peak_host_bytes: the same model for a single
            whole-scene training run.
    """

    patches: list[ScenePatch]
    jobs: PatchRunReport
    merge: MergeReport
    clean: CleanReport
    checkpoint_path: str
    peak_host_bytes: int
    monolithic_peak_host_bytes: int


def monolithic_peak_host_bytes(num_gaussians: int) -> int:
    """Modeled host bytes of training the whole scene in one run:
    the full training state (params + grads + two Adam moments)."""
    return layout.train_state_bytes(num_gaussians)


def pipeline_peak_host_bytes(
    patches: list[ScenePatch], jobs: int, merged_rows: int | None = None
) -> int:
    """Modeled host high-water mark of the patch pipeline.

    The training phase holds at most ``jobs`` concurrent patch training
    states — bounded by the ``jobs`` largest buffered patches. The merge
    phase streams (kept blocks accumulate to the merged model plus one
    transient patch block); the clean phase gathers the merged rows into
    the one fully materialized array. The pipeline's peak is the max of
    the phases — for any buffer that grows a patch by less than
    ``jobs_total / jobs``, strictly below the monolithic training state.
    """
    sizes = sorted((p.num_buffered for p in patches), reverse=True)
    train_peak = sum(
        layout.train_state_bytes(n) for n in sizes[: max(jobs, 1)]
    )
    largest = sizes[0] if sizes else 0
    total = merged_rows
    if total is None:
        total = sum(p.num_core for p in patches)
    fuse_peak = layout.param_bytes(total) + layout.param_bytes(largest)
    return max(train_peak, fuse_peak)


def run_patch_pipeline(
    model: GaussianModel,
    cameras: list[Camera],
    images: list[np.ndarray],
    workdir: str,
    config: PatchPipelineConfig = PatchPipelineConfig(),
    pool: PersistentPool | None = None,
) -> PipelineResult:
    """Partition, train, merge, and clean one capture end to end.

    Args:
        model: initial whole-scene Gaussians.
        cameras: all training cameras.
        images: matching ground-truth images.
        workdir: job checkpoints, manifests, and the merged/final
            checkpoints all live here; reuse it to resume.
        config: pipeline knobs.
        pool: optional existing :class:`PersistentPool` to run jobs on.

    Raises:
        RuntimeError: when any patch job failed — re-run with the same
            ``workdir`` to resume from the completed patches.
    """
    os.makedirs(workdir, exist_ok=True)
    patches = partition_scene(
        model,
        cameras,
        config.num_patches,
        buffer=config.buffer,
        min_cameras=config.min_cameras,
    )
    jobs = train_patches(
        patches,
        model,
        cameras,
        images,
        config.train,
        config.iterations,
        workdir,
        jobs=config.jobs,
        checkpoint_every=config.checkpoint_every,
        pool=pool,
    )
    if not jobs.all_done:
        failures = "; ".join(
            f"patch {r.index}: {r.error}" for r in jobs.failed
        )
        raise RuntimeError(
            f"{len(jobs.failed)} patch job(s) failed ({failures}) — "
            f"re-run with workdir {workdir!r} to resume"
        )
    merged_path = os.path.join(workdir, "merged.npz")
    merge = merge_patch_checkpoints(
        patches,
        {
            r.index: r.checkpoint_path
            for r in jobs.results
            if r.checkpoint_path
        },
        merged_path,
        policy=config.merge_policy,
    )
    final_path = os.path.join(workdir, "final.npz")
    clean = clean_checkpoint(merged_path, final_path, config.clean)
    return PipelineResult(
        patches=patches,
        jobs=jobs,
        merge=merge,
        clean=clean,
        checkpoint_path=final_path,
        peak_host_bytes=pipeline_peak_host_bytes(
            patches, config.jobs, merged_rows=merge.num_gaussians
        ),
        monolithic_peak_host_bytes=monolithic_peak_host_bytes(
            model.num_gaussians
        ),
    )
