"""Patch fusion: merge overlapping patch models with boundary dedup.

Every patch trained on its core *plus* an overlap buffer, so neighboring
patch models both hold copies of the boundary splats. The merge keeps
each Gaussian exactly once by ownership:

* ``identity`` — a patch keeps the rows whose *original* global id lies
  in its core. Cores partition the id space, so exactly-once holds by
  construction, independent of where training moved the splats. Requires
  the patch model to still be row-aligned with its buffered input (the
  default: patch jobs train without densification).
* ``spatial`` — a patch keeps the rows whose trained mean lies inside
  its half-open core cell box. Cell boxes tile space, so a splat is kept
  by at most one patch; this is the fallback when densification changed
  the row count and id-level ownership no longer exists.
* ``auto`` — ``identity`` when every patch is row-aligned, else
  ``spatial``.

The merge streams: each patch checkpoint is opened through the lazy
:class:`~repro.core.checkpoint.CheckpointReader`, its kept rows become
one block of the merged checkpoint
(:func:`~repro.core.checkpoint.write_model_checkpoint`), and the reader
is closed before the next patch loads. The fused model never
materializes as a single packed array here — it is held once, as the
list of kept per-patch blocks, plus at most one patch's transient
(buffer-inflated) block, and the downstream consumers
(``resume_model``, the paged serving store, the clean pass) read it back
block-at-a-time the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.checkpoint import CheckpointReader, write_model_checkpoint
from ..gaussians import layout
from .partition import ScenePatch

__all__ = ["MergeReport", "merge_patch_checkpoints"]


@dataclass(frozen=True)
class MergeReport:
    """What the merge kept and dropped, per patch.

    Attributes:
        policy: dedup policy actually applied.
        num_gaussians: rows in the merged model.
        kept: per-patch kept-row counts (patch order, empties included).
        dropped: per-patch buffer rows dropped as duplicates.
        iteration: max training iteration across the fused patches.
        path: the merged checkpoint.
    """

    policy: str
    num_gaussians: int
    kept: tuple[int, ...]
    dropped: tuple[int, ...]
    iteration: int
    path: str


def _keep_mask(
    patch: ScenePatch, reader: CheckpointReader, policy: str
) -> np.ndarray:
    if policy == "identity":
        if reader.num_gaussians != patch.num_buffered:
            raise ValueError(
                f"patch {patch.index}: checkpoint holds "
                f"{reader.num_gaussians} rows but the buffered input had "
                f"{patch.num_buffered} — use the 'spatial' policy for "
                "densified patch models"
            )
        return np.isin(patch.buffered_ids, patch.core_ids, assume_unique=True)
    means = reader.assemble_columns(layout.MEAN_SLICE)
    return patch.patch.contains(means)


def merge_patch_checkpoints(
    patches: list[ScenePatch],
    checkpoint_paths: dict[int, str],
    out_path: str,
    policy: str = "auto",
) -> MergeReport:
    """Fuse trained patch checkpoints into one merged model checkpoint.

    Args:
        patches: the partition the patches were trained from (dedup needs
            the core ids/boxes). Empty patches need no checkpoint.
        checkpoint_paths: patch index -> trained checkpoint path.
        out_path: merged checkpoint destination (format v2, params only,
            one block per patch; loadable by ``resume_model`` and the
            serving stores).
        policy: ``"identity"``, ``"spatial"``, or ``"auto"``.

    Returns:
        A :class:`MergeReport`; ``report.path`` is the merged checkpoint.
    """
    if policy not in ("auto", "identity", "spatial"):
        raise ValueError(f"unknown merge policy {policy!r}")
    live = [p for p in patches if p.num_buffered > 0]
    for patch in live:
        if patch.index not in checkpoint_paths:
            raise ValueError(f"patch {patch.index} has no checkpoint")

    if policy == "auto":
        policy = "identity"
        for patch in live:
            with CheckpointReader(checkpoint_paths[patch.index]) as reader:
                if reader.num_gaussians != patch.num_buffered:
                    policy = "spatial"
                    break

    slots = {id(p): slot for slot, p in enumerate(patches)}
    blocks = []
    kept = [0] * len(patches)
    dropped = [0] * len(patches)
    offset = 0
    iteration = 0
    for patch in live:
        with CheckpointReader(checkpoint_paths[patch.index]) as reader:
            mask = _keep_mask(patch, reader, policy)
            n_keep = int(np.count_nonzero(mask))
            kept[slots[id(patch)]] = n_keep
            dropped[slots[id(patch)]] = int(mask.size - n_keep)
            iteration = max(iteration, reader.iteration)
            if n_keep == 0:
                continue
            params = reader.assemble_columns(slice(0, layout.PARAM_DIM))
            rows = np.arange(offset, offset + n_keep, dtype=np.int64)
            blocks.append((f"patch{patch.index}", rows, params[mask]))
            offset += n_keep
    write_model_checkpoint(
        out_path,
        blocks,
        system="merged",
        iteration=iteration,
        num_gaussians=offset,
    )
    return MergeReport(
        policy=policy,
        num_gaussians=offset,
        kept=tuple(kept),
        dropped=tuple(dropped),
        iteration=iteration,
        path=out_path,
    )
