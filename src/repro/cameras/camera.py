"""Pinhole camera model used for projection and frustum culling."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np


@dataclass(frozen=True)
class Camera:
    """A calibrated pinhole camera (intrinsics + world-to-camera extrinsics).

    Attributes:
        width: image width in pixels.
        height: image height in pixels.
        fx, fy: focal lengths in pixels.
        cx, cy: principal point in pixels.
        world_to_cam_rot: rotation part of the world-to-camera transform,
            shape ``(3, 3)``.
        world_to_cam_trans: translation part, shape ``(3,)``.
        near: near clipping plane distance.
        far: far clipping plane distance.
    """

    width: int
    height: int
    fx: float
    fy: float
    cx: float
    cy: float
    world_to_cam_rot: np.ndarray = field(repr=False)
    world_to_cam_trans: np.ndarray = field(repr=False)
    near: float = 0.01
    far: float = 1000.0

    def __post_init__(self):
        rot = np.asarray(self.world_to_cam_rot, dtype=np.float64)
        trans = np.asarray(self.world_to_cam_trans, dtype=np.float64)
        if rot.shape != (3, 3):
            raise ValueError(f"world_to_cam_rot must be (3, 3), got {rot.shape}")
        if trans.shape != (3,):
            raise ValueError(f"world_to_cam_trans must be (3,), got {trans.shape}")
        object.__setattr__(self, "world_to_cam_rot", rot)
        object.__setattr__(self, "world_to_cam_trans", trans)
        if self.near <= 0 or self.far <= self.near:
            raise ValueError("require 0 < near < far")

    # ------------------------------------------------------------------
    @classmethod
    def look_at(
        cls,
        position: np.ndarray,
        target: np.ndarray,
        up: np.ndarray = (0.0, 0.0, 1.0),
        width: int = 128,
        height: int = 128,
        fov_x_deg: float = 60.0,
        near: float = 0.01,
        far: float = 1000.0,
    ) -> "Camera":
        """Build a camera at ``position`` looking at ``target``.

        Uses a right-handed camera frame with +z forward (points in front of
        the camera have positive camera-space z), +x right, +y down — the
        same convention as COLMAP/3DGS.
        """
        position = np.asarray(position, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        up = np.asarray(up, dtype=np.float64)

        forward = target - position
        norm = np.linalg.norm(forward)
        if norm < 1e-12:
            raise ValueError("camera position and target coincide")
        forward = forward / norm
        right = np.cross(forward, up)
        rnorm = np.linalg.norm(right)
        if rnorm < 1e-9:
            # forward parallel to up; pick an arbitrary perpendicular axis
            alt = np.array([1.0, 0.0, 0.0])
            if abs(forward @ alt) > 0.9:
                alt = np.array([0.0, 1.0, 0.0])
            right = np.cross(forward, alt)
            rnorm = np.linalg.norm(right)
        right = right / rnorm
        down = np.cross(forward, right)

        # rows of cam-from-world rotation are the camera axes in world coords
        rot = np.stack([right, down, forward], axis=0)
        trans = -rot @ position

        fx = (width / 2.0) / np.tan(np.deg2rad(fov_x_deg) / 2.0)
        return cls(
            width=width,
            height=height,
            fx=fx,
            fy=fx,
            cx=width / 2.0,
            cy=height / 2.0,
            world_to_cam_rot=rot,
            world_to_cam_trans=trans,
            near=near,
            far=far,
        )

    # ------------------------------------------------------------------
    @property
    def center(self) -> np.ndarray:
        """Camera center in world coordinates, shape ``(3,)``."""
        return -self.world_to_cam_rot.T @ self.world_to_cam_trans

    @property
    def num_pixels(self) -> int:
        """Total pixel count ``width * height``."""
        return self.width * self.height

    def world_to_cam(self, points: np.ndarray) -> np.ndarray:
        """Transform world points ``(N, 3)`` into camera space."""
        return points @ self.world_to_cam_rot.T + self.world_to_cam_trans

    def project(self, cam_points: np.ndarray) -> np.ndarray:
        """Project camera-space points ``(N, 3)`` to pixel coordinates ``(N, 2)``.

        No clipping is performed; callers must cull points behind the camera.
        """
        z = cam_points[:, 2]
        u = self.fx * cam_points[:, 0] / z + self.cx
        v = self.fy * cam_points[:, 1] / z + self.cy
        return np.stack([u, v], axis=-1)

    def crop(self, x_min: int, x_max: int) -> "Camera":
        """Camera for a vertical image strip ``[x_min, x_max)``.

        Used by balance-aware image splitting (Section 4.4): the sub-image
        shares the full camera's geometry but renders only a column range,
        so the principal point shifts by ``x_min``.
        """
        if not 0 <= x_min < x_max <= self.width:
            raise ValueError(
                f"invalid crop [{x_min}, {x_max}) for width {self.width}"
            )
        return replace(self, width=x_max - x_min, cx=self.cx - x_min)
