"""Camera substrate: pinhole model and synthetic capture trajectories."""

from . import trajectories
from .camera import Camera

__all__ = ["Camera", "trajectories"]
