"""Camera trajectory generators for synthetic capture sessions.

These substitute for the multi-view capture rigs of the paper's datasets
(Table 2): drone-style aerial grids for Mill-19/GauU-Scene-like scenes and
orbit rings for object-centric scans.
"""

from __future__ import annotations

import numpy as np

from .camera import Camera


def orbit(
    center: np.ndarray,
    radius: float,
    height: float,
    num_cameras: int,
    width: int = 128,
    height_px: int = 128,
    fov_x_deg: float = 60.0,
    near: float = 0.01,
    far: float = 1000.0,
) -> list[Camera]:
    """Ring of cameras orbiting ``center`` at ``radius`` and altitude ``height``."""
    center = np.asarray(center, dtype=np.float64)
    cameras = []
    for i in range(num_cameras):
        angle = 2.0 * np.pi * i / num_cameras
        pos = center + np.array(
            [radius * np.cos(angle), radius * np.sin(angle), height]
        )
        cameras.append(
            Camera.look_at(
                pos,
                center,
                width=width,
                height=height_px,
                fov_x_deg=fov_x_deg,
                near=near,
                far=far,
            )
        )
    return cameras


def aerial_grid(
    extent: float,
    altitude: float,
    rows: int,
    cols: int,
    width: int = 128,
    height_px: int = 128,
    fov_x_deg: float = 70.0,
    tilt: float = 0.35,
    near: float = 0.01,
    far: float = 1000.0,
) -> list[Camera]:
    """Drone-style lawnmower sweep over a square ``[-extent, extent]^2`` site.

    Each camera looks at a point offset from the nadir by ``tilt * altitude``
    in the flight direction, mimicking the oblique captures of the Rubble /
    Building / MatrixCity-Aerial datasets.
    """
    cameras = []
    xs = np.linspace(-extent, extent, cols)
    ys = np.linspace(-extent, extent, rows)
    for r, y in enumerate(ys):
        ordered = xs if r % 2 == 0 else xs[::-1]
        direction = 1.0 if r % 2 == 0 else -1.0
        for x in ordered:
            pos = np.array([x, y, altitude])
            target = np.array([x + direction * tilt * altitude, y, 0.0])
            cameras.append(
                Camera.look_at(
                    pos,
                    target,
                    width=width,
                    height=height_px,
                    fov_x_deg=fov_x_deg,
                    near=near,
                    far=far,
                )
            )
    return cameras


def random_views(
    center: np.ndarray,
    radius_range: tuple[float, float],
    num_cameras: int,
    rng: np.random.Generator,
    width: int = 128,
    height_px: int = 128,
    fov_x_deg: float = 60.0,
    min_altitude: float = 0.5,
    near: float = 0.01,
    far: float = 1000.0,
) -> list[Camera]:
    """Random viewpoints on a hemisphere shell around ``center``."""
    center = np.asarray(center, dtype=np.float64)
    cameras = []
    lo, hi = radius_range
    for _ in range(num_cameras):
        direction = rng.normal(size=3)
        direction[2] = abs(direction[2]) + 1e-3
        direction = direction / np.linalg.norm(direction)
        radius = rng.uniform(lo, hi)
        pos = center + direction * radius
        pos[2] = max(pos[2], min_altitude)
        cameras.append(
            Camera.look_at(
                pos,
                center,
                width=width,
                height=height_px,
                fov_x_deg=fov_x_deg,
                near=near,
                far=far,
            )
        )
    return cameras
