"""Camera trajectory generators for synthetic capture sessions.

These substitute for the multi-view capture rigs of the paper's datasets
(Table 2): drone-style aerial grids for Mill-19/GauU-Scene-like scenes and
orbit rings for object-centric scans.
"""

from __future__ import annotations

import numpy as np

from .camera import Camera


def orbit(
    center: np.ndarray,
    radius: float,
    height: float,
    num_cameras: int,
    width: int = 128,
    height_px: int = 128,
    fov_x_deg: float = 60.0,
    near: float = 0.01,
    far: float = 1000.0,
) -> list[Camera]:
    """Ring of cameras orbiting ``center`` at ``radius`` and altitude ``height``."""
    center = np.asarray(center, dtype=np.float64)
    cameras = []
    for i in range(num_cameras):
        angle = 2.0 * np.pi * i / num_cameras
        pos = center + np.array(
            [radius * np.cos(angle), radius * np.sin(angle), height]
        )
        cameras.append(
            Camera.look_at(
                pos,
                center,
                width=width,
                height=height_px,
                fov_x_deg=fov_x_deg,
                near=near,
                far=far,
            )
        )
    return cameras


def aerial_grid(
    extent: float,
    altitude: float,
    rows: int,
    cols: int,
    width: int = 128,
    height_px: int = 128,
    fov_x_deg: float = 70.0,
    tilt: float = 0.35,
    near: float = 0.01,
    far: float = 1000.0,
) -> list[Camera]:
    """Drone-style lawnmower sweep over a square ``[-extent, extent]^2`` site.

    Each camera looks at a point offset from the nadir by ``tilt * altitude``
    in the flight direction, mimicking the oblique captures of the Rubble /
    Building / MatrixCity-Aerial datasets.
    """
    cameras = []
    xs = np.linspace(-extent, extent, cols)
    ys = np.linspace(-extent, extent, rows)
    for r, y in enumerate(ys):
        ordered = xs if r % 2 == 0 else xs[::-1]
        direction = 1.0 if r % 2 == 0 else -1.0
        for x in ordered:
            pos = np.array([x, y, altitude])
            target = np.array([x + direction * tilt * altitude, y, 0.0])
            cameras.append(
                Camera.look_at(
                    pos,
                    target,
                    width=width,
                    height=height_px,
                    fov_x_deg=fov_x_deg,
                    near=near,
                    far=far,
                )
            )
    return cameras


def walkthrough(
    waypoints: np.ndarray,
    num_cameras: int,
    width: int = 128,
    height_px: int = 128,
    fov_x_deg: float = 60.0,
    look_ahead: float = 1.0,
    near: float = 0.01,
    far: float = 1000.0,
) -> list[Camera]:
    """First-person walkthrough along a piecewise-linear waypoint path.

    The client-session trajectory of the serving subsystem: cameras sit
    at ``num_cameras`` evenly spaced arc-length stations along the
    ``(W, 3)`` waypoint polyline, each looking at the point
    ``look_ahead`` world units further down the path (the final cameras
    keep looking along the last segment). Deterministic in its inputs.
    """
    waypoints = np.asarray(waypoints, dtype=np.float64)
    if waypoints.ndim != 2 or waypoints.shape[1] != 3 or waypoints.shape[0] < 2:
        raise ValueError("waypoints must be (W >= 2, 3)")
    if num_cameras < 1:
        raise ValueError("num_cameras must be >= 1")
    if look_ahead <= 0:
        raise ValueError("look_ahead must be > 0")
    deltas = np.diff(waypoints, axis=0)
    seg_len = np.linalg.norm(deltas, axis=1)
    if not np.all(seg_len > 0):
        raise ValueError("consecutive waypoints must be distinct")
    stations = np.concatenate([[0.0], np.cumsum(seg_len)])
    total = stations[-1]

    def point_at(s: float) -> np.ndarray:
        s = min(max(s, 0.0), total)
        seg = min(int(np.searchsorted(stations, s, side="right")) - 1,
                  len(seg_len) - 1)
        t = (s - stations[seg]) / seg_len[seg]
        return waypoints[seg] + t * deltas[seg]

    end_dir = deltas[-1] / seg_len[-1]
    cameras = []
    for s in np.linspace(0.0, total, num_cameras):
        pos = point_at(s)
        if s + look_ahead <= total:
            target = point_at(s + look_ahead)
        else:  # past the end: keep facing along the final segment
            target = pos + end_dir * look_ahead
        cameras.append(
            Camera.look_at(
                pos,
                target,
                width=width,
                height=height_px,
                fov_x_deg=fov_x_deg,
                near=near,
                far=far,
            )
        )
    return cameras


def random_views(
    center: np.ndarray,
    radius_range: tuple[float, float],
    num_cameras: int,
    rng: np.random.Generator,
    width: int = 128,
    height_px: int = 128,
    fov_x_deg: float = 60.0,
    min_altitude: float = 0.5,
    near: float = 0.01,
    far: float = 1000.0,
) -> list[Camera]:
    """Random viewpoints on a hemisphere shell around ``center``."""
    center = np.asarray(center, dtype=np.float64)
    cameras = []
    lo, hi = radius_range
    for _ in range(num_cameras):
        direction = rng.normal(size=3)
        direction[2] = abs(direction[2]) + 1e-3
        direction = direction / np.linalg.norm(direction)
        radius = rng.uniform(lo, hi)
        pos = center + direction * radius
        pos[2] = max(pos[2], min_altitude)
        cameras.append(
            Camera.look_at(
                pos,
                center,
                width=width,
                height=height_px,
                fov_x_deg=fov_x_deg,
                near=near,
                far=far,
            )
        )
    return cameras
