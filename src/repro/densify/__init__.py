"""Adaptive density control for 3DGS training."""

from .controller import DensificationController, DensifyConfig, DensifyReport

__all__ = ["DensificationController", "DensifyConfig", "DensifyReport"]
