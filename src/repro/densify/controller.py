"""Adaptive density control (step 7 of Figure 2).

Every ``interval`` iterations, Gaussians whose accumulated screen-space
positional gradient is large are *cloned* (small ones, under-reconstructed
regions) or *split* (large ones, over-smoothed regions); nearly transparent
Gaussians are pruned. Densification stops after ``stop_iteration`` — the
paper scales scenes up and down for its experiments precisely by adjusting
these settings ("following the Grendel methodology", Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gaussians import GaussianModel, quaternion


@dataclass
class DensifyConfig:
    """Densification schedule and thresholds.

    Attributes:
        interval: iterations between densification passes.
        start_iteration: first iteration at which densification may run.
        stop_iteration: densification ceases after this iteration.
        grad_threshold: mean screen-space gradient above which a Gaussian
            is densified (pixel units; 3DGS uses 2e-4 in NDC).
        percent_dense: world-size knee — Gaussians larger than
            ``percent_dense * scene_extent`` split, smaller ones clone.
        opacity_prune_threshold: prune Gaussians whose opacity falls below.
        max_gaussians: hard cap on scene size (the paper's scale knob —
            lowering it emulates the "Small" scene variants).
        split_scale_shrink: factor by which a split child's scale shrinks
            (3DGS uses 1.6).
        opacity_reset_interval: if set, every this many iterations all
            opacities are clamped down to ``opacity_reset_value`` (3DGS
            resets every 3000 iterations to combat floaters); ``None``
            disables resets.
        opacity_reset_value: the post-sigmoid opacity ceiling applied by a
            reset.
    """

    interval: int = 100
    start_iteration: int = 500
    stop_iteration: int = 15_000
    grad_threshold: float = 1e-4
    percent_dense: float = 0.01
    opacity_prune_threshold: float = 0.005
    max_gaussians: int | None = None
    split_scale_shrink: float = 1.6
    opacity_reset_interval: int | None = None
    opacity_reset_value: float = 0.01


@dataclass
class DensifyReport:
    """What one densification pass did."""

    iteration: int
    num_before: int
    num_cloned: int
    num_split: int
    num_pruned: int
    num_after: int


class DensificationController:
    """Accumulates gradient statistics and rewrites the model periodically.

    Usage: call :meth:`accumulate` after every backward pass with the
    visible ids and their screen-gradient magnitudes; call :meth:`maybe_run`
    once per iteration. When it returns a new model, the caller must
    rebuild anything sized by ``N`` (optimizer state, offload stores).
    """

    def __init__(self, config: DensifyConfig, num_gaussians: int, seed: int = 0):
        self.config = config
        self._grad_accum = np.zeros(num_gaussians)
        self._counts = np.zeros(num_gaussians, dtype=np.int64)
        self._rng = np.random.default_rng(seed)

    @property
    def num_tracked(self) -> int:
        """Gaussians currently tracked."""
        return self._grad_accum.shape[0]

    def accumulate(self, valid_ids: np.ndarray, mean2d_abs: np.ndarray) -> None:
        """Record one view's screen-space gradient magnitudes."""
        self._grad_accum[valid_ids] += mean2d_abs
        self._counts[valid_ids] += 1

    def _reset(self, num_gaussians: int) -> None:
        self._grad_accum = np.zeros(num_gaussians)
        self._counts = np.zeros(num_gaussians, dtype=np.int64)

    def should_run(self, iteration: int) -> bool:
        """Whether densification fires at ``iteration`` (1-based)."""
        cfg = self.config
        return (
            cfg.start_iteration <= iteration <= cfg.stop_iteration
            and iteration % cfg.interval == 0
        )

    def should_reset_opacity(self, iteration: int) -> bool:
        """Whether an opacity reset fires at ``iteration`` (1-based)."""
        interval = self.config.opacity_reset_interval
        return interval is not None and iteration % interval == 0

    def reset_opacity(self, model: GaussianModel) -> int:
        """Clamp all opacities down to the reset value, in place.

        Returns the number of Gaussians actually clamped. 3DGS performs
        this periodically so that stale high-opacity floaters must re-earn
        their opacity from gradients.
        """
        ceiling = self.config.opacity_reset_value
        logit = float(np.log(ceiling / (1.0 - ceiling)))
        logits = model.opacity_logits[:, 0]
        clamped = logits > logit
        logits[clamped] = logit
        return int(clamped.sum())

    def maybe_run(
        self, model: GaussianModel, iteration: int, scene_extent: float
    ) -> tuple[GaussianModel, DensifyReport] | None:
        """Run densification if the schedule says so.

        Returns ``None`` when nothing fires, else ``(new_model, report)``.
        """
        if not self.should_run(iteration):
            return None
        return self.run(model, iteration, scene_extent)

    def run(
        self, model: GaussianModel, iteration: int, scene_extent: float
    ) -> tuple[GaussianModel, DensifyReport]:
        """Unconditionally densify + prune ``model``."""
        cfg = self.config
        n = model.num_gaussians
        avg_grad = self._grad_accum / np.maximum(self._counts, 1)

        needs_densify = avg_grad > cfg.grad_threshold
        if cfg.max_gaussians is not None and n >= cfg.max_gaussians:
            needs_densify[:] = False

        max_scale = np.exp(model.log_scales).max(axis=1)
        is_large = max_scale > cfg.percent_dense * scene_extent
        clone_ids = np.nonzero(needs_densify & ~is_large)[0]
        split_ids = np.nonzero(needs_densify & is_large)[0]

        # respect the cap: each densified Gaussian adds one row
        if cfg.max_gaussians is not None:
            budget = max(cfg.max_gaussians - n, 0)
            if len(clone_ids) + len(split_ids) > budget:
                ranked = np.argsort(
                    -avg_grad[np.concatenate([clone_ids, split_ids])]
                )
                chosen = np.concatenate([clone_ids, split_ids])[ranked[:budget]]
                clone_ids = np.intersect1d(chosen, clone_ids)
                split_ids = np.intersect1d(chosen, split_ids)

        new_rows = []
        # clones: exact copies (gradient descent will separate them)
        if clone_ids.size:
            new_rows.append(model.params[clone_ids].copy())

        # splits: shrink the parent and add one child sampled from it
        if split_ids.size:
            children = model.params[split_ids].copy()
            scales = np.exp(model.log_scales[split_ids])
            unit = quaternion.normalize(model.quats[split_ids])
            rot = quaternion.to_rotation_matrix(unit)
            local = self._rng.normal(size=(split_ids.size, 3)) * scales
            offsets = np.einsum("nij,nj->ni", rot, local)
            children[:, 0:3] = model.means[split_ids] + offsets
            shrunk = np.log(scales / cfg.split_scale_shrink)
            children[:, 3:6] = shrunk
            model.log_scales[split_ids] = shrunk  # parent shrinks in place
            new_rows.append(children)

        params = model.params
        if new_rows:
            params = np.concatenate([params] + new_rows, axis=0)

        # prune low-opacity Gaussians (never the freshly added rows)
        opacities = 1.0 / (1.0 + np.exp(-params[:, 10]))
        keep = opacities >= cfg.opacity_prune_threshold
        num_pruned = int((~keep).sum())
        params = params[keep]

        new_model = GaussianModel(np.ascontiguousarray(params))
        report = DensifyReport(
            iteration=iteration,
            num_before=n,
            num_cloned=int(clone_ids.size),
            num_split=int(split_ids.size),
            num_pruned=num_pruned,
            num_after=new_model.num_gaussians,
        )
        self._reset(new_model.num_gaussians)
        return new_model, report
