"""Measured telemetry: span tracing, metrics registry, live exporters.

The simulator (:mod:`repro.sim`) *models* the GS-Scale timeline; this
package *measures* it. Four pieces:

* :mod:`~repro.telemetry.trace` — a low-overhead ring-buffer span
  tracer; ``span("train/forward")`` context manager, explicit
  begin/end, worker-process span shipping, near-zero when disabled.
* :mod:`~repro.telemetry.metrics` — unified counters / gauges /
  p50-p95-p99 histograms plus adapters mirroring the legacy
  ``TransferLedger`` / ``MemoryTracker`` / pool-fault / ``ServeStats``
  counters into one registry.
* :mod:`~repro.telemetry.export` — Chrome trace-event JSON in the same
  schema as ``sim/trace.py`` (measured pid 2 next to modeled pid 1),
  Prometheus text exposition, JSON metric dumps.
* :mod:`~repro.telemetry.compare` — measured-vs-modeled per-phase
  deltas against ``sim/timeline.py`` breakdowns (CLI:
  ``tools/compare_trace.py``).

Enable with ``GSScaleConfig(telemetry=True)`` /
``ServeConfig(telemetry=True)`` or an explicit ``trace.install()``.
"""

from . import compare, export, metrics, trace
from .compare import compare_breakdowns, measured_breakdown, modeled_breakdown
from .export import (
    MEASURED_PID,
    merge_traces,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
    write_metrics_json,
    write_prometheus,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_counts,
    get_registry,
    reset_registry,
)
from .trace import (
    SpanEvent,
    Tracer,
    begin,
    enabled,
    end,
    get_tracer,
    install,
    span,
    uninstall,
)

__all__ = [
    "MEASURED_PID",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanEvent",
    "Tracer",
    "aggregate_counts",
    "begin",
    "compare",
    "compare_breakdowns",
    "enabled",
    "end",
    "export",
    "get_registry",
    "get_tracer",
    "install",
    "measured_breakdown",
    "merge_traces",
    "metrics",
    "modeled_breakdown",
    "reset_registry",
    "span",
    "to_chrome_trace",
    "to_prometheus",
    "trace",
    "uninstall",
    "write_chrome_trace",
    "write_metrics_json",
    "write_prometheus",
]
