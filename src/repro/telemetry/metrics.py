"""Unified metrics registry: counters, gauges, percentile histograms.

The repo grew several hand-rolled stats surfaces — ``TransferLedger``
byte counters, ``MemoryTracker`` peaks, ``PersistentPool`` fault
counters, ``ServeStats`` — each with its own ad-hoc aggregation loop.
This module gives them one home: a :class:`MetricsRegistry` of named
:class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments with
optional labels, plus *adapters* (:func:`mirror_ledger`,
:func:`mirror_memory`, :func:`mirror_pool_faults`,
:func:`mirror_serve_stats`) that copy the legacy counters into the
registry at snapshot time instead of duplicating their bookkeeping.
The legacy objects stay the source of truth; the registry is the export
surface (:mod:`repro.telemetry.export` renders it to Prometheus text or
JSON).

:func:`aggregate_counts` is the shared summation helper that replaces
the three copies of "loop over dicts, add the values" that used to live
in ``raster_pool_fault_stats``, ``RenderService._sync_fault_stats`` and
the shard-report rollups.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "aggregate_counts",
    "get_registry",
    "ledger_counts",
    "mirror_ledger",
    "mirror_memory",
    "mirror_pool_faults",
    "mirror_serve_stats",
    "reset_registry",
]

#: Histograms keep at most this many raw observations for percentiles;
#: later observations still update count/sum but are not sampled.
DEFAULT_HISTOGRAM_SAMPLES = 65_536


def aggregate_counts(mappings, keys=None) -> dict:
    """Sum per-key counts across an iterable of mappings.

    With ``keys`` the result has exactly those keys (missing entries
    count as 0 and unknown keys in the inputs are ignored); without, the
    result is the union of all input keys. This is the single shared
    implementation behind the pool fault-stat totals, the serving
    fault-stat sync, and the shard ledger rollups.
    """
    if keys is not None:
        totals = dict.fromkeys(keys, 0)
        for m in mappings:
            for k in keys:
                v = m.get(k)
                if v:
                    totals[k] += v
        return totals
    totals = {}
    for m in mappings:
        for k, v in m.items():
            totals[k] = totals.get(k, 0) + v
    return totals


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A value that can go up or down (peaks, resident bytes, ratios)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount


class Histogram:
    """Streaming histogram with exact small-sample percentiles.

    Keeps every observation up to ``max_samples`` (65k by default — far
    above any bench or serve run here), so :meth:`percentile` matches
    ``numpy.quantile(..., method="linear")`` exactly on the retained
    sample; beyond the cap, count/sum/min/max stay exact and the
    percentile is computed over the first ``max_samples`` observations.
    """

    __slots__ = ("name", "labels", "count", "sum", "min", "max",
                 "max_samples", "_samples")

    def __init__(self, name: str, labels: dict | None = None,
                 max_samples: int = DEFAULT_HISTOGRAM_SAMPLES):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.max_samples = max_samples
        self._samples: list[float] = []

    def observe(self, value) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if not self._samples:
            return float("nan")
        xs = sorted(self._samples)
        pos = (len(xs) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(xs) - 1)
        frac = pos - lo
        return xs[lo] * (1.0 - frac) + xs[hi] * frac

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def summary(self) -> dict:
        """count/sum/min/max plus the p50/p95/p99 serving percentiles."""
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


def _key(name: str, labels: dict | None):
    if not labels:
        return name
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Named instruments, get-or-create by (name, labels).

    ``counter("pool/retries")`` returns the same object on every call,
    so call sites don't hold references; labels distinguish series
    (``histogram("page_in_seconds", store="disk")``). Thread-safe
    creation; instrument updates are plain attribute bumps (the GIL
    makes the int/float increments used here safe in practice).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    def _get(self, table: dict, cls, name: str, labels: dict | None, **kw):
        key = _key(name, labels)
        inst = table.get(key)
        if inst is None:
            with self._lock:
                inst = table.get(key)
                if inst is None:
                    inst = cls(name, labels, **kw)
                    table[key] = inst
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, max_samples: int = DEFAULT_HISTOGRAM_SAMPLES,
                  **labels) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels,
                         max_samples=max_samples)

    def counters(self) -> list[Counter]:
        return list(self._counters.values())

    def gauges(self) -> list[Gauge]:
        return list(self._gauges.values())

    def histograms(self) -> list[Histogram]:
        return list(self._histograms.values())

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (JSON-ready)."""

        def series(instruments, value):
            out = []
            for m in instruments:
                entry = {"name": m.name}
                if m.labels:
                    entry["labels"] = dict(m.labels)
                entry.update(value(m))
                out.append(entry)
            return out

        return {
            "counters": series(self.counters(), lambda m: {"value": m.value}),
            "gauges": series(self.gauges(), lambda m: {"value": m.value}),
            "histograms": series(self.histograms(), lambda m: m.summary()),
        }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every adapter and exporter shares."""
    return _registry


def reset_registry() -> MetricsRegistry:
    """Drop all instruments (tests; between independent runs)."""
    _registry.clear()
    return _registry


# ---------------------------------------------------------------------------
# adapters: mirror the legacy counter objects into the registry
# ---------------------------------------------------------------------------

def ledger_counts(ledger) -> dict:
    """A ``TransferLedger``'s counter fields as a plain dict.

    Works on anything exposing the ledger counter attributes; the
    shard-report rollup and :func:`mirror_ledger` both read this instead
    of re-listing the fields.
    """
    return ledger.counts()


def mirror_ledger(registry: MetricsRegistry, ledger, prefix: str = "train",
                  **labels) -> dict:
    """Mirror a ``TransferLedger`` into gauges; returns the counts."""
    counts = ledger_counts(ledger)
    for key, value in counts.items():
        registry.gauge(f"{prefix}/ledger/{key}", **labels).set(value)
    return counts


def mirror_memory(registry: MetricsRegistry, tracker, prefix: str = "train",
                  **labels) -> None:
    """Mirror a ``MemoryTracker``'s live/peak bytes into gauges."""
    registry.gauge(f"{prefix}/memory/live_bytes", **labels).set(
        tracker.live_bytes)
    registry.gauge(f"{prefix}/memory/peak_bytes", **labels).set(
        tracker.peak_bytes)


def mirror_pool_faults(registry: MetricsRegistry, stats: dict,
                       prefix: str = "pool", **labels) -> dict:
    """Mirror a pool fault-stat dict into gauges; returns it unchanged."""
    for key, value in stats.items():
        registry.gauge(f"{prefix}/{key}", **labels).set(value)
    return stats


def mirror_serve_stats(registry: MetricsRegistry, stats,
                       prefix: str = "serve", **labels) -> dict:
    """Mirror a ``ServeStats`` object into gauges; returns its dict."""
    values = stats.as_dict()
    for key, value in values.items():
        registry.gauge(f"{prefix}/{key}", **labels).set(value)
    return values
