"""Exporters: measured Chrome traces, Prometheus text, JSON dumps.

The Chrome exporter emits the same trace-event schema as
:func:`repro.sim.trace.to_chrome_trace` — ``ph:"X"`` duration events
with microsecond ``ts``/``dur``, ``thread_name`` metadata, wrapped in
``{"traceEvents": [...], "displayTimeUnit": "ms"}`` — so a measured
trace opens in chrome://tracing or Perfetto exactly like a modeled one.
The simulator's lanes live on ``pid`` 1; measured lanes live on
``pid`` 2 (:data:`MEASURED_PID`) with ``process_name`` metadata, so
:func:`merge_traces` can put a modeled and a measured timeline of the
same config side by side in one viewer.

Thread lanes are assigned deterministically in order of first
appearance. Lane names come from ``Tracer.thread_names`` overrides
first, then the live ``threading.enumerate()`` names (which is how the
``gsscale-prefetch`` and ``gsscale-writeback`` daemon threads label
themselves), then a ``thread-N`` fallback; string tids (the synthetic
``pool-worker-K`` lanes) display as themselves.
"""

from __future__ import annotations

import json
import threading

from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = [
    "MEASURED_PID",
    "merge_traces",
    "registry_to_json",
    "to_chrome_trace",
    "to_prometheus",
    "write_chrome_trace",
    "write_metrics_json",
    "write_prometheus",
]

#: pid of measured lanes (the simulator's modeled lanes use pid 1).
MEASURED_PID = 2

#: Minimum exported duration in us, matching ``sim/trace.py`` so
#: zero-length spans stay visible in the viewer.
_MIN_DUR_US = 0.01


def _lane_names(tracer: Tracer, tids: list) -> dict:
    """Display name per tid: overrides, then live threads, then fallback."""
    live = {t.ident: t.name for t in threading.enumerate()}
    main = threading.main_thread().ident
    names = {}
    for i, tid in enumerate(tids):
        if tid in tracer.thread_names:
            names[tid] = tracer.thread_names[tid]
        elif isinstance(tid, str):
            names[tid] = tid
        elif tid == main:
            names[tid] = "main"
        elif tid in live:
            names[tid] = live[tid]
        else:
            names[tid] = f"thread-{i}"
    return names


def to_chrome_trace(tracer: Tracer, time_scale_us: float = 1e6,
                    pid: int = MEASURED_PID) -> dict:
    """Render a tracer's ring buffer as Chrome trace-event JSON."""
    events = tracer.events()
    tids = []
    for ev in events:
        if ev.tid not in tids:
            tids.append(ev.tid)
    names = _lane_names(tracer, tids)
    # main thread first, then host threads, then synthetic worker lanes,
    # each group in first-appearance order — stable lane numbers
    main = threading.main_thread().ident
    ordered = sorted(
        tids, key=lambda t: (t != main, isinstance(t, str), tids.index(t))
    )
    lane = {tid: i + 1 for i, tid in enumerate(ordered)}

    out = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": "measured"},
    }]
    for tid in ordered:
        out.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": lane[tid],
            "args": {"name": names[tid]},
        })
    for ev in events:
        entry = {
            "name": ev.name,
            "ph": "X",
            "pid": pid,
            "tid": lane[ev.tid],
            "ts": ev.start * time_scale_us,
            "dur": max(ev.dur * time_scale_us, _MIN_DUR_US),
            "cat": ev.cat,
        }
        if ev.attrs:
            entry["args"] = dict(ev.attrs)
        out.append(entry)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def merge_traces(*traces: dict) -> dict:
    """Concatenate trace documents (e.g. modeled pid 1 + measured pid 2)."""
    events = []
    for tr in traces:
        events.extend(tr.get("traceEvents", ()))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path, modeled: dict | None = None,
                       time_scale_us: float = 1e6) -> dict:
    """Write a measured trace (optionally merged with a modeled one)."""
    doc = to_chrome_trace(tracer, time_scale_us=time_scale_us)
    if modeled is not None:
        doc = merge_traces(modeled, doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return doc


# ---------------------------------------------------------------------------
# metrics exporters
# ---------------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """Sanitize a metric name for Prometheus exposition."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    s = "".join(out)
    if s and s[0].isdigit():
        s = "_" + s
    return s


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_prom_name(str(k))}="{v}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _prom_value(v) -> str:
    f = float(v)
    if f != f:
        return "NaN"
    return repr(f) if isinstance(v, float) else str(v)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Text-exposition snapshot of the registry.

    Histograms export as Prometheus summaries: ``<name>{quantile=...}``
    series for p50/p95/p99 plus ``_count`` and ``_sum``.
    """
    lines = []
    for c in registry.counters():
        name = _prom_name(c.name)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{_prom_labels(c.labels)} {_prom_value(c.value)}")
    for g in registry.gauges():
        name = _prom_name(g.name)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{_prom_labels(g.labels)} {_prom_value(g.value)}")
    for h in registry.histograms():
        name = _prom_name(h.name)
        lines.append(f"# TYPE {name} summary")
        for q in (0.5, 0.95, 0.99):
            val = h.percentile(q * 100.0) if h.count else float("nan")
            lines.append(
                f"{name}{_prom_labels(h.labels, {'quantile': q})} "
                f"{_prom_value(val)}"
            )
        lines.append(f"{name}_count{_prom_labels(h.labels)} {h.count}")
        lines.append(
            f"{name}_sum{_prom_labels(h.labels)} {_prom_value(h.sum)}"
        )
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path) -> str:
    text = to_prometheus(registry)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text


def registry_to_json(registry: MetricsRegistry) -> dict:
    """JSON-ready dict dump of the registry (same data as Prometheus)."""
    return registry.snapshot()


def write_metrics_json(registry: MetricsRegistry, path) -> dict:
    doc = registry_to_json(registry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return doc
