"""Measured-vs-modeled per-phase comparison.

The simulator predicts an iteration's time budget as a per-phase
breakdown (:func:`repro.sim.simulate_iteration` → ``IterationSim.
breakdown`` with keys like ``cull``/``h2d``/``fwd_bwd``/``optimizer``/
``disk``); the tracer records what the running system actually spent.
This module rolls measured spans up into the same phase vocabulary and
diffs the two — the closing of the loop ``tools/compare_trace.py``
exposes on the command line.

Span names map to phases by longest matching prefix
(:data:`PHASE_BY_SPAN`); spans outside the vocabulary (``serve/*``,
``train/step`` itself) are ignored rather than double counted — nested
spans mean a naive sum over *all* spans would count the same wall time
twice.
"""

from __future__ import annotations

from .export import MEASURED_PID
from .trace import SpanEvent, Tracer

__all__ = [
    "PHASE_BY_SPAN",
    "PHASES",
    "compare_breakdowns",
    "format_table",
    "measured_breakdown",
    "modeled_breakdown",
]

#: Phase vocabulary, in the simulator's reporting order.
PHASES = ("cull", "h2d", "fwd_bwd", "d2h", "optimizer", "composite", "disk")

#: Measured span-name prefix -> modeled breakdown key. Longest matching
#: prefix wins, so ``train/forward`` beats a hypothetical ``train/``.
PHASE_BY_SPAN = {
    "train/cull": "cull",
    "pool/cull_shard_task": "cull",
    "train/stage": "h2d",
    "train/forward": "fwd_bwd",
    "train/backward": "fwd_bwd",
    "pool/forward": "fwd_bwd",
    "pool/backward": "fwd_bwd",
    "train/unstage": "d2h",
    "train/commit": "optimizer",
    "train/return_grads": "optimizer",
    "train/aggregate": "composite",
    "page/in": "disk",
    "page/out": "disk",
    "page/prefetch": "disk",
    "page/writeback": "disk",
}

#: Span prefixes that nest inside already-counted phases and must not be
#: double counted (``pool/span_task`` wraps ``pool/forward`` etc.).
_NESTED_PREFIXES = ("pool/span_task", "pool/map")


def phase_for(name: str) -> str | None:
    """The breakdown phase a span name rolls up into (None = ignored)."""
    best = None
    best_len = -1
    for prefix, phase in PHASE_BY_SPAN.items():
        if name.startswith(prefix) and len(prefix) > best_len:
            best, best_len = phase, len(prefix)
    return best


def _iter_span_rows(source):
    """Yield ``(name, dur_s)`` from a tracer, event list, or trace doc."""
    if isinstance(source, Tracer):
        source = source.events()
    if isinstance(source, dict):  # a Chrome trace document
        for ev in source.get("traceEvents", ()):
            if ev.get("ph") != "X" or ev.get("pid") != MEASURED_PID:
                continue
            yield ev["name"], ev["dur"] / 1e6
        return
    for ev in source:
        if isinstance(ev, SpanEvent):
            yield ev.name, ev.dur
        else:
            name, _cat, _tid, _start, dur, _attrs = ev
            yield name, dur


def measured_breakdown(source, iterations: int = 1) -> dict:
    """Roll measured spans up into per-phase seconds (per iteration).

    ``source`` is a :class:`Tracer`, a list of span events, or a parsed
    Chrome trace document (measured lanes only). ``iterations`` divides
    the totals so a multi-step trace compares against the simulator's
    single-iteration breakdown.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    totals = dict.fromkeys(PHASES, 0.0)
    for name, dur in _iter_span_rows(source):
        if any(name.startswith(p) for p in _NESTED_PREFIXES):
            continue
        phase = phase_for(name)
        if phase is not None:
            totals[phase] += dur / iterations
    return totals


def modeled_breakdown(
    system: str,
    platform: str,
    n_total: int,
    active_ratio: float,
    num_pixels: int,
    **sim_kwargs,
) -> dict:
    """The simulator's per-phase seconds for one iteration."""
    from ..sim import CostModel, get_platform, simulate_iteration

    sim = simulate_iteration(
        system, CostModel(get_platform(platform)), n_total, active_ratio,
        num_pixels, **sim_kwargs,
    )
    out = dict.fromkeys(PHASES, 0.0)
    for key, value in sim.breakdown.items():
        if key in out:
            out[key] = float(value)
    return out


def compare_breakdowns(measured: dict, modeled: dict) -> list[dict]:
    """Per-phase rows: measured, modeled, delta and ratio."""
    rows = []
    for phase in PHASES:
        m = float(measured.get(phase, 0.0))
        s = float(modeled.get(phase, 0.0))
        rows.append({
            "phase": phase,
            "measured_s": m,
            "modeled_s": s,
            "delta_s": m - s,
            "ratio": (m / s) if s > 0 else float("inf") if m > 0 else 1.0,
        })
    return rows


def format_table(rows: list[dict]) -> str:
    """Human-readable comparison table."""
    lines = [
        f"{'phase':<10} {'measured':>12} {'modeled':>12} "
        f"{'delta':>12} {'ratio':>8}"
    ]
    for r in rows:
        ratio = r["ratio"]
        ratio_s = f"{ratio:8.2f}" if ratio != float("inf") else "     inf"
        lines.append(
            f"{r['phase']:<10} {r['measured_s']:>11.6f}s "
            f"{r['modeled_s']:>11.6f}s {r['delta_s']:>+11.6f}s {ratio_s}"
        )
    return "\n".join(lines)
