"""Low-overhead measured span tracing (the real-time twin of ``sim/trace``).

:mod:`repro.sim.trace` exports *modeled* timelines; this module records
what the running system actually did. A process-wide :class:`Tracer`
holds a ring buffer of completed :class:`SpanEvent` records, stamped with
``time.perf_counter`` and the recording thread, so the training step's
phases, the prefetch thread's disk reads, the write-behind writer's
page-outs, and the serving tick all land on their own timeline lanes.
:mod:`repro.telemetry.export` turns the buffer into the same Chrome
trace-event JSON the simulator writes, so a measured and a modeled run of
the same config open side by side in one chrome://tracing viewer.

Three recording surfaces:

* ``with span("train/forward"):`` — the context-manager API used at
  instrumentation sites. When no tracer is installed (or tracing is
  disabled) it returns a shared no-op object: no allocation, no lock, no
  clock read — the near-zero disabled mode the <2% overhead gate pins.
* ``tok = begin("pool/map"); ...; end(tok)`` — the explicit API for
  sites where the span brackets non-lexical scopes (retry loops, early
  returns). ``begin`` returns ``None`` when disabled and ``end(None)``
  is a no-op, so call sites need no guards.
* :meth:`Tracer.record` / :meth:`Tracer.record_rel` — for code that
  already timed itself (``DiskStore`` keeps ``page_in_s`` counters) and
  for remapping spans shipped back from pool worker processes.

Cross-process spans: :func:`traced_task` is a picklable pool-task wrapper
that runs the wrapped function under a fresh worker-local tracer and
ships the recorded spans back *with the task result* (times relative to
task start). :meth:`Tracer.record_shipped` then replays them onto a
synthetic per-worker lane anchored at the host-side dispatch time — a
pure function of the shipped spans and the anchor, so the remap is
deterministic.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import NamedTuple

__all__ = [
    "SpanEvent",
    "Tracer",
    "begin",
    "enabled",
    "end",
    "get_tracer",
    "install",
    "name_current_thread",
    "set_tracer",
    "span",
    "traced_task",
    "uninstall",
]

#: Default ring-buffer capacity (completed spans retained).
DEFAULT_CAPACITY = 65_536

#: Capacity of the throwaway per-task tracer inside pool workers.
WORKER_CAPACITY = 4_096


class SpanEvent(NamedTuple):
    """One completed span.

    ``start`` is seconds since the owning tracer's epoch; ``dur`` is the
    span length in seconds. ``tid`` is the recording thread's
    ``threading.get_ident()`` — or a caller-chosen string lane for spans
    replayed from another process (``"pool-worker-0"``).
    """

    name: str
    cat: str
    tid: int | str
    start: float
    dur: float
    attrs: dict | None


class _NullSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one span into a live tracer."""

    __slots__ = ("_tracer", "_name", "_cat", "_attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, attrs: dict | None):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._attrs = attrs

    def __enter__(self):
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc):
        self._tracer.record(
            self._name, self._t0, perf_counter(), cat=self._cat,
            attrs=self._attrs,
        )
        return False


class Tracer:
    """Ring-buffer span recorder on a monotonic clock.

    Thread-safe: spans record under a short lock from any thread (the
    training loop, the prefetch thread, the write-behind writer). The
    ring holds the most recent ``capacity`` spans; older ones are
    overwritten and counted in :attr:`dropped` rather than growing
    memory unboundedly on long runs.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.enabled = True
        #: perf_counter value all span starts are relative to
        self.epoch = perf_counter()
        self.dropped = 0
        self._events: list[SpanEvent] = []
        self._head = 0  # index of the oldest event once the ring wraps
        self._lock = threading.Lock()
        #: explicit lane names (tid -> display name); export falls back
        #: to live ``threading.enumerate()`` names for unnamed idents
        self.thread_names: dict[int | str, str] = {}

    # -- recording ---------------------------------------------------------
    def record(
        self,
        name: str,
        t_start: float,
        t_end: float,
        cat: str = "app",
        tid: int | str | None = None,
        attrs: dict | None = None,
    ) -> None:
        """Record a completed span given absolute ``perf_counter`` times."""
        self.record_rel(
            name, t_start - self.epoch, t_end - t_start,
            cat=cat, tid=tid, attrs=attrs,
        )

    def record_rel(
        self,
        name: str,
        start_s: float,
        dur_s: float,
        cat: str = "app",
        tid: int | str | None = None,
        attrs: dict | None = None,
    ) -> None:
        """Record a span whose start is relative to the tracer epoch."""
        if tid is None:
            tid = threading.get_ident()
        ev = SpanEvent(name, cat, tid, start_s, dur_s, attrs)
        with self._lock:
            if len(self._events) < self.capacity:
                self._events.append(ev)
            else:
                self._events[self._head] = ev
                self._head = (self._head + 1) % self.capacity
                self.dropped += 1

    def record_shipped(
        self,
        shipped: list[tuple],
        anchor: float,
        lane: str,
    ) -> None:
        """Replay spans shipped back from a worker process.

        ``shipped`` is the ``(name, cat, start, dur)`` list produced by
        :func:`traced_task` (times relative to task start); ``anchor`` is
        the absolute host-side ``perf_counter`` the spans are re-based
        onto (the map dispatch time); ``lane`` is the synthetic thread
        lane they land on. Deterministic: same inputs, same events.
        """
        base = anchor - self.epoch
        for name, cat, start, dur in shipped:
            self.record_rel(name, base + start, dur, cat=cat, tid=lane)

    # -- explicit begin/end ------------------------------------------------
    def begin(self, name: str, cat: str = "app", attrs: dict | None = None):
        """Open a span; pass the returned token to :meth:`end`."""
        return (name, cat, attrs, perf_counter(), threading.get_ident())

    def end(self, token) -> None:
        """Close a span opened by :meth:`begin`."""
        name, cat, attrs, t0, tid = token
        self.record(name, t0, perf_counter(), cat=cat, tid=tid, attrs=attrs)

    # -- inspection --------------------------------------------------------
    def events(self) -> list[SpanEvent]:
        """Recorded spans, oldest first (a copy; safe to iterate)."""
        with self._lock:
            return self._events[self._head:] + self._events[: self._head]

    def clear(self) -> None:
        """Drop every recorded span (capacity and epoch unchanged)."""
        with self._lock:
            self._events = []
            self._head = 0
            self.dropped = 0

    def name_thread(self, name: str, tid: int | str | None = None) -> None:
        """Give a timeline lane a display name (default: this thread)."""
        if tid is None:
            tid = threading.get_ident()
        self.thread_names[tid] = name

    def phase_seconds(self) -> dict[str, float]:
        """Total seconds per span name (measured per-phase rollup)."""
        totals: dict[str, float] = {}
        for ev in self.events():
            totals[ev.name] = totals.get(ev.name, 0.0) + ev.dur
        return totals


# ---------------------------------------------------------------------------
# process-wide tracer
# ---------------------------------------------------------------------------

_tracer: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed process-wide tracer (``None`` = tracing off)."""
    return _tracer


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the process-wide tracer; returns the old one."""
    global _tracer
    old, _tracer = _tracer, tracer
    return old


def install(capacity: int = DEFAULT_CAPACITY) -> Tracer:
    """Install (or return the already-installed) process-wide tracer.

    Idempotent so every consumer with ``telemetry=True`` — trainer
    systems, serving, benchmarks — shares one buffer and one epoch.
    """
    global _tracer
    if _tracer is None:
        _tracer = Tracer(capacity)
    return _tracer


def uninstall() -> Tracer | None:
    """Remove the process-wide tracer; returns it (with its events)."""
    return set_tracer(None)


def enabled() -> bool:
    """Whether spans are currently being recorded."""
    t = _tracer
    return t is not None and t.enabled


def name_current_thread(name: str) -> None:
    """Register this thread's lane name on the installed tracer (no-op
    when tracing is off). Long-lived daemon threads call this from their
    run loops so their lanes stay labelled even if the thread has exited
    by export time."""
    t = _tracer
    if t is not None:
        t.name_thread(name)


def span(name: str, cat: str = "app", **attrs):
    """Context manager recording ``name`` as a span (no-op when off).

    The disabled path returns a shared singleton: the per-call cost is
    one global read and one truthiness check, with no allocation beyond
    the (empty) ``attrs`` dict the call itself builds.
    """
    t = _tracer
    if t is None or not t.enabled:
        return _NULL_SPAN
    return _Span(t, name, cat, attrs or None)


def begin(name: str, cat: str = "app"):
    """Open a span on the process tracer; ``None`` token when off."""
    t = _tracer
    if t is None or not t.enabled:
        return None
    return t.begin(name, cat)


def end(token) -> None:
    """Close a :func:`begin` span (no-op for a ``None`` token)."""
    if token is None:
        return
    t = _tracer
    if t is not None:
        t.end(token)


# ---------------------------------------------------------------------------
# in-worker capture (pool tasks ship their spans home with the result)
# ---------------------------------------------------------------------------

def traced_task(payload):
    """Picklable pool-task wrapper: run under a worker-local tracer.

    ``payload`` is ``(fn, arg)``. The wrapped call runs with a fresh
    tracer installed as the worker's process-wide tracer, so any
    :func:`span` the task function (or code it calls) opens records
    locally; the whole task gets an enclosing ``pool/<fn name>`` span.
    Returns ``(result, spans)`` where ``spans`` is a picklable
    ``(name, cat, start, dur)`` list with times relative to task start —
    :meth:`Tracer.record_shipped` replays them host-side.
    """
    fn, arg = payload
    local = Tracer(capacity=WORKER_CAPACITY)
    prev = set_tracer(local)
    tok = local.begin(f"pool/{fn.__name__.lstrip('_')}", "pool")
    try:
        result = fn(arg)
    finally:
        local.end(tok)
        set_tracer(prev)
    shipped = [(e.name, e.cat, e.start, e.dur) for e in local.events()]
    return result, shipped
