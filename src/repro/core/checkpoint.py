"""Training checkpoints: save and resume a system mid-run.

Long GS-Scale runs (30k iterations in the paper) need restartability. A
checkpoint captures, for every leaf parameter store of the system, the
committed parameter block, the optimizer moments, the deferred counters,
and the step counter — plus each store's column block and (for sharded
systems) its global row ids, so a packed model can be reassembled without
knowing the system's placement. Enough to resume training bit-exactly for
the dense systems and within the deferred approximation otherwise.

Out-of-core systems checkpoint without full materialization: ``finalize``
settles each shard one at a time under the resident-set budget, a spilled
:class:`~repro.core.stores.DiskStore` hands out its memory-mapped arrays
directly (so serialization streams from the spill files), and loading a
checkpoint into a spilled store writes straight back into the memmaps —
the resident working set never exceeds the budget on either path.

Durability: checkpoints are written atomically (temp + fsync + rename via
:func:`~repro.core.integrity.atomic_savez`), so a crash mid-save leaves
the previous checkpoint intact. On the read side, torn or unreadable
files surface as :class:`~repro.core.integrity.CorruptCheckpointError`
— naming the file, the failing block, and the expected/actual sizes —
instead of raw ``zipfile``/numpy errors, so recovery code (the patch
pipeline's last-good-checkpoint fallback) can route on the exception
type. Genuine *mismatches* (wrong version / system / scene size / shard
layout) stay ``ValueError``: those files are intact, just not the one
the caller wanted.
"""

from __future__ import annotations

import os
import zipfile
import zlib
from dataclasses import dataclass

import numpy as np

from ..gaussians import GaussianModel, layout
from .integrity import CorruptCheckpointError, atomic_savez
from .systems import TrainingSystem

_FORMAT_VERSION = 2

#: Exception types that mean "the file is damaged", as opposed to the
#: intentional ValueErrors for version/system/layout mismatches.
_CORRUPTION_ERRORS = (
    zipfile.BadZipFile, zlib.error, EOFError, OSError, KeyError
)


def _file_size(path: str) -> int | None:
    try:
        return os.path.getsize(path)
    except OSError:
        return None


def _prefix(p: str) -> str:
    return f"{p}_" if p else ""


def save_checkpoint(path: str, system: TrainingSystem) -> None:
    """Serialize ``system`` to an ``.npz`` checkpoint.

    Pending forwarded gradients and deferred drift are committed first
    (the checkpoint always holds a consistent, committed state). Spilled
    stores contribute their memmap views, so the host working set stays
    within the system's resident-set budget while writing.
    """
    system.finalize()
    arrays: dict[str, np.ndarray] = {
        "version": np.array(_FORMAT_VERSION),
        "system": np.array(system.name),
        "iteration": np.array(system.iteration),
        "num_gaussians": np.array(system.num_gaussians),
    }
    for prefix, store, rows in system.checkpoint_entries():
        p = _prefix(prefix)
        for key, value in store.state_dict().items():
            arrays[p + key] = value
        arrays[p + "cols"] = np.array([store.block.start, store.block.stop])
        if rows is not None:
            arrays[p + "rows"] = rows
    atomic_savez(path, arrays)


def _open_checkpoint(path: str):
    """``np.load`` that reports unreadable files as corruption.

    Version/system/layout *mismatches* are checked by the callers after a
    successful open and stay ``ValueError`` — this wrapper only converts
    "cannot even parse the archive" failures.
    """
    try:
        return np.load(path, allow_pickle=False)
    except (*_CORRUPTION_ERRORS, ValueError) as exc:
        raise CorruptCheckpointError(
            path,
            detail=f"unreadable archive ({type(exc).__name__}: {exc})",
            actual=_file_size(path),
        ) from exc


def load_checkpoint(path: str, system: TrainingSystem) -> None:
    """Restore a checkpoint into a freshly constructed ``system``.

    The system must have been created with the same configuration (system
    name, scene size, and — for sharded systems — shard layout) the
    checkpoint was saved from. A torn or unreadable file raises
    :class:`~repro.core.integrity.CorruptCheckpointError`; configuration
    mismatches raise ``ValueError``.
    """
    with _open_checkpoint(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        saved_system = str(data["system"])
        if saved_system != system.name:
            raise ValueError(
                f"checkpoint is for system {saved_system!r}, got "
                f"{system.name!r}"
            )
        if int(data["num_gaussians"]) != system.num_gaussians:
            raise ValueError(
                f"checkpoint holds {int(data['num_gaussians'])} Gaussians, "
                f"system has {system.num_gaussians}"
            )
        system.iteration = int(data["iteration"])
        for prefix, store, rows in system.checkpoint_entries():
            p = _prefix(prefix)
            try:
                if rows is not None and not np.array_equal(
                    data[p + "rows"], rows
                ):
                    raise ValueError(
                        f"shard layout of store {prefix!r} differs from the "
                        "checkpoint (was the model or num_shards changed?)"
                    )
                state = {
                    key: data[p + key]
                    for key in ("params", "m", "v", "steps", "counter")
                    if p + key in data
                }
            except _CORRUPTION_ERRORS as exc:
                raise CorruptCheckpointError(
                    path,
                    block=p or "(root)",
                    detail=f"{type(exc).__name__}: {exc}",
                    actual=_file_size(path),
                ) from exc
            store.load_state_dict(state)


def write_model_checkpoint(
    path: str,
    blocks: list[tuple[str, np.ndarray | None, np.ndarray]],
    *,
    system: str = "merged",
    iteration: int = 0,
    num_gaussians: int,
) -> None:
    """Write a params-only checkpoint from packed full-width row blocks.

    The inference-side counterpart of :func:`save_checkpoint`: no
    optimizer state, just committed ``(n_i, 59)`` parameter blocks, each
    given as ``(prefix, rows, params)`` — ``rows`` are the block's global
    row ids (``None`` means all ``num_gaussians`` rows in order). The
    result is a regular format-v2 checkpoint, so :func:`resume_model`,
    :class:`CheckpointReader`, and the serving stores load it like any
    trained one. The patch pipeline writes its merged model this way, one
    per-patch block at a time, so the fused scene never materializes as a
    single array during the merge.
    """
    arrays: dict[str, np.ndarray] = {
        "version": np.array(_FORMAT_VERSION),
        "system": np.array(system),
        "iteration": np.array(iteration),
        "num_gaussians": np.array(num_gaussians),
    }
    covered = 0
    for prefix, rows, params in blocks:
        if params.ndim != 2 or params.shape[1] != layout.PARAM_DIM:
            raise ValueError(
                f"block {prefix!r} must be (n, {layout.PARAM_DIM}), "
                f"got {params.shape}"
            )
        if rows is not None and rows.size != params.shape[0]:
            raise ValueError(f"block {prefix!r}: rows do not match params")
        p = _prefix(prefix)
        arrays[p + "params"] = params
        arrays[p + "cols"] = np.array([0, layout.PARAM_DIM])
        if rows is not None:
            arrays[p + "rows"] = np.asarray(rows, dtype=np.int64)
        covered += params.shape[0] if rows is None else rows.size
    if covered != num_gaussians:
        raise ValueError(
            f"blocks cover {covered} rows, expected {num_gaussians}"
        )
    atomic_savez(path, arrays)


def validate_checkpoint(path: str, deep: bool = False) -> str | None:
    """Check a checkpoint for corruption; ``None`` when it looks good.

    Returns the failure detail string otherwise (missing file, torn
    archive, unreadable header). With ``deep=True`` every parameter
    block is decompressed — catching tears past the archive index that a
    shallow open slides over — at the cost of reading the whole file.
    The patch pipeline calls this before trusting a manifest that claims
    a checkpoint is complete.
    """
    if not os.path.exists(path):
        return f"missing checkpoint {path}"
    try:
        with CheckpointReader(path) as reader:
            if deep:
                for info in reader.blocks():
                    reader.block_params(info)
    except (CorruptCheckpointError, ValueError) as exc:
        return str(exc)
    return None


def resume_model(path: str) -> GaussianModel:
    """Extract just the (committed) Gaussian model from a checkpoint.

    Reassembles the packed ``(N, 59)`` matrix from every store's column
    block and row ids, independent of the placement that produced it.
    """
    with CheckpointReader(path) as reader:
        params = reader.assemble_columns(slice(0, layout.PARAM_DIM))
        return GaussianModel(params)


@dataclass(frozen=True)
class CheckpointBlockInfo:
    """Location of one store's parameter block inside a checkpoint.

    Attributes:
        prefix: key prefix of the block's arrays (``""``, ``"geo_"``,
            ``"shard3_host_"``, ...).
        start, stop: packed-layout column range the block covers.
        rows: global row ids of a sharded block, ``None`` for all rows.
    """

    prefix: str
    start: int
    stop: int
    rows: np.ndarray | None


class CheckpointReader:
    """Read-only, block-at-a-time view of a checkpoint.

    The serving subsystem opens trained — possibly spilled, larger-than-
    host — checkpoints through this reader instead of
    :func:`resume_model`: ``.npz`` members decompress lazily on access, so
    iterating :meth:`iter_column_blocks` touches one store's block at a
    time and the full packed ``(N, 59)`` matrix is never materialized.
    Peak transient memory is bounded by the largest single block (one
    shard's columns for sharded/out-of-core checkpoints).
    """

    def __init__(self, path: str):
        self._path = path
        self._data = _open_checkpoint(path)
        try:
            version = int(self._data["version"])
            if version != _FORMAT_VERSION:
                raise ValueError(f"unsupported checkpoint version {version}")
            self.num_gaussians = int(self._data["num_gaussians"])
            self.system = str(self._data["system"])
            self.iteration = int(self._data["iteration"])
            self._blocks = []
            for key in self._data.files:
                if not key.endswith("cols"):
                    continue
                p = key[: -len("cols")]
                start, stop = (int(c) for c in self._data[key])
                rows = (
                    self._data[p + "rows"]
                    if p + "rows" in self._data else None
                )
                self._blocks.append(CheckpointBlockInfo(p, start, stop, rows))
        except _CORRUPTION_ERRORS as exc:
            self._data.close()
            raise CorruptCheckpointError(
                path,
                detail=f"header/index unreadable ({type(exc).__name__}: {exc})",
                actual=_file_size(path),
            ) from exc
        except Exception:
            self._data.close()
            raise
        # deterministic order: by column range, then shard rows
        self._blocks.sort(key=lambda b: (b.start, b.prefix))

    def blocks(self) -> list[CheckpointBlockInfo]:
        """Every stored block's location (no parameter data loaded)."""
        return list(self._blocks)

    def _member_size(self, key: str) -> int | None:
        """Uncompressed size the archive index promises for one member."""
        try:
            info = self._data.zip.NameToInfo.get(key + ".npy")
        except AttributeError:
            return None
        return None if info is None else int(info.file_size)

    def block_params(self, info: CheckpointBlockInfo) -> np.ndarray:
        """Committed parameter values of one block (loads only it).

        A truncated or undecodable ``.npz`` member raises
        :class:`~repro.core.integrity.CorruptCheckpointError` carrying
        the file, block, and expected/actual sizes.
        """
        key = info.prefix + "params"
        try:
            return np.asarray(self._data[key])
        except (*_CORRUPTION_ERRORS, ValueError) as exc:
            raise CorruptCheckpointError(
                self._path,
                block=key,
                detail=f"{type(exc).__name__}: {exc}",
                expected=self._member_size(key),
                actual=_file_size(self._path),
            ) from exc

    def iter_column_blocks(self, cols: slice):
        """Yield ``(rows, col_slice, values)`` for blocks touching ``cols``.

        ``rows`` are global row ids (``None`` means all rows in order),
        ``col_slice`` the packed-layout columns covered, and ``values``
        the matching slice of that block — loaded lazily, one block per
        iteration, so callers can stream a column range into any layout
        without holding more than one block.
        """
        for info in self._blocks:
            lo = max(info.start, cols.start)
            hi = min(info.stop, cols.stop)
            if lo >= hi:
                continue
            block = self.block_params(info)
            yield info.rows, slice(lo, hi), block[:, lo - info.start : hi - info.start]

    def assemble_columns(self, cols: slice) -> np.ndarray:
        """Materialize one packed-layout column range for all rows.

        Bounded by ``N * (cols.stop - cols.start)`` output floats plus one
        block of transient state; the serving store uses this for the
        always-resident geometric columns (17% of the matrix).
        """
        out = None
        covered = 0
        for rows, csl, values in self.iter_column_blocks(cols):
            if out is None:
                out = np.empty(
                    (self.num_gaussians, cols.stop - cols.start),
                    dtype=values.dtype,
                )
            elif np.result_type(out.dtype, values.dtype) != out.dtype:
                # blocks may disagree on dtype (a float16-codec store
                # checkpoints half-precision pages next to float64
                # geometry): promote so no block loses precision
                out = out.astype(np.result_type(out.dtype, values.dtype))
            dst = slice(csl.start - cols.start, csl.stop - cols.start)
            if rows is None:
                out[:, dst] = values
                covered += (csl.stop - csl.start) * self.num_gaussians
            else:
                out[rows, dst] = values
                covered += (csl.stop - csl.start) * rows.size
        want = (cols.stop - cols.start) * self.num_gaussians
        if out is None or covered != want:
            raise ValueError(
                f"checkpoint does not cover columns [{cols.start}:{cols.stop})"
            )
        return out

    def close(self) -> None:
        """Release the underlying file handle."""
        self._data.close()

    def __enter__(self) -> "CheckpointReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
