"""Training checkpoints: save and resume a system mid-run.

Long GS-Scale runs (30k iterations in the paper) need restartability. A
checkpoint captures the committed parameter state, the optimizer moments,
the deferred counters, and the iteration counter — enough to resume
training bit-exactly for the dense systems and within the deferred
approximation otherwise.
"""

from __future__ import annotations

import numpy as np

from ..gaussians import GaussianModel
from .systems import (
    BaselineOffloadSystem,
    GPUOnlySystem,
    GSScaleSystem,
    TrainingSystem,
)

_FORMAT_VERSION = 1


def save_checkpoint(path: str, system: TrainingSystem) -> None:
    """Serialize ``system`` to an ``.npz`` checkpoint.

    Pending forwarded gradients are committed first (the checkpoint always
    holds a consistent, committed state).
    """
    system.finalize()
    arrays: dict[str, np.ndarray] = {
        "version": np.array(_FORMAT_VERSION),
        "system": np.array(system.name),
        "iteration": np.array(system.iteration),
    }
    if isinstance(system, GSScaleSystem):
        arrays["device_geo"] = system.device_geo
        arrays["geo_m"] = system.geo_optimizer.m
        arrays["geo_v"] = system.geo_optimizer.v
        arrays["geo_steps"] = np.array(system.geo_optimizer.step_count)
        arrays["host_non_geo"] = system.host_non_geo
        arrays["host_m"] = system.host_optimizer.m
        arrays["host_v"] = system.host_optimizer.v
        arrays["host_steps"] = np.array(system.host_optimizer.step_count)
        if system.deferred:
            arrays["host_counter"] = system.host_optimizer.counter
    elif isinstance(system, (GPUOnlySystem, BaselineOffloadSystem)):
        params = (
            system.params
            if isinstance(system, GPUOnlySystem)
            else system.host_params
        )
        arrays["params"] = params
        arrays["m"] = system.optimizer.m
        arrays["v"] = system.optimizer.v
        arrays["steps"] = np.array(system.optimizer.step_count)
    else:
        raise TypeError(f"cannot checkpoint system type {type(system)!r}")
    np.savez_compressed(path, **arrays)


def load_checkpoint(path: str, system: TrainingSystem) -> None:
    """Restore a checkpoint into a freshly constructed ``system``.

    The system must have been created with the same configuration (system
    name and scene size) the checkpoint was saved from.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        saved_system = str(data["system"])
        if saved_system != system.name:
            raise ValueError(
                f"checkpoint is for system {saved_system!r}, got "
                f"{system.name!r}"
            )
        system.iteration = int(data["iteration"])
        if isinstance(system, GSScaleSystem):
            system.device_geo[...] = data["device_geo"]
            system.geo_optimizer.m[...] = data["geo_m"]
            system.geo_optimizer.v[...] = data["geo_v"]
            system.geo_optimizer.step_count = int(data["geo_steps"])
            system.host_non_geo[...] = data["host_non_geo"]
            system.host_optimizer.m[...] = data["host_m"]
            system.host_optimizer.v[...] = data["host_v"]
            system.host_optimizer.step_count = int(data["host_steps"])
            if system.deferred:
                system.host_optimizer.counter[...] = data["host_counter"]
        else:
            target = (
                system.params
                if isinstance(system, GPUOnlySystem)
                else system.host_params
            )
            target[...] = data["params"]
            system.optimizer.m[...] = data["m"]
            system.optimizer.v[...] = data["v"]
            system.optimizer.step_count = int(data["steps"])


def resume_model(path: str) -> GaussianModel:
    """Extract just the (committed) Gaussian model from a checkpoint."""
    with np.load(path, allow_pickle=False) as data:
        if "params" in data:
            return GaussianModel(data["params"].copy())
        params = np.empty(
            (data["device_geo"].shape[0], 59), dtype=data["device_geo"].dtype
        )
        params[:, :10] = data["device_geo"]
        params[:, 10:] = data["host_non_geo"]
        return GaussianModel(params)
