"""Training checkpoints: save and resume a system mid-run.

Long GS-Scale runs (30k iterations in the paper) need restartability. A
checkpoint captures, for every leaf parameter store of the system, the
committed parameter block, the optimizer moments, the deferred counters,
and the step counter — plus each store's column block and (for sharded
systems) its global row ids, so a packed model can be reassembled without
knowing the system's placement. Enough to resume training bit-exactly for
the dense systems and within the deferred approximation otherwise.

Out-of-core systems checkpoint without full materialization: ``finalize``
settles each shard one at a time under the resident-set budget, a spilled
:class:`~repro.core.stores.DiskStore` hands out its memory-mapped arrays
directly (so serialization streams from the spill files), and loading a
checkpoint into a spilled store writes straight back into the memmaps —
the resident working set never exceeds the budget on either path.
"""

from __future__ import annotations

import numpy as np

from ..gaussians import GaussianModel, layout
from .systems import TrainingSystem

_FORMAT_VERSION = 2


def _prefix(p: str) -> str:
    return f"{p}_" if p else ""


def save_checkpoint(path: str, system: TrainingSystem) -> None:
    """Serialize ``system`` to an ``.npz`` checkpoint.

    Pending forwarded gradients and deferred drift are committed first
    (the checkpoint always holds a consistent, committed state). Spilled
    stores contribute their memmap views, so the host working set stays
    within the system's resident-set budget while writing.
    """
    system.finalize()
    arrays: dict[str, np.ndarray] = {
        "version": np.array(_FORMAT_VERSION),
        "system": np.array(system.name),
        "iteration": np.array(system.iteration),
        "num_gaussians": np.array(system.num_gaussians),
    }
    for prefix, store, rows in system.checkpoint_entries():
        p = _prefix(prefix)
        for key, value in store.state_dict().items():
            arrays[p + key] = value
        arrays[p + "cols"] = np.array([store.block.start, store.block.stop])
        if rows is not None:
            arrays[p + "rows"] = rows
    np.savez_compressed(path, **arrays)


def load_checkpoint(path: str, system: TrainingSystem) -> None:
    """Restore a checkpoint into a freshly constructed ``system``.

    The system must have been created with the same configuration (system
    name, scene size, and — for sharded systems — shard layout) the
    checkpoint was saved from.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        saved_system = str(data["system"])
        if saved_system != system.name:
            raise ValueError(
                f"checkpoint is for system {saved_system!r}, got "
                f"{system.name!r}"
            )
        if int(data["num_gaussians"]) != system.num_gaussians:
            raise ValueError(
                f"checkpoint holds {int(data['num_gaussians'])} Gaussians, "
                f"system has {system.num_gaussians}"
            )
        system.iteration = int(data["iteration"])
        for prefix, store, rows in system.checkpoint_entries():
            p = _prefix(prefix)
            if rows is not None and not np.array_equal(data[p + "rows"], rows):
                raise ValueError(
                    f"shard layout of store {prefix!r} differs from the "
                    "checkpoint (was the model or num_shards changed?)"
                )
            state = {
                key: data[p + key]
                for key in ("params", "m", "v", "steps", "counter")
                if p + key in data
            }
            store.load_state_dict(state)


def resume_model(path: str) -> GaussianModel:
    """Extract just the (committed) Gaussian model from a checkpoint.

    Reassembles the packed ``(N, 59)`` matrix from every store's column
    block and row ids, independent of the placement that produced it.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        n = int(data["num_gaussians"])
        prefixes = [k[: -len("cols")] for k in data.files if k.endswith("cols")]
        dtype = data[prefixes[0] + "params"].dtype
        params = np.empty((n, layout.PARAM_DIM), dtype=dtype)
        for p in prefixes:
            start, stop = (int(c) for c in data[p + "cols"])
            block = data[p + "params"]
            if p + "rows" in data:
                params[data[p + "rows"], start:stop] = block
            else:
                params[:, start:stop] = block
        return GaussianModel(params)
