"""Storage integrity: sealed page headers, atomic writes, checksums.

Everything the out-of-core tiers persist — ``DiskStore`` spill pages,
sealed ``.pagez`` serving pages, checkpoints, patch manifests — passes
through this module so that (a) no reader ever consumes a torn or
bit-rotted file silently, and (b) no writer ever leaves a half-written
file at the final path.

Two complementary mechanisms:

* **Sealed pages.** Encoded page payloads are framed with a 16-byte
  header — magic ``GSP1``, payload length (u64), CRC32 (u32) — written
  by :func:`seal_page` and checked by :func:`unseal_page`. A length
  mismatch means a torn write; a CRC mismatch means bit rot. Raw memmap
  pages can't carry a header (their on-disk bytes *are* the array, and
  the byte-accounting ledger equates their disk and host sizes), so they
  get CRC *sidecars* (``<page>.crc``) or in-memory CRCs instead.
* **Atomic writes.** :func:`atomic_write_bytes` and
  :func:`atomic_savez` write to a temp file, fsync, then
  ``os.replace`` onto the destination — a crash leaves either the old
  file or the new one, never a hybrid. The fault-injection hooks
  (:func:`repro.faults.check_write_fault`) mangle the temp file just
  before the rename, which is exactly what a mid-write crash that the
  filesystem made durable looks like.

Corruption surfaces as :class:`CorruptPageError` /
:class:`CorruptCheckpointError` with the path and the expected/actual
sizes, so recovery code (checkpoint fallback, page quarantine) can route
on it instead of guessing at raw ``zipfile``/numpy errors.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from .. import faults

__all__ = [
    "CorruptCheckpointError",
    "CorruptPageError",
    "IntegrityError",
    "PAGE_MAGIC",
    "atomic_savez",
    "atomic_write_bytes",
    "checksum",
    "seal_page",
    "sidecar_path",
    "unseal_page",
    "verify_sidecar",
    "write_array_sidecar",
]

#: Magic prefix of a sealed page (GS-Scale Page v1).
PAGE_MAGIC = b"GSP1"

#: Header layout: magic (4s) + payload length (u64) + CRC32 (u32).
_HEADER = struct.Struct("<4sQI")


class IntegrityError(RuntimeError):
    """Base class for integrity failures detected on read."""


class CorruptPageError(IntegrityError):
    """A page file failed its header, length, or checksum validation."""

    def __init__(self, path: str, detail: str):
        self.path = path
        self.detail = detail
        super().__init__(f"corrupt page {path}: {detail}")


class CorruptCheckpointError(IntegrityError):
    """A checkpoint file is torn or unreadable.

    Attributes:
        path: checkpoint file.
        block: the ``.npz`` member that failed (empty = whole file).
        expected, actual: sizes in bytes where known (``None`` = unknown).
    """

    def __init__(
        self,
        path: str,
        detail: str = "",
        block: str = "",
        expected: int | None = None,
        actual: int | None = None,
    ):
        self.path = path
        self.block = block
        self.detail = detail
        self.expected = expected
        self.actual = actual
        parts = [f"corrupt checkpoint {path}"]
        if block:
            parts.append(f"block {block!r}")
        if expected is not None or actual is not None:
            parts.append(f"expected {expected} bytes, got {actual}")
        if detail:
            parts.append(detail)
        super().__init__(": ".join(parts))


def checksum(data) -> int:
    """CRC32 of ``data`` (bytes or any contiguous buffer, e.g. ndarray)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def seal_page(payload: bytes) -> bytes:
    """Frame an encoded page payload with the GSP1 integrity header."""
    return _HEADER.pack(PAGE_MAGIC, len(payload), checksum(payload)) + payload


def unseal_page(buf: bytes, path: str = "") -> bytes:
    """Validate and strip the GSP1 header, returning the payload.

    Raises :class:`CorruptPageError` on a short buffer, wrong magic,
    length mismatch (torn write), or CRC mismatch (bit rot).
    """
    if len(buf) < _HEADER.size:
        raise CorruptPageError(
            path, f"short page: {len(buf)} bytes < {_HEADER.size}-byte header"
        )
    magic, length, crc = _HEADER.unpack_from(buf)
    if magic != PAGE_MAGIC:
        raise CorruptPageError(path, f"bad magic {magic!r}")
    payload = buf[_HEADER.size:]
    if len(payload) != length:
        raise CorruptPageError(
            path,
            f"torn page: header promises {length} payload bytes, "
            f"got {len(payload)}",
        )
    actual = checksum(payload)
    if actual != crc:
        raise CorruptPageError(
            path, f"checksum mismatch: header {crc:#010x}, payload {actual:#010x}"
        )
    return payload


def _apply_file_fault(tmp_path: str, fault) -> None:
    """Mangle the temp file per an armed :class:`repro.faults.FileFault`."""
    if fault.kind == "torn":
        faults.truncate_file(tmp_path, fault.keep_fraction)
    else:
        faults.corrupt_file(tmp_path, fault.offset, fault.length)


def _fsync_dir(path: str) -> None:
    """Best-effort fsync of ``path``'s directory (rename durability)."""
    try:
        fd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` via temp-file + fsync + rename.

    A crash at any point leaves the previous contents of ``path`` (or no
    file) — never a partial write. Armed write faults tear/corrupt the
    temp file before the rename; a ``crash=True`` tear then raises
    :class:`repro.faults.InjectedFaultError` *after* the rename, so the
    torn bytes are durable exactly as if the process died mid-write.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    fault = faults.check_write_fault(path)
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        if fault is not None:
            _apply_file_fault(tmp, fault)
        os.replace(tmp, path)
        if fsync:
            _fsync_dir(path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    if fault is not None and fault.kind == "torn" and fault.crash:
        raise faults.InjectedFaultError(f"simulated crash tearing {path}")


def atomic_savez(path: str, arrays: dict, fsync: bool = True) -> str:
    """``np.savez_compressed`` with temp-file + fsync + rename semantics.

    Returns the final path (with ``.npz`` appended when missing, matching
    numpy's own behavior). Streams through the temp file rather than
    buffering the archive in memory.
    """
    import numpy as np

    if not path.endswith(".npz"):
        path = path + ".npz"
    tmp = f"{path}.tmp.{os.getpid()}"
    fault = faults.check_write_fault(path)
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        if fault is not None:
            _apply_file_fault(tmp, fault)
        os.replace(tmp, path)
        if fsync:
            _fsync_dir(path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    if fault is not None and fault.kind == "torn" and fault.crash:
        raise faults.InjectedFaultError(f"simulated crash tearing {path}")
    return path


def sidecar_path(path: str) -> str:
    """The CRC sidecar path guarding a raw (headerless) page file."""
    return path + ".crc"


def write_array_sidecar(path: str, arr) -> None:
    """Record ``arr``'s CRC and size in a sidecar next to ``path``.

    Raw memmap pages can't be framed with a header — their bytes are
    mapped directly and the ledger equates disk and host sizes — so the
    checksum rides alongside instead.
    """
    meta = {"crc": checksum(arr), "nbytes": int(arr.nbytes)}
    atomic_write_bytes(sidecar_path(path), json.dumps(meta).encode("ascii"))


def verify_sidecar(path: str, arr) -> None:
    """Check ``arr`` (read from ``path``) against its CRC sidecar.

    Missing sidecar = page predates integrity or was never sealed: no-op.
    An unreadable sidecar or any mismatch raises :class:`CorruptPageError`.
    """
    side = sidecar_path(path)
    if not os.path.exists(side):
        return
    try:
        with open(side, "rb") as fh:
            meta = json.loads(fh.read().decode("ascii"))
        crc, nbytes = int(meta["crc"]), int(meta["nbytes"])
    except (OSError, ValueError, KeyError) as exc:
        raise CorruptPageError(path, f"unreadable crc sidecar: {exc}") from exc
    if int(arr.nbytes) != nbytes:
        raise CorruptPageError(
            path, f"torn page: sidecar promises {nbytes} bytes, got {arr.nbytes}"
        )
    actual = checksum(arr)
    if actual != crc:
        raise CorruptPageError(
            path, f"checksum mismatch: sidecar {crc:#010x}, data {actual:#010x}"
        )
