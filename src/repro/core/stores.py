"""Composable parameter-placement stores.

The paper's contribution is a *placement policy* for the packed ``(N, 59)``
parameter matrix: which column block lives where, how rows reach the device
for a render, and when gradients are committed. This module factors that
policy out of the training systems into first-class stores, each owning

* its slice of the packed parameter matrix (a :class:`~repro.gaussians.\
layout.ColumnBlock`),
* its optimizer (dense or deferred Adam behind the
  :class:`~repro.optim.base.SparseOptimizer` surface),
* its :class:`~repro.sim.memory.MemoryTracker` charges (resident state and
  per-step staging windows), and
* its :class:`~repro.core.systems.TransferLedger` traffic.

A training step drives a store through four explicit operations::

    values = store.stage(ids)        # rows for the render (H2D for host rows)
    ...render / backward...
    store.unstage(ids)               # gradient return (D2H) + staging freed
    store.commit()                   # lazy commit of the previous step
    store.return_grads(ids, grads)   # hand this step's gradients over

plus ``materialize()`` for the mathematically current values and ``flush()``
to settle all lazy state. The four placements:

* :class:`DeviceStore` — rows resident on the device; gradients applied
  immediately; no PCIe traffic (the GPU-only system, and the geometric
  block under selective offloading).
* :class:`HostStore` — rows resident on the host; staging windows are
  charged to device memory and the ledger; with ``forwarding`` the staged
  values are optimizer peeks of the not-yet-committed update and gradients
  wait for the next ``commit()`` (Sections 4.2.2/4.3.3), otherwise the
  optimizer steps synchronously (the Section 4.1 baseline).
* :class:`DiskStore` — the out-of-core tier below :class:`HostStore`:
  parameters and optimizer moments live in memory-mapped spill files and
  only *paged-in* stores charge host DRAM; page traffic is metered on the
  ledger's disk channel and concurrent residency is bounded by a
  :class:`ResidentSet` (TideGS-style out-of-core blocks).
* :class:`HybridStore` — composition of child stores over disjoint column
  blocks presenting one packed surface (GS-Scale's device-geometric +
  host-non-geometric split; also each shard of the sharded system).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..gaussians import layout
from ..gaussians.layout import ColumnBlock
from ..optim.adam import DenseAdam
from ..optim.base import AdamConfig, SparseOptimizer
from ..optim.deferred import DeferredAdam
from ..sim.memory import MemoryTracker
from ..telemetry import metrics as _metrics
from ..telemetry import trace as _trace
from ..telemetry.trace import span as _span
from . import integrity as _integrity
from .integrity import CorruptPageError, atomic_write_bytes
from .pagecodec import get_page_codec

_F32 = 4  # accounting is in float32-equivalent bytes


class ParameterStore(ABC):
    """One placement of a column block of the packed parameter matrix."""

    #: the packed columns this store owns
    block: ColumnBlock

    @property
    def dim(self) -> int:
        """Number of columns owned by this store."""
        return self.block.dim

    @property
    @abstractmethod
    def num_rows(self) -> int:
        """Number of parameter rows (Gaussians) in the store."""

    # -- step-facing operations -------------------------------------------
    @abstractmethod
    def stage(self, ids: np.ndarray) -> np.ndarray:
        """Rows ``ids`` as the next render must see them.

        Host placements charge the staging window (parameters + the
        gradient buffer that will come back) to device memory and record
        the host-to-device transfer.
        """

    @abstractmethod
    def unstage(self, ids: np.ndarray, returned: bool = True) -> None:
        """Release the staging window of :meth:`stage`.

        ``returned`` records the device-to-host gradient transfer; pass
        ``False`` when unwinding from a failed render.
        """

    @abstractmethod
    def return_grads(self, ids: np.ndarray, grads: np.ndarray) -> None:
        """Hand one step's aggregated gradients to the placement policy.

        Device placements apply them immediately; forwarding host
        placements park them for the next :meth:`commit`. An empty ``ids``
        still ticks the optimizer (its step counter must advance every
        iteration).
        """

    @abstractmethod
    def commit(self) -> None:
        """Apply the lazy (parked) update of the previous step, if any."""

    @abstractmethod
    def flush(self) -> None:
        """Settle all lazy state: pending gradients and deferred drift."""

    @abstractmethod
    def materialize(self, ids: np.ndarray | None = None) -> np.ndarray:
        """Mathematically current values (copy), including lazy state."""

    # -- shared surface ----------------------------------------------------
    @property
    def dtype(self):
        """Floating dtype of the stored parameters."""
        return self.params.dtype

    @abstractmethod
    def set_lr(self, lr_packed: np.ndarray) -> None:
        """Update learning rates from a packed-layout ``(59,)`` vector."""

    def geometry(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resident ``(means, log_scales, quats)`` views for culling.

        Only available on stores whose block contains the geometric
        columns.
        """
        params = self._resident_params()
        return (
            params[:, self.block.local(layout.MEAN_SLICE)],
            params[:, self.block.local(layout.SCALE_SLICE)],
            params[:, self.block.local(layout.QUAT_SLICE)],
        )

    def _resident_params(self) -> np.ndarray:
        raise NotImplementedError(
            f"store over block {self.block.name!r} holds no resident rows"
        )

    def state_dict(self) -> dict[str, np.ndarray]:
        """Optimizer + parameter state for checkpointing."""
        raise NotImplementedError

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output into a same-shaped store."""
        raise NotImplementedError


def _leaf_state_dict(optimizer: SparseOptimizer) -> dict[str, np.ndarray]:
    state = {
        "params": optimizer.params,
        "m": optimizer.m,
        "v": optimizer.v,
        "steps": np.array(optimizer.step_count),
    }
    if isinstance(optimizer, DeferredAdam):
        state["counter"] = optimizer.counter
    return state


def _load_leaf_state(
    optimizer: SparseOptimizer, state: dict[str, np.ndarray]
) -> None:
    optimizer.params[...] = state["params"]
    optimizer.m[...] = state["m"]
    optimizer.v[...] = state["v"]
    optimizer.step_count = int(state["steps"])
    if isinstance(optimizer, DeferredAdam):
        optimizer.counter[...] = state["counter"]


class DeviceStore(ParameterStore):
    """Rows resident on the device with a dense optimizer.

    Charges parameters, gradients, and both Adam moments to the device
    tracker at construction; staging is free (device-to-device) and
    gradients are applied synchronously.

    Args:
        params_block: ``(N, dim)`` rows of the owned block (copied).
        block: the packed columns the rows correspond to.
        adam: optimizer hyperparameters with the block's lr slice.
        memory: device tracker charged for the resident state.
        label: memory-category prefix (``"geo"`` gives ``geo_params`` ...).
    """

    def __init__(
        self,
        params_block: np.ndarray,
        block: ColumnBlock,
        adam: AdamConfig,
        memory,
        label: str = "",
    ):
        self.block = block
        self.memory = memory
        self.params = params_block.copy()
        self.optimizer: SparseOptimizer = DenseAdam(self.params, adam)
        sep = "_" if label else ""
        self._categories = (
            f"{label}{sep}params",
            f"{label}{sep}grads",
            f"{label}{sep}opt_states",
        )
        state = layout.param_bytes(self.num_rows, self.dim)
        self.memory.allocate(self._categories[0], state)
        self.memory.allocate(self._categories[1], state)
        self.memory.allocate(self._categories[2], 2 * state)

    @property
    def num_rows(self) -> int:
        return self.params.shape[0]

    def stage(self, ids: np.ndarray) -> np.ndarray:
        return self.params[ids]

    def unstage(self, ids: np.ndarray, returned: bool = True) -> None:
        pass  # nothing was staged; gradients never leave the device

    def return_grads(self, ids: np.ndarray, grads: np.ndarray) -> None:
        self.optimizer.step_rows(ids, grads)

    def commit(self) -> None:
        pass  # updates are synchronous

    def flush(self) -> None:
        pass

    def materialize(self, ids: np.ndarray | None = None) -> np.ndarray:
        if ids is None:
            return self.params.copy()
        return self.params[ids]

    def set_lr(self, lr_packed: np.ndarray) -> None:
        self.optimizer.set_lr(lr_packed[self.block.sl])

    def _resident_params(self) -> np.ndarray:
        return self.params

    def state_dict(self) -> dict[str, np.ndarray]:
        return _leaf_state_dict(self.optimizer)

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        _load_leaf_state(self.optimizer, state)


class HostStore(ParameterStore):
    """Rows resident on the host; staged to the device per step.

    Args:
        params_block: ``(N, dim)`` rows of the owned block (copied).
        block: the packed columns the rows correspond to.
        adam: optimizer hyperparameters with the block's lr slice.
        memory: device tracker charged for the staging windows.
        ledger: transfer ledger recording the staging traffic.
        forwarding: stage optimizer *peeks* of the not-yet-committed
            update and park returned gradients until :meth:`commit`
            (parameter forwarding + lazy host commit). ``False`` stages
            raw rows and steps synchronously (the baseline).
        deferred: use :class:`DeferredAdam` (requires ``forwarding``).
        max_defer: deferred-counter saturation.
    """

    def __init__(
        self,
        params_block: np.ndarray,
        block: ColumnBlock,
        adam: AdamConfig,
        memory,
        ledger,
        forwarding: bool = False,
        deferred: bool = False,
        max_defer: int = 15,
    ):
        if deferred and not forwarding:
            raise ValueError("deferred updates require the forwarding pipeline")
        self.block = block
        self.memory = memory
        self.ledger = ledger
        self.forwarding = forwarding
        self.deferred = deferred
        self.params = params_block.copy()
        if deferred:
            self.optimizer: SparseOptimizer = DeferredAdam(
                self.params, adam, max_defer=max_defer
            )
        else:
            self.optimizer = DenseAdam(self.params, adam)
        self._pending_ids: np.ndarray | None = None
        self._pending_grads: np.ndarray | None = None

    @property
    def num_rows(self) -> int:
        return self.params.shape[0]

    def _staged_bytes(self, ids: np.ndarray) -> int:
        return ids.size * self.dim * _F32

    # -- parameter forwarding ---------------------------------------------
    def _forwarded_values(self, ids: np.ndarray) -> np.ndarray:
        """Pre-updated rows for the next render (Section 4.2.2 / 4.3.3):
        peek the post-commit values without mutating any host state."""
        if self._pending_ids is None:
            if self.deferred:
                return self.optimizer.materialized_params(ids)
            return self.params[ids]  # advanced indexing already copies
        # a pending step exists (possibly with zero rows of overlap, or —
        # for an inactive shard — zero rows at all): peek *through* it
        return self.optimizer.peek_updated(
            ids, self._scatter_pending(ids)
        )

    def _scatter_pending(self, ids: np.ndarray) -> np.ndarray:
        """Pending gradient rows aligned with ``ids`` (zeros elsewhere)."""
        pending_rows = np.zeros((ids.size, self.dim), dtype=self.params.dtype)
        if self._pending_ids.size and ids.size:
            pos = np.searchsorted(self._pending_ids, ids)
            pos = np.clip(pos, 0, self._pending_ids.size - 1)
            hit = self._pending_ids[pos] == ids
            pending_rows[hit] = self._pending_grads[pos[hit]]
        return pending_rows

    # -- step-facing operations -------------------------------------------
    def stage(self, ids: np.ndarray) -> np.ndarray:
        staged = self._staged_bytes(ids)
        self.memory.allocate("staged_params", staged)
        try:
            self.memory.allocate("staged_grads", staged)
        except MemoryError:
            # leave nothing charged when the window doesn't fit
            self.memory.free("staged_params", staged)
            raise
        self.ledger.record_h2d(staged)
        if self.forwarding:
            return self._forwarded_values(ids)
        return self.params[ids]  # advanced indexing already copies

    def unstage(self, ids: np.ndarray, returned: bool = True) -> None:
        staged = self._staged_bytes(ids)
        if returned:
            self.ledger.record_d2h(staged)
        self.memory.free("staged_params", staged)
        self.memory.free("staged_grads", staged)

    def return_grads(self, ids: np.ndarray, grads: np.ndarray) -> None:
        if self.forwarding:
            # the lazy host commit happens at the next step's commit()
            # (step 7 of Figure 8, overlapped with GPU work in real time);
            # an empty batch still pends so the optimizer ticks exactly
            # once per training step
            self._pending_ids = np.asarray(ids, dtype=np.int64)
            self._pending_grads = grads
        else:
            self.optimizer.step_rows(ids, grads)

    def commit(self) -> None:
        if self._pending_ids is None:
            return
        self.optimizer.step_rows(self._pending_ids, self._pending_grads)
        self._pending_ids = None
        self._pending_grads = None

    def flush(self) -> None:
        self.commit()
        if self.deferred:
            self.optimizer.flush()

    def materialize(self, ids: np.ndarray | None = None) -> np.ndarray:
        if self._pending_ids is not None:
            all_ids = np.arange(self.num_rows) if ids is None else ids
            return self.optimizer.peek_updated(
                all_ids, self._scatter_pending(all_ids)
            )
        if self.deferred:
            return self.optimizer.materialized_params(ids)
        if ids is None:
            return self.params.copy()
        return self.params[ids]

    def set_lr(self, lr_packed: np.ndarray) -> None:
        self.optimizer.set_lr(lr_packed[self.block.sl])

    def _resident_params(self) -> np.ndarray:
        return self.params

    def state_dict(self) -> dict[str, np.ndarray]:
        return _leaf_state_dict(self.optimizer)

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        _load_leaf_state(self.optimizer, state)


class ResidentSet:
    """LRU residency manager bounding concurrent :class:`DiskStore` page-ins.

    At most ``budget`` stores are paged in at once; admitting one more
    spills the least-recently-used resident store first, so the tracked
    host working set never exceeds the resident-set budget regardless of
    how many shards the out-of-core system ticks per step.
    """

    def __init__(self, budget: int):
        if budget < 1:
            raise ValueError("resident-set budget must be >= 1")
        self.budget = budget
        self._stores: list["DiskStore"] = []  # LRU order: oldest first

    @property
    def resident(self) -> tuple["DiskStore", ...]:
        """Currently paged-in stores, least recently used first."""
        return tuple(self._stores)

    def touch(self, store: "DiskStore") -> None:
        """Mark ``store`` most recently used."""
        if store in self._stores:
            self._stores.remove(store)
            self._stores.append(store)

    def admit(self, store: "DiskStore") -> None:
        """Make room for ``store`` (spilling LRU stores) and register it."""
        while len(self._stores) >= self.budget:
            self._stores[0].spill()  # spill() drops it from the set
        self._stores.append(store)

    def drop(self, store: "DiskStore") -> None:
        """Forget ``store`` (it spilled itself)."""
        if store in self._stores:
            self._stores.remove(store)


@dataclass
class PreloadedShard:
    """A :meth:`DiskStore.preload` snapshot: spill-file contents read into
    plain arrays off the training thread, plus the spill epoch they were
    read at (so :meth:`DiskStore.adopt` can reject torn snapshots).
    """

    arrays: dict[str, np.ndarray]
    epoch: int

    @property
    def nbytes(self) -> int:
        """Host bytes the staged snapshot occupies."""
        return sum(a.nbytes for a in self.arrays.values())


class _WriteBehindWriter:
    """Single background thread draining queued :class:`DiskStore` page-outs.

    With write-behind enabled, :meth:`DiskStore.spill` detaches the
    working set and enqueues ``(store, epoch)`` here instead of writing
    the spill files on the training thread — the admit path stops paying
    the write. Jobs run strictly in order; each one completes under the
    store's page lock and is fenced by the spill epoch, so a store that
    paged back in (cancelling its pending write) or spilled again before
    its job ran is simply skipped.

    ``drain()`` blocks until every queued write has landed — the fence
    :func:`~repro.core.checkpoint.save_checkpoint` relies on (via
    ``finalize()``) so a checkpoint never races a queued page-out, and
    the densification rebuild uses before discarding the old stores.
    """

    def __init__(self):
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._error: Exception | None = None
        self.jobs_written = 0
        self._thread = threading.Thread(
            target=self._run, name="gsscale-writeback", daemon=True
        )
        self._thread.start()

    def enqueue(self, store: "DiskStore", epoch: int) -> None:
        """Queue the store's pending page-out (tagged with its epoch)."""
        self._queue.put((store, epoch))

    def drain(self) -> None:
        """Block until every queued write has been applied or skipped."""
        self._queue.join()
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def close(self) -> None:
        """Drain outstanding writes and stop the thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join()
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            try:
                if job is None:
                    return
                store, epoch = job
                _trace.name_current_thread("gsscale-writeback")
                with _span("page/writeback", "page"):
                    store._complete_pending_write(epoch)
                self.jobs_written += 1
            except Exception as exc:  # surfaced by the next drain()/close()
                self._error = exc
            finally:
                self._queue.task_done()


class DiskStore(HostStore):
    """Out-of-core host rows: state spills to memory-mapped files.

    Behaves exactly like a :class:`HostStore` while *resident* (paged in);
    :meth:`spill` writes parameters and both Adam moments to float files
    under ``spill_path`` and releases the in-memory arrays, so a spilled
    store charges nothing to the host tracker. Page-ins/outs are metered on
    the transfer ledger's disk channel (``record_page_in`` /
    ``record_page_out``). Placement never changes numerics: a
    spill/page-in roundtrip is bit-exact, and every operation that needs
    the arrays pages in on demand (admitting through the optional
    :class:`ResidentSet`, which bounds concurrent residency).

    Three pieces of state never spill, keeping a spilled store cheap to
    drive once per step:

    * the deferred counters (1 byte/row, charged to the host tracker at
      construction) — so an empty ``commit()`` tick with no saturated row
      is metadata-only and touches no spilled array (this is the paper's
      deferred update making out-of-core placement affordable: an
      inactive shard pages in only every ``max_defer`` steps);
    * pending forwarded gradients (transient, at most one step's batch);
    * a stashed learning-rate vector, applied at the next page-in.

    Args:
        params_block: ``(N, dim)`` rows of the owned block (copied).
        block: the packed columns the rows correspond to.
        adam: optimizer hyperparameters with the block's lr slice.
        memory: *device* tracker charged for staging windows (as HostStore).
        ledger: transfer ledger for staging and page traffic.
        spill_path: filename prefix of the memory-mapped spill files.
        host_memory: *host* tracker charged for the resident working set
            (fresh untracked one when omitted).
        resident_set: optional shared residency budget.
        forwarding / deferred / max_defer: as :class:`HostStore`.
        codec: page codec name (``raw``/``float16``/``lossless``). ``raw``
            keeps the memory-mapped spill files; other codecs store each
            field as one encoded page file (``{spill_path}.{field}.{codec}
            .pagez``), decoded on page-in. The ledger's disk channel then
            meters encoded bytes alongside the fp32-equivalent ones.
        writer: optional :class:`_WriteBehindWriter`. When set, spills
            detach the working set and queue the file write behind the
            training thread (write-behind spilling); a page-in before the
            write lands re-adopts the detached arrays and cancels it.
        integrity: verify page integrity on every page-in. Encoded pages
            get the sealed GSP1 header (length + CRC32) and atomic
            temp-fsync-rename writes; raw memmap pages — whose on-disk
            bytes must stay exactly the array (the ledger equates their
            disk and host sizes) — are checked against an in-memory CRC
            taken at spill time. A failed check raises
            :class:`~repro.core.integrity.CorruptPageError` naming the
            file instead of feeding garbage into the step.
    """

    def __init__(
        self,
        params_block: np.ndarray,
        block: ColumnBlock,
        adam: AdamConfig,
        memory,
        ledger,
        spill_path: str,
        host_memory: MemoryTracker | None = None,
        resident_set: ResidentSet | None = None,
        forwarding: bool = False,
        deferred: bool = False,
        max_defer: int = 15,
        codec: str = "raw",
        writer: "_WriteBehindWriter | None" = None,
        integrity: bool = True,
    ):
        super().__init__(
            params_block, block, adam, memory, ledger,
            forwarding=forwarding, deferred=deferred, max_defer=max_defer,
        )
        self._n, self._d = self.params.shape
        self._dtype = self.params.dtype
        self.spill_path = spill_path
        self.codec = get_page_codec(codec)
        self.integrity = integrity
        self._page_crc: dict[str, int] = {}
        self.writer = writer
        self.host_memory = host_memory if host_memory is not None else MemoryTracker()
        self.resident_set = resident_set
        self._stashed_lr: np.ndarray | None = None
        # paging is thread-safe: the async prefetch leg snapshots spill
        # files from a background thread while the training thread spills
        # and pages in; the epoch counter invalidates stale snapshots
        self._page_lock = threading.RLock()
        self._spill_epoch = 0
        # write-behind state: arrays detached by the last spill (plus
        # their encoded pages) until the background writer lands them
        self._pending_write: dict[str, np.ndarray] | None = None
        self._pending_encoded: dict[str, bytes] | None = None
        # deterministic admit-path counters: bytes the training thread
        # wrote synchronously at spill (write-behind keeps this at zero),
        # plus informational wall-clock for the paging micro-bench
        self.sync_spill_bytes = 0
        self.sync_spill_s = 0.0
        self.page_in_s = 0.0
        parent = os.path.dirname(spill_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if self.codec.name == "raw":
            self._mm = {
                field: np.memmap(
                    f"{spill_path}.{field}.dat",
                    dtype=self._dtype, mode="w+", shape=(self._n, self._d),
                )
                for field in ("params", "m", "v")
            }
            self._page_files = None
        else:
            # encoded pages are whole-file reads/writes, not memmaps
            self._mm = None
            self._page_files = {
                field: f"{spill_path}.{field}.{self.codec.name}.pagez"
                for field in ("params", "m", "v")
            }
        self._disk_nbytes: dict[str, int] = {}
        if deferred:
            # counters stay in host memory for the store's whole life
            self.host_memory.allocate("host_defer_counters", self._n)
        self._resident = True
        if self.resident_set is not None:
            self.resident_set.admit(self)
        self.host_memory.allocate("host_resident_state", self._state_bytes())

    # -- paging ------------------------------------------------------------
    @property
    def is_resident(self) -> bool:
        """Whether the parameter/moment arrays are paged into host memory."""
        return self._resident

    @property
    def num_rows(self) -> int:
        return self._n

    @property
    def dtype(self):
        return self._dtype

    def _state_bytes(self) -> int:
        """fp32-equivalent bytes of the pageable state (params + m + v)."""
        return 3 * layout.param_bytes(self._n, self._d)

    def _disk_bytes(self) -> int:
        """Bytes the pageable state occupies *on disk* (post-codec)."""
        if self.codec.name == "raw" or not self._disk_nbytes:
            return self._state_bytes()
        return sum(self._disk_nbytes.values())

    # -- page files (codec-aware) ------------------------------------------
    def _encode_pages(self, arrays: dict[str, np.ndarray]) -> dict[str, bytes]:
        if self.integrity:
            encoded = {
                f: self.codec.encode_page(arrays[f]) for f in ("params", "m", "v")
            }
        else:
            encoded = {
                f: self.codec.encode(arrays[f]) for f in ("params", "m", "v")
            }
        self._disk_nbytes = {f: len(buf) for f, buf in encoded.items()}
        return encoded

    def _write_pages(
        self,
        arrays: dict[str, np.ndarray],
        encoded: dict[str, bytes] | None = None,
    ) -> None:
        """Persist the working set to the spill files (raw or encoded)."""
        if self.codec.name == "raw":
            for field in ("params", "m", "v"):
                self._mm[field][...] = arrays[field]
            for mm in self._mm.values():
                mm.flush()
            if self.integrity:
                self._page_crc = {
                    f: _integrity.checksum(np.ascontiguousarray(arrays[f]))
                    for f in ("params", "m", "v")
                }
            return
        if encoded is None:
            encoded = self._encode_pages(arrays)
        for field, buf in encoded.items():
            if self.integrity:
                atomic_write_bytes(self._page_files[field], buf, fsync=False)
            else:
                with open(self._page_files[field], "wb") as fh:
                    fh.write(buf)

    def _read_pages(self) -> dict[str, np.ndarray]:
        """Read + decode the spill files into fresh writable arrays.

        With integrity enabled, a torn or bit-rotted page raises
        :class:`~repro.core.integrity.CorruptPageError` naming the file.
        """
        if self.codec.name == "raw":
            arrays = {f: np.array(self._mm[f]) for f in ("params", "m", "v")}
            if self.integrity and self._page_crc:
                for field, arr in arrays.items():
                    actual = _integrity.checksum(arr)
                    if actual != self._page_crc[field]:
                        raise CorruptPageError(
                            f"{self.spill_path}.{field}.dat",
                            f"checksum mismatch: spill recorded "
                            f"{self._page_crc[field]:#010x}, read {actual:#010x}",
                        )
            return arrays
        arrays = {}
        for field, path in self._page_files.items():
            with open(path, "rb") as fh:
                buf = fh.read()
            if self.integrity:
                arrays[field] = self.codec.decode_page(
                    buf, (self._n, self._d), self._dtype, path=path
                )
            else:
                arrays[field] = self.codec.decode(
                    buf, (self._n, self._d), self._dtype
                )
        return arrays

    def spill(self) -> None:
        """Page the working set out to the spill files (no-op if spilled).

        Pending forwarded gradients and deferred counters are retained in
        memory; everything else round-trips through the spill files —
        bit-exactly under the ``raw``/``lossless`` codecs. With a
        write-behind writer attached, the working set is detached and the
        file write queued behind the training thread (the codec encode,
        which fixes the on-disk byte count the ledger records, still runs
        here); without one the write is synchronous and counted in
        ``sync_spill_bytes``.
        """
        with self._page_lock:
            if not self._resident:
                return
            opt = self.optimizer
            arrays = {"params": opt.params, "m": opt.m, "v": opt.v}
            if self.writer is not None:
                self._pending_write = arrays
                self._pending_encoded = (
                    None if self.codec.name == "raw"
                    else self._encode_pages(arrays)
                )
            else:
                t0 = time.perf_counter()
                self._write_pages(arrays)
                t1 = time.perf_counter()
                self.sync_spill_s += t1 - t0
                self.sync_spill_bytes += self._state_bytes()
                if _trace.enabled():
                    _trace.get_tracer().record(
                        "page/out", t0, t1, cat="page",
                        attrs={"bytes": self._state_bytes()},
                    )
                    _metrics.get_registry().histogram(
                        "page_out_seconds", store="disk"
                    ).observe(t1 - t0)
            opt.params = opt.m = opt.v = None
            self.params = None
            self._resident = False
            self._spill_epoch += 1
            if self.resident_set is not None:
                self.resident_set.drop(self)
            self.host_memory.free("host_resident_state", self._state_bytes())
            self.ledger.record_page_out(self._state_bytes(), self._disk_bytes())
            if self.writer is not None:
                self.writer.enqueue(self, self._spill_epoch)

    def _complete_pending_write(self, epoch: int) -> None:
        """Land a queued write-behind page-out (writer thread).

        Skipped when the store paged back in (pending cancelled) or
        spilled again (newer job queued) since the job was enqueued.
        """
        with self._page_lock:
            if self._pending_write is None or epoch != self._spill_epoch:
                return
            self._write_pages(self._pending_write, self._pending_encoded)
            self._pending_write = None
            self._pending_encoded = None

    def _install(self, arrays: dict[str, np.ndarray]) -> None:
        """Adopt ``arrays`` as the paged-in working set (lock held,
        spilled). The single page-in path: accounting and the ledger's
        disk channel see one record whether the bytes came from a
        synchronous read or an async preload. Becoming resident cancels
        any queued write-behind page-out — the on-disk page would be
        stale the moment training mutates the arrays."""
        if self.resident_set is not None:
            self.resident_set.admit(self)
        opt = self.optimizer
        opt.params = self.params = arrays["params"]
        opt.m = arrays["m"]
        opt.v = arrays["v"]
        self._resident = True
        self._pending_write = None
        self._pending_encoded = None
        if self._stashed_lr is not None:
            opt.set_lr(self._stashed_lr)
            self._stashed_lr = None
        self.host_memory.allocate("host_resident_state", self._state_bytes())
        self.ledger.record_page_in(self._state_bytes(), self._disk_bytes())

    def page_in(self) -> None:
        """Page the working set back in (admitting through the budget)."""
        with self._page_lock:
            if self._resident:
                if self.resident_set is not None:
                    self.resident_set.touch(self)
                return
            if self._pending_write is not None:
                # the queued page-out never landed: re-adopt the detached
                # arrays (free) and cancel the write
                self._install(self._pending_write)
                return
            t0 = time.perf_counter()
            arrays = self._read_pages()
            t1 = time.perf_counter()
            self.page_in_s += t1 - t0
            if _trace.enabled():
                _trace.get_tracer().record(
                    "page/in", t0, t1, cat="page",
                    attrs={"bytes": self._state_bytes()},
                )
                _metrics.get_registry().histogram(
                    "page_in_seconds", store="disk"
                ).observe(t1 - t0)
            self._install(arrays)

    def preload(self) -> PreloadedShard | None:
        """Snapshot the spill files into plain arrays, mutating nothing.

        The async prefetch leg calls this from a background thread while
        the training thread renders; the snapshot is handed back to
        :meth:`adopt` on the training thread. Returns ``None`` when the
        store is already resident. A spill racing the read leaves a torn
        snapshot — the epoch check in :meth:`adopt` discards it. A queued
        write-behind page-out short-circuits the read: the detached
        arrays *are* the page.
        """
        with self._page_lock:
            if self._resident:
                return None
            epoch = self._spill_epoch
            if self._pending_write is not None:
                return PreloadedShard(
                    arrays=dict(self._pending_write), epoch=epoch
                )
        # read outside the lock: this is the I/O being overlapped; a torn
        # encoded page (concurrent write) can fail to decode outright,
        # which is the same stale-snapshot case the epoch check covers
        try:
            arrays = self._read_pages()
        except Exception:
            return None
        return PreloadedShard(arrays=arrays, epoch=epoch)

    def adopt(self, pre: PreloadedShard) -> bool:
        """Install a :meth:`preload` snapshot as the working set.

        Exactly :meth:`page_in` minus the disk read. Returns ``False`` —
        and installs nothing — when the store paged in or spilled since
        the snapshot was taken (the snapshot may be stale or torn); the
        caller falls back to a synchronous :meth:`page_in`.
        """
        with self._page_lock:
            if self._resident or pre.epoch != self._spill_epoch:
                return False
            self._install(pre.arrays)
            return True

    # -- step-facing operations (page in on demand) ------------------------
    def stage(self, ids: np.ndarray) -> np.ndarray:
        self.page_in()
        return super().stage(ids)

    def return_grads(self, ids: np.ndarray, grads: np.ndarray) -> None:
        if not self.forwarding:
            self.page_in()  # synchronous step touches the arrays
        super().return_grads(ids, grads)

    def commit(self) -> None:
        if self._pending_ids is None:
            return
        if (
            not self._resident
            and self.deferred
            and self._pending_ids.size == 0
            and not (self.optimizer.counter >= self.optimizer.max_defer).any()
        ):
            # metadata-only tick, identical to DeferredAdam.step_rows with
            # an empty batch and no saturated counter: no array is touched,
            # so the shard stays spilled
            self.optimizer.step_count += 1
            self.optimizer.counter += 1
            self._pending_ids = None
            self._pending_grads = None
            return
        self.page_in()
        super().commit()

    def flush(self) -> None:
        if (
            not self._resident
            and self._pending_ids is None
            and (not self.deferred or not self.optimizer.counter.any())
        ):
            return  # nothing lazy: flushing would be the identity
        self.page_in()
        super().flush()

    def materialize(self, ids: np.ndarray | None = None) -> np.ndarray:
        self.page_in()
        return super().materialize(ids)

    def set_lr(self, lr_packed: np.ndarray) -> None:
        if not self._resident:
            # applied at the next page-in, before any math runs — the lazy
            # commit already uses commit-time rates, so this changes nothing
            self._stashed_lr = np.array(lr_packed[self.block.sl])
            return
        super().set_lr(lr_packed)

    def _resident_params(self) -> np.ndarray:
        self.page_in()
        return self.params

    # -- checkpointing (works from spilled state) --------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        with self._page_lock:
            if self._resident:
                return super().state_dict()
            if self._pending_write is not None:
                # a queued write-behind page-out: the detached arrays are
                # the authoritative state (the file may not exist yet)
                state = dict(self._pending_write)
            elif self.codec.name == "raw":
                # hand out the memmap views so a checkpoint can serialize
                # the store without materializing it in host memory
                state = {f: self._mm[f] for f in ("params", "m", "v")}
            else:
                # spilled compressed pages checkpoint in their storage
                # dtype (float16 blocks for the float16 codec) — the lazy
                # CheckpointReader reassembles mixed-dtype blocks
                storage = self.codec.storage_dtype or self._dtype
                pages = {}
                for field, path in self._page_files.items():
                    with open(path, "rb") as fh:
                        buf = fh.read()
                    if self.integrity:
                        pages[field] = self.codec.decode_page(
                            buf, (self._n, self._d), storage, path=path
                        )
                    else:
                        pages[field] = self.codec.decode(
                            buf, (self._n, self._d), storage
                        )
                state = pages
            state["steps"] = np.array(self.optimizer.step_count)
            if self.deferred:
                state["counter"] = self.optimizer.counter
            return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        with self._page_lock:
            if self._resident:
                super().load_state_dict(state)
                return
            # the incoming state supersedes any queued page-out
            self._pending_write = None
            self._pending_encoded = None
            self._write_pages({
                field: np.asarray(state[field], dtype=self._dtype)
                for field in ("params", "m", "v")
            })
            # the spill files changed under any outstanding preload
            # snapshot: bump the epoch so adopt() rejects it
            self._spill_epoch += 1
            self.optimizer.step_count = int(state["steps"])
            if self.deferred:
                self.optimizer.counter[...] = state["counter"]


class HybridStore(ParameterStore):
    """Composition of child stores over disjoint column blocks.

    Presents the union of the children's columns as one packed surface:
    ``stage`` assembles full rows from every child, ``return_grads`` splits
    the gradient columns back. Children are driven in construction order
    (the device-geometric child first mirrors GS-Scale's step 4-then-7
    ordering).
    """

    def __init__(self, children: list[ParameterStore]):
        if not children:
            raise ValueError("HybridStore needs at least one child store")
        rows = {c.num_rows for c in children}
        if len(rows) != 1:
            raise ValueError(f"children disagree on row count: {rows}")
        # blocks must tile a contiguous range: a gap would leave
        # uninitialized columns in every stage()/materialize() output
        for prev, nxt in zip(children, children[1:]):
            if nxt.block.start != prev.block.stop:
                raise ValueError(
                    f"child blocks must be ordered and contiguous; "
                    f"{prev.block.name!r} ends at {prev.block.stop} but "
                    f"{nxt.block.name!r} starts at {nxt.block.start}"
                )
        self.children = list(children)
        self.block = ColumnBlock(
            "+".join(c.block.name for c in children),
            children[0].block.start,
            children[-1].block.stop,
        )

    def _local(self, child: ParameterStore) -> slice:
        return self.block.local(child.block.sl)

    @property
    def num_rows(self) -> int:
        return self.children[0].num_rows

    @property
    def dtype(self):
        return self.children[0].dtype

    def stage(self, ids: np.ndarray) -> np.ndarray:
        out = np.empty((ids.size, self.dim), dtype=self.dtype)
        staged: list[ParameterStore] = []
        try:
            for child in self.children:
                out[:, self._local(child)] = child.stage(ids)
                staged.append(child)
        except Exception:
            # unwind partial staging so an OOM leaves nothing charged
            for child in reversed(staged):
                child.unstage(ids, returned=False)
            raise
        return out

    def unstage(self, ids: np.ndarray, returned: bool = True) -> None:
        for child in self.children:
            child.unstage(ids, returned=returned)

    def return_grads(self, ids: np.ndarray, grads: np.ndarray) -> None:
        for child in self.children:
            child.return_grads(ids, grads[:, self._local(child)])

    def commit(self) -> None:
        for child in self.children:
            child.commit()

    def flush(self) -> None:
        for child in self.children:
            child.flush()

    def materialize(self, ids: np.ndarray | None = None) -> np.ndarray:
        n = self.num_rows if ids is None else ids.size
        out = np.empty((n, self.dim), dtype=self.dtype)
        for child in self.children:
            out[:, self._local(child)] = child.materialize(ids)
        return out

    def set_lr(self, lr_packed: np.ndarray) -> None:
        for child in self.children:
            child.set_lr(lr_packed)

    def geometry(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        for child in self.children:
            if child.block.contains(layout.MEAN_SLICE):
                return child.geometry()
        raise NotImplementedError("no child owns the geometric columns")

    def state_dict(self) -> dict[str, np.ndarray]:
        return {
            f"{child.block.name}/{key}": value
            for child in self.children
            for key, value in child.state_dict().items()
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for child in self.children:
            prefix = f"{child.block.name}/"
            child.load_state_dict({
                key[len(prefix):]: value
                for key, value in state.items()
                if key.startswith(prefix)
            })


class ShardedStore(ParameterStore):
    """Row-wise composition: K disjoint shards, each backed by its own store.

    The row-space analogue of :class:`HybridStore`: every shard owns a
    sorted array of global Gaussian ids (a spatial partition from
    :func:`repro.core.splitting.spatial_partition`) and a store — in the
    sharded GS-Scale system a :class:`HybridStore` with its own device
    tracker and transfer ledger, modeling one GPU per shard.

    ``stage``/``unstage`` touch only the shards with visible members
    (per-view shard activation: an out-of-frustum shard costs no staging
    memory and no PCIe traffic). ``return_grads`` always visits every
    shard — inactive shards receive an empty batch so each shard's
    optimizer ticks exactly once per training step, keeping per-row
    trajectories identical to the unsharded system.
    """

    def __init__(
        self, shard_rows: list[np.ndarray], stores: list[ParameterStore]
    ):
        if len(shard_rows) != len(stores) or not stores:
            raise ValueError("need one store per (non-empty list of) shard")
        for rows, store in zip(shard_rows, stores):
            if rows.size != store.num_rows:
                raise ValueError("shard row count disagrees with its store")
        self.shard_rows = [np.asarray(r, dtype=np.int64) for r in shard_rows]
        self.stores = list(stores)
        self.block = stores[0].block
        self._num_rows = int(sum(r.size for r in self.shard_rows))

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def dtype(self):
        return self.stores[0].dtype

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.stores)

    def _members(self, ids: np.ndarray, rows: np.ndarray):
        """``(sel, local)``: positions within ``ids`` of this shard's
        members, and their shard-local row indices."""
        if rows.size == 0 or ids.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        pos = np.searchsorted(rows, ids)
        pos = np.clip(pos, 0, rows.size - 1)
        hit = rows[pos] == ids
        sel = np.nonzero(hit)[0]
        return sel, pos[sel]

    def stage(self, ids: np.ndarray) -> np.ndarray:
        out = np.empty((ids.size, self.dim), dtype=self.dtype)
        staged: list[tuple[ParameterStore, np.ndarray]] = []
        try:
            for rows, store in zip(self.shard_rows, self.stores):
                sel, local = self._members(ids, rows)
                if sel.size:
                    out[sel] = store.stage(local)
                    staged.append((store, local))
        except Exception:
            # unwind the shards already staged (per-shard OOM mid-step)
            for store, local in reversed(staged):
                store.unstage(local, returned=False)
            raise
        return out

    def unstage(self, ids: np.ndarray, returned: bool = True) -> None:
        for rows, store in zip(self.shard_rows, self.stores):
            _, local = self._members(ids, rows)
            if local.size:
                store.unstage(local, returned=returned)

    def return_grads(self, ids: np.ndarray, grads: np.ndarray) -> None:
        for rows, store in zip(self.shard_rows, self.stores):
            sel, local = self._members(ids, rows)
            store.return_grads(local, grads[sel])

    def commit(self) -> None:
        for store in self.stores:
            store.commit()

    def flush(self) -> None:
        for store in self.stores:
            store.flush()

    def materialize(self, ids: np.ndarray | None = None) -> np.ndarray:
        if ids is None:
            out = np.empty((self.num_rows, self.dim), dtype=self.dtype)
            for rows, store in zip(self.shard_rows, self.stores):
                out[rows] = store.materialize()
            return out
        out = np.empty((ids.size, self.dim), dtype=self.dtype)
        for rows, store in zip(self.shard_rows, self.stores):
            sel, local = self._members(ids, rows)
            if sel.size:
                out[sel] = store.materialize(local)
        return out

    def set_lr(self, lr_packed: np.ndarray) -> None:
        for store in self.stores:
            store.set_lr(lr_packed)

    def geometry(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        raise NotImplementedError(
            "sharded geometry is distributed; cull per shard instead"
        )

    def state_dict(self) -> dict[str, np.ndarray]:
        return {
            f"shard{k}/{key}": value
            for k, store in enumerate(self.stores)
            for key, value in store.state_dict().items()
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for k, store in enumerate(self.stores):
            prefix = f"shard{k}/"
            store.load_state_dict({
                key[len(prefix):]: value
                for key, value in state.items()
                if key.startswith(prefix)
            })
