"""Balance-aware splitting: image regions (Section 4.4) and Gaussian shards.

Two partitioning problems share the same balance philosophy:

* **Image splitting** — when the most demanding training view would stage
  more than ``mem_limit`` of all Gaussians, the image is partitioned into
  two vertical sub-regions processed back-to-back, halving peak staging
  memory. A naive midpoint split leaves the halves unbalanced (Gaussian
  density varies across the image), so the split column is found once per
  view by a 5-step binary search that equalizes per-side visible counts.
  :func:`find_balanced_split_by` accepts an arbitrary visible-count
  callback so the search also runs over a sharded scene whose geometry is
  spread across devices.

* **Spatial sharding** — :func:`spatial_partition` splits the Gaussian set
  itself into K spatially coherent, population-balanced shards (recursive
  median cuts along the widest axis, the Grendel/TideGS recipe), which the
  sharded multi-device system assigns one store each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..cameras.camera import Camera
from ..render import frustum_cull

#: Binary-search iterations for the split point (the paper uses 5 and
#: reports an average balance of 0.551 : 0.449).
SPLIT_SEARCH_STEPS = 5


@dataclass(frozen=True)
class ImageSplit:
    """A vertical two-way partition of a training view.

    Attributes:
        split_x: first column of the right region.
        left: camera rendering columns ``[0, split_x)``.
        right: camera rendering columns ``[split_x, width)``.
        balance: fraction of visible Gaussians in the left region.
    """

    split_x: int
    left: Camera
    right: Camera
    balance: float

    @property
    def regions(self) -> tuple[tuple[Camera, int], tuple[Camera, int]]:
        """``(camera, x_offset)`` pairs for both regions."""
        return ((self.left, 0), (self.right, self.split_x))


def count_visible(
    means: np.ndarray, log_scales: np.ndarray, quats: np.ndarray, camera: Camera
) -> int:
    """Visible-Gaussian count for a (possibly cropped) camera."""
    return frustum_cull(means, log_scales, quats, camera).num_visible


def find_balanced_split_by(
    count_fn: Callable[[Camera], int],
    camera: Camera,
    steps: int = SPLIT_SEARCH_STEPS,
) -> ImageSplit:
    """Find a near-balanced vertical split using a visible-count callback.

    ``count_fn`` maps a (cropped) camera to its visible-Gaussian count.
    The single-device systems pass a closure over the resident geometric
    block; the sharded system passes one summing per-shard frustum culls,
    which yields an identical search trajectory (counts are additive over
    a partition of the scene).
    """
    width = camera.width
    lo, hi = 0, width
    split = width // 2
    for _ in range(steps):
        n_left = count_fn(camera.crop(0, max(split, 1)))
        n_right = count_fn(camera.crop(min(split, width - 1), width))
        if n_left > n_right:
            hi = split
        else:
            lo = split
        split = (lo + hi) // 2
    split = int(np.clip(split, 1, width - 1))
    left_cam = camera.crop(0, split)
    right_cam = camera.crop(split, width)
    n_left = count_fn(left_cam)
    n_right = count_fn(right_cam)
    total = max(n_left + n_right, 1)
    return ImageSplit(
        split_x=split, left=left_cam, right=right_cam, balance=n_left / total
    )


def find_balanced_split(
    means: np.ndarray,
    log_scales: np.ndarray,
    quats: np.ndarray,
    camera: Camera,
    steps: int = SPLIT_SEARCH_STEPS,
) -> ImageSplit:
    """Find a near-balanced vertical split of ``camera``'s image.

    Starts at the midpoint and moves toward the less populated side by
    halving intervals, ``steps`` times (Section 4.4). Only geometric
    attributes are consulted, so this runs on the GPU-resident block under
    selective offloading.
    """
    return find_balanced_split_by(
        lambda cam: count_visible(means, log_scales, quats, cam),
        camera,
        steps=steps,
    )


def spatial_partition(means: np.ndarray, num_shards: int) -> list[np.ndarray]:
    """Partition Gaussians into ``num_shards`` spatially coherent shards.

    Repeatedly splits the most populated shard at the median of its widest
    world-space axis (recursive balanced k-d cuts — the spatial sharding
    used by Grendel's Gaussian distribution and TideGS's out-of-core
    blocks). Returns sorted, disjoint global index arrays covering every
    Gaussian; deterministic for a given input.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    n = means.shape[0]
    parts: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    while len(parts) < num_shards:
        widest = int(np.argmax([p.size for p in parts]))
        ids = parts[widest]
        if ids.size < 2:
            break  # more shards than Gaussians: leave the rest empty
        pts = means[ids]
        axis = int(np.argmax(np.ptp(pts, axis=0)))
        order = np.argsort(pts[:, axis], kind="stable")
        half = ids.size // 2
        left = np.sort(ids[order[:half]])
        right = np.sort(ids[order[half:]])
        parts[widest : widest + 1] = [left, right]
    while len(parts) < num_shards:
        parts.append(np.empty(0, dtype=np.int64))
    return parts
