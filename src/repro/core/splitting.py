"""Balance-aware image splitting (Section 4.4).

When the most demanding training view would stage more than ``mem_limit``
of all Gaussians, the image is partitioned into two vertical sub-regions
processed back-to-back, halving peak staging memory. A naive midpoint split
leaves the halves unbalanced (Gaussian density varies across the image), so
the split column is found once per view by a 5-step binary search that
equalizes per-side visible counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cameras.camera import Camera
from ..render import frustum_cull

#: Binary-search iterations for the split point (the paper uses 5 and
#: reports an average balance of 0.551 : 0.449).
SPLIT_SEARCH_STEPS = 5


@dataclass(frozen=True)
class ImageSplit:
    """A vertical two-way partition of a training view.

    Attributes:
        split_x: first column of the right region.
        left: camera rendering columns ``[0, split_x)``.
        right: camera rendering columns ``[split_x, width)``.
        balance: fraction of visible Gaussians in the left region.
    """

    split_x: int
    left: Camera
    right: Camera
    balance: float

    @property
    def regions(self) -> tuple[tuple[Camera, int], tuple[Camera, int]]:
        """``(camera, x_offset)`` pairs for both regions."""
        return ((self.left, 0), (self.right, self.split_x))


def count_visible(
    means: np.ndarray, log_scales: np.ndarray, quats: np.ndarray, camera: Camera
) -> int:
    """Visible-Gaussian count for a (possibly cropped) camera."""
    return frustum_cull(means, log_scales, quats, camera).num_visible


def find_balanced_split(
    means: np.ndarray,
    log_scales: np.ndarray,
    quats: np.ndarray,
    camera: Camera,
    steps: int = SPLIT_SEARCH_STEPS,
) -> ImageSplit:
    """Find a near-balanced vertical split of ``camera``'s image.

    Starts at the midpoint and moves toward the less populated side by
    halving intervals, ``steps`` times (Section 4.4). Only geometric
    attributes are consulted, so this runs on the GPU-resident block under
    selective offloading.
    """
    width = camera.width
    lo, hi = 0, width
    split = width // 2
    for _ in range(steps):
        left_cam = camera.crop(0, max(split, 1))
        right_cam = camera.crop(min(split, width - 1), width)
        n_left = count_visible(means, log_scales, quats, left_cam)
        n_right = count_visible(means, log_scales, quats, right_cam)
        if n_left > n_right:
            hi = split
        else:
            lo = split
        split = (lo + hi) // 2
    split = int(np.clip(split, 1, width - 1))
    left_cam = camera.crop(0, split)
    right_cam = camera.crop(split, width)
    n_left = count_visible(means, log_scales, quats, left_cam)
    n_right = count_visible(means, log_scales, quats, right_cam)
    total = max(n_left + n_right, 1)
    return ImageSplit(
        split_x=split, left=left_cam, right=right_cam, balance=n_left / total
    )
