"""Balance-aware splitting: image regions (Section 4.4) and Gaussian shards.

Two partitioning problems share the same balance philosophy:

* **Image splitting** — when the most demanding training view would stage
  more than ``mem_limit`` of all Gaussians, the image is partitioned into
  two vertical sub-regions processed back-to-back, halving peak staging
  memory. A naive midpoint split leaves the halves unbalanced (Gaussian
  density varies across the image), so the split column is found once per
  view by a 5-step binary search that equalizes per-side visible counts.
  :func:`find_balanced_split_by` accepts an arbitrary visible-count
  callback so the search also runs over a sharded scene whose geometry is
  spread across devices.

* **Spatial sharding** — :func:`spatial_partition` splits the Gaussian set
  itself into K spatially coherent, population-balanced shards (recursive
  median cuts along the widest axis, the Grendel/TideGS recipe), which the
  sharded multi-device system assigns one store each.
  :func:`buffered_spatial_partition` is the reconstruction-farm variant:
  the same cuts, but each shard additionally reports its half-open cell
  box and an overlap-buffered member set, so independently trained
  patches share boundary context and can be fused with exact dedup
  afterwards (:mod:`repro.recon`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..cameras.camera import Camera
from ..render import frustum_cull

#: Binary-search iterations for the split point (the paper uses 5 and
#: reports an average balance of 0.551 : 0.449).
SPLIT_SEARCH_STEPS = 5


@dataclass(frozen=True)
class ImageSplit:
    """A vertical two-way partition of a training view.

    Attributes:
        split_x: first column of the right region.
        left: camera rendering columns ``[0, split_x)``.
        right: camera rendering columns ``[split_x, width)``.
        balance: fraction of visible Gaussians in the left region.
    """

    split_x: int
    left: Camera
    right: Camera
    balance: float

    @property
    def regions(self) -> tuple[tuple[Camera, int], tuple[Camera, int]]:
        """``(camera, x_offset)`` pairs for both regions."""
        return ((self.left, 0), (self.right, self.split_x))


def count_visible(
    means: np.ndarray, log_scales: np.ndarray, quats: np.ndarray, camera: Camera
) -> int:
    """Visible-Gaussian count for a (possibly cropped) camera."""
    return frustum_cull(means, log_scales, quats, camera).num_visible


def find_balanced_split_by(
    count_fn: Callable[[Camera], int],
    camera: Camera,
    steps: int = SPLIT_SEARCH_STEPS,
) -> ImageSplit:
    """Find a near-balanced vertical split using a visible-count callback.

    ``count_fn`` maps a (cropped) camera to its visible-Gaussian count.
    The single-device systems pass a closure over the resident geometric
    block; the sharded system passes one summing per-shard frustum culls,
    which yields an identical search trajectory (counts are additive over
    a partition of the scene).
    """
    width = camera.width
    lo, hi = 0, width
    split = width // 2
    for _ in range(steps):
        n_left = count_fn(camera.crop(0, max(split, 1)))
        n_right = count_fn(camera.crop(min(split, width - 1), width))
        if n_left > n_right:
            hi = split
        else:
            lo = split
        split = (lo + hi) // 2
    split = int(np.clip(split, 1, width - 1))
    left_cam = camera.crop(0, split)
    right_cam = camera.crop(split, width)
    n_left = count_fn(left_cam)
    n_right = count_fn(right_cam)
    total = max(n_left + n_right, 1)
    return ImageSplit(
        split_x=split, left=left_cam, right=right_cam, balance=n_left / total
    )


def find_balanced_split(
    means: np.ndarray,
    log_scales: np.ndarray,
    quats: np.ndarray,
    camera: Camera,
    steps: int = SPLIT_SEARCH_STEPS,
) -> ImageSplit:
    """Find a near-balanced vertical split of ``camera``'s image.

    Starts at the midpoint and moves toward the less populated side by
    halving intervals, ``steps`` times (Section 4.4). Only geometric
    attributes are consulted, so this runs on the GPU-resident block under
    selective offloading.
    """
    return find_balanced_split_by(
        lambda cam: count_visible(means, log_scales, quats, cam),
        camera,
        steps=steps,
    )


def spatial_partition(means: np.ndarray, num_shards: int) -> list[np.ndarray]:
    """Partition Gaussians into ``num_shards`` spatially coherent shards.

    Repeatedly splits the most populated shard at the median of its widest
    world-space axis (recursive balanced k-d cuts — the spatial sharding
    used by Grendel's Gaussian distribution and TideGS's out-of-core
    blocks). Returns sorted, disjoint global index arrays covering every
    Gaussian; deterministic for a given input.
    """
    return [ids for ids, _, _ in spatial_partition_bounds(means, num_shards)]


def spatial_partition_bounds(
    means: np.ndarray, num_shards: int
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """:func:`spatial_partition` plus each shard's half-open cell box.

    Runs the same recursive median cuts but also tracks the box each cut
    carves out of world space: every shard is returned as
    ``(ids, lo, hi)`` where ``ids`` are its sorted global indices and
    ``[lo, hi)`` its axis-aligned cell (``±inf`` on axes no cut touched).
    The boxes of one partition tile space exactly — each world point lies
    in exactly one cell — which is what lets the patch pipeline's merge
    step assign ownership of a splat by position alone. A point exactly
    on a cut plane lands in the right-hand cell's box; a member whose
    coordinate ties the cut may therefore sit in its neighbor's box, so
    ownership by ``ids`` and ownership by box agree everywhere except on
    those measure-zero ties.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    n = means.shape[0]
    inf = np.full(means.shape[1], np.inf)
    parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = [
        (np.arange(n, dtype=np.int64), -inf, inf)
    ]
    while len(parts) < num_shards:
        widest = int(np.argmax([p[0].size for p in parts]))
        ids, lo, hi = parts[widest]
        if ids.size < 2:
            break  # more shards than Gaussians: leave the rest empty
        pts = means[ids]
        axis = int(np.argmax(np.ptp(pts, axis=0)))
        order = np.argsort(pts[:, axis], kind="stable")
        half = ids.size // 2
        cut = 0.5 * float(pts[order[half - 1], axis] + pts[order[half], axis])
        left_hi, right_lo = hi.copy(), lo.copy()
        left_hi[axis] = cut
        right_lo[axis] = cut
        parts[widest : widest + 1] = [
            (np.sort(ids[order[:half]]), lo, left_hi),
            (np.sort(ids[order[half:]]), right_lo, hi),
        ]
    while len(parts) < num_shards:
        # padded empty shards get an empty box (lo > hi everywhere) so a
        # containment test never claims a point for them
        parts.append((np.empty(0, dtype=np.int64), inf.copy(), -inf))
    return parts


@dataclass(frozen=True)
class SpatialPatch:
    """One cell of an overlap-buffered spatial partition.

    Attributes:
        core_ids: sorted global ids this patch *owns*; cores are disjoint
            across patches and cover every Gaussian.
        buffered_ids: sorted global ids the patch trains on — the core
            plus every Gaussian within ``buffer`` of the cell box, so the
            patch sees the boundary context its splats blend against.
        lo, hi: the half-open core cell ``[lo, hi)`` per axis (``±inf``
            on uncut axes; empty patches carry an empty box).
    """

    core_ids: np.ndarray
    buffered_ids: np.ndarray
    lo: np.ndarray
    hi: np.ndarray

    @property
    def num_core(self) -> int:
        """Gaussians owned by this patch."""
        return int(self.core_ids.size)

    @property
    def num_buffered(self) -> int:
        """Gaussians the patch trains on (core + buffer)."""
        return int(self.buffered_ids.size)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of ``points`` inside the half-open core box."""
        return np.all((points >= self.lo) & (points < self.hi), axis=1)


def buffered_spatial_partition(
    means: np.ndarray, num_patches: int, buffer: float
) -> list[SpatialPatch]:
    """Spatially partition with an overlap buffer around every cell.

    Each patch owns its :func:`spatial_partition` core and additionally
    trains the Gaussians within ``buffer`` world units of its cell box
    (the 3D-Reefs-style overlap that keeps boundary splats supervised
    from both sides). Buffered sets overlap; cores stay disjoint and
    exhaustive, so a later merge that keeps only core members emits each
    Gaussian exactly once. Empty patches (``num_patches > n``) carry
    empty core and buffered sets and are tolerated downstream.
    """
    if buffer < 0:
        raise ValueError("buffer must be >= 0")
    patches = []
    for ids, lo, hi in spatial_partition_bounds(means, num_patches):
        if ids.size == 0:
            buffered = ids
        else:
            inside = np.all(
                (means >= lo - buffer) & (means < hi + buffer), axis=1
            )
            # union with the core: a member whose coordinate ties a cut
            # plane can sit just outside its own box
            buffered = np.union1d(ids, np.flatnonzero(inside).astype(np.int64))
        patches.append(SpatialPatch(ids, buffered, lo, hi))
    return patches
