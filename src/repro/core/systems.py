"""Functional implementations of the four training systems of Figure 11.

Unlike :mod:`repro.sim` (which *models time*), these systems *execute
training*: real culling, real rendering, real gradients, real optimizer
state — with parameter placement, staging, and transfer ledgers faithfully
mirroring each system's data movement:

* :class:`GPUOnlySystem` — everything resident on the device.
* :class:`BaselineOffloadSystem` — Section 4.1: all 59 parameters on the
  host, full rows staged per iteration, dense Adam on the host.
* :class:`GSScaleSystem` — Sections 4.2-4.4: geometric block pinned on the
  device (selective offloading), non-geometric rows forwarded via
  optimizer peeks (parameter forwarding), lazy host commits (optionally
  deferred), and balance-aware image splitting.

A :class:`~repro.sim.memory.MemoryTracker` accounts device bytes in fp32
equivalents, so OOM behaviour and peak-memory ratios can be asserted
functionally, not just modeled.

Every system renders through the rasterization backend selected by
``GSScaleConfig.engine`` / ``GSScaleConfig.raster.engine`` (see
``docs/raster_engines.md``): the ``reference`` loop is the oracle, the
``vectorized`` engine is what makes Figure-11-scale throughput runs
practical in numpy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..cameras.camera import Camera
from ..gaussians import GaussianModel, layout
from ..optim.adam import DenseAdam
from ..optim.deferred import DeferredAdam
from ..render import frustum_cull, render, render_backward
from ..sim.memory import ACTIVATION_BYTES_PER_PIXEL, MemoryTracker
from ..train.loss import photometric_loss
from .config import GSScaleConfig
from .splitting import find_balanced_split

_F32 = 4  # accounting is in float32-equivalent bytes


@dataclass
class TransferLedger:
    """Counts of simulated PCIe traffic."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_count: int = 0
    d2h_count: int = 0

    def record_h2d(self, num_bytes: int) -> None:
        """Record a host-to-device transfer."""
        self.h2d_bytes += num_bytes
        self.h2d_count += 1

    def record_d2h(self, num_bytes: int) -> None:
        """Record a device-to-host transfer."""
        self.d2h_bytes += num_bytes
        self.d2h_count += 1


@dataclass
class StepReport:
    """Outcome of one training step.

    Attributes:
        iteration: 1-based step index.
        loss, l1, ssim: photometric loss and its components.
        num_visible: Gaussians inside the view frustum (union of regions).
        num_regions: 1, or 2+ when image splitting fired.
        valid_ids: the visible indices (for densification).
        mean2d_abs: screen-gradient magnitudes aligned with ``valid_ids``.
    """

    iteration: int
    loss: float
    l1: float
    ssim: float
    num_visible: int
    num_regions: int
    valid_ids: np.ndarray = field(repr=False)
    mean2d_abs: np.ndarray = field(repr=False)


@dataclass
class _RegionOutput:
    ids: np.ndarray
    grads: np.ndarray
    mean2d_abs: np.ndarray
    loss: float
    l1: float
    ssim: float


class TrainingSystem(ABC):
    """Common machinery of all four systems."""

    name = "abstract"

    def __init__(self, model: GaussianModel, config: GSScaleConfig):
        self.config = config
        self.iteration = 0
        self.memory = MemoryTracker(capacity_bytes=config.device_capacity_bytes)
        self.ledger = TransferLedger()
        self._lr = config.lr_vector(dtype=model.dtype)
        self._setup(model)

    @property
    def raster_engine(self) -> str:
        """Rasterization backend every render of this system goes through."""
        return self.config.raster.engine

    # -- subclass surface --------------------------------------------------
    @abstractmethod
    def _setup(self, model: GaussianModel) -> None:
        """Place parameters and build optimizers."""

    @abstractmethod
    def step(self, camera: Camera, gt_image: np.ndarray) -> StepReport:
        """Run one training iteration."""

    @abstractmethod
    def materialized_model(self) -> GaussianModel:
        """Mathematically current parameters as a plain model (copy)."""

    def finalize(self) -> None:
        """Commit any pending/lazy state (end of training)."""

    def rebuild(self, model: GaussianModel) -> None:
        """Re-place parameters after a structural change (densification)."""
        self.memory = MemoryTracker(capacity_bytes=self.config.device_capacity_bytes)
        self.ledger = TransferLedger()
        self._setup(model)

    # -- shared helpers ----------------------------------------------------
    @property
    def num_gaussians(self) -> int:
        """Scene size."""
        return self._num_gaussians

    def _scheduled_lr(self) -> np.ndarray | None:
        """Full lr vector for this iteration, or None when static."""
        if self.config.position_lr_decay_steps is None:
            return None
        lr = self._lr.copy()
        lr[layout.MEAN_SLICE] *= self.config.position_lr_scale_at(self.iteration)
        return lr

    def _render_one(
        self,
        compact: GaussianModel,
        camera: Camera,
        gt_region: np.ndarray,
        pixel_weight: float,
    ) -> tuple[np.ndarray, np.ndarray, float, float, float]:
        """Render a (possibly cropped) view of a compact visible-set model
        and return packed gradients scaled to whole-image units."""
        act_bytes = camera.num_pixels * ACTIVATION_BYTES_PER_PIXEL
        self.memory.allocate("activations", act_bytes)
        try:
            res = render(
                compact,
                camera,
                sh_degree=self.config.sh_degree_at(self.iteration),
                background=self.config.background,
                valid_ids=np.arange(compact.num_gaussians),
                config=self.config.raster,
            )
            loss = photometric_loss(
                res.image, gt_region, ssim_lambda=self.config.ssim_lambda
            )
            back = render_backward(
                compact, camera, res, loss.grad_image * pixel_weight
            )
        finally:
            self.memory.free("activations", act_bytes)
        return (
            back.param_grads,
            back.mean2d_abs,
            loss.loss * pixel_weight,
            loss.l1 * pixel_weight,
            loss.ssim,
        )

    @staticmethod
    def _aggregate(regions: list[_RegionOutput]) -> _RegionOutput:
        """Sum per-region gradients on the "host" (Section 4.4: gradients
        are aggregated on the CPU, then a single optimizer update runs)."""
        if len(regions) == 1:
            return regions[0]
        all_ids = np.concatenate([r.ids for r in regions])
        union, inverse = np.unique(all_ids, return_inverse=True)
        dim = regions[0].grads.shape[1]
        grads = np.zeros((union.size, dim), dtype=regions[0].grads.dtype)
        m2d = np.zeros(union.size, dtype=regions[0].mean2d_abs.dtype)
        np.add.at(grads, inverse, np.concatenate([r.grads for r in regions]))
        np.add.at(m2d, inverse, np.concatenate([r.mean2d_abs for r in regions]))
        return _RegionOutput(
            ids=union,
            grads=grads,
            mean2d_abs=m2d,
            loss=sum(r.loss for r in regions),
            l1=sum(r.l1 for r in regions),
            ssim=float(np.mean([r.ssim for r in regions])),
        )


class GPUOnlySystem(TrainingSystem):
    """Everything on the device; the paper's GPU-only reference."""

    name = "gpu_only"

    def _setup(self, model: GaussianModel) -> None:
        self._num_gaussians = model.num_gaussians
        self.params = model.params.copy()
        self.optimizer = DenseAdam(
            self.params, self.config.adam_config(self._lr)
        )
        n = self._num_gaussians
        state = layout.param_bytes(n)
        self.memory.allocate("params", state)
        self.memory.allocate("grads", state)
        self.memory.allocate("opt_states", 2 * state)

    def step(self, camera: Camera, gt_image: np.ndarray) -> StepReport:
        self.iteration += 1
        lr = self._scheduled_lr()
        if lr is not None:
            self.optimizer.set_lr(lr)
        model = GaussianModel(self.params)
        cull = frustum_cull(model.means, model.log_scales, model.quats, camera)
        ids = cull.valid_ids
        compact = GaussianModel(self.params[ids])
        grads, m2d, loss, l1, ssim = self._render_one(
            compact, camera, gt_image, 1.0
        )
        self.optimizer.step_sparse(ids, grads)
        return StepReport(
            iteration=self.iteration,
            loss=loss,
            l1=l1,
            ssim=ssim,
            num_visible=ids.size,
            num_regions=1,
            valid_ids=ids,
            mean2d_abs=m2d,
        )

    def materialized_model(self) -> GaussianModel:
        return GaussianModel(self.params.copy())


class BaselineOffloadSystem(TrainingSystem):
    """Baseline host offloading (Section 4.1, Figure 6): all parameters and
    optimizer state on the host; full 59-parameter rows staged on demand;
    dense Adam on the host CPU."""

    name = "baseline_offload"

    def _setup(self, model: GaussianModel) -> None:
        self._num_gaussians = model.num_gaussians
        self.host_params = model.params.copy()
        self.optimizer = DenseAdam(
            self.host_params, self.config.adam_config(self._lr)
        )

    def step(self, camera: Camera, gt_image: np.ndarray) -> StepReport:
        self.iteration += 1
        lr = self._scheduled_lr()
        if lr is not None:
            self.optimizer.set_lr(lr)
        model = GaussianModel(self.host_params)
        # Challenge 1: culling must run on the CPU over host-resident params
        cull = frustum_cull(model.means, model.log_scales, model.quats, camera)
        ids = cull.valid_ids

        staged_bytes = ids.size * layout.PARAM_DIM * _F32
        self.memory.allocate("staged_params", staged_bytes)
        self.memory.allocate("staged_grads", staged_bytes)
        self.ledger.record_h2d(staged_bytes)
        try:
            compact = GaussianModel(self.host_params[ids].copy())
            grads, m2d, loss, l1, ssim = self._render_one(
                compact, camera, gt_image, 1.0
            )
            self.ledger.record_d2h(staged_bytes)
        finally:
            self.memory.free("staged_params", staged_bytes)
            self.memory.free("staged_grads", staged_bytes)

        # Challenge 2: dense Adam over every host row
        self.optimizer.step_sparse(ids, grads)
        return StepReport(
            iteration=self.iteration,
            loss=loss,
            l1=l1,
            ssim=ssim,
            num_visible=ids.size,
            num_regions=1,
            valid_ids=ids,
            mean2d_abs=m2d,
        )

    def materialized_model(self) -> GaussianModel:
        return GaussianModel(self.host_params.copy())


class GSScaleSystem(TrainingSystem):
    """GS-Scale with selective offloading, parameter forwarding, optional
    deferred optimizer update, and balance-aware image splitting."""

    name = "gsscale"

    def __init__(
        self, model: GaussianModel, config: GSScaleConfig, deferred: bool = True
    ):
        self.deferred = deferred
        super().__init__(model, config)
        if not deferred:
            self.name = "gsscale_no_deferred"

    def _setup(self, model: GaussianModel) -> None:
        self._num_gaussians = n = model.num_gaussians
        cfg = self.config

        # selective offloading: geometric block + its optimizer state live
        # on the device (Section 4.2.1)
        self.device_geo = model.geometric.copy()
        self.geo_optimizer = DenseAdam(
            self.device_geo,
            cfg.adam_config(self._lr[layout.GEOMETRIC_SLICE]),
        )
        geo_state = layout.param_bytes(n, layout.GEOMETRIC_DIM)
        self.memory.allocate("geo_params", geo_state)
        self.memory.allocate("geo_grads", geo_state)
        self.memory.allocate("geo_opt_states", 2 * geo_state)

        # non-geometric block stays on the host
        self.host_non_geo = model.non_geometric.copy()
        host_cfg = cfg.adam_config(self._lr[layout.NON_GEOMETRIC_SLICE])
        if self.deferred:
            self.host_optimizer = DeferredAdam(
                self.host_non_geo, host_cfg, max_defer=cfg.max_defer
            )
        else:
            self.host_optimizer = DenseAdam(self.host_non_geo, host_cfg)

        # parameter-forwarding pipeline state: previous iteration's
        # gradients, not yet committed on the host
        self._pending_ids: np.ndarray | None = None
        self._pending_grads: np.ndarray | None = None

    # -- parameter forwarding ------------------------------------------------
    def _forwarded_values(self, ids: np.ndarray) -> np.ndarray:
        """Pre-updated non-geometric rows for the next render (Section
        4.2.2 / 4.3.3): peek the post-commit values without mutating any
        host state."""
        if self._pending_ids is None or self._pending_ids.size == 0:
            if self.deferred:
                return self.host_optimizer.materialized_params(ids)
            return self.host_non_geo[ids].copy()
        pending_rows = np.zeros(
            (ids.size, layout.NON_GEOMETRIC_DIM), dtype=self.host_non_geo.dtype
        )
        pos = np.searchsorted(self._pending_ids, ids)
        pos = np.clip(pos, 0, self._pending_ids.size - 1)
        hit = self._pending_ids[pos] == ids
        pending_rows[hit] = self._pending_grads[pos[hit]]
        return self.host_optimizer.peek_updated(ids, pending_rows)

    def _commit_pending(self) -> None:
        """The lazy host update of the previous iteration (step 5 in
        Figure 8), which the real system overlaps with GPU work."""
        if self._pending_ids is None:
            return
        if self.deferred:
            self.host_optimizer.step(self._pending_ids, self._pending_grads)
        else:
            self.host_optimizer.step_sparse(self._pending_ids, self._pending_grads)
        self._pending_ids = None
        self._pending_grads = None

    # -- geometry access -----------------------------------------------------
    @property
    def _geo_means(self) -> np.ndarray:
        return self.device_geo[:, 0:3]

    @property
    def _geo_log_scales(self) -> np.ndarray:
        return self.device_geo[:, 3:6]

    @property
    def _geo_quats(self) -> np.ndarray:
        return self.device_geo[:, 6:10]

    def _cull(self, camera: Camera):
        """GPU-side frustum culling over the resident geometric block."""
        return frustum_cull(
            self._geo_means, self._geo_log_scales, self._geo_quats, camera
        )

    # -- training step ---------------------------------------------------------
    def step(self, camera: Camera, gt_image: np.ndarray) -> StepReport:
        self.iteration += 1
        lr = self._scheduled_lr()
        if lr is not None:
            # the position columns live in the device geometric optimizer
            self.geo_optimizer.set_lr(lr[layout.GEOMETRIC_SLICE])

        whole = self._cull(camera)
        ratio = whole.active_ratio
        if ratio > self.config.mem_limit and camera.width >= 2:
            split = find_balanced_split(
                self._geo_means, self._geo_log_scales, self._geo_quats, camera
            )
            regions = list(split.regions)
        else:
            regions = [(camera, 0)]

        total_px = camera.num_pixels
        outputs: list[_RegionOutput] = []
        for region_cam, x_offset in regions:
            cull = (
                whole if len(regions) == 1 else self._cull(region_cam)
            )
            ids = cull.valid_ids
            if ids.size == 0:
                continue
            staged_vals = self._forwarded_values(ids)
            staged_bytes = ids.size * layout.NON_GEOMETRIC_DIM * _F32
            self.memory.allocate("staged_params", staged_bytes)
            self.memory.allocate("staged_grads", staged_bytes)
            self.ledger.record_h2d(staged_bytes)
            try:
                compact_params = np.empty(
                    (ids.size, layout.PARAM_DIM), dtype=self.host_non_geo.dtype
                )
                compact_params[:, layout.GEOMETRIC_SLICE] = self.device_geo[ids]
                compact_params[:, layout.NON_GEOMETRIC_SLICE] = staged_vals
                compact = GaussianModel(compact_params)
                gt_region = gt_image[:, x_offset : x_offset + region_cam.width]
                weight = region_cam.num_pixels / total_px
                grads, m2d, loss, l1, ssim = self._render_one(
                    compact, region_cam, gt_region, weight
                )
                self.ledger.record_d2h(staged_bytes)
            finally:
                self.memory.free("staged_params", staged_bytes)
                self.memory.free("staged_grads", staged_bytes)
            outputs.append(
                _RegionOutput(
                    ids=ids, grads=grads, mean2d_abs=m2d,
                    loss=loss, l1=l1, ssim=ssim,
                )
            )

        # the lazy host commit of iteration N-1 (overlapped in real time)
        self._commit_pending()

        if not outputs:
            # nothing visible: host optimizer still ticks (counters advance)
            empty = np.zeros((0, layout.NON_GEOMETRIC_DIM), self.host_non_geo.dtype)
            if self.deferred:
                self.host_optimizer.step(np.empty(0, dtype=np.int64), empty)
            else:
                self.host_optimizer.step_sparse(np.empty(0, dtype=np.int64), empty)
            self.geo_optimizer.step_sparse(
                np.empty(0, dtype=np.int64),
                np.zeros((0, layout.GEOMETRIC_DIM), self.device_geo.dtype),
            )
            return StepReport(
                iteration=self.iteration, loss=0.0, l1=0.0, ssim=1.0,
                num_visible=0, num_regions=len(regions),
                valid_ids=np.empty(0, dtype=np.int64),
                mean2d_abs=np.empty(0),
            )

        agg = self._aggregate(outputs)

        # geometric M.S.Q. update directly on the device (step 4, Figure 8)
        self.geo_optimizer.step_sparse(
            agg.ids, agg.grads[:, layout.GEOMETRIC_SLICE]
        )
        # non-geometric gradients return to the host and wait for the lazy
        # commit at the start of the next iteration (step 7, Figure 8)
        self._pending_ids = agg.ids
        self._pending_grads = agg.grads[:, layout.NON_GEOMETRIC_SLICE]

        return StepReport(
            iteration=self.iteration,
            loss=agg.loss,
            l1=agg.l1,
            ssim=agg.ssim,
            num_visible=int(agg.ids.size),
            num_regions=len(regions),
            valid_ids=agg.ids,
            mean2d_abs=agg.mean2d_abs,
        )

    # -- state access ----------------------------------------------------------
    def materialized_model(self) -> GaussianModel:
        """Current parameters including pending gradients and deferred
        drift (the values an immediate full commit would produce)."""
        n = self._num_gaussians
        params = np.empty((n, layout.PARAM_DIM), dtype=self.host_non_geo.dtype)
        params[:, layout.GEOMETRIC_SLICE] = self.device_geo
        if self._pending_ids is not None:
            all_ids = np.arange(n)
            pending_rows = np.zeros(
                (n, layout.NON_GEOMETRIC_DIM), dtype=self.host_non_geo.dtype
            )
            pending_rows[self._pending_ids] = self._pending_grads
            params[:, layout.NON_GEOMETRIC_SLICE] = (
                self.host_optimizer.peek_updated(all_ids, pending_rows)
            )
        elif self.deferred:
            params[:, layout.NON_GEOMETRIC_SLICE] = (
                self.host_optimizer.materialized_params()
            )
        else:
            params[:, layout.NON_GEOMETRIC_SLICE] = self.host_non_geo
        return GaussianModel(params)

    def finalize(self) -> None:
        """Commit pending gradients and deferred drift."""
        self._commit_pending()
        if self.deferred:
            self.host_optimizer.flush()


def create_system(model: GaussianModel, config: GSScaleConfig) -> TrainingSystem:
    """Factory for the four Figure-11 systems."""
    if config.system == "gpu_only":
        return GPUOnlySystem(model, config)
    if config.system == "baseline_offload":
        return BaselineOffloadSystem(model, config)
    if config.system == "gsscale_no_deferred":
        return GSScaleSystem(model, config, deferred=False)
    if config.system == "gsscale":
        return GSScaleSystem(model, config, deferred=True)
    raise ValueError(f"unknown system {config.system!r}")
