"""Functional training systems as thin step-loops over parameter stores.

Unlike :mod:`repro.sim` (which *models time*), these systems *execute
training*: real culling, real rendering, real gradients, real optimizer
state. All placement policy — which column block lives where, staging,
ledger traffic, memory charges, lazy commits — lives in
:mod:`repro.core.stores`; a system is just a store composition plus the
per-iteration loop (cull, optionally split, render, aggregate, hand
gradients back):

* :class:`GPUOnlySystem` — one :class:`~repro.core.stores.DeviceStore`
  over all 59 columns.
* :class:`BaselineOffloadSystem` — Section 4.1: one
  :class:`~repro.core.stores.HostStore` over all 59 columns, full rows
  staged per iteration, dense Adam on the host.
* :class:`GSScaleSystem` — Sections 4.2-4.4: a
  :class:`~repro.core.stores.HybridStore` of a device-resident geometric
  block (selective offloading) and a forwarding host store (parameter
  forwarding + lazy commits, optionally deferred), with balance-aware
  image splitting.
* :class:`ShardedGSScaleSystem` — the Grendel/TideGS regime on top of the
  same stores: the Gaussian set is spatially partitioned into K shards,
  each backed by its own hybrid store with a per-shard device tracker and
  transfer ledger (one simulated GPU per shard), per-view shard activation
  via frustum culling, host-side gradient aggregation across shards, and
  an optional multiprocessing fan-out of the per-shard work — culling
  always, and with the ``fragment`` raster engine the full per-shard
  render pipeline (no shard's rows are ever gathered into a packed
  union matrix).
* :class:`OutOfCoreGSScaleSystem` — the sharded system with an out-of-core
  host tier: each shard's non-geometric state spills to memory-mapped
  files and only ``resident_shards`` shards occupy host DRAM at once,
  with per-view spill/prefetch and disk traffic metered on the ledger's
  page channel.

A :class:`~repro.sim.memory.MemoryTracker` accounts device bytes in fp32
equivalents, so OOM behaviour and peak-memory ratios can be asserted
functionally, not just modeled. Every system renders through the
rasterization backend selected by ``GSScaleConfig.engine`` (see
``docs/raster_engines.md``); the store/system layering itself is described
in ``docs/architecture.md``.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace

import numpy as np

from ..cameras.camera import Camera
from ..gaussians import GaussianModel, layout
from ..render import (
    FragmentSource,
    frustum_cull,
    projection,
    rasterize_backward_fragment,
    rasterize_fragment_sources,
    render,
    render_backward,
)
from ..render.culling import CullResult
from ..render.parallel import PersistentPool, pool_fork_guard
from ..render.rasterize import RasterConfig
from ..sim.memory import ACTIVATION_BYTES_PER_PIXEL, MemoryTracker
from ..telemetry import trace as _trace
from ..telemetry.trace import span as _span
from ..train.loss import photometric_loss
from .config import GSScaleConfig
from .splitting import find_balanced_split_by, spatial_partition
from .stores import (
    DeviceStore,
    DiskStore,
    HostStore,
    HybridStore,
    ParameterStore,
    ResidentSet,
    ShardedStore,
    _WriteBehindWriter,
)


@dataclass
class TransferLedger:
    """Counts of simulated PCIe and disk-paging traffic.

    Two channels: the PCIe channel (``h2d``/``d2h``, staging windows and
    gradient returns) and the disk channel (``page_in``/``page_out``, the
    out-of-core tier spilling and prefetching shard state). A ledger built
    with a ``parent`` mirrors every record into it, so per-shard ledgers
    roll up into the system-wide ledger the trainer reads.

    The disk channel meters two sizes per transfer: ``page_*_bytes`` is
    the decoded working-set size (fp32-equivalent accounting, what the
    host gains or frees), while ``page_*_disk_bytes`` is what actually
    crossed the disk interface — smaller when the store's page codec
    compresses. ``page_in_bytes / page_in_disk_bytes`` is the effective
    disk-bandwidth multiplier the codec buys.
    """

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_count: int = 0
    d2h_count: int = 0
    page_in_bytes: int = 0
    page_out_bytes: int = 0
    page_in_count: int = 0
    page_out_count: int = 0
    page_in_disk_bytes: int = 0
    page_out_disk_bytes: int = 0
    parent: "TransferLedger | None" = None

    def record_h2d(self, num_bytes: int) -> None:
        """Record a host-to-device transfer."""
        self.h2d_bytes += num_bytes
        self.h2d_count += 1
        if self.parent is not None:
            self.parent.record_h2d(num_bytes)

    def record_d2h(self, num_bytes: int) -> None:
        """Record a device-to-host transfer."""
        self.d2h_bytes += num_bytes
        self.d2h_count += 1
        if self.parent is not None:
            self.parent.record_d2h(num_bytes)

    def record_page_in(self, num_bytes: int, disk_bytes: int | None = None) -> None:
        """Record a disk-to-host page-in (out-of-core prefetch).

        ``disk_bytes`` is the encoded on-disk size; ``None`` means the
        page was stored uncompressed (disk == decoded).
        """
        self.page_in_bytes += num_bytes
        self.page_in_count += 1
        self.page_in_disk_bytes += num_bytes if disk_bytes is None else disk_bytes
        if self.parent is not None:
            self.parent.record_page_in(num_bytes, disk_bytes)

    def record_page_out(self, num_bytes: int, disk_bytes: int | None = None) -> None:
        """Record a host-to-disk page-out (out-of-core spill)."""
        self.page_out_bytes += num_bytes
        self.page_out_count += 1
        self.page_out_disk_bytes += num_bytes if disk_bytes is None else disk_bytes
        if self.parent is not None:
            self.parent.record_page_out(num_bytes, disk_bytes)

    def counts(self) -> dict[str, int]:
        """The counter fields as a plain dict (no ``parent``).

        The single rollup surface: shard reports, the telemetry
        registry's ledger mirror, and ad-hoc consumers all read this
        instead of re-listing the fields.
        """
        from dataclasses import fields as _fields

        return {
            f.name: getattr(self, f.name)
            for f in _fields(self)
            if f.name != "parent"
        }


@dataclass
class StepReport:
    """Outcome of one training step.

    Attributes:
        iteration: 1-based step index.
        loss, l1, ssim: photometric loss and its components. A step in
            which nothing was visible reports ``loss = l1 = 0.0`` and
            ``ssim = nan`` (there was no image to compare; consumers
            averaging per-step SSIM must skip NaNs, as
            :attr:`repro.core.trainer.TrainingHistory.mean_ssim` does).
        num_visible: Gaussians inside the view frustum (union of regions).
        num_regions: 1, or 2+ when image splitting fired.
        valid_ids: the visible indices (for densification).
        mean2d_abs: screen-gradient magnitudes aligned with ``valid_ids``.
    """

    iteration: int
    loss: float
    l1: float
    ssim: float
    num_visible: int
    num_regions: int
    valid_ids: np.ndarray = field(repr=False)
    mean2d_abs: np.ndarray = field(repr=False)


@dataclass
class ShardReport:
    """Per-shard accounting snapshot of a :class:`ShardedGSScaleSystem`.

    ``page_in_bytes``/``page_out_bytes`` stay zero unless the shard's host
    state lives in the out-of-core tier.
    """

    shard: int
    num_gaussians: int
    peak_bytes: int
    live_bytes: int
    h2d_bytes: int
    d2h_bytes: int
    h2d_count: int
    d2h_count: int
    page_in_bytes: int = 0
    page_out_bytes: int = 0


@dataclass
class _RegionOutput:
    ids: np.ndarray
    grads: np.ndarray
    mean2d_abs: np.ndarray
    loss: float
    l1: float
    ssim: float


def _cull_shard_task(args):
    """Worker task for the sharded system's culling fan-out (module-level
    so it pickles under ``multiprocessing``)."""
    means, log_scales, quats, camera = args
    res = frustum_cull(means, log_scales, quats, camera)
    return res.valid_ids, res.num_in_depth


def locality_view_order(cameras: list[Camera]) -> np.ndarray:
    """View schedule that keeps consecutive views spatially close.

    Greedy nearest-neighbor walk over the camera centers, starting from
    the first view. Out-of-core training pays one shard swap whenever the
    active shard set changes; ordering views so neighbors share a
    resident set amortizes each page-in over many views — the
    ``OUTOFCORE_VIEW_LOCALITY`` assumption of ``sim/timeline.py``, made
    real. Deterministic for a fixed camera list.
    """
    n = len(cameras)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    centers = np.stack([cam.center for cam in cameras])
    remaining = np.ones(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    order[0] = 0
    remaining[0] = False
    for i in range(1, n):
        d = np.linalg.norm(centers - centers[order[i - 1]], axis=1)
        d[~remaining] = np.inf
        order[i] = int(np.argmin(d))
        remaining[order[i]] = False
    return order


class TrainingSystem(ABC):
    """Common step-loop machinery; subclasses supply a store composition.

    ``_setup`` must set ``self.store`` (a :class:`ParameterStore` spanning
    all 59 columns) and ``self._num_gaussians``. The base :meth:`step`
    then runs the paper's iteration: plan regions (with balance-aware
    image splitting when the subclass enables it), cull, stage, render,
    return gradients per region, commit the previous step's lazy update,
    aggregate on the host, and hand the step's gradients to the store.
    """

    name = "abstract"

    #: whether views whose active ratio exceeds ``mem_limit`` are split
    #: (Section 4.4); only the staged-offload systems benefit
    splits_images = False

    store: ParameterStore

    def __init__(self, model: GaussianModel, config: GSScaleConfig):
        self.config = config
        self.iteration = 0
        if config.telemetry:
            # idempotent: every telemetry=True consumer shares one tracer
            _trace.install()
        self.memory = MemoryTracker(capacity_bytes=config.device_capacity_bytes)
        self.ledger = TransferLedger()
        self._lr = config.lr_vector(dtype=model.dtype)
        self._setup(model)

    @property
    def raster_engine(self) -> str:
        """Rasterization backend every render of this system goes through."""
        return self.config.raster.engine

    # -- subclass surface --------------------------------------------------
    @abstractmethod
    def _setup(self, model: GaussianModel) -> None:
        """Build the store composition (placement + optimizers)."""

    def materialized_model(self) -> GaussianModel:
        """Mathematically current parameters as a plain model (copy),
        including pending gradients and deferred drift."""
        return GaussianModel(self.store.materialize())

    def finalize(self) -> None:
        """Commit any pending/lazy state (end of training)."""
        self.store.flush()

    def rebuild(self, model: GaussianModel) -> None:
        """Re-place parameters after a structural change (densification)."""
        self.memory = MemoryTracker(capacity_bytes=self.config.device_capacity_bytes)
        self.ledger = TransferLedger()
        self._setup(model)

    def checkpoint_entries(self) -> list[tuple[str, ParameterStore, np.ndarray | None]]:
        """``(prefix, leaf store, global row ids or None)`` triples for
        :mod:`repro.core.checkpoint`."""
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------
    @property
    def num_gaussians(self) -> int:
        """Scene size."""
        return self._num_gaussians

    def _scheduled_lr(self) -> np.ndarray | None:
        """Full lr vector for this iteration, or None when static."""
        if self.config.position_lr_decay_steps is None:
            return None
        lr = self._lr.copy()
        lr[layout.MEAN_SLICE] *= self.config.position_lr_scale_at(self.iteration)
        return lr

    def _cull(self, camera: Camera) -> CullResult:
        """Frustum culling over the store's resident geometric columns."""
        means, log_scales, quats = self.store.geometry()
        return frustum_cull(means, log_scales, quats, camera)

    def _count_visible(self, camera: Camera) -> int:
        return self._cull(camera).num_visible

    def _plan_regions(
        self, camera: Camera
    ) -> tuple[list[tuple[Camera, int]], CullResult | None]:
        """Render regions for this view, plus the whole-view cull result
        when it can be reused (single-region case)."""
        whole = self._cull(camera)
        if (
            self.splits_images
            and whole.active_ratio > self.config.mem_limit
            and camera.width >= 2
        ):
            split = find_balanced_split_by(self._count_visible, camera)
            return list(split.regions), None
        return [(camera, 0)], whole

    def _render_one(
        self,
        compact: GaussianModel,
        camera: Camera,
        gt_region: np.ndarray,
        pixel_weight: float,
    ) -> tuple[np.ndarray, np.ndarray, float, float, float]:
        """Render a (possibly cropped) view of a compact visible-set model
        and return packed gradients scaled to whole-image units."""
        act_bytes = camera.num_pixels * ACTIVATION_BYTES_PER_PIXEL
        self.memory.allocate("activations", act_bytes)
        try:
            with _span("train/forward", "train"):
                res = render(
                    compact,
                    camera,
                    sh_degree=self.config.sh_degree_at(self.iteration),
                    background=self.config.background,
                    valid_ids=np.arange(compact.num_gaussians),
                    config=self.config.raster,
                )
                loss = photometric_loss(
                    res.image, gt_region, ssim_lambda=self.config.ssim_lambda
                )
            with _span("train/backward", "train"):
                back = render_backward(
                    compact, camera, res, loss.grad_image * pixel_weight
                )
        finally:
            self.memory.free("activations", act_bytes)
        return (
            back.param_grads,
            back.mean2d_abs,
            loss.loss * pixel_weight,
            loss.l1 * pixel_weight,
            loss.ssim,
        )

    def _render_region(
        self,
        ids: np.ndarray,
        region_cam: Camera,
        gt_region: np.ndarray,
        weight: float,
    ) -> _RegionOutput:
        """One region's stage -> render -> backward -> unstage cycle.

        The default path stages the whole visible union through the store
        composition and renders it jointly; the sharded systems override
        this for the ``fragment`` engine to render shard by shard without
        ever assembling the union's packed matrix.
        """
        with _span("train/stage", "train"):
            values = self.store.stage(ids)
        returned = False
        try:
            compact = GaussianModel(values)
            grads, m2d, loss, l1, ssim = self._render_one(
                compact, region_cam, gt_region, weight
            )
            returned = True
        finally:
            with _span("train/unstage", "train"):
                self.store.unstage(ids, returned=returned)
        return _RegionOutput(
            ids=ids, grads=grads, mean2d_abs=m2d, loss=loss, l1=l1, ssim=ssim
        )

    @staticmethod
    def _aggregate(regions: list[_RegionOutput]) -> _RegionOutput:
        """Sum per-region gradients on the "host" (Section 4.4: gradients
        are aggregated on the CPU, then a single optimizer update runs).
        The sharded system funnels every shard's regions through the same
        path — host-side aggregation across shards."""
        if len(regions) == 1:
            return regions[0]
        all_ids = np.concatenate([r.ids for r in regions])
        union, inverse = np.unique(all_ids, return_inverse=True)
        dim = regions[0].grads.shape[1]
        grads = np.zeros((union.size, dim), dtype=regions[0].grads.dtype)
        m2d = np.zeros(union.size, dtype=regions[0].mean2d_abs.dtype)
        np.add.at(grads, inverse, np.concatenate([r.grads for r in regions]))
        np.add.at(m2d, inverse, np.concatenate([r.mean2d_abs for r in regions]))
        return _RegionOutput(
            ids=union,
            grads=grads,
            mean2d_abs=m2d,
            loss=sum(r.loss for r in regions),
            l1=sum(r.l1 for r in regions),
            ssim=float(np.mean([r.ssim for r in regions])),
        )

    # -- the unified training step ----------------------------------------
    def step(self, camera: Camera, gt_image: np.ndarray) -> StepReport:
        """Run one training iteration through the store composition."""
        self.iteration += 1
        tok = _trace.begin("train/step", "train")
        try:
            return self._step_impl(camera, gt_image)
        finally:
            _trace.end(tok)

    def _step_impl(self, camera: Camera, gt_image: np.ndarray) -> StepReport:
        lr = self._scheduled_lr()
        if lr is not None:
            self.store.set_lr(lr)

        with _span("train/cull", "train"):
            regions, whole = self._plan_regions(camera)
        total_px = camera.num_pixels
        outputs: list[_RegionOutput] = []
        for region_cam, x_offset in regions:
            if whole is not None and len(regions) == 1:
                cull = whole
            else:
                with _span("train/cull", "train"):
                    cull = self._cull(region_cam)
            ids = cull.valid_ids
            if ids.size == 0:
                continue
            gt_region = gt_image[:, x_offset : x_offset + region_cam.width]
            weight = region_cam.num_pixels / total_px
            outputs.append(
                self._render_region(ids, region_cam, gt_region, weight)
            )

        # the lazy host commit of iteration N-1 (overlapped in real time)
        with _span("train/commit", "train"):
            self.store.commit()

        if not outputs:
            # nothing visible: no image was rendered (ssim is undefined —
            # NaN, not a fake 1.0), but every optimizer still ticks
            with _span("train/return_grads", "train"):
                self.store.return_grads(
                    np.empty(0, dtype=np.int64),
                    np.zeros((0, self.store.dim), dtype=self.store.dtype),
                )
            return StepReport(
                iteration=self.iteration, loss=0.0, l1=0.0,
                ssim=float("nan"),
                num_visible=0, num_regions=len(regions),
                valid_ids=np.empty(0, dtype=np.int64),
                mean2d_abs=np.empty(0),
            )

        with _span("train/aggregate", "train"):
            agg = self._aggregate(outputs)
        with _span("train/return_grads", "train"):
            self.store.return_grads(agg.ids, agg.grads)

        return StepReport(
            iteration=self.iteration,
            loss=agg.loss,
            l1=agg.l1,
            ssim=agg.ssim,
            num_visible=int(agg.ids.size),
            num_regions=len(regions),
            valid_ids=agg.ids,
            mean2d_abs=agg.mean2d_abs,
        )


class GPUOnlySystem(TrainingSystem):
    """Everything on the device; the paper's GPU-only reference."""

    name = "gpu_only"

    def _setup(self, model: GaussianModel) -> None:
        self._num_gaussians = model.num_gaussians
        self.store = DeviceStore(
            model.params,
            layout.ALL_BLOCK,
            self.config.adam_config(self._lr),
            self.memory,
        )

    # legacy surface (tests and schedules poke the raw arrays)
    @property
    def params(self) -> np.ndarray:
        """Device-resident packed parameters."""
        return self.store.params

    @property
    def optimizer(self):
        """The dense device optimizer."""
        return self.store.optimizer

    def checkpoint_entries(self):
        return [("", self.store, None)]


class BaselineOffloadSystem(TrainingSystem):
    """Baseline host offloading (Section 4.1, Figure 6): all parameters and
    optimizer state on the host; full 59-parameter rows staged on demand
    (Challenge 1: culling runs on the CPU over host-resident params);
    dense Adam on the host CPU (Challenge 2)."""

    name = "baseline_offload"

    def _setup(self, model: GaussianModel) -> None:
        self._num_gaussians = model.num_gaussians
        self.store = HostStore(
            model.params,
            layout.ALL_BLOCK,
            self.config.adam_config(self._lr),
            self.memory,
            self.ledger,
        )

    @property
    def host_params(self) -> np.ndarray:
        """Host-resident packed parameters."""
        return self.store.params

    @property
    def optimizer(self):
        """The dense host optimizer."""
        return self.store.optimizer

    def checkpoint_entries(self):
        return [("", self.store, None)]


class GSScaleSystem(TrainingSystem):
    """GS-Scale with selective offloading, parameter forwarding, optional
    deferred optimizer update, and balance-aware image splitting."""

    name = "gsscale"
    splits_images = True

    def __init__(
        self, model: GaussianModel, config: GSScaleConfig, deferred: bool = True
    ):
        self.deferred = deferred
        super().__init__(model, config)
        if not deferred:
            self.name = "gsscale_no_deferred"

    def _setup(self, model: GaussianModel) -> None:
        self._num_gaussians = model.num_gaussians
        cfg = self.config
        # selective offloading: geometric block + its optimizer state live
        # on the device (Section 4.2.1)
        self._geo_store = DeviceStore(
            model.geometric,
            layout.GEOMETRIC_BLOCK,
            cfg.adam_config(self._lr[layout.GEOMETRIC_SLICE]),
            self.memory,
            label="geo",
        )
        # the non-geometric block stays on the host behind the forwarding
        # pipeline (peeked staging + lazy commits, Sections 4.2.2/4.3)
        self._host_store = HostStore(
            model.non_geometric,
            layout.NON_GEOMETRIC_BLOCK,
            cfg.adam_config(self._lr[layout.NON_GEOMETRIC_SLICE]),
            self.memory,
            self.ledger,
            forwarding=True,
            deferred=self.deferred,
            max_defer=cfg.max_defer,
        )
        self.store = HybridStore([self._geo_store, self._host_store])

    # legacy surface (checkpointing tests and splitting tests poke these)
    @property
    def device_geo(self) -> np.ndarray:
        """Device-resident geometric block."""
        return self._geo_store.params

    @property
    def geo_optimizer(self):
        """Dense device optimizer of the geometric block."""
        return self._geo_store.optimizer

    @property
    def host_non_geo(self) -> np.ndarray:
        """Host-resident non-geometric block (last committed values)."""
        return self._host_store.params

    @property
    def host_optimizer(self):
        """Host optimizer (deferred or dense) of the non-geometric block."""
        return self._host_store.optimizer

    @property
    def _pending_ids(self):
        return self._host_store._pending_ids

    @_pending_ids.setter
    def _pending_ids(self, value):
        self._host_store._pending_ids = value

    @property
    def _pending_grads(self):
        return self._host_store._pending_grads

    @_pending_grads.setter
    def _pending_grads(self, value):
        self._host_store._pending_grads = value

    def checkpoint_entries(self):
        return [("geo", self._geo_store, None), ("host", self._host_store, None)]


class ShardedGSScaleSystem(TrainingSystem):
    """GS-Scale over a spatial partition of the Gaussian set (K shards).

    Each shard is a hybrid store (device geometric + forwarding host
    non-geometric) with its own :class:`~repro.sim.memory.MemoryTracker`
    (capped by ``shard_device_capacity_bytes``) and
    :class:`TransferLedger`, both rolling up into the system-wide
    aggregates — one simulated GPU per shard, as in Grendel's
    Gaussian-sharded training and TideGS's out-of-core blocks.

    Per view, every shard frustum-culls its own geometry (shards entirely
    outside the frustum are skipped: no staging, no traffic). Rendering
    depends on the engine: by default the visible union is staged and
    renders jointly (the Grendel gather); with the ``fragment`` engine the
    union is never assembled — each shard stages, projects, and
    rasterizes its own rows, and the host composites per-shard fragment
    buffers (:meth:`_render_region_fragment`), with
    ``shard_workers`` running the per-shard pipelines on a process pool.
    ``shard_workers > 1`` also fans the per-shard culling out over a
    ``multiprocessing`` pool (fork start method; falls back to serial
    where unavailable). Training numerics are independent of K and of the
    fan-out: with K=1 the system is exactly :class:`GSScaleSystem`.
    """

    name = "sharded"
    splits_images = True

    def _setup(self, model: GaussianModel) -> None:
        self._num_gaussians = model.num_gaussians
        cfg = self.config
        # the culling pool persists across densification rebuilds — only
        # finalize() (or interpreter exit) tears it down
        self._pool = getattr(self, "_pool", None)
        self.shard_rows = spatial_partition(model.means, cfg.num_shards)
        self.shard_trackers: list[MemoryTracker] = []
        self.shard_ledgers: list[TransferLedger] = []
        shard_stores: list[ParameterStore] = []
        for k, rows in enumerate(self.shard_rows):
            tracker = MemoryTracker(
                capacity_bytes=cfg.shard_device_capacity_bytes,
                parent=self.memory,
            )
            ledger = TransferLedger(parent=self.ledger)
            sub = model.params[rows]
            geo = DeviceStore(
                sub[:, layout.GEOMETRIC_SLICE],
                layout.GEOMETRIC_BLOCK,
                cfg.adam_config(self._lr[layout.GEOMETRIC_SLICE]),
                tracker,
                label="geo",
            )
            host = self._make_nongeo_store(
                sub[:, layout.NON_GEOMETRIC_SLICE], tracker, ledger, k
            )
            shard_stores.append(HybridStore([geo, host]))
            self.shard_trackers.append(tracker)
            self.shard_ledgers.append(ledger)
        self.store = ShardedStore(self.shard_rows, shard_stores)

    def _make_nongeo_store(
        self,
        params_block: np.ndarray,
        tracker: MemoryTracker,
        ledger: TransferLedger,
        k: int,
    ) -> ParameterStore:
        """Placement of shard ``k``'s non-geometric block (overridable:
        the out-of-core system swaps in a :class:`DiskStore` here)."""
        cfg = self.config
        return HostStore(
            params_block,
            layout.NON_GEOMETRIC_BLOCK,
            cfg.adam_config(self._lr[layout.NON_GEOMETRIC_SLICE]),
            tracker,
            ledger,
            forwarding=True,
            deferred=True,
            max_defer=cfg.max_defer,
        )

    # -- distributed culling ----------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shards (stores/devices)."""
        return len(self.shard_rows)

    def _shard_geometry(self, k: int):
        return self.store.stores[k].geometry()

    def _get_pool(self) -> PersistentPool | None:
        if self.config.shard_workers <= 1 or self.num_shards <= 1:
            return None
        if self._pool is None:
            self._pool = PersistentPool(
                min(self.config.shard_workers, self.num_shards),
                task_timeout=self.config.pool_task_timeout_s,
                max_retries=self.config.pool_retries,
            )
        return self._pool

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def _count_visible(self, camera: Camera) -> int:
        # the split search probes ~12 cropped cameras per split view;
        # counting is cheap, so it stays serial instead of re-shipping
        # every shard's geometry through the pool per probe
        return sum(
            frustum_cull(*self._shard_geometry(k), camera).num_visible
            for k in range(self.num_shards)
        )

    def _cull(self, camera: Camera) -> CullResult:
        """Union of per-shard frustum culls, in global id order.

        Culling is per-Gaussian, so the union over a partition equals the
        unsharded cull bit-for-bit; each shard's pass is the work its own
        device would do. The ``shard_workers`` fan-out ships each shard's
        geometry per call (the geometric block mutates every step, so
        workers cannot cache it); with image splitting off that is one
        dispatch per step.
        """
        tasks = [self._shard_geometry(k) + (camera,) for k in range(self.num_shards)]
        pool = self._get_pool()
        if pool is not None:
            results = pool.map(_cull_shard_task, tasks)
        else:
            results = [_cull_shard_task(t) for t in tasks]
        parts = [
            rows[local]
            for rows, (local, _) in zip(self.shard_rows, results)
            if local.size
        ]
        valid = (
            np.sort(np.concatenate(parts))
            if parts
            else np.empty(0, dtype=np.int64)
        )
        return CullResult(
            valid_ids=valid,
            num_total=self._num_gaussians,
            num_in_depth=int(sum(r[1] for r in results)),
            num_visible=int(valid.size),
        )

    # -- fragment-parallel region rendering -------------------------------
    def _fragment_raster_config(self) -> RasterConfig:
        """Raster config of the per-shard fragment fan-out.

        ``shard_workers`` is the sharded system's parallelism knob, so it
        drives the fragment pool too (graduating the workers from
        culling-only to full per-shard renders); ``raster.workers`` is the
        fallback when it is unset. Worker count never changes numerics.
        """
        cfg = self.config
        workers = (
            cfg.shard_workers if cfg.shard_workers > 1 else cfg.raster.workers
        )
        if workers == cfg.raster.workers:
            return cfg.raster
        return replace(cfg.raster, workers=workers)

    def _render_region(
        self,
        ids: np.ndarray,
        region_cam: Camera,
        gt_region: np.ndarray,
        weight: float,
    ) -> _RegionOutput:
        if self.raster_engine != "fragment":
            return super()._render_region(ids, region_cam, gt_region, weight)
        return self._render_region_fragment(ids, region_cam, gt_region, weight)

    def _render_region_fragment(
        self,
        ids: np.ndarray,
        region_cam: Camera,
        gt_region: np.ndarray,
        weight: float,
    ) -> _RegionOutput:
        """Render one region shard by shard — no union gather.

        Forward: each shard opens its own staging window (stage ->
        project -> unstage; the window is released before the next shard
        stages, so the aggregate staging peak is the *largest* shard's
        window, not the sum), contributes a :class:`FragmentSource` of
        projected columns, and the host composites fragment buffers via
        :func:`rasterize_fragment_sources`. Backward: the composited
        gradient is split along the shard boundaries of the concatenated
        row space, and each shard re-stages to run its projection adjoint
        and return its gradient slice (the second H2D window is the price
        of never holding two shards' rows at once; values are identical
        because staging is a pure optimizer peek). Numerics match the
        gather path to compositing-rounding precision (~1e-12).
        """
        cfg = self.config
        raster_cfg = self._fragment_raster_config()
        dtype = self.store.dtype
        background = (
            np.zeros(3, dtype=dtype)
            if cfg.background is None
            else np.asarray(cfg.background, dtype=dtype)
        )
        sh_degree = cfg.sh_degree_at(self.iteration)
        members = [self.store._members(ids, rows) for rows in self.shard_rows]
        active = [k for k, (sel, _) in enumerate(members) if sel.size]

        act_bytes = region_cam.num_pixels * ACTIVATION_BYTES_PER_PIXEL
        self.memory.allocate("activations", act_bytes)
        try:
            sources: list[FragmentSource] = []
            projs = []
            for k in active:
                _, local = members[k]
                store = self.store.stores[k]
                values = store.stage(local)
                try:
                    shard = GaussianModel(values)
                    proj = projection.project(
                        shard.means, shard.log_scales, shard.quats,
                        shard.opacity_logits, shard.sh, region_cam,
                        sh_degree=sh_degree,
                    )
                finally:
                    store.unstage(local, returned=False)
                projs.append(proj)
                sources.append(
                    FragmentSource(
                        means2d=proj.geom.means2d,
                        conics=proj.geom.conics,
                        colors=proj.colors,
                        opacities=proj.opacities,
                        depths=proj.geom.depths,
                        radii=proj.geom.radii,
                    )
                )

            frag = rasterize_fragment_sources(
                sources, region_cam.width, region_cam.height,
                background=background, config=raster_cfg,
            )
            loss = photometric_loss(
                frag.image, gt_region, ssim_lambda=cfg.ssim_lambda
            )
            rgrads = rasterize_backward_fragment(
                np.concatenate([s.means2d for s in sources]),
                np.concatenate([s.conics for s in sources]),
                np.concatenate([s.colors for s in sources]),
                np.concatenate([s.opacities for s in sources]),
                frag,
                loss.grad_image * weight,
                background=background,
                config=raster_cfg,
            )

            grads = np.zeros((ids.size, layout.PARAM_DIM), dtype=dtype)
            m2d = np.zeros(ids.size, dtype=dtype)
            offsets = frag.offsets
            for j, k in enumerate(active):
                sel, local = members[k]
                sl = slice(int(offsets[j]), int(offsets[j + 1]))
                store = self.store.stores[k]
                values = store.stage(local)
                returned = False
                try:
                    shard = GaussianModel(values)
                    pgrads = projection.project_backward(
                        shard.means, shard.log_scales, shard.quats,
                        shard.sh, region_cam, projs[j],
                        grad_means2d=rgrads.means2d[sl],
                        grad_conics=rgrads.conics[sl],
                        grad_colors=rgrads.colors[sl],
                        grad_opacities=rgrads.opacities[sl],
                    )
                    returned = True
                finally:
                    store.unstage(local, returned=returned)
                grads[sel, layout.MEAN_SLICE] = pgrads.means
                grads[sel, layout.SCALE_SLICE] = pgrads.log_scales
                grads[sel, layout.QUAT_SLICE] = pgrads.quats
                grads[sel, layout.OPACITY_SLICE] = pgrads.opacity_logits
                grads[sel, layout.SH_SLICE] = pgrads.sh.reshape(
                    local.size, layout.SH_DIM
                )
                m2d[sel] = rgrads.mean2d_abs[sl]
        finally:
            self.memory.free("activations", act_bytes)
        return _RegionOutput(
            ids=ids,
            grads=grads,
            mean2d_abs=m2d,
            loss=loss.loss * weight,
            l1=loss.l1 * weight,
            ssim=loss.ssim,
        )

    # -- reporting / lifecycle --------------------------------------------
    #: ledger counters a :class:`ShardReport` carries, verbatim
    _SHARD_LEDGER_FIELDS = (
        "h2d_bytes", "d2h_bytes", "h2d_count", "d2h_count",
        "page_in_bytes", "page_out_bytes",
    )

    def shard_reports(self) -> list[ShardReport]:
        """Per-shard memory and traffic accounting."""
        return [
            ShardReport(
                shard=k,
                num_gaussians=int(rows.size),
                peak_bytes=tracker.peak_bytes,
                live_bytes=tracker.live_bytes,
                **{
                    f: ledger.counts()[f]
                    for f in self._SHARD_LEDGER_FIELDS
                },
            )
            for k, (rows, tracker, ledger) in enumerate(
                zip(self.shard_rows, self.shard_trackers, self.shard_ledgers)
            )
        ]

    def finalize(self) -> None:
        super().finalize()
        self._close_pool()

    def rebuild(self, model: GaussianModel) -> None:
        # keep the pool: workers are stateless (geometry ships per call),
        # and respawning K processes per densification dominated short
        # runs before the pool became persistent
        super().rebuild(model)

    def __del__(self):
        try:
            self._close_pool()
        except Exception:
            pass

    def checkpoint_entries(self):
        entries = []
        for k, rows in enumerate(self.shard_rows):
            hybrid = self.store.stores[k]
            entries.append((f"shard{k}_geo", hybrid.children[0], rows))
            entries.append((f"shard{k}_host", hybrid.children[1], rows))
        return entries


class _AsyncPrefetcher:
    """Background leg of the out-of-core pipeline.

    Given a hint of the upcoming views, a daemon thread predicts their
    active shards (a cull over the device-resident geometry) and
    snapshots the spilled ones into host buffers
    (:meth:`~repro.core.stores.DiskStore.preload`) while the training
    thread renders the *current* view — the TideGS-style overlap of page
    traffic with compute. The snapshots are staged per hinted view:
    nothing is installed into any store until the training thread
    reaches that view's prefetch point and adopts them there, so store
    state, trackers, and the ledger only ever mutate on the training
    thread, and a stale prediction (the geometry moved, a racing spill)
    degrades to the ordinary synchronous page-in.

    At ``depth == 1`` this is exactly the historical single-slot double
    buffer: one view staged at a time, the slot drained on every
    :meth:`take`. At ``depth > 1`` the hint is a lookahead *list*
    (``locality_view_order`` makes it predictive) and staged views
    survive :meth:`take` until consumed or dropped from a newer hint —
    the depth-D staging queue. Host bytes held by the queue are capped
    at ``depth x resident budget x worst shard state`` (the staging
    budget); the worker stops staging deeper views at the cap.
    """

    def __init__(self, system: "OutOfCoreGSScaleSystem", depth: int = 1):
        self._system = system
        self.depth = depth
        self._cameras: list[Camera] = []
        #: staged snapshots keyed by ``id(camera)`` — identity, not
        #: equality: the trainer hints the very objects it will train on
        self._results: dict[int, tuple[Camera, dict]] = {}
        #: host bytes of the staged queue, current and high-water (kept
        #: here, not on a MemoryTracker: trackers are training-
        #: thread-only, and the buffers are owned by this thread until
        #: adoption — the sim's ``staging_shards`` term models them)
        self.staged_bytes = 0
        self.peak_staged_bytes = 0
        self._have_job = threading.Event()
        self._done = threading.Event()
        self._done.set()
        self._stop = False
        self._thread = threading.Thread(
            target=self._run, name="gsscale-prefetch", daemon=True
        )
        self._thread.start()

    def staging_budget_bytes(self) -> int:
        """Cap on staged host bytes: depth x resident budget x the worst
        shard's state size (never binding at depth 1, where a single
        view can stage at most one budget's worth)."""
        system = self._system
        worst = max(
            (
                system._nongeo_store(k)._state_bytes()
                for k in range(system.num_shards)
            ),
            default=0,
        )
        return self.depth * system.resident_set.budget * worst

    def schedule(self, cameras: list[Camera]) -> None:
        """Start prefetching for ``cameras``, nearest first (waits out
        any running job). Staged views absent from the new hint are
        dropped; views already staged are not re-read."""
        if self._stop:
            return
        self._done.wait()
        keep = {id(c) for c in cameras}
        for key in list(self._results):
            if key not in keep:
                del self._results[key]
        self._refresh_staged()
        self._cameras = [c for c in cameras if id(c) not in self._results]
        self._done.clear()
        self._have_job.set()

    def take(self, camera: Camera) -> tuple[bool, dict]:
        """``(matched, buffers)`` for ``camera``.

        ``matched`` says a staging job ran for exactly this view — the
        denominator of any hit/miss accounting. At depth 1 any other
        staged view is discarded (the double-buffer contract); at
        depth > 1 deeper views stay queued for their own take.
        """
        self._done.wait()
        entry = self._results.pop(id(camera), None)
        if self.depth == 1:
            self._results.clear()
        self._refresh_staged()
        if entry is not None:
            return True, entry[1]
        return False, {}

    def close(self) -> None:
        """Stop the worker thread (idempotent)."""
        self._stop = True
        self._have_job.set()
        self._thread.join(timeout=5.0)

    def _refresh_staged(self) -> None:
        # fp32-equivalent units, like every MemoryTracker in the repo
        system = self._system
        self.staged_bytes = sum(
            system._nongeo_store(k)._state_bytes()
            for _, buffers in self._results.values()
            for k in buffers
        )
        self.peak_staged_bytes = max(self.peak_staged_bytes, self.staged_bytes)

    def _run(self) -> None:
        while True:
            self._have_job.wait()
            self._have_job.clear()
            if self._stop:
                self._done.set()
                return
            _trace.name_current_thread("gsscale-prefetch")
            cap = self.staging_budget_bytes()
            for camera in self._cameras:
                try:
                    # fork guard: a parallel-raster pool must never fork
                    # while this thread is mid-read (inherited half-held
                    # locks would wedge the child workers)
                    with pool_fork_guard, _span("page/prefetch", "page"):
                        buffers = self._prepare(camera, cap)
                except Exception:
                    buffers = {}  # a failed prefetch is just a cache miss
                self._results[id(camera)] = (camera, buffers)
                self._refresh_staged()
            self._done.set()

    def _prepare(self, camera: Camera, cap: int) -> dict:
        system = self._system
        active = [
            k
            for k in range(system.num_shards)
            if frustum_cull(*system._shard_geometry(k), camera).num_visible
        ]
        buffers = {}
        total = self.staged_bytes
        for k in active[: system.resident_set.budget]:
            store = system._nongeo_store(k)
            cost = store._state_bytes()
            if total + cost > cap:
                break  # staging deeper would blow the host budget
            pre = store.preload()
            if pre is not None:
                buffers[k] = pre
                total += cost
        return buffers


class OutOfCoreGSScaleSystem(ShardedGSScaleSystem):
    """Sharded GS-Scale with an out-of-core host tier (TideGS-style).

    Identical to :class:`ShardedGSScaleSystem` except each shard's
    non-geometric block lives in a :class:`~repro.core.stores.DiskStore`:
    parameters and Adam moments are backed by memory-mapped spill files
    under ``GSScaleConfig.spill_dir`` (a temporary directory when unset),
    and at most ``GSScaleConfig.resident_shards`` shards are paged into
    host DRAM at once (a shared :class:`~repro.core.stores.ResidentSet`).
    ``self.host_memory`` tracks the resident working set; the ledger's
    ``page_in``/``page_out`` channel meters the disk traffic.

    Each step prefetches the view's active shards, runs the ordinary
    sharded step (spilled shards page in on demand; inactive shards with
    unsaturated defer counters tick without paging at all), then spills
    whatever the view did not touch. Placement changes accounting, never
    numerics: the run is bit-identical to the in-memory sharded system.

    Three deep-tier knobs extend the leg (all default-off, preserving the
    bit-identity above): ``page_codec`` stores spilled pages compressed
    (see :mod:`repro.core.pagecodec`; ``lossless`` keeps bit-identity,
    ``float16`` trades tolerance-bounded drift for a 2x smaller disk
    leg), ``prefetch_depth`` widens the async leg's lookahead to a
    depth-D staging queue, and ``write_behind`` moves dirty page-outs to
    a background writer (epoch-fenced against :meth:`~repro.core.stores.
    DiskStore.adopt` and drained before densification rebuilds and
    checkpoints) so the admit path stops paying the write.
    """

    name = "outofcore"

    def _setup(self, model: GaussianModel) -> None:
        cfg = self.config
        if cfg.spill_dir is None:
            import tempfile

            # held on the system so the spill files die with it
            self._spill_tmp = tempfile.TemporaryDirectory(
                prefix="gsscale-spill-"
            )
            self._spill_root = self._spill_tmp.name
        else:
            self._spill_tmp = None
            self._spill_root = cfg.spill_dir
        self.host_memory = MemoryTracker()
        self.resident_set = ResidentSet(cfg.resident_shards)
        self._cull_cache: tuple[Camera, CullResult] | None = None
        self.prefetch_hits = 0
        self.prefetch_misses = 0
        self._pending_hints: list[Camera] = []
        self._scheduled_hints: list[Camera] = []
        # rebuild fences: the old prefetch thread targets old stores, and
        # every queued page-out must land before the spill files are
        # reused by the new stores
        self._close_prefetcher()
        self._sync_spill_carryover = getattr(self, "_sync_spill_carryover", 0)
        self._sync_spill_s_carryover = getattr(self, "_sync_spill_s_carryover", 0.0)
        self._write_behind_carryover = getattr(self, "_write_behind_carryover", 0)
        if getattr(self, "store", None) is not None:
            for k in range(self.num_shards):
                st = self._nongeo_store(k)
                self._sync_spill_carryover += st.sync_spill_bytes
                self._sync_spill_s_carryover += st.sync_spill_s
        self._close_writer()
        self._prefetch_staged_peak = 0  # rebuild resets accounting, like trackers
        self._prefetcher = (
            _AsyncPrefetcher(self, depth=cfg.prefetch_depth)
            if cfg.async_prefetch
            else None
        )
        self._writer = _WriteBehindWriter() if cfg.write_behind else None
        super()._setup(model)

    @property
    def prefetch_staged_peak_bytes(self) -> int:
        """High-water host bytes of the async leg's staged double buffer.

        Not part of ``host_memory`` (the installed working set the
        resident budget bounds): the buffers belong to the background
        thread until adoption. The modeled counterpart is the
        ``staging_shards`` term of
        :func:`repro.sim.memory.outofcore_host_state_bytes` — add the
        two when sizing host DRAM for an async run.
        """
        if self._prefetcher is None:
            return self._prefetch_staged_peak
        return max(self._prefetch_staged_peak, self._prefetcher.peak_staged_bytes)

    def _close_prefetcher(self) -> None:
        prefetcher = getattr(self, "_prefetcher", None)
        if prefetcher is not None:
            self._prefetch_staged_peak = max(
                getattr(self, "_prefetch_staged_peak", 0),
                prefetcher.peak_staged_bytes,
            )
            prefetcher.close()
            self._prefetcher = None

    def _close_writer(self) -> None:
        """Drain and stop the write-behind writer (idempotent).

        The fence of the write-behind contract: after this returns every
        queued page-out has landed on disk (or its epoch went stale and
        was skipped), so checkpoints and densification rebuilds never
        race an in-flight write. Spills afterwards fall back to the
        synchronous path.
        """
        writer = getattr(self, "_writer", None)
        if writer is None:
            return
        self._writer = None
        if getattr(self, "store", None) is not None:
            for k in range(self.num_shards):
                self._nongeo_store(k).writer = None
        writer.close()
        self._write_behind_carryover = (
            getattr(self, "_write_behind_carryover", 0) + writer.jobs_written
        )

    @property
    def sync_spill_bytes(self) -> int:
        """Decoded bytes spilled *synchronously* on the training thread,
        cumulative across densification rebuilds — the admit-path disk
        stall in deterministic byte units. Write-behind runs keep this at
        zero (every page-out rides the background writer); synchronous
        runs accumulate the full page-out traffic here."""
        total = getattr(self, "_sync_spill_carryover", 0)
        if getattr(self, "store", None) is not None:
            total += sum(
                self._nongeo_store(k).sync_spill_bytes
                for k in range(self.num_shards)
            )
        return total

    @property
    def sync_spill_seconds(self) -> float:
        """Wall-clock seconds the training thread spent in synchronous
        page-out writes (informational; byte counters are the
        deterministic comparison)."""
        total = getattr(self, "_sync_spill_s_carryover", 0.0)
        if getattr(self, "store", None) is not None:
            total += sum(
                self._nongeo_store(k).sync_spill_s
                for k in range(self.num_shards)
            )
        return total

    @property
    def write_behind_jobs(self) -> int:
        """Page-outs completed by the background writer, cumulative
        across rebuilds (0 unless ``write_behind`` is on)."""
        total = getattr(self, "_write_behind_carryover", 0)
        writer = getattr(self, "_writer", None)
        if writer is not None:
            total += writer.jobs_written
        return total

    def _make_nongeo_store(
        self,
        params_block: np.ndarray,
        tracker: MemoryTracker,
        ledger: TransferLedger,
        k: int,
    ) -> ParameterStore:
        import os

        cfg = self.config
        return DiskStore(
            params_block,
            layout.NON_GEOMETRIC_BLOCK,
            cfg.adam_config(self._lr[layout.NON_GEOMETRIC_SLICE]),
            tracker,
            ledger,
            spill_path=os.path.join(self._spill_root, f"shard{k}_host"),
            host_memory=self.host_memory,
            resident_set=self.resident_set,
            forwarding=True,
            deferred=True,
            max_defer=cfg.max_defer,
            codec=cfg.page_codec,
            writer=self._writer,
            integrity=cfg.page_integrity,
        )

    # -- spill / prefetch lifecycle ---------------------------------------
    def _nongeo_store(self, k: int) -> DiskStore:
        return self.store.stores[k].children[1]

    def active_shard_ids(self, camera: Camera) -> list[int]:
        """Shards with at least one Gaussian inside ``camera``'s frustum."""
        return [
            k
            for k in range(self.num_shards)
            if frustum_cull(*self._shard_geometry(k), camera).num_visible
        ]

    def hint_next_view(self, camera: Camera) -> None:
        """Tell the async prefetch leg which view comes next.

        With ``async_prefetch`` on, the next :meth:`step` kicks off a
        background worker that snapshots that view's spilled shards while
        the current view renders; the step after adopts the buffers
        instead of stalling on the disk read. Without the async leg this
        is a no-op, so callers can hint unconditionally (the
        :class:`~repro.core.trainer.Trainer` does).
        """
        self.hint_upcoming_views([camera])

    def hint_upcoming_views(self, cameras: list[Camera]) -> None:
        """Tell the async prefetch leg the next several views, nearest
        first — the depth-D generalization of :meth:`hint_next_view`.
        Only the first ``prefetch_depth`` upcoming views are staged."""
        if self._prefetcher is not None:
            self._pending_hints = list(cameras)

    @property
    def prefetch_depth(self) -> int:
        """Lookahead depth of the async staging queue (1 = the classic
        double buffer; 0 shown when the async leg is off)."""
        return self._prefetcher.depth if self._prefetcher is not None else 0

    def prefetch(self, camera: Camera) -> list[int]:
        """Page in the view's active shards (up to the resident budget).

        The synchronous anchor of the pipeline: whatever the async leg
        managed to stage for ``camera`` is adopted here (same ledger
        records, same accounting — the read already happened off the
        critical path); everything else pages in on demand. The
        whole-view cull this needs (run through the ``shard_workers``
        pool when enabled) is cached and reused by the step's own region
        planning, so prefetching adds no culling work.
        """
        if self._prefetcher is not None:
            hinted, staged = self._prefetcher.take(camera)
        else:
            hinted, staged = False, {}
        whole = super()._cull(camera)
        self._cull_cache = (camera, whole)
        active = [
            k
            for k, rows in enumerate(self.shard_rows)
            if self.store._members(whole.valid_ids, rows)[0].size
        ]
        for k in active[: self.resident_set.budget]:
            store = self._nongeo_store(k)
            pre = staged.pop(k, None)
            if pre is not None and store.adopt(pre):
                self.prefetch_hits += 1
                continue
            if hinted and store.is_resident:
                # already resident at a hinted view: the retention the
                # depth-D queue buys (the shard never left host DRAM), as
                # much a staging hit as an adopted snapshot
                self.prefetch_hits += 1
            elif hinted:
                # a miss only when the async leg had its chance: a staging
                # job ran for this very view and still failed to cover the
                # shard (stale snapshot, wrong prediction, racing spill)
                self.prefetch_misses += 1
            store.page_in()
        # this view's working set is settled: start staging the hinted
        # upcoming views in the background, overlapped with the render
        self._scheduled_hints = []
        if self._prefetcher is not None and self._pending_hints:
            hints, self._pending_hints = self._pending_hints, []
            nxt = [c for c in hints if c is not camera][: self._prefetcher.depth]
            if nxt:
                self._scheduled_hints = nxt
                self._prefetcher.schedule(nxt)
        return active

    def _cull(self, camera: Camera) -> CullResult:
        # geometry is immutable between prefetch and region planning
        # (gradients land after rendering), so the cached cull is exact
        if self._cull_cache is not None and self._cull_cache[0] is camera:
            return self._cull_cache[1]
        return super()._cull(camera)

    def spill_inactive(self, active: list[int]) -> None:
        """Spill every resident shard the view left untouched.

        At ``prefetch_depth > 1`` the scheduled lookahead also protects
        shards the *upcoming* views need (nearest view first, while the
        keep-set stays inside the resident budget): spilling a shard the
        staging queue just snapshotted — or that the next view will page
        right back in — is the D=1 thrash the depth-D queue exists to
        avoid. Depth 1 keeps the historical behavior exactly.
        """
        keep = set(active)
        if self._prefetcher is not None and self._prefetcher.depth > 1:
            for cam in self._scheduled_hints:
                if len(keep) >= self.resident_set.budget:
                    break
                for k in self.active_shard_ids(cam):
                    if len(keep) >= self.resident_set.budget:
                        break
                    keep.add(k)
        for k in range(self.num_shards):
            store = self._nongeo_store(k)
            if k not in keep and store.is_resident:
                store.spill()

    def step(self, camera: Camera, gt_image: np.ndarray) -> StepReport:
        with _span("train/prefetch", "train"):
            active = self.prefetch(camera)
        try:
            report = super().step(camera, gt_image)
        finally:
            self._cull_cache = None  # geometry mutates at step end
        with _span("train/spill", "train"):
            self.spill_inactive(active)
        return report

    def finalize(self) -> None:
        self._close_prefetcher()
        super().finalize()
        # the checkpoint fence: save_checkpoint finalizes first, so every
        # queued page-out (including ones the flush's own evictions just
        # enqueued) lands before any state is serialized. Drain, don't
        # close: training may continue (mid-run checkpoints, densify).
        writer = getattr(self, "_writer", None)
        if writer is not None:
            writer.drain()

    def __del__(self):
        try:
            self._close_prefetcher()
        except Exception:
            pass
        try:
            self._close_writer()
        except Exception:
            pass
        super().__del__()


def create_system(model: GaussianModel, config: GSScaleConfig) -> TrainingSystem:
    """Factory for the Figure-11 systems plus the sharded multi-device and
    out-of-core extensions."""
    if config.system == "gpu_only":
        return GPUOnlySystem(model, config)
    if config.system == "baseline_offload":
        return BaselineOffloadSystem(model, config)
    if config.system == "gsscale_no_deferred":
        return GSScaleSystem(model, config, deferred=False)
    if config.system == "gsscale":
        return GSScaleSystem(model, config, deferred=True)
    if config.system == "sharded":
        return ShardedGSScaleSystem(model, config)
    if config.system == "outofcore":
        return OutOfCoreGSScaleSystem(model, config)
    raise ValueError(f"unknown system {config.system!r}")
