"""Configuration of the GS-Scale training engine."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..gaussians.layout import SH_DEGREE
from ..optim.base import AdamConfig
from ..optim.lr_schedule import packed_lr_vector
from ..render.rasterize import RasterConfig
from ..train.loss import DEFAULT_SSIM_LAMBDA

#: The paper's system variants (Figure 11's four bars) plus the sharded
#: multi-device extension (Grendel-style Gaussian sharding over K stores)
#: and its out-of-core placement tier (TideGS-style disk spill/prefetch).
SYSTEM_NAMES = (
    "gpu_only",
    "baseline_offload",
    "gsscale_no_deferred",
    "gsscale",
    "sharded",
    "outofcore",
)


@dataclass
class GSScaleConfig:
    """Everything the training engine needs to know.

    Attributes:
        system: one of :data:`SYSTEM_NAMES`.
        mem_limit: image-splitting threshold — views whose active ratio
            exceeds this fraction of total Gaussians are split
            (Section 4.4; the paper uses 0.3).
        max_defer: deferred-update counter saturation (4-bit -> 15).
        sh_degree: maximum spherical-harmonics degree.
        sh_degree_interval: if set, the active degree ramps up by one every
            this many iterations (3DGS starts at degree 0 and raises it
            every 1000 iterations); ``None`` uses ``sh_degree`` throughout.
        position_lr_decay_steps: if set, the position learning rate decays
            log-linearly to ``position_lr_final_scale`` of its initial
            value over this many iterations (the 3DGS schedule).
        position_lr_final_scale: final/initial position-lr ratio.
        ssim_lambda: DSSIM weight in the photometric loss.
        scene_extent: world radius; scales the position learning rate.
        lr_overrides: per-attribute learning-rate overrides.
        beta1, beta2, eps: Adam hyperparameters (eps=1e-15 per gsplat).
        device_capacity_bytes: optional simulated GPU capacity; the
            engine's MemoryTracker raises MemoryError past it, reproducing
            the OOM behaviour of Figure 11. For the ``sharded`` system this
            caps the *aggregate* across shards.
        num_shards: shard count of the ``sharded`` system (spatial
            partition of the Gaussian set; ignored by the other systems).
        shard_workers: >1 fans the sharded system's per-shard culling out
            over a multiprocessing pool of this size; 0/1 stays serial.
        shard_device_capacity_bytes: optional per-shard device capacity
            (each shard's MemoryTracker raises MemoryError past it).
        spill_dir: directory of the ``outofcore`` system's memory-mapped
            spill files; ``None`` uses a temporary directory that dies
            with the system (a caller-provided directory is never
            deleted).
        resident_shards: how many shards' non-geometric host state the
            ``outofcore`` system keeps paged into host DRAM at once (the
            resident-set budget; the rest lives in the spill files).
        async_prefetch: overlap the ``outofcore`` system's disk page-ins
            with compute: a background worker snapshots the *next* view's
            spilled shards (``DiskStore.preload``, double-buffered) while
            the current view renders, and the next step adopts the
            buffers instead of reading disk on the critical path. Needs a
            next-view hint (``OutOfCoreGSScaleSystem.hint_next_view``;
            the :class:`~repro.core.trainer.Trainer` issues it
            automatically). Numerics and ledger traffic are identical to
            the synchronous schedule — only the stall moves off the
            critical path.
        page_codec: how the ``outofcore`` system's spill files are stored
            on disk — ``"raw"`` (memory-mapped native dtype, the
            default), ``"lossless"`` (byte-shuffle + zlib, bit-identical
            trajectories), or ``"float16"`` (half-precision pages, 2x
            less disk traffic, tolerance-bounded drift). See
            :mod:`repro.core.pagecodec`.
        prefetch_depth: lookahead of the async staging queue — how many
            upcoming views the background worker snapshots ahead of the
            training thread. 1 is the classic double buffer; deeper
            queues need ``async_prefetch`` and pay off on
            locality-ordered view schedules (``view_order="locality"``).
        write_behind: move the ``outofcore`` system's dirty page-outs to
            a background writer thread (epoch-fenced, drained before
            densification rebuilds and checkpoints) instead of writing
            them synchronously on the admit path.
        page_integrity: checksum the ``outofcore`` system's spill pages
            (CRC32 on raw memory-mapped pages, sealed ``GSP1`` headers
            on encoded ones) so silent disk corruption raises
            :class:`~repro.core.integrity.CorruptPageError` at page-in
            instead of corrupting the trajectory. On by default; the
            checksum cost is per page-in/out, not per step.
        pool_retries: how many times a supervised
            :class:`~repro.render.parallel.PersistentPool` map is
            re-dispatched after a worker death or task deadline before
            giving up with :class:`~repro.render.parallel.
            PoolFaultError`.
        pool_task_timeout_s: optional per-map deadline (seconds) on
            pooled raster/shard work; a map exceeding it is treated like
            a worker death (respawn + retry). ``None`` waits forever.
        telemetry: record measured spans and metrics. Installs the
            process-wide :mod:`repro.telemetry` tracer when the system
            is built; training phases (cull/stage/forward/backward/
            unstage/commit), disk paging, the prefetch and write-behind
            threads, and pool maps (with in-worker spans) all land in
            one ring buffer, exportable as Chrome trace JSON next to
            the simulator's modeled trace. Off by default; the
            instrumentation call sites are near-free when disabled.
        raster: rasterizer thresholds and backend selection.
        engine: one-shot convenience override for ``raster.engine`` — one
            of :data:`repro.render.rasterize.ENGINES` (``"reference"``,
            ``"tiled"``, ``"vectorized"``). Every training system and
            benchmark renders through this backend; ``None`` keeps whatever
            ``raster`` says. The override is folded into ``raster`` and
            reset to ``None`` during construction, so ``raster.engine`` is
            the single source of truth afterwards.
        background: render background color.
        seed: RNG seed for anything stochastic in the engine.
    """

    system: str = "gsscale"
    mem_limit: float = 0.3
    max_defer: int = 15
    sh_degree: int = SH_DEGREE
    sh_degree_interval: int | None = None
    position_lr_decay_steps: int | None = None
    position_lr_final_scale: float = 0.01
    ssim_lambda: float = DEFAULT_SSIM_LAMBDA
    scene_extent: float = 1.0
    lr_overrides: dict | None = None
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-15
    device_capacity_bytes: int | None = None
    num_shards: int = 4
    shard_workers: int = 0
    shard_device_capacity_bytes: int | None = None
    spill_dir: str | None = None
    resident_shards: int = 1
    async_prefetch: bool = False
    page_codec: str = "raw"
    prefetch_depth: int = 1
    write_behind: bool = False
    page_integrity: bool = True
    pool_retries: int = 2
    pool_task_timeout_s: float | None = None
    telemetry: bool = False
    raster: RasterConfig = field(default_factory=RasterConfig)
    engine: str | None = None
    background: np.ndarray | None = None
    seed: int = 0

    def __post_init__(self):
        if self.system not in SYSTEM_NAMES:
            raise ValueError(
                f"unknown system {self.system!r}; choose from {SYSTEM_NAMES}"
            )
        if not 0.0 < self.mem_limit <= 1.0:
            raise ValueError("mem_limit must be in (0, 1]")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.shard_workers < 0:
            raise ValueError("shard_workers must be >= 0")
        if self.resident_shards < 1:
            raise ValueError("resident_shards must be >= 1")
        # fail here, not on the first spill deep inside a training run
        from .pagecodec import get_page_codec

        get_page_codec(self.page_codec)
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")
        if self.prefetch_depth > 1 and not self.async_prefetch:
            raise ValueError(
                "prefetch_depth > 1 requires async_prefetch=True "
                "(the staging queue is the async leg's lookahead)"
            )
        if self.pool_retries < 0:
            raise ValueError("pool_retries must be >= 0")
        if self.pool_task_timeout_s is not None and self.pool_task_timeout_s <= 0:
            raise ValueError("pool_task_timeout_s must be positive (or None)")
        if self.engine is not None:
            if self.engine != self.raster.engine:
                # replace() re-runs RasterConfig validation on the name
                self.raster = replace(self.raster, engine=self.engine)
            # one-shot override: clear it so a later dataclasses.replace
            # with a new `raster` is not silently reverted; `raster.engine`
            # is the single source of truth from here on
            self.engine = None

    def position_lr_scale_at(self, iteration: int) -> float:
        """Multiplier on the position lr at a (1-based) iteration."""
        if self.position_lr_decay_steps is None:
            return 1.0
        from ..optim.lr_schedule import exponential_decay

        return exponential_decay(
            iteration, self.position_lr_decay_steps, 1.0,
            self.position_lr_final_scale,
        )

    def sh_degree_at(self, iteration: int) -> int:
        """Active SH degree at a (1-based) training iteration."""
        if self.sh_degree_interval is None:
            return self.sh_degree
        return min((iteration - 1) // self.sh_degree_interval, self.sh_degree)

    def lr_vector(self, dtype=np.float64) -> np.ndarray:
        """Packed per-column learning rates."""
        return packed_lr_vector(
            scene_extent=self.scene_extent,
            overrides=self.lr_overrides,
            dtype=dtype,
        )

    def adam_config(self, lr: np.ndarray) -> AdamConfig:
        """Adam config with the given (sliced) lr vector."""
        return AdamConfig(
            lr=lr, beta1=self.beta1, beta2=self.beta2, eps=self.eps
        )
