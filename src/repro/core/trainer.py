"""End-to-end trainer: iterates views, densifies, evaluates.

Orchestrates a :class:`~repro.core.systems.TrainingSystem` over a capture
session (cameras + ground-truth images), running the seven-step pipeline
of Figure 2 each iteration and adaptive density control on schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cameras.camera import Camera
from ..densify import DensificationController, DensifyConfig, DensifyReport
from ..gaussians import GaussianModel
from ..metrics import perceptual_distance, psnr, ssim
from ..render import render
from ..telemetry.trace import span as _span
from .config import GSScaleConfig
from .systems import (
    StepReport,
    TrainingSystem,
    create_system,
    locality_view_order,
)


@dataclass
class EvalResult:
    """Quality metrics averaged over a set of held-out views."""

    psnr: float
    ssim: float
    lpips_proxy: float
    num_views: int


@dataclass
class TrainingHistory:
    """Everything a training run produced.

    Attributes:
        steps: per-iteration reports.
        densify_reports: one entry per densification pass that fired.
        final_eval: metrics on the test views after training (if run).
        peak_device_bytes: high-water device memory across the run
            (fp32-equivalent accounting).
        h2d_bytes / d2h_bytes: total simulated PCIe traffic.
    """

    steps: list[StepReport] = field(default_factory=list)
    densify_reports: list[DensifyReport] = field(default_factory=list)
    final_eval: EvalResult | None = None
    peak_device_bytes: int = 0
    h2d_bytes: int = 0
    d2h_bytes: int = 0

    @property
    def num_iterations(self) -> int:
        """Completed training iterations."""
        return len(self.steps)

    @property
    def final_loss(self) -> float:
        """Loss of the last iteration."""
        if not self.steps:
            raise ValueError("no training steps recorded")
        return self.steps[-1].loss

    @property
    def mean_active_ratio(self) -> float:
        """Average fraction of Gaussians used per iteration (Figure 4)."""
        if not self.steps:
            raise ValueError("no training steps recorded")
        visible = np.array([s.num_visible for s in self.steps], dtype=float)
        return float(np.mean(visible)) / max(self._final_n, 1)

    @property
    def mean_ssim(self) -> float:
        """Average per-step SSIM over the run.

        Steps in which nothing was visible report ``ssim = nan`` (there
        was no image) and are skipped here — averaging a fake 1.0 for
        them would inflate the quality metric. NaN only when *every* step
        was empty.
        """
        if not self.steps:
            raise ValueError("no training steps recorded")
        values = np.array([s.ssim for s in self.steps], dtype=float)
        if np.all(np.isnan(values)):
            return float("nan")
        return float(np.nanmean(values))

    _final_n: int = 0


class Trainer:
    """Trains a Gaussian scene with one of the four systems.

    Args:
        model: initial Gaussians (e.g. from a point cloud).
        config: engine configuration (system choice, mem_limit, ...).
        densify: optional densification schedule; None disables it.
    """

    def __init__(
        self,
        model: GaussianModel,
        config: GSScaleConfig,
        densify: DensifyConfig | None = None,
    ):
        self.config = config
        self.system: TrainingSystem = create_system(model, config)
        self._densify_cfg = densify
        self._controller = (
            DensificationController(densify, model.num_gaussians, seed=config.seed)
            if densify
            else None
        )

    @property
    def num_gaussians(self) -> int:
        """Current scene size."""
        return self.system.num_gaussians

    def train(
        self,
        cameras: list[Camera],
        images: list[np.ndarray],
        iterations: int,
        shuffle: bool = False,
        view_order: str = "sequential",
        start_iteration: int = 0,
    ) -> TrainingHistory:
        """Run ``iterations`` training steps cycling through the views.

        Args:
            cameras: training cameras.
            images: matching ground-truth images.
            iterations: optimizer steps to run in this call.
            shuffle: randomize view order each epoch (seeded).
            view_order: ``"sequential"`` cycles views as given;
                ``"locality"`` reorders each epoch with
                :func:`~repro.core.systems.locality_view_order` so
                consecutive views share a resident shard set — the
                schedule that amortizes the out-of-core system's page-ins
                (and that the sim's ``OUTOFCORE_VIEW_LOCALITY`` models).
                Mutually exclusive with ``shuffle``.
            start_iteration: global iteration the run resumes at. Offsets
                the view cursor and the densification clock, so a
                checkpointed run that restarts with
                ``start_iteration=k`` walks the same deterministic
                schedule as an uninterrupted one (the patch-pipeline
                resume path relies on this).
        """
        if len(cameras) != len(images):
            raise ValueError("cameras and images must align")
        if not cameras:
            raise ValueError("need at least one training view")
        if start_iteration < 0:
            raise ValueError("start_iteration must be >= 0")
        if view_order not in ("sequential", "locality"):
            raise ValueError(
                f"unknown view_order {view_order!r}; choose "
                "'sequential' or 'locality'"
            )
        if shuffle and view_order != "sequential":
            raise ValueError("shuffle and view_order are mutually exclusive")
        history = TrainingHistory()
        rng = np.random.default_rng(self.config.seed)
        if view_order == "locality":
            order = locality_view_order(cameras)
        else:
            order = np.arange(len(cameras))
        hints = hasattr(self.system, "hint_next_view")
        depth = getattr(self.system, "prefetch_depth", 1)
        deep_hints = depth > 1 and hasattr(self.system, "hint_upcoming_views")

        stop = start_iteration + iterations
        for it in range(start_iteration, stop):
            pos = it % len(cameras)
            if pos == 0 and shuffle:
                rng.shuffle(order)
            view = order[pos]
            if deep_hints and it + 1 < stop:
                # depth-D overlap: hand the system the next D views of
                # the schedule (locality order makes the deeper entries
                # worth staging), nearest first
                self.system.hint_upcoming_views(
                    [
                        cameras[order[(it + 1 + j) % len(cameras)]]
                        for j in range(min(depth, stop - it - 1))
                    ]
                )
            elif hints and it + 1 < stop:
                # overlap leg: let the system stage the next view's
                # shards while this view renders (exact for the steady
                # in-epoch case; a wrong guess is only a cache miss)
                self.system.hint_next_view(cameras[order[(it + 1) % len(cameras)]])
            report = self.system.step(cameras[view], images[view])
            history.steps.append(report)
            if self._controller is not None:
                self._controller.accumulate(report.valid_ids, report.mean2d_abs)
                self._maybe_densify(it + 1, history)
                self._maybe_reset_opacity(it + 1)

        self.system.finalize()
        history.peak_device_bytes = self.system.memory.peak_bytes
        history.h2d_bytes = self.system.ledger.h2d_bytes
        history.d2h_bytes = self.system.ledger.d2h_bytes
        history._final_n = self.system.num_gaussians
        return history

    def _maybe_densify(self, iteration: int, history: TrainingHistory) -> None:
        if not self._controller.should_run(iteration):
            return
        with _span("train/densify", "train", iteration=iteration):
            # structural edits need committed, materialized state
            self.system.finalize()
            model = self.system.materialized_model()
            new_model, report = self._controller.run(
                model, iteration, self.config.scene_extent
            )
            history.densify_reports.append(report)
            self._rebuild_preserving_accounting(new_model)

    def _maybe_reset_opacity(self, iteration: int) -> None:
        if not self._controller.should_reset_opacity(iteration):
            return
        # opacity is host-side state in the offload systems: commit
        # everything, rewrite, and re-place (same path as densification)
        self.system.finalize()
        model = self.system.materialized_model()
        self._controller.reset_opacity(model)
        self._rebuild_preserving_accounting(model)

    def _rebuild_preserving_accounting(self, model: GaussianModel) -> None:
        """Re-place parameters without losing run-level accounting.

        ``rebuild`` resets the memory tracker and the transfer ledger
        (their live state is sized by N); the run's high-water mark and
        cumulative PCIe traffic must survive the swap.
        """
        peak = self.system.memory.peak_bytes
        ledger = self.system.ledger
        self.system.rebuild(model)
        self.system.memory.peak_bytes = max(self.system.memory.peak_bytes, peak)
        self.system.ledger.h2d_bytes += ledger.h2d_bytes
        self.system.ledger.d2h_bytes += ledger.d2h_bytes
        self.system.ledger.h2d_count += ledger.h2d_count
        self.system.ledger.d2h_count += ledger.d2h_count

    def evaluate(
        self, cameras: list[Camera], images: list[np.ndarray]
    ) -> EvalResult:
        """Render held-out views with the current model and score them."""
        model = self.system.materialized_model()
        psnrs, ssims, lpips = [], [], []
        for cam, gt in zip(cameras, images):
            img = render(
                model,
                cam,
                sh_degree=self.config.sh_degree,
                background=self.config.background,
                config=self.config.raster,
            ).image
            psnrs.append(psnr(img, gt))
            ssims.append(ssim(img, gt))
            lpips.append(perceptual_distance(img, gt))
        return EvalResult(
            psnr=float(np.mean(psnrs)),
            ssim=float(np.mean(ssims)),
            lpips_proxy=float(np.mean(lpips)),
            num_views=len(cameras),
        )
