"""Page codecs for the out-of-core disk tier.

A :class:`PageCodec` turns a resident ``(N, dim)`` parameter/moment array
into the byte string stored on disk and back. The disk tier's effective
bandwidth is ``decoded_bytes / encoded_bytes`` times the raw device
bandwidth, so a 2x codec halves every page-in/page-out transfer — the
:class:`~repro.core.systems.TransferLedger` meters both sides of that
ratio (``page_in_bytes`` in fp32-equivalent accounting vs
``page_in_disk_bytes`` as actually stored).

Three codecs, all stdlib-only and deterministic:

* ``raw`` — identity. :class:`~repro.core.stores.DiskStore` and the
  serving shards special-case it to keep today's memory-mapped spill
  files (zero behavioral change; the bit-identity suites pin this).
* ``float16`` — non-geometric columns (SH coefficients, Adam moments)
  quantized to half precision in a signed-sqrt domain behind an exact
  per-column power-of-two scale (so tiny optimizer moments don't flush
  to zero and large coefficients don't clip). Lossy but *idempotent*:
  re-encoding a
  decoded page reproduces the same bytes, so repeated
  spill/page-in/spill cycles converge after the first quantization
  instead of drifting.
* ``lossless`` — byte-shuffle + zlib. Bit-exact for any dtype: the
  shuffle groups the k-th byte of every float together (exponent bytes
  compress far better than mantissa noise), which is what makes zlib
  worthwhile on floating-point pages at all.

Encoded page *files* are sealed: :meth:`PageCodec.encode_page` frames
the codec payload with the :mod:`repro.core.integrity` GSP1 header
(magic + length + CRC32) and :meth:`PageCodec.decode_page` validates it,
so a torn or bit-rotted ``.pagez`` surfaces as a
:class:`~repro.core.integrity.CorruptPageError` naming the file instead
of an opaque decode error. The seal lives at the file layer, not inside
``encode``/``decode`` — compression-ratio accounting and the codec
round-trip contract see pure payload bytes.
"""

from __future__ import annotations

import zlib

import numpy as np

from .integrity import seal_page, unseal_page

__all__ = ["PageCodec", "PAGE_CODECS", "get_page_codec"]


class PageCodec:
    """Encode/decode one page (a 2-D array) to/from bytes.

    Attributes:
        name: registry key (also embedded in encoded page filenames).
        lossless: whether ``decode(encode(x)) == x`` bit-exactly.
    """

    name: str = "abstract"
    lossless: bool = True
    #: dtype spilled state checkpoints in (``None`` = the store dtype).
    #: The scaled float16 codec keeps this ``None``: its decoded values
    #: can exceed half precision's native range (the per-column scale
    #: re-centers them), so checkpoints store the decoded store-dtype
    #: arrays rather than re-narrowing
    storage_dtype = None

    def encode(self, arr: np.ndarray) -> bytes:
        raise NotImplementedError

    def decode(self, buf: bytes, shape: tuple, dtype) -> np.ndarray:
        raise NotImplementedError

    def encode_page(self, arr: np.ndarray) -> bytes:
        """Encode and seal one page for on-disk storage."""
        return seal_page(self.encode(arr))

    def decode_page(self, buf: bytes, shape: tuple, dtype,
                    path: str = "") -> np.ndarray:
        """Validate a sealed page and decode its payload.

        Raises :class:`~repro.core.integrity.CorruptPageError` (tagged
        with ``path``) when the seal does not check out.
        """
        return self.decode(unseal_page(buf, path), shape, dtype)


class RawCodec(PageCodec):
    """Identity codec (native-dtype bytes, no transform)."""

    name = "raw"
    lossless = True

    def encode(self, arr: np.ndarray) -> bytes:
        return np.ascontiguousarray(arr).tobytes()

    def decode(self, buf: bytes, shape: tuple, dtype) -> np.ndarray:
        return np.frombuffer(buf, dtype=dtype).reshape(shape).copy()


class Float16Codec(PageCodec):
    """Half-precision quantization in a signed-sqrt domain with
    per-column power-of-two scaling (2 bytes/value plus a 2-byte
    exponent per column on disk).

    Values are mapped to ``sign(x) * sqrt(|x|)`` and each column is
    divided by ``2**k`` (``k`` chosen so the column's max magnitude
    lands in ``[0.5, 1)``) before the half-precision cast; decode
    multiplies the scale back and squares. Both tricks exist for Adam
    second moments: ``v ~ grad**2`` spans ~24 decades within one column
    (nearly-converged rows at ``1e-14`` next to active rows at ``1e-2``)
    — far past f16's ~12-decade window — and any ``v`` that flushes to
    zero turns ``m / (sqrt(v) + eps)`` into a huge step that detonates
    the trajectory a few spills later. The sqrt halves the dynamic
    range in log space (``1e-14..1e-2`` becomes ``1e-7..1e-1``), and
    the power-of-two scale — *exact* in binary floating point — centers
    it in half precision's sweet spot. Large SH coefficients likewise
    no longer clip at f16's 65504 ceiling.

    The codec stays idempotent: a decoded value is ``s * |s|`` where
    ``s`` carries an 11-bit significand times a power of two, so its
    square is exactly representable in float64 and the correctly
    rounded ``sqrt`` on re-encode recovers ``s`` bit-exactly. Repeated
    spill/page-in cycles therefore converge after the first
    quantization instead of drifting. The precision cost of squaring is
    a factor of two in relative error (~``5e-4``).
    """

    name = "float16"
    lossless = False

    def encode(self, arr: np.ndarray) -> bytes:
        a = np.ascontiguousarray(arr, dtype=np.float64)
        if a.ndim != 2:
            a = a.reshape(a.shape[0], -1)
        root = np.sign(a) * np.sqrt(np.abs(a))
        maxabs = (
            np.max(np.abs(root), axis=0) if a.size else np.zeros(a.shape[1])
        )
        # frexp: maxabs = m * 2**e with m in [0.5, 1) -> column / 2**e
        # lands in [0.5, 1]; zero columns get e = 0
        _, exps = np.frexp(maxabs)
        exps = exps.astype(np.int16)
        scaled = np.ldexp(root, -exps.astype(np.int64)[None, :])
        return exps.astype("<i2").tobytes() + np.ascontiguousarray(
            scaled, dtype="<f2"
        ).tobytes()

    def decode(self, buf: bytes, shape: tuple, dtype) -> np.ndarray:
        ncols = int(shape[-1]) if len(shape) > 1 else 1
        head = 2 * ncols
        exps = np.frombuffer(buf[:head], dtype="<i2").astype(np.int64)
        scaled = (
            np.frombuffer(buf[head:], dtype="<f2")
            .astype(np.float64)
            .reshape(-1, ncols)
        )
        root = np.ldexp(scaled, exps[None, :])
        return (root * np.abs(root)).astype(dtype).reshape(shape)


class LosslessCodec(PageCodec):
    """Byte-shuffle + zlib: bit-exact, compresses float structure.

    The shuffle transposes the page's bytes so all first-bytes come
    first, then all second-bytes, ...: sign/exponent bytes of nearby
    parameters are highly repetitive (and Adam moments start as runs of
    zeros), so zlib finds the redundancy the interleaved layout hides.
    """

    name = "lossless"
    lossless = True

    #: zlib level 1: the disk tier trades a few percent of ratio for
    #: encode speed — the spill sits on (or near) the training thread.
    level = 1

    def encode(self, arr: np.ndarray) -> bytes:
        contiguous = np.ascontiguousarray(arr)
        itemsize = contiguous.itemsize
        shuffled = (
            contiguous.view(np.uint8)
            .reshape(-1, itemsize)
            .T.tobytes()  # .T + tobytes = the shuffle transpose
        )
        return zlib.compress(shuffled, self.level)

    def decode(self, buf: bytes, shape: tuple, dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        raw = zlib.decompress(buf)
        unshuffled = (
            np.frombuffer(raw, dtype=np.uint8)
            .reshape(dtype.itemsize, -1)
            .T.copy()
        )
        return unshuffled.view(dtype).reshape(shape)


PAGE_CODECS: dict[str, PageCodec] = {
    codec.name: codec
    for codec in (RawCodec(), Float16Codec(), LosslessCodec())
}


def get_page_codec(name: str) -> PageCodec:
    """Look up a codec by registry name (``raw``/``float16``/``lossless``)."""
    try:
        return PAGE_CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown page codec {name!r}; choose from "
            f"{sorted(PAGE_CODECS)}"
        ) from None
