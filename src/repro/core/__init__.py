"""GS-Scale core: offload systems, image splitting, trainer."""

from .config import SYSTEM_NAMES, GSScaleConfig
from .splitting import ImageSplit, find_balanced_split
from .systems import (
    BaselineOffloadSystem,
    GPUOnlySystem,
    GSScaleSystem,
    StepReport,
    TrainingSystem,
    TransferLedger,
    create_system,
)
from .trainer import EvalResult, Trainer, TrainingHistory

__all__ = [
    "BaselineOffloadSystem",
    "EvalResult",
    "GPUOnlySystem",
    "GSScaleConfig",
    "GSScaleSystem",
    "ImageSplit",
    "SYSTEM_NAMES",
    "StepReport",
    "Trainer",
    "TrainingHistory",
    "TrainingSystem",
    "TransferLedger",
    "create_system",
    "find_balanced_split",
]
