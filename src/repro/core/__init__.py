"""GS-Scale core: parameter stores, offload systems, splitting, trainer."""

from .config import SYSTEM_NAMES, GSScaleConfig
from .integrity import (
    CorruptCheckpointError,
    CorruptPageError,
    IntegrityError,
)
from .splitting import (
    ImageSplit,
    SpatialPatch,
    buffered_spatial_partition,
    find_balanced_split,
    find_balanced_split_by,
    spatial_partition,
    spatial_partition_bounds,
)
from .stores import (
    DeviceStore,
    DiskStore,
    HostStore,
    HybridStore,
    ParameterStore,
    PreloadedShard,
    ResidentSet,
    ShardedStore,
)
from .systems import (
    BaselineOffloadSystem,
    GPUOnlySystem,
    GSScaleSystem,
    OutOfCoreGSScaleSystem,
    ShardedGSScaleSystem,
    ShardReport,
    StepReport,
    TrainingSystem,
    TransferLedger,
    create_system,
    locality_view_order,
)
from .trainer import EvalResult, Trainer, TrainingHistory

__all__ = [
    "BaselineOffloadSystem",
    "CorruptCheckpointError",
    "CorruptPageError",
    "DeviceStore",
    "IntegrityError",
    "DiskStore",
    "EvalResult",
    "GPUOnlySystem",
    "GSScaleConfig",
    "GSScaleSystem",
    "HostStore",
    "HybridStore",
    "ImageSplit",
    "OutOfCoreGSScaleSystem",
    "ParameterStore",
    "PreloadedShard",
    "ResidentSet",
    "SYSTEM_NAMES",
    "ShardReport",
    "ShardedGSScaleSystem",
    "ShardedStore",
    "SpatialPatch",
    "StepReport",
    "Trainer",
    "TrainingHistory",
    "TrainingSystem",
    "TransferLedger",
    "buffered_spatial_partition",
    "create_system",
    "find_balanced_split",
    "find_balanced_split_by",
    "locality_view_order",
    "spatial_partition",
    "spatial_partition_bounds",
]
