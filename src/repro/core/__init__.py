"""GS-Scale core: parameter stores, offload systems, splitting, trainer."""

from .config import SYSTEM_NAMES, GSScaleConfig
from .splitting import (
    ImageSplit,
    find_balanced_split,
    find_balanced_split_by,
    spatial_partition,
)
from .stores import (
    DeviceStore,
    DiskStore,
    HostStore,
    HybridStore,
    ParameterStore,
    PreloadedShard,
    ResidentSet,
    ShardedStore,
)
from .systems import (
    BaselineOffloadSystem,
    GPUOnlySystem,
    GSScaleSystem,
    OutOfCoreGSScaleSystem,
    ShardedGSScaleSystem,
    ShardReport,
    StepReport,
    TrainingSystem,
    TransferLedger,
    create_system,
    locality_view_order,
)
from .trainer import EvalResult, Trainer, TrainingHistory

__all__ = [
    "BaselineOffloadSystem",
    "DeviceStore",
    "DiskStore",
    "EvalResult",
    "GPUOnlySystem",
    "GSScaleConfig",
    "GSScaleSystem",
    "HostStore",
    "HybridStore",
    "ImageSplit",
    "OutOfCoreGSScaleSystem",
    "ParameterStore",
    "PreloadedShard",
    "ResidentSet",
    "SYSTEM_NAMES",
    "ShardReport",
    "ShardedGSScaleSystem",
    "ShardedStore",
    "StepReport",
    "Trainer",
    "TrainingHistory",
    "TrainingSystem",
    "TransferLedger",
    "create_system",
    "find_balanced_split",
    "find_balanced_split_by",
    "locality_view_order",
    "spatial_partition",
]
