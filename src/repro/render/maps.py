"""Auxiliary render targets: expected depth and alpha (coverage) maps.

Many 3DGS applications (mesh extraction, AR occlusion, the depth term in
Figure 2's loss box) consume per-pixel depth and opacity alongside color.
These reuse the projection/culling machinery and composite scalar payloads
with the same front-to-back weights as the color pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cameras.camera import Camera
from ..gaussians.model import GaussianModel
from . import culling, projection
from .rasterize import RasterConfig, _splat_alpha, splat_bboxes


@dataclass
class DepthAlphaResult:
    """Per-pixel auxiliary maps.

    Attributes:
        depth: alpha-weighted expected depth, ``(H, W)``; pixels with no
            coverage hold 0.
        alpha: accumulated opacity ``1 - T_final``, ``(H, W)``.
    """

    depth: np.ndarray
    alpha: np.ndarray


def render_depth_alpha(
    model: GaussianModel,
    camera: Camera,
    valid_ids: np.ndarray | None = None,
    config: RasterConfig | None = None,
    normalize: bool = True,
) -> DepthAlphaResult:
    """Composite expected-depth and alpha maps for one view.

    Args:
        model: the Gaussian scene.
        camera: viewing camera.
        valid_ids: pre-computed visible set (culled here when ``None``).
        config: rasterizer thresholds.
        normalize: divide the depth accumulator by alpha so covered pixels
            hold metric depth rather than premultiplied depth.
    """
    config = config or RasterConfig()
    if valid_ids is None:
        valid_ids = culling.frustum_cull(
            model.means, model.log_scales, model.quats, camera
        ).valid_ids

    geom, _ = projection.project_geometry(
        model.means[valid_ids],
        model.log_scales[valid_ids],
        model.quats[valid_ids],
        camera,
    )
    logits = model.opacity_logits[valid_ids, 0]
    opacities = 1.0 / (1.0 + np.exp(-logits))

    height, width = camera.height, camera.width
    dtype = geom.means2d.dtype
    depth_acc = np.zeros((height, width), dtype=dtype)
    transmittance = np.ones((height, width), dtype=dtype)
    order = np.argsort(geom.depths, kind="stable")
    bboxes = splat_bboxes(geom.means2d, geom.radii, width, height)
    xs_full = np.arange(width, dtype=dtype) + 0.5
    ys_full = np.arange(height, dtype=dtype) + 0.5

    for idx in order:
        x0, x1, y0, y1 = bboxes[idx]
        if x0 >= x1 or y0 >= y1:
            continue
        alpha = _splat_alpha(
            geom.means2d[idx], geom.conics[idx], opacities[idx],
            xs_full[x0:x1], ys_full[y0:y1], config,
        )
        t_box = transmittance[y0:y1, x0:x1]
        depth_acc[y0:y1, x0:x1] += t_box * alpha * geom.depths[idx]
        transmittance[y0:y1, x0:x1] = t_box * (1.0 - alpha)

    alpha_map = 1.0 - transmittance
    if normalize:
        covered = alpha_map > 1e-8
        depth_acc[covered] /= alpha_map[covered]
        depth_acc[~covered] = 0.0
    return DepthAlphaResult(depth=depth_acc, alpha=alpha_map)
