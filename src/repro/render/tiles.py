"""Tile-binned rasterization, the gsplat/3DGS execution strategy.

The reference compositor (:mod:`repro.render.rasterize`) loops over splats
globally; real GPU rasterizers bin splats into 16x16 pixel tiles and
composite each tile independently so thread blocks get coherent work. This
module implements that strategy in numpy. Because each pixel still blends
the same splats in the same depth order with the same arithmetic, the
output is *bitwise identical* to the reference compositor — which the test
suite asserts — while the binning statistics expose the intersection
counts the performance model's forward/backward costs are built on.

Binning itself is vectorized: it delegates to
:func:`repro.render.engine.tile_intersections`, the same flat
``np.repeat``/radix-sort expansion the vectorized engine composites from,
so ``num_intersections`` and the per-tile lists come from a single code
path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .engine import TILE_SIZE, tile_intersections
from .rasterize import (
    RasterConfig,
    RasterResult,
    _splat_alpha,
    config_bboxes,
    splat_bboxes,
)

__all__ = [
    "SPAN_OVERSUBSCRIPTION",
    "TILE_SIZE",
    "TileBinning",
    "adaptive_span_count",
    "bin_gaussians",
    "partition_spans",
    "rasterize_tiled",
]

#: Span-oversubscription factor of the parallel raster engine: the span
#: planner cuts this many spans per worker instead of one. Pair-count
#: balancing is only approximate (cuts land on tile boundaries, and the
#: per-pair cost model ignores cache effects), so with one span per
#: worker the slowest span sets the pass time; with ~3x spans the pool
#: backfills finished workers and stragglers shrink to span granularity.
SPAN_OVERSUBSCRIPTION = 3


def adaptive_span_count(
    workers: int, oversubscription: int = SPAN_OVERSUBSCRIPTION
) -> int:
    """Target span count for a ``workers``-process parallel raster pass.

    ``workers <= 1`` runs in-process, where extra spans are pure overhead
    (one span); pooled runs oversubscribe by ``oversubscription`` (default
    :data:`SPAN_OVERSUBSCRIPTION`, tunable per render via
    ``RasterConfig.span_oversubscription``) for straggler smoothing.
    :func:`partition_spans` may still return fewer spans when the
    intersection table has fewer tiles.
    """
    if workers <= 1:
        return 1
    return workers * max(int(oversubscription), 1)


def partition_spans(
    tile_ids: np.ndarray, weights: np.ndarray, num_spans: int
) -> list[tuple[int, int]]:
    """Cut a tile-sorted intersection table into load-balanced spans.

    Spans are contiguous index ranges ``[start, stop)`` whose boundaries
    fall only between tiles — a pixel's blend segment lives entirely in
    one tile, so every span composites independently. Balance is by the
    per-intersection ``weights`` (pair counts, i.e. clipped-rect areas),
    not by tile counts: a handful of screen-filling splats would otherwise
    starve all but one worker.

    Args:
        tile_ids: ascending tile id per intersection (the sort order of
            :func:`repro.render.engine.tile_intersections`).
        weights: non-negative per-intersection load estimate.
        num_spans: target span count; fewer are returned when the table
            has fewer tiles.

    Returns:
        At most ``num_spans`` non-empty ``(start, stop)`` pairs covering
        ``[0, len(tile_ids))`` in order.
    """
    n = int(tile_ids.size)
    if n == 0:
        return []
    if num_spans <= 1:
        return [(0, n)]
    bounds = np.flatnonzero(np.diff(tile_ids)) + 1  # legal cut positions
    if bounds.size == 0:
        return [(0, n)]
    cum = np.cumsum(weights, dtype=np.float64)
    targets = cum[-1] * np.arange(1, num_spans) / num_spans
    # first legal cut at or past each target load
    picks = bounds[
        np.minimum(
            np.searchsorted(cum[bounds - 1], targets), bounds.size - 1
        )
    ]
    edges = np.unique(np.concatenate([[0], picks, [n]]))
    return [
        (int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a
    ]


@dataclass
class TileBinning:
    """Splat-to-tile assignment.

    Attributes:
        tiles_x, tiles_y: tile-grid dimensions.
        tile_lists: for each tile (row-major), the splat indices whose
            bounding box overlaps it, in input order.
        num_intersections: total splat-tile pairs (the duplication factor
            that drives sorting cost in the real pipeline).
        bboxes: the clipped integer pixel bounds ``(M, 4)`` the binning was
            computed from, so callers can composite without recomputing
            them.
    """

    tiles_x: int
    tiles_y: int
    tile_lists: list[np.ndarray]
    num_intersections: int
    bboxes: np.ndarray

    def tile_index(self, tx: int, ty: int) -> int:
        """Row-major index of tile ``(tx, ty)``."""
        return ty * self.tiles_x + tx


def bin_gaussians(
    means2d: np.ndarray,
    radii: np.ndarray,
    width: int,
    height: int,
    tile_size: int = TILE_SIZE,
    bboxes: np.ndarray | None = None,
) -> TileBinning:
    """Assign each splat to every tile its bounding box overlaps.

    Args:
        means2d, radii: splat centers and pixel radii.
        width, height: image size.
        tile_size: tile edge in pixels.
        bboxes: precomputed clipped bounds ``(M, 4)``; computed from
            ``means2d``/``radii`` when omitted.
    """
    if bboxes is None:
        bboxes = splat_bboxes(means2d, radii, width, height)
    tile_ids, splat_ids, tiles_x, tiles_y = tile_intersections(
        bboxes, width, height, tile_size
    )
    counts = np.bincount(tile_ids, minlength=tiles_x * tiles_y)
    tile_lists = np.split(splat_ids, np.cumsum(counts)[:-1])
    return TileBinning(
        tiles_x=tiles_x,
        tiles_y=tiles_y,
        tile_lists=tile_lists,
        num_intersections=int(tile_ids.size),
        bboxes=bboxes,
    )


def rasterize_tiled(
    means2d: np.ndarray,
    conics: np.ndarray,
    colors: np.ndarray,
    opacities: np.ndarray,
    depths: np.ndarray,
    radii: np.ndarray,
    width: int,
    height: int,
    background: np.ndarray | None = None,
    config: RasterConfig | None = None,
    tile_size: int = TILE_SIZE,
) -> RasterResult:
    """Tile-binned compositor; same contract and output as
    :func:`repro.render.rasterize.rasterize`."""
    config = config or RasterConfig()
    dtype = means2d.dtype
    if background is None:
        background = np.zeros(3, dtype=dtype)
    background = np.asarray(background, dtype=dtype)

    order = np.argsort(depths, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.size)
    binning = bin_gaussians(
        means2d,
        radii,
        width,
        height,
        tile_size,
        bboxes=config_bboxes(means2d, radii, width, height, config),
    )
    bboxes = binning.bboxes

    image = np.zeros((height, width, 3), dtype=dtype)
    transmittance = np.ones((height, width), dtype=dtype)
    xs_full = np.arange(width, dtype=dtype) + 0.5
    ys_full = np.arange(height, dtype=dtype) + 0.5

    for ty in range(binning.tiles_y):
        py0 = ty * tile_size
        py1 = min(py0 + tile_size, height)
        for tx in range(binning.tiles_x):
            ids = binning.tile_lists[binning.tile_index(tx, ty)]
            if ids.size == 0:
                continue
            px0 = tx * tile_size
            px1 = min(px0 + tile_size, width)
            # depth order within the tile = global order restricted
            ids = ids[np.argsort(rank[ids], kind="stable")]
            t_tile = transmittance[py0:py1, px0:px1]
            c_tile = image[py0:py1, px0:px1]
            for idx in ids:
                x0, x1, y0, y1 = bboxes[idx]
                # clip splat bbox to the tile
                cx0, cx1 = max(x0, px0), min(x1, px1)
                cy0, cy1 = max(y0, py0), min(y1, py1)
                if cx0 >= cx1 or cy0 >= cy1:
                    continue
                alpha = _splat_alpha(
                    means2d[idx], conics[idx], opacities[idx],
                    xs_full[cx0:cx1], ys_full[cy0:cy1], config,
                )
                sub_t = t_tile[cy0 - py0 : cy1 - py0, cx0 - px0 : cx1 - px0]
                weight = sub_t * alpha
                c_tile[cy0 - py0 : cy1 - py0, cx0 - px0 : cx1 - px0] += (
                    weight[:, :, None] * colors[idx]
                )
                t_tile[cy0 - py0 : cy1 - py0, cx0 - px0 : cx1 - px0] = (
                    sub_t * (1.0 - alpha)
                )

    image += transmittance[:, :, None] * background
    return RasterResult(
        image=image,
        final_transmittance=transmittance,
        order=order,
        bboxes=bboxes,
    )
