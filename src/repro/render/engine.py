"""Vectorized tile-batched rasterization engine (forward + backward).

The reference compositor (:mod:`repro.render.rasterize`) and the tile-binned
compositor (:mod:`repro.render.tiles`) both run a Python loop over splats.
At the paper's scale — multi-million-Gaussian scenes with ~8% active ratios —
interpreter overhead, not arithmetic, dominates their wall-clock, which makes
the Figure-11 throughput story impossible to demonstrate. This module brings
the execution strategy of real GPU rasterizers (3DGS/gsplat, and the
intersection-sorted kernels analyzed in BalanceGS / Faster-GS) to numpy:

1. **Vectorized binning.** Splat bounding boxes are expanded into a flat
   ``(intersection -> tile_id, splat_id)`` table with pure
   ``np.repeat``/``arange`` arithmetic (:func:`tile_intersections`) and
   sorted once by ``(tile_id, depth_rank)`` using a stable radix sort over
   16-bit key digits. There are no Python-list buckets;
   :func:`repro.render.tiles.bin_gaussians` shares this exact code path, so
   binning statistics come from the same place the engine composites from.

2. **Batched forward.** Every (splat, pixel) pair inside a bbox-within-tile
   rectangle becomes one row of flat arrays. Per-splat constants are folded
   to per-row constants (the Gaussian exponent restricted to one pixel row
   is a quadratic in x alone), so evaluating alphas for *all* pairs costs a
   handful of ``np.repeat`` broadcasts and four arithmetic passes plus one
   ``exp2``. Pairs below ``alpha_min`` are compacted away and the survivors
   ordered per pixel (stable radix again, so depth order is preserved
   inside every pixel's segment). Per-pixel transmittance then falls out of
   a single segment-wise ``cumsum(log2(1 - alpha))`` scan — safe because
   ``alpha <= alpha_max < 1`` keeps the logarithm finite — and the image is
   composited with one weighted ``np.bincount`` per channel instead of K
   Python iterations.

3. **Vectorized backward.** The gradient pass rebuilds the same pair table,
   reconstructs per-pair transmittance from the same scan, forms the
   suffix-color accumulator ``sum_{j behind i} c_j a_j T_j + bg * T_final``
   with a segment-wise suffix scan of the scalar ``weight * (dL/dC . c)``
   (the image gradient is constant within a pixel's segment, so the
   three-channel suffix contracts to one scalar scan), and reduces
   per-splat gradients with ``np.bincount`` segment sums. It fills the
   exact :class:`~repro.render.backward.RasterGrads` contract of the loop
   implementation.

Numerical notes: alphas use base-2 exponentials
(``exp2(log2(e) * power + log2(opacity))``) and the transmittance scan runs
in log2 space, because numpy vectorizes ``exp2``/``log2`` far better than
``exp``/``log``. Both agree with the sequential reference arithmetic to
~1 ulp per operation, so images, transmittances, and all five gradient
arrays match the loop engines to ``atol=1e-9`` in float64 (asserted by
``tests/render/test_engine_equivalence.py``). The scan requires
``alpha_max < 1``; the engine raises otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .backward import RasterGrads, alloc_grads, rasterize_backward
from .rasterize import RasterConfig, RasterResult, config_bboxes, rasterize

#: Tile edge in pixels (3DGS/gsplat use 16x16 tiles).
TILE_SIZE = 16

_LOG2E = float(np.log2(np.e))


# ---------------------------------------------------------------------------
# engine dispatch
# ---------------------------------------------------------------------------

def get_forward(engine: str):
    """Forward rasterizer callable for an engine name.

    All four share the signature of :func:`repro.render.rasterize.rasterize`.
    """
    if engine == "reference":
        return rasterize
    if engine == "tiled":
        from . import tiles  # imported lazily: tiles imports this module

        return tiles.rasterize_tiled
    if engine == "vectorized":
        return rasterize_vectorized
    if engine == "parallel":
        from . import parallel  # imported lazily: parallel imports this module

        return parallel.rasterize_parallel
    if engine == "fragment":
        from . import fragment  # imported lazily: fragment imports this module

        return fragment.rasterize_fragment
    raise ValueError(f"unknown raster engine {engine!r}")


def get_backward(engine: str):
    """Backward rasterizer callable for an engine name.

    The ``tiled`` engine has no dedicated backward — its forward output is
    bitwise identical to the reference, so the reference loop backward is
    the matching adjoint.
    """
    if engine in ("reference", "tiled"):
        return rasterize_backward
    if engine == "vectorized":
        return rasterize_backward_vectorized
    if engine == "parallel":
        from . import parallel

        return parallel.rasterize_backward_parallel
    if engine == "fragment":
        from . import fragment

        return fragment.rasterize_backward_fragment
    raise ValueError(f"unknown raster engine {engine!r}")


def resolve_dtype(config: RasterConfig, *arrays):
    """Cast float inputs to ``config.dtype`` (no-op when unset).

    Returns the cast arrays in order. Integer decisions (bboxes, tile
    assignment) are made from the original full-precision inputs by the
    callers, so the fast path changes arithmetic precision only — never
    which pairs exist.
    """
    if config.dtype is None:
        return arrays
    dtype = np.dtype(config.dtype)
    return tuple(
        a if a is None or a.dtype == dtype else a.astype(dtype)
        for a in arrays
    )


# ---------------------------------------------------------------------------
# flat expansion / sorting primitives
# ---------------------------------------------------------------------------

def _argsort_by_key(keys: np.ndarray, key_max: int) -> np.ndarray:
    """Stable argsort of non-negative integer ``keys``.

    numpy's stable sort is a fast radix sort for 16-bit integers but falls
    back to a much slower mergesort for wider types, so keys are sorted in
    16-bit digit passes (LSD radix): one pass when ``key_max`` fits 16 bits,
    two passes below 32 bits.
    """
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    if key_max < (1 << 16):
        return np.argsort(keys.astype(np.uint16), kind="stable")
    perm = np.argsort((keys & 0xFFFF).astype(np.uint16), kind="stable")
    high = keys >> 16
    if key_max < (1 << 32):
        return perm[np.argsort(high[perm].astype(np.uint16), kind="stable")]
    return perm[np.argsort(high[perm], kind="stable")]


def _expand_rects(x0, x1, y0, y1):
    """Row-major expansion of integer rects into their cells.

    Given half-open rects ``[x0, x1) x [y0, y1)``, returns ``(owner, px,
    py)`` where ``owner[c]`` is the rect index cell ``c`` came from. Pure
    ``np.repeat``/``arange`` arithmetic — no Python loops. Empty rects
    (non-positive extent on either axis) produce no cells.
    """
    heights = np.maximum(y1 - y0, 0)
    widths = np.maximum(x1 - x0, 0)
    heights = np.where(widths > 0, heights, 0)
    n_rows = int(heights.sum())
    owner_of_row = np.repeat(np.arange(heights.size), heights)
    row_start = np.cumsum(heights) - heights
    # local row offset folded into the repeated base: py = arange + (y0 - start)
    py_row = np.arange(n_rows, dtype=np.int64) + np.repeat(y0 - row_start, heights)
    w_row = np.repeat(widths, heights)
    n_cells = int(w_row.sum())
    owner = np.repeat(owner_of_row, w_row)
    cell_start = np.cumsum(w_row) - w_row
    x0_row = np.repeat(x0, heights)
    px = np.arange(n_cells, dtype=np.int64) + np.repeat(x0_row - cell_start, w_row)
    py = np.repeat(py_row, w_row)
    return owner, px, py


def tile_intersections(
    bboxes: np.ndarray,
    width: int,
    height: int,
    tile_size: int = TILE_SIZE,
    order: np.ndarray | None = None,
):
    """Flat splat-tile intersection table.

    Expands every splat bbox into the range of tiles it overlaps and sorts
    the resulting ``(tile_id, splat_id)`` pairs once by ``(tile_id,
    position-in-order)`` with a stable radix sort. With the default input
    order this yields, per tile, splat ids ascending — the order
    :func:`repro.render.tiles.bin_gaussians` exposes; the rasterizer passes
    its depth order instead so each tile's span is depth-sorted.

    Args:
        bboxes: clipped integer bounds ``(M, 4)`` as ``(x0, x1, y0, y1)``.
        width, height: image size in pixels.
        tile_size: tile edge in pixels.
        order: optional permutation of splat indices; intersections are
            generated following it and tie-broken by it within a tile.

    Returns:
        ``(tile_ids, splat_ids, tiles_x, tiles_y)`` with ``tile_ids`` sorted
        ascending (row-major tiles) and ``splat_ids`` original indices.
    """
    tiles_x = -(-width // tile_size)
    tiles_y = -(-height // tile_size)
    m_count = bboxes.shape[0]
    if order is None:
        order = np.arange(m_count)
    bb = bboxes[order]
    x0, x1, y0, y1 = bb[:, 0], bb[:, 1], bb[:, 2], bb[:, 3]
    valid = (x0 < x1) & (y0 < y1)
    tx0 = np.where(valid, x0 // tile_size, 0)
    tx1 = np.where(valid, (x1 - 1) // tile_size + 1, 0)
    ty0 = np.where(valid, y0 // tile_size, 0)
    ty1 = np.where(valid, (y1 - 1) // tile_size + 1, 0)
    pos, tx, ty = _expand_rects(tx0, tx1, ty0, ty1)
    tile_ids = ty * tiles_x + tx
    perm = _argsort_by_key(tile_ids, tiles_x * tiles_y - 1)
    return tile_ids[perm], order[pos[perm]], tiles_x, tiles_y


# ---------------------------------------------------------------------------
# pair table: one row per surviving (splat, pixel) pair
# ---------------------------------------------------------------------------

@dataclass
class _PairTable:
    """Flat (splat, pixel) pairs sorted by ``(pixel, depth)``.

    ``alpha`` is already capped at ``alpha_max`` and compacted: pairs below
    ``alpha_min`` (or non-contributing when ``alpha_min == 0``) are gone.
    ``starts``/``counts`` delimit the per-pixel segments; ``nz`` lists the
    pixel id of each segment (``pixel == np.repeat(nz, counts)``).
    """

    pixel: np.ndarray  # (A,) int64 global pixel id, ascending
    sid: np.ndarray  # (A,) original splat index
    alpha: np.ndarray  # (A,) float
    starts: np.ndarray  # (S,) first pair index of each segment
    counts: np.ndarray  # (S,) pairs per segment
    nz: np.ndarray  # (S,) pixel id per segment


def _empty_pairs(dtype) -> _PairTable:
    return _PairTable(
        pixel=np.empty(0, dtype=np.int64),
        sid=np.empty(0, dtype=np.int64),
        alpha=np.empty(0, dtype=dtype),
        starts=np.empty(0, dtype=np.int64),
        counts=np.empty(0, dtype=np.int64),
        nz=np.empty(0, dtype=np.int64),
    )


def clip_isect_rects(bboxes, tile_ids, sid_isect, tiles_x, tile_size):
    """Per-intersection pixel rects: each splat bbox clipped to its tile.

    Returns ``(rx0, rx1, ry0, ry1)`` half-open bounds, one entry per row
    of the intersection table. The rect areas are the pre-compaction pair
    counts — the load measure the parallel engine partitions spans by.
    """
    bb = bboxes[sid_isect]
    tpx = (tile_ids % tiles_x) * tile_size
    tpy = (tile_ids // tiles_x) * tile_size
    rx0 = np.maximum(bb[:, 0], tpx)
    rx1 = np.minimum(bb[:, 1], tpx + tile_size)
    ry0 = np.maximum(bb[:, 2], tpy)
    ry1 = np.minimum(bb[:, 3], tpy + tile_size)
    return rx0, rx1, ry0, ry1


def _build_pairs(
    means2d, conics, opacities, bboxes, order, width, height, config, tile_size
) -> _PairTable:
    """Expand, evaluate, compact, and pixel-sort all splat-pixel pairs."""
    tile_ids, sid_isect, tiles_x, _ = tile_intersections(
        bboxes, width, height, tile_size, order=order
    )
    if tile_ids.size == 0:
        return _empty_pairs(means2d.dtype)
    return pairs_for_isects(
        means2d, conics, opacities, bboxes, tile_ids, sid_isect, tiles_x,
        width, height, config, tile_size,
    )


def pairs_for_isects(
    means2d, conics, opacities, bboxes, tile_ids, sid_isect, tiles_x,
    width, height, config, tile_size,
) -> _PairTable:
    """Splat-pixel pairs of a (possibly sliced) intersection table.

    The Gaussian exponent over one pixel row is a quadratic in x alone, so
    everything except the final ``(m_a*dx - r_bdy)*dx + r_y`` evaluation is
    folded into per-row constants — the hot pair-level loop is a few
    ``np.repeat`` broadcasts, four arithmetic passes, and one ``exp2``.
    A pixel's segment is contained in one tile, so any contiguous tile
    span of the table yields complete, composable segments — which is what
    lets :mod:`repro.render.parallel` run disjoint spans on separate
    cores.
    """
    dtype = means2d.dtype
    empty = _empty_pairs(dtype)
    if tile_ids.size == 0:
        return empty

    # clip each splat bbox to its tile: the pixel rect of one intersection
    rx0, rx1, ry0, ry1 = clip_isect_rects(
        bboxes, tile_ids, sid_isect, tiles_x, tile_size
    )
    heights = ry1 - ry0
    widths = rx1 - rx0
    area = widths * heights

    # intersection-level splat constants, pre-scaled so the exponent feeds
    # exp2 directly: q = log2(e)*power + log2(opacity), alpha = exp2(q)
    m_a = (-0.5 * _LOG2E) * conics[sid_isect, 0]
    m_b = _LOG2E * conics[sid_isect, 1]
    m_c = (-0.5 * _LOG2E) * conics[sid_isect, 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        lop = np.log2(opacities[sid_isect])

    # --- row expansion: one entry per (intersection, pixel row) ----------
    n_rows = int(heights.sum())
    if n_rows == 0:
        return empty
    row_start = np.cumsum(heights) - heights
    y_row = np.arange(n_rows, dtype=np.int64) + np.repeat(
        ry0 - row_start, heights
    )
    w_row = np.repeat(widths, heights)
    dy = (y_row + 0.5) - np.repeat(means2d[sid_isect, 1], heights)
    # row constants: q(dx) = (m_a*dx - r_bdy)*dx + r_y
    r_bdy = np.repeat(m_b, heights) * dy
    r_y = np.repeat(m_c, heights) * dy
    r_y *= dy
    r_y += np.repeat(lop, heights)
    cell_start = np.cumsum(w_row) - w_row
    x0_row = np.repeat(rx0, heights)
    base = x0_row - cell_start
    # dx = arange + (x0 - cell_start + 0.5 - mu_x), folded per row
    r_dx = base + 0.5
    r_dx -= np.repeat(means2d[sid_isect, 0], heights)
    # pixel = arange + (y*width + x0 - cell_start), folded per row
    r_pix = y_row * width
    r_pix += base

    # --- pair expansion ---------------------------------------------------
    # (the index arithmetic stays float64-exact; the float32 fast path
    # casts only the per-row constants, so the hot passes run in `dtype`)
    if dtype != np.float64:
        m_a = m_a.astype(dtype)
        r_bdy = r_bdy.astype(dtype)
        r_y = r_y.astype(dtype)
    n_cells = int(w_row.sum())
    dx = np.arange(n_cells, dtype=np.float64)
    dx += np.repeat(r_dx, w_row)
    dx = dx.astype(dtype, copy=False)
    q = np.repeat(m_a, area) * dx
    q -= np.repeat(r_bdy, w_row)
    q *= dx
    q += np.repeat(r_y, w_row)
    alpha = np.exp2(q, out=q)
    np.minimum(alpha, config.alpha_max, out=alpha)
    alpha = alpha.astype(dtype, copy=False)
    pixel = np.arange(n_cells, dtype=np.int64)
    pixel += np.repeat(r_pix, w_row)
    sid = np.repeat(sid_isect, area)

    # --- compact and order by (pixel, depth) ------------------------------
    n_pix = width * height
    if config.alpha_min > 0:
        keep = np.flatnonzero(alpha >= config.alpha_min)
    else:
        keep = np.flatnonzero(alpha > 0.0)
    if keep.size == 0:
        return empty
    if keep.size == alpha.size:
        pix_k = pixel
    else:
        pix_k = pixel[keep]
        alpha = alpha[keep]
        sid = sid[keep]
    perm = _argsort_by_key(pix_k, n_pix - 1)
    counts_pix = np.bincount(pix_k, minlength=n_pix)
    nz = np.flatnonzero(counts_pix)
    seg_counts = counts_pix[nz]
    starts = np.cumsum(seg_counts) - seg_counts
    return _PairTable(
        pixel=pix_k[perm], sid=sid[perm], alpha=alpha[perm], starts=starts,
        counts=seg_counts, nz=nz,
    )


def _transmittance_scan(pairs: _PairTable):
    """Per-pair pre-blend transmittance via the segment-wise log2 scan.

    Returns ``(seg_log_t, t_before)``: ``seg_log_t`` is ``log2`` of the
    final transmittance of each segment's pixel, and ``t_before`` the
    transmittance each pair blends against — the product of ``(1 - alpha)``
    over strictly-preceding pairs of the same pixel, computed as ``exp2``
    of an exclusive segment cumsum of ``log2(1 - alpha)``.
    """
    lg = np.log2(1.0 - pairs.alpha)
    cum = np.cumsum(lg)
    ends = pairs.starts + pairs.counts - 1
    seg_log_t = cum[ends] - cum[pairs.starts] + lg[pairs.starts]
    ecum = cum
    ecum -= lg  # exclusive
    ecum -= np.repeat(ecum[pairs.starts], pairs.counts)
    t_before = np.exp2(ecum, out=ecum)
    return seg_log_t, t_before


def _check_config(config: RasterConfig) -> RasterConfig:
    config = config or RasterConfig()
    if config.alpha_max >= 1.0:
        raise ValueError(
            "the vectorized engine's log-transmittance scan requires "
            f"alpha_max < 1, got {config.alpha_max}"
        )
    return config


# ---------------------------------------------------------------------------
# forward
# ---------------------------------------------------------------------------

def rasterize_vectorized(
    means2d: np.ndarray,
    conics: np.ndarray,
    colors: np.ndarray,
    opacities: np.ndarray,
    depths: np.ndarray,
    radii: np.ndarray,
    width: int,
    height: int,
    background: np.ndarray | None = None,
    config: RasterConfig | None = None,
    tile_size: int = TILE_SIZE,
) -> RasterResult:
    """Fully vectorized compositor; same contract as
    :func:`repro.render.rasterize.rasterize`."""
    config = _check_config(config)
    # integer decisions (depth order, bboxes) use the full-precision inputs
    order = np.argsort(depths, kind="stable")
    bboxes = config_bboxes(means2d, radii, width, height, config)
    means2d, conics, colors, opacities = resolve_dtype(
        config, means2d, conics, colors, opacities
    )
    dtype = means2d.dtype
    if background is None:
        background = np.zeros(3, dtype=dtype)
    background = np.asarray(background, dtype=dtype)

    pairs = _build_pairs(
        means2d, conics, opacities, bboxes, order, width, height, config,
        tile_size,
    )
    n_pix = width * height
    image = np.zeros((n_pix, 3), dtype=dtype)
    trans = np.ones(n_pix, dtype=dtype)
    if pairs.alpha.size:
        seg_log_t, t_before = _transmittance_scan(pairs)
        trans[pairs.nz] = np.exp2(seg_log_t)
        weight = np.multiply(t_before, pairs.alpha, out=t_before)
        for k in range(3):
            col = np.ascontiguousarray(colors[:, k])
            image[:, k] = np.bincount(
                pairs.pixel, weights=weight * col[pairs.sid], minlength=n_pix
            )
    image += trans[:, None] * background
    return RasterResult(
        image=image.reshape(height, width, 3),
        final_transmittance=trans.reshape(height, width),
        order=order,
        bboxes=bboxes,
    )


# ---------------------------------------------------------------------------
# backward
# ---------------------------------------------------------------------------

def rasterize_backward_vectorized(
    means2d: np.ndarray,
    conics: np.ndarray,
    colors: np.ndarray,
    opacities: np.ndarray,
    result: RasterResult,
    grad_image: np.ndarray,
    background: np.ndarray | None = None,
    config: RasterConfig | None = None,
    tile_size: int = TILE_SIZE,
) -> RasterGrads:
    """Vectorized adjoint of :func:`rasterize_vectorized`; same contract as
    :func:`repro.render.backward.rasterize_backward`."""
    config = _check_config(config)
    means2d, conics, colors, opacities = resolve_dtype(
        config, means2d, conics, colors, opacities
    )
    dtype = means2d.dtype
    height, width = grad_image.shape[:2]
    if background is None:
        background = np.zeros(3, dtype=dtype)
    background = np.asarray(background, dtype=dtype)

    m_count = means2d.shape[0]
    grads = alloc_grads(m_count, dtype)
    pairs = _build_pairs(
        means2d, conics, opacities, result.bboxes, result.order, width,
        height, config, tile_size,
    )
    if pairs.alpha.size == 0:
        return grads
    pix, sid, alpha = pairs.pixel, pairs.sid, pairs.alpha
    starts, counts = pairs.starts, pairs.counts
    n_pix = width * height

    _, t_before = _transmittance_scan(pairs)
    weight = t_before * alpha

    g_flat = np.ascontiguousarray(grad_image.reshape(-1, 3), dtype=dtype)
    g_pair = [np.ascontiguousarray(g_flat[:, k])[pix] for k in range(3)]
    c_pair = [np.ascontiguousarray(colors[:, k])[sid] for k in range(3)]

    # dL/dcolor_k = sum_p dL/dC_k * alpha * T_before
    for k in range(3):
        grads.colors[:, k] = np.bincount(
            sid, weights=g_pair[k] * weight, minlength=m_count
        )

    # Suffix color accumulator, contracted with dL/dC per pair: because the
    # image gradient is constant within a pixel's segment,
    #   dL/dC . (sum_{j>i} c_j a_j T_j + bg T_final)
    #     = [segment total + (dL/dC . bg) T_final] - inclusive prefix
    # which is one cumsum plus segment-level gathers.
    gdot_color = g_pair[0] * c_pair[0]
    gdot_color += g_pair[1] * c_pair[1]
    gdot_color += g_pair[2] * c_pair[2]
    gw = weight * gdot_color
    incl = np.cumsum(gw)
    ends = starts + counts - 1
    seg_gw = incl[ends] - incl[starts] + gw[starts]
    incl -= np.repeat(incl[starts] - gw[starts], counts)
    t_final = np.ascontiguousarray(
        result.final_transmittance.reshape(-1), dtype=dtype
    )
    pref = (g_flat @ background) * t_final
    pref[pairs.nz] += seg_gw
    gdot_suffix = pref[pix]
    gdot_suffix -= incl

    one_minus = 1.0 - alpha
    grad_alpha = gdot_color * t_before
    grad_alpha -= gdot_suffix / one_minus
    # the alpha cap's gradient is zero where it binds
    np.copyto(grad_alpha, 0.0, where=alpha >= config.alpha_max)

    # alpha = o * g with g = exp(power): compacted pairs all have alpha > 0,
    # hence opacity > 0, so the uncapped branch value g = alpha / o is safe.
    op_pair = opacities[sid]
    gval = alpha / op_pair
    grad_alpha *= gval  # now dL/dalpha * g
    grads.opacities[:] = np.bincount(sid, weights=grad_alpha, minlength=m_count)
    grad_power = np.multiply(grad_alpha, op_pair, out=grad_alpha)

    dx = (pix % width) + 0.5
    dx -= np.ascontiguousarray(means2d[:, 0])[sid]
    dy = (pix // width) + 0.5
    dy -= np.ascontiguousarray(means2d[:, 1])[sid]
    gpx = grad_power * dx
    gpy = grad_power * dy
    grads.conics[:, 0] = -0.5 * np.bincount(
        sid, weights=gpx * dx, minlength=m_count
    )
    grads.conics[:, 1] = -np.bincount(sid, weights=gpx * dy, minlength=m_count)
    grads.conics[:, 2] = -0.5 * np.bincount(
        sid, weights=gpy * dy, minlength=m_count
    )
    c_a = np.ascontiguousarray(conics[:, 0])[sid]
    c_b = np.ascontiguousarray(conics[:, 1])[sid]
    c_c = np.ascontiguousarray(conics[:, 2])[sid]
    gmx_pair = c_a * gpx
    gmx_pair += c_b * gpy
    gmy_pair = c_b * gpx
    gmy_pair += c_c * gpy
    gmx = np.bincount(sid, weights=gmx_pair, minlength=m_count)
    gmy = np.bincount(sid, weights=gmy_pair, minlength=m_count)
    grads.means2d[:, 0] = gmx
    grads.means2d[:, 1] = gmy
    grads.mean2d_abs[:] = np.hypot(gmx, gmy)
    return grads
