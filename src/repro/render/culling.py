"""Two-stage frustum culling (Section 2.4, step 1).

Stage 1 drops Gaussians outside the near/far planes; stage 2 projects the
survivors and drops those whose 3-sigma splat misses the image rectangle.
Only the *geometric* attributes (mean, scale, quaternion) are consumed —
this is the property that lets GS-Scale keep just those 10/59 parameters on
the GPU (selective offloading, Section 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cameras.camera import Camera
from . import projection


@dataclass(frozen=True)
class CullResult:
    """Outcome of frustum culling one view.

    Attributes:
        valid_ids: indices (into the full model) of visible Gaussians,
            sorted ascending.
        num_total: number of Gaussians tested.
        num_in_depth: survivors of the near/far stage.
        num_visible: survivors of both stages (``len(valid_ids)``).
    """

    valid_ids: np.ndarray
    num_total: int
    num_in_depth: int
    num_visible: int

    @property
    def active_ratio(self) -> float:
        """Fraction of all Gaussians used by this view (cf. Figure 4)."""
        if self.num_total == 0:
            return 0.0
        return self.num_visible / self.num_total


def frustum_cull(
    means: np.ndarray,
    log_scales: np.ndarray,
    quats: np.ndarray,
    camera: Camera,
) -> CullResult:
    """Identify Gaussians visible from ``camera``.

    Args:
        means: world positions, ``(N, 3)``.
        log_scales: log extents, ``(N, 3)``.
        quats: raw quaternions, ``(N, 4)``.
        camera: viewing camera (its ``near``/``far`` bound stage 1, its
            image rectangle bounds stage 2).

    Returns:
        :class:`CullResult` with the visible indices.
    """
    num_total = means.shape[0]
    dtype = means.dtype
    rot = camera.world_to_cam_rot.astype(dtype)
    trans = camera.world_to_cam_trans.astype(dtype)
    depths = means @ rot.T[:, 2] + trans[2]
    depth_mask = (depths > camera.near) & (depths < camera.far)
    depth_ids = np.nonzero(depth_mask)[0]
    if depth_ids.size == 0:
        return CullResult(
            valid_ids=depth_ids,
            num_total=num_total,
            num_in_depth=0,
            num_visible=0,
        )

    geom, _ = projection.project_geometry(
        means[depth_ids], log_scales[depth_ids], quats[depth_ids], camera
    )
    x, y = geom.means2d[:, 0], geom.means2d[:, 1]
    r = geom.radii
    inside = (
        geom.valid
        & (x + r > 0)
        & (x - r < camera.width)
        & (y + r > 0)
        & (y - r < camera.height)
    )
    valid_ids = depth_ids[inside]
    return CullResult(
        valid_ids=valid_ids,
        num_total=num_total,
        num_in_depth=int(depth_ids.size),
        num_visible=int(valid_ids.size),
    )
