"""Shard-parallel fragment rasterization (forward + backward).

The ``parallel`` engine fans *tile spans* of one globally sorted
intersection table out over cores — but the table itself (projection,
binning, radix sort, pair build) is still produced serially on the host,
and every worker needs the whole splat set in shared memory. At high
worker counts that host-side prefix dominates, and in the sharded
training systems it forces a global gather of all shards before any
render. This module removes both: workers run the **whole per-shard
pipeline** — tile binning, pair build, transmittance scan, compositing —
over only their shard's splats, and emit compact per-pixel **fragment
buffers** that the host merges with a depth-ordered transmittance
composite (the Gaussian-parallel + pixel-parallel decomposition of
Grendel, "On Scaling Up 3D Gaussian Splatting Training").

A *fragment* is one pixel's maximal run of consecutive splats (in global
depth order) that live in the same shard. Each worker composites its
shard's pairs fragment-locally and emits, per fragment:

* ``pixel`` — the pixel id;
* ``run`` — the global depth-run index (host-computed from the global
  depth order, so runs interleave shards exactly as depth dictates);
* ``rgb`` — the fragment-internal premultiplied color
  ``sum_i T^within_i alpha_i c_i`` (transmittance *within* the fragment);
* ``logt`` — the fragment's total ``log2`` transmittance
  ``sum_i log2(1 - alpha_i)``.

Because blending is associative under pre-multiplication, the host
reconstructs the exact global composite from fragments alone: sort them
by ``(pixel, run)`` (two 16-bit-digit radix passes — no wide keys), scan
``logt`` per pixel to get each fragment's pre-blend transmittance
``T_before``, and accumulate ``T_before * rgb`` per pixel. The background
term uses the per-pixel ``logt`` totals. No process ever needs splats
outside its shard, and nothing but fragment buffers crosses the merge.

The backward pass splits the composited gradient along the same fragment
boundaries. The host needs only the *stashed forward fragments* plus the
image gradient: a fragment's total pair-level suffix weight satisfies

    sum_i w_i (dL/dC . c_i) = T_before * (dL/dC . rgb)

so the per-fragment suffix offsets ``d_f`` (segment total + background
term minus the exclusive fragment prefix) come from one fragment-level
cumsum — no pair table on the host. Workers rebuild their shard's pair
table deterministically, combine ``d_f``/``T_before`` with a
fragment-local inclusive scan, and return sparse per-splat partials,
exactly the :func:`~repro.render.parallel._backward_span` tail.

Determinism: per-shard computation is a pure function of the shard's
arrays — identical in-process and pooled — and the merge order is fixed
by the (unique) ``(pixel, run)`` keys, so results are bit-identical
across repeated runs and across worker counts; across *shard* counts
only prefix-association rounding differs (~1e-12, bounded at 1e-9 by
``tests/render/test_fragment_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import faults
from .backward import RasterGrads, alloc_grads
from .engine import (
    TILE_SIZE,
    _argsort_by_key,
    _check_config,
    pairs_for_isects,
    resolve_dtype,
    tile_intersections,
)
from .parallel import _pack_shm, _attach_shm, _shm_views, get_raster_pool
from .rasterize import RasterConfig, RasterResult, config_bboxes

__all__ = [
    "FragmentRasterResult",
    "FragmentSource",
    "rasterize_fragment",
    "rasterize_backward_fragment",
    "rasterize_fragment_sources",
]


# ---------------------------------------------------------------------------
# result type: RasterResult + the stashed fragment buffers
# ---------------------------------------------------------------------------

@dataclass
class FragmentRasterResult(RasterResult):
    """Forward output plus the merged fragment stash the backward needs.

    The stash is what makes the backward pass gather-free: the host
    derives every per-fragment suffix term from these arrays and the
    image gradient alone, then ships two scalars per fragment back to the
    shard workers.

    Attributes (beyond :class:`~repro.render.rasterize.RasterResult`):
        shard_list: splat ids concatenated shard by shard, each shard's
            slice in within-shard depth order.
        offsets: ``(S+1,)`` shard boundaries into ``shard_list``.
        run_of: global depth-run index per splat (input order).
        num_runs: total depth runs.
        frag_pixel: merged fragment pixel ids, ``(pixel, run)``-sorted.
        frag_rgb: fragment-internal premultiplied color, sorted, float64.
        frag_tb: pre-blend transmittance of each sorted fragment.
        seg_starts, seg_counts, seg_nz: per-pixel segments over the
            sorted fragments (``seg_nz`` lists the touched pixel ids).
        frag_perm: sorted-position -> emission-position permutation
            (``sorted = emitted[frag_perm]``).
        emit_counts: fragments emitted per shard, in shard order.
    """

    shard_list: np.ndarray
    offsets: np.ndarray
    run_of: np.ndarray
    num_runs: int
    frag_pixel: np.ndarray
    frag_rgb: np.ndarray
    frag_tb: np.ndarray
    seg_starts: np.ndarray
    seg_counts: np.ndarray
    seg_nz: np.ndarray
    frag_perm: np.ndarray
    emit_counts: np.ndarray


@dataclass(frozen=True)
class FragmentSource:
    """One shard's projected splats, in the shard's local row order.

    The per-shard input of :func:`rasterize_fragment_sources` — exactly
    the arrays :func:`repro.render.projection.project` produces for the
    shard's visible rows. Gradients come back in the same concatenated
    row space (shard k owns rows ``[sum(sizes[:k]), sum(sizes[:k+1]))``).
    """

    means2d: np.ndarray
    conics: np.ndarray
    colors: np.ndarray
    opacities: np.ndarray
    depths: np.ndarray
    radii: np.ndarray

    @property
    def size(self) -> int:
        """Splat count of this shard."""
        return int(self.depths.shape[0])


# ---------------------------------------------------------------------------
# per-shard kernels (run in workers; also in-process for workers <= 1)
# ---------------------------------------------------------------------------

def _shard_fragments(pairs, run_of):
    """Fragment boundaries of one shard's pair table.

    A new fragment starts at every pixel-segment start and at every
    global-run change inside a segment. Within a pixel's segment the
    pairs follow the shard's depth order (a subsequence of the global
    order), so run ids are non-decreasing and fragments are maximal
    constant-run slices.
    """
    run_pair = run_of[pairs.sid]
    first = np.zeros(pairs.alpha.size, dtype=bool)
    first[pairs.starts] = True
    first[1:] |= run_pair[1:] != run_pair[:-1]
    frag_starts = np.flatnonzero(first)
    frag_counts = np.diff(np.append(frag_starts, pairs.alpha.size))
    frag_id = np.cumsum(first) - 1
    return run_pair, frag_starts, frag_counts, frag_id


def _fragment_forward_shard(arr, start, stop, width, height, config, tile_size):
    """Composite one shard into fragment buffers.

    Returns ``(pixel, run, logt, rgb)`` per fragment — all float64 on the
    merge-facing side — or ``None`` when the shard contributes nothing.
    """
    ids = arr["shard_list"][start:stop]
    if ids.size == 0:
        return None
    faults.fault_point("fragment:cull")
    tile_ids, sid_isect, tiles_x, _ = tile_intersections(
        arr["bboxes"], width, height, tile_size, order=ids
    )
    if tile_ids.size == 0:
        return None
    pairs = pairs_for_isects(
        arr["means2d"], arr["conics"], arr["opacities"], arr["bboxes"],
        tile_ids, sid_isect, tiles_x, width, height, config, tile_size,
    )
    faults.fault_point("fragment:pairs")
    if pairs.alpha.size == 0:
        return None
    run_pair, frag_starts, frag_counts, frag_id = _shard_fragments(
        pairs, arr["run_of"]
    )
    faults.fault_point("fragment:composite")
    lg = np.log2(1.0 - pairs.alpha)
    cum = np.cumsum(lg)
    frag_ends = frag_starts + frag_counts - 1
    logt = cum[frag_ends] - cum[frag_starts] + lg[frag_starts]
    # fragment-local exclusive scan -> transmittance within the fragment
    ecum = cum
    ecum -= lg
    ecum -= np.repeat(ecum[frag_starts], frag_counts)
    t_within = np.exp2(ecum, out=ecum)
    weight = np.multiply(t_within, pairs.alpha, out=t_within)
    n_frag = frag_starts.size
    rgb = np.empty((n_frag, 3), dtype=np.float64)
    for k in range(3):
        col = np.ascontiguousarray(arr["colors"][:, k])
        rgb[:, k] = np.bincount(
            frag_id, weights=weight * col[pairs.sid], minlength=n_frag
        )
    return (
        pairs.pixel[frag_starts],
        run_pair[frag_starts],
        logt.astype(np.float64, copy=False),
        rgb,
    )


def _fragment_backward_shard(
    arr, start, stop, fstart, fstop, width, height, config, tile_size
):
    """Gradient partials of one shard.

    Rebuilds the shard's pair table deterministically (same inputs, same
    code path as the forward), combines the host-computed per-fragment
    ``T_before``/suffix offsets with a fragment-local inclusive scan, and
    reduces sparse per-splat partials — the same contract as
    :func:`repro.render.parallel._backward_span`.
    """
    ids = arr["shard_list"][start:stop]
    if ids.size == 0:
        return None
    faults.fault_point("fragment:cull")
    means2d, conics, colors = arr["means2d"], arr["conics"], arr["colors"]
    tile_ids, sid_isect, tiles_x, _ = tile_intersections(
        arr["bboxes"], width, height, tile_size, order=ids
    )
    if tile_ids.size == 0:
        return None
    pairs = pairs_for_isects(
        means2d, conics, arr["opacities"], arr["bboxes"],
        tile_ids, sid_isect, tiles_x, width, height, config, tile_size,
    )
    faults.fault_point("fragment:pairs")
    if pairs.alpha.size == 0:
        return None
    run_pair, frag_starts, frag_counts, frag_id = _shard_fragments(
        pairs, arr["run_of"]
    )
    faults.fault_point("fragment:composite")
    if frag_starts.size != fstop - fstart:
        raise RuntimeError(
            "fragment backward rebuilt a different fragment count than the "
            "forward emitted — forward/backward inputs must match"
        )
    tb_f = arr["tb_emit"][fstart:fstop]
    d_f = arr["d_emit"][fstart:fstop]
    pix, sid, alpha = pairs.pixel, pairs.sid, pairs.alpha

    # reduce onto the shard's own splat set (see _backward_span: sorted
    # uids keep the per-splat sums bit-identical to a global bincount)
    uids = np.unique(sid_isect)
    lut = np.zeros(means2d.shape[0], dtype=np.int64)
    lut[uids] = np.arange(uids.size)
    lid = lut[sid]
    m_local = uids.size

    lg = np.log2(1.0 - alpha)
    cum = np.cumsum(lg)
    ecum = cum
    ecum -= lg
    ecum -= np.repeat(ecum[frag_starts], frag_counts)
    t_within = np.exp2(ecum, out=ecum)
    t_before = np.repeat(tb_f, frag_counts) * t_within
    weight = t_before * alpha

    g_flat = arr["grad_image"]
    g_pair = [np.ascontiguousarray(g_flat[:, k])[pix] for k in range(3)]
    c_pair = [np.ascontiguousarray(colors[:, k])[sid] for k in range(3)]

    grad_colors = np.empty((m_local, 3), dtype=np.float64)
    for k in range(3):
        grad_colors[:, k] = np.bincount(
            lid, weights=g_pair[k] * weight, minlength=m_local
        )

    # suffix accumulator, fragment-decomposed: the host's d_f already
    # holds [segment total + bg term - exclusive fragment prefix], so the
    # pair-level suffix is d_f minus the fragment-local inclusive prefix
    gdot_color = g_pair[0] * c_pair[0]
    gdot_color += g_pair[1] * c_pair[1]
    gdot_color += g_pair[2] * c_pair[2]
    gw = weight * gdot_color
    incl = np.cumsum(gw)
    incl -= np.repeat(incl[frag_starts] - gw[frag_starts], frag_counts)
    gdot_suffix = np.repeat(d_f, frag_counts)
    gdot_suffix -= incl

    one_minus = 1.0 - alpha
    grad_alpha = gdot_color * t_before
    grad_alpha -= gdot_suffix / one_minus
    np.copyto(grad_alpha, 0.0, where=alpha >= config.alpha_max)

    op_pair = arr["opacities"][sid]
    gval = alpha / op_pair
    grad_alpha *= gval
    grad_opac = np.bincount(lid, weights=grad_alpha, minlength=m_local)
    grad_power = np.multiply(grad_alpha, op_pair, out=grad_alpha)

    dx = (pix % width) + 0.5
    dx -= np.ascontiguousarray(means2d[:, 0])[sid]
    dy = (pix // width) + 0.5
    dy -= np.ascontiguousarray(means2d[:, 1])[sid]
    gpx = grad_power * dx
    gpy = grad_power * dy
    grad_conics = np.empty((m_local, 3), dtype=np.float64)
    grad_conics[:, 0] = -0.5 * np.bincount(
        lid, weights=gpx * dx, minlength=m_local
    )
    grad_conics[:, 1] = -np.bincount(lid, weights=gpx * dy, minlength=m_local)
    grad_conics[:, 2] = -0.5 * np.bincount(
        lid, weights=gpy * dy, minlength=m_local
    )
    c_a = np.ascontiguousarray(conics[:, 0])[sid]
    c_b = np.ascontiguousarray(conics[:, 1])[sid]
    gmx_pair = c_a * gpx
    gmx_pair += c_b * gpy
    gmy_pair = c_b * gpx
    gmy_pair += np.ascontiguousarray(conics[:, 2])[sid] * gpy
    gmx = np.bincount(lid, weights=gmx_pair, minlength=m_local)
    gmy = np.bincount(lid, weights=gmy_pair, minlength=m_local)
    return uids, grad_colors, grad_opac, grad_conics, gmx, gmy


_SHARD_FNS = {
    "forward": _fragment_forward_shard,
    "backward": _fragment_backward_shard,
}


def _fragment_task(args):
    """Pool task: attach the shared arrays, run one shard, detach."""
    shm_name, metas, mode, slc, width, height, config, tile_size = args
    shm = _attach_shm(shm_name)
    arr = None
    try:
        arr = _shm_views(shm, metas)
        out = _SHARD_FNS[mode](
            arr, *slc, width=width, height=height, config=config,
            tile_size=tile_size,
        )
    finally:
        del arr  # drop buffer views so close() cannot see exports
        shm.close()
    return out


def _run_shard_tasks(mode, arrays, slices, width, height, config, tile_size):
    """Execute shards in-process (``workers <= 1``) or on the shared pool.

    Results come back in shard order either way, and each shard's kernel
    sees identical arrays in both paths, so the merged output is
    bit-identical across worker counts.
    """
    workers = config.workers
    if workers <= 1 or len(slices) <= 1:
        return [
            _SHARD_FNS[mode](
                arrays, *slc, width=width, height=height, config=config,
                tile_size=tile_size,
            )
            for slc in slices
        ]
    shm, metas = _pack_shm(arrays)
    try:
        tasks = [
            (shm.name, metas, mode, slc, width, height, config, tile_size)
            for slc in slices
        ]
        return get_raster_pool(workers).map(_fragment_task, tasks)
    finally:
        shm.close()
        shm.unlink()


# ---------------------------------------------------------------------------
# host merge
# ---------------------------------------------------------------------------

def _merge_fragments(results, width, height, background, dtype, num_runs):
    """Depth-ordered transmittance composite of per-shard fragments.

    Returns ``(image, trans, stash)`` with the flat image/transmittance
    in ``dtype`` and the sorted fragment stash for the backward pass.
    """
    n_pix = width * height
    image = np.zeros((n_pix, 3), dtype=np.float64)
    trans = np.ones(n_pix, dtype=np.float64)
    emit_counts = np.array(
        [0 if r is None else r[0].size for r in results], dtype=np.int64
    )
    live = [r for r in results if r is not None]
    empty = np.empty(0, dtype=np.int64)
    if not live:
        image += trans[:, None] * background.astype(np.float64)
        stash = dict(
            frag_pixel=empty, frag_rgb=np.empty((0, 3)), frag_tb=np.empty(0),
            seg_starts=empty, seg_counts=empty, seg_nz=empty,
            frag_perm=empty, emit_counts=emit_counts,
        )
        return image.astype(dtype), trans.astype(dtype), stash

    pix_all = np.concatenate([r[0] for r in live])
    run_all = np.concatenate([r[1] for r in live])
    logt_all = np.concatenate([r[2] for r in live])
    rgb_all = np.concatenate([r[3] for r in live])

    # sort by (pixel, run): LSD radix — run digit first, then a stable
    # pixel pass. (pixel, run) keys are unique (one shard owns each run),
    # so the order is fully determined, never tie-broken.
    perm = _argsort_by_key(run_all, max(num_runs - 1, 0))
    perm = perm[_argsort_by_key(pix_all[perm], n_pix - 1)]
    pix_s = pix_all[perm]
    logt_s = logt_all[perm]
    rgb_s = rgb_all[perm]

    counts_pix = np.bincount(pix_s, minlength=n_pix)
    nz = np.flatnonzero(counts_pix)
    seg_counts = counts_pix[nz]
    starts = np.cumsum(seg_counts) - seg_counts
    ends = starts + seg_counts - 1

    cum = np.cumsum(logt_s)
    seg_log_t = cum[ends] - cum[starts] + logt_s[starts]
    ecum = cum - logt_s
    ecum -= np.repeat(ecum[starts], seg_counts)
    tb = np.exp2(ecum, out=ecum)
    trans[nz] = np.exp2(seg_log_t)
    for k in range(3):
        image[:, k] = np.bincount(
            pix_s, weights=tb * rgb_s[:, k], minlength=n_pix
        )
    image += trans[:, None] * background.astype(np.float64)
    stash = dict(
        frag_pixel=pix_s, frag_rgb=rgb_s, frag_tb=tb,
        seg_starts=starts, seg_counts=seg_counts, seg_nz=nz,
        frag_perm=perm, emit_counts=emit_counts,
    )
    return image.astype(dtype), trans.astype(dtype), stash


def _forward_shard_slices(offsets):
    return [
        (int(offsets[k]), int(offsets[k + 1]))
        for k in range(offsets.size - 1)
    ]


def _render_fragments(
    means2d, conics, colors, opacities, bboxes, order,
    shard_list, offsets, run_of, num_runs,
    width, height, background, config, tile_size,
) -> FragmentRasterResult:
    """Shared forward core of the engine-standard and source entrypoints."""
    dtype = means2d.dtype
    arrays = {
        "means2d": means2d, "conics": conics, "colors": colors,
        "opacities": opacities, "bboxes": bboxes,
        "shard_list": shard_list, "run_of": run_of,
    }
    results = _run_shard_tasks(
        "forward", arrays, _forward_shard_slices(offsets), width, height,
        config, tile_size,
    )
    image, trans, stash = _merge_fragments(
        results, width, height, background, dtype, num_runs
    )
    return FragmentRasterResult(
        image=image.reshape(height, width, 3),
        final_transmittance=trans.reshape(height, width),
        order=order,
        bboxes=bboxes,
        shard_list=shard_list,
        offsets=offsets,
        run_of=run_of,
        num_runs=num_runs,
        **stash,
    )


# ---------------------------------------------------------------------------
# shard layouts
# ---------------------------------------------------------------------------

def _depth_slab_layout(order, num_shards):
    """Contiguous depth slabs: the engine-path shard assignment.

    Slab k is one global depth run by construction (the slabs tile the
    depth order), so ``run id == slab id``.
    """
    m = order.size
    num_shards = max(1, min(int(num_shards), max(m, 1)))
    edges = (m * np.arange(num_shards + 1, dtype=np.int64)) // num_shards
    run_of = np.empty(m, dtype=np.int64)
    run_of[order] = np.repeat(
        np.arange(num_shards, dtype=np.int64), np.diff(edges)
    )
    return order, edges, run_of, num_shards


def _source_layout(depths_list):
    """Interleaved-shard layout from per-shard depth arrays.

    Returns ``(order, shard_list, offsets, run_of, num_runs)`` over the
    concatenated row space: ``order`` is the global stable depth sort,
    runs are its maximal constant-shard slices, and ``shard_list`` holds
    each shard's rows in within-shard depth order (the restriction of the
    global order, so ties resolve identically to a joint render).
    """
    sizes = np.array([d.size for d in depths_list], dtype=np.int64)
    m = int(sizes.sum())
    offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
    if m == 0:
        return (
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            offsets, np.empty(0, dtype=np.int64), 0,
        )
    depths_all = np.concatenate(depths_list)
    order = np.argsort(depths_all, kind="stable")
    shard_of = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)
    sorder = shard_of[order]
    chg = np.empty(m, dtype=bool)
    chg[0] = True
    chg[1:] = sorder[1:] != sorder[:-1]
    run_along = np.cumsum(chg) - 1
    run_of = np.empty(m, dtype=np.int64)
    run_of[order] = run_along
    num_runs = int(run_along[-1]) + 1
    # group the order positions by shard (stable -> within-shard depth
    # order preserved), giving each shard's slice of shard_list
    shard_list = order[np.argsort(sorder, kind="stable")]
    return order, shard_list, offsets, run_of, num_runs


# ---------------------------------------------------------------------------
# forward entrypoints
# ---------------------------------------------------------------------------

def rasterize_fragment(
    means2d: np.ndarray,
    conics: np.ndarray,
    colors: np.ndarray,
    opacities: np.ndarray,
    depths: np.ndarray,
    radii: np.ndarray,
    width: int,
    height: int,
    background: np.ndarray | None = None,
    config: RasterConfig | None = None,
    tile_size: int = TILE_SIZE,
) -> FragmentRasterResult:
    """Fragment-compositing rasterizer; same contract as
    :func:`repro.render.rasterize.rasterize`.

    Whole-scene inputs are cut into ``config.fragment_shards`` contiguous
    depth slabs (``0`` derives the count from ``config.workers``), each
    rendered as an independent shard; the sharded systems instead feed
    per-shard sources through :func:`rasterize_fragment_sources`.
    """
    config = _check_config(config)
    order = np.argsort(depths, kind="stable")
    bboxes = config_bboxes(means2d, radii, width, height, config)
    means2d, conics, colors, opacities = resolve_dtype(
        config, means2d, conics, colors, opacities
    )
    dtype = means2d.dtype
    if background is None:
        background = np.zeros(3, dtype=dtype)
    background = np.asarray(background, dtype=dtype)
    num_shards = config.fragment_shards or max(config.workers, 1)
    shard_list, offsets, run_of, num_runs = _depth_slab_layout(
        order, num_shards
    )
    return _render_fragments(
        means2d, conics, colors, opacities, bboxes, order,
        shard_list, offsets, run_of, num_runs,
        width, height, background, config, tile_size,
    )


def rasterize_fragment_sources(
    sources: list[FragmentSource],
    width: int,
    height: int,
    background: np.ndarray | None = None,
    config: RasterConfig | None = None,
    tile_size: int = TILE_SIZE,
) -> FragmentRasterResult:
    """Composite per-shard projected sources without a global gather.

    Each :class:`FragmentSource` is rendered as its own shard (its rows
    are never merged with another shard's packed parameters — only the
    ~12 projected columns are concatenated for indexing), and the depth
    runs are computed from the joint depth order, so the output equals a
    single render of the union to compositing-rounding precision.
    :func:`rasterize_backward_fragment` on the returned result yields
    gradients in the concatenated row space: shard k owns rows
    ``[result.offsets... sum(sizes[:k]), sum(sizes[:k+1]))`` of the
    original per-source row order.
    """
    config = _check_config(config)
    means2d = np.concatenate([s.means2d for s in sources])
    conics = np.concatenate([s.conics for s in sources])
    colors = np.concatenate([s.colors for s in sources])
    opacities = np.concatenate([s.opacities for s in sources])
    radii = np.concatenate([s.radii for s in sources])
    order, shard_list, offsets, run_of, num_runs = _source_layout(
        [s.depths for s in sources]
    )
    bboxes = config_bboxes(means2d, radii, width, height, config)
    means2d, conics, colors, opacities = resolve_dtype(
        config, means2d, conics, colors, opacities
    )
    dtype = means2d.dtype
    if background is None:
        background = np.zeros(3, dtype=dtype)
    background = np.asarray(background, dtype=dtype)
    return _render_fragments(
        means2d, conics, colors, opacities, bboxes, order,
        shard_list, offsets, run_of, num_runs,
        width, height, background, config, tile_size,
    )


# ---------------------------------------------------------------------------
# backward
# ---------------------------------------------------------------------------

def rasterize_backward_fragment(
    means2d: np.ndarray,
    conics: np.ndarray,
    colors: np.ndarray,
    opacities: np.ndarray,
    result: RasterResult,
    grad_image: np.ndarray,
    background: np.ndarray | None = None,
    config: RasterConfig | None = None,
    tile_size: int = TILE_SIZE,
) -> RasterGrads:
    """Shard-parallel adjoint of :func:`rasterize_fragment`; same contract
    as :func:`repro.render.backward.rasterize_backward`.

    ``result`` must be the :class:`FragmentRasterResult` of the matching
    forward pass — the host-side suffix preparation runs entirely on its
    stashed fragment buffers (no pair table, no gather).
    """
    config = _check_config(config)
    if not isinstance(result, FragmentRasterResult):
        raise TypeError(
            "rasterize_backward_fragment needs the FragmentRasterResult of "
            "a fragment forward pass"
        )
    means2d, conics, colors, opacities = resolve_dtype(
        config, means2d, conics, colors, opacities
    )
    dtype = means2d.dtype
    height, width = grad_image.shape[:2]
    if background is None:
        background = np.zeros(3, dtype=dtype)
    background = np.asarray(background, dtype=dtype)

    m_count = means2d.shape[0]
    grads = alloc_grads(m_count, dtype)
    n_frag = result.frag_pixel.size
    if n_frag == 0:
        return grads

    # --- host: per-fragment suffix terms from the forward stash ----------
    g_flat = np.ascontiguousarray(grad_image.reshape(-1, 3), dtype=np.float64)
    t_final = np.ascontiguousarray(
        result.final_transmittance.reshape(-1), dtype=np.float64
    )
    pix_s = result.frag_pixel
    tb = result.frag_tb
    rgb = result.frag_rgb
    starts, counts = result.seg_starts, result.seg_counts
    # fragment total of weight * (dL/dC . c): T_before * (dL/dC . rgb)
    gw = g_flat[pix_s, 0] * rgb[:, 0]
    gw += g_flat[pix_s, 1] * rgb[:, 1]
    gw += g_flat[pix_s, 2] * rgb[:, 2]
    gw *= tb
    incl = np.cumsum(gw)
    ends = starts + counts - 1
    seg_gw = incl[ends] - incl[starts] + gw[starts]
    incl -= np.repeat(incl[starts] - gw[starts], counts)  # inclusive in-seg
    pref_seg = (g_flat[result.seg_nz] @ background.astype(np.float64))
    pref_seg *= t_final[result.seg_nz]
    pref_seg += seg_gw
    # d_f = segment total + bg term - exclusive fragment prefix
    d_sorted = np.repeat(pref_seg, counts)
    d_sorted -= incl - gw
    # scatter back to emission order and slice per shard
    tb_emit = np.empty(n_frag, dtype=np.float64)
    d_emit = np.empty(n_frag, dtype=np.float64)
    tb_emit[result.frag_perm] = tb
    d_emit[result.frag_perm] = d_sorted

    # --- workers: per-shard gradient kernels ------------------------------
    arrays = {
        "means2d": means2d, "conics": conics, "colors": colors,
        "opacities": opacities, "bboxes": result.bboxes,
        "shard_list": result.shard_list, "run_of": result.run_of,
        "grad_image": np.ascontiguousarray(
            grad_image.reshape(-1, 3), dtype=dtype
        ),
        "tb_emit": tb_emit, "d_emit": d_emit,
    }
    femit = np.concatenate([[0], np.cumsum(result.emit_counts)])
    slices = [
        (
            int(result.offsets[k]), int(result.offsets[k + 1]),
            int(femit[k]), int(femit[k + 1]),
        )
        for k in range(result.offsets.size - 1)
    ]
    acc_colors = np.zeros((m_count, 3), dtype=np.float64)
    acc_opac = np.zeros(m_count, dtype=np.float64)
    acc_conics = np.zeros((m_count, 3), dtype=np.float64)
    acc_gmx = np.zeros(m_count, dtype=np.float64)
    acc_gmy = np.zeros(m_count, dtype=np.float64)
    for res in _run_shard_tasks(
        "backward", arrays, slices, width, height, config, tile_size
    ):
        if res is None:
            continue
        uids, shard_colors, shard_opac, shard_conics, shard_gmx, shard_gmy = res
        acc_colors[uids] += shard_colors
        acc_opac[uids] += shard_opac
        acc_conics[uids] += shard_conics
        acc_gmx[uids] += shard_gmx
        acc_gmy[uids] += shard_gmy
    grads.colors[:] = acc_colors
    grads.opacities[:] = acc_opac
    grads.conics[:] = acc_conics
    grads.means2d[:, 0] = acc_gmx
    grads.means2d[:, 1] = acc_gmy
    grads.mean2d_abs[:] = np.hypot(acc_gmx, acc_gmy)
    return grads
