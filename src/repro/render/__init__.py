"""Differentiable 3DGS renderer: culling, projection, rasterization, backward.

Three interchangeable rasterization backends are available through
``RasterConfig.engine`` (see ``docs/raster_engines.md``): the per-splat
``reference`` loop, the ``tiled`` loop, and the flat intersection-sorted
``vectorized`` engine.
"""

from . import backward, culling, engine, projection, rasterize, tiles
from .culling import CullResult, frustum_cull
from .engine import (
    rasterize_backward_vectorized,
    rasterize_vectorized,
    tile_intersections,
)
from .pipeline import RenderBackwardResult, RenderResult, render, render_backward
from .rasterize import ENGINES, RasterConfig
from .tiles import TileBinning, bin_gaussians, rasterize_tiled

__all__ = [
    "CullResult",
    "ENGINES",
    "RasterConfig",
    "RenderBackwardResult",
    "RenderResult",
    "TileBinning",
    "backward",
    "bin_gaussians",
    "culling",
    "engine",
    "frustum_cull",
    "projection",
    "rasterize",
    "rasterize_backward_vectorized",
    "rasterize_tiled",
    "rasterize_vectorized",
    "render",
    "render_backward",
    "tile_intersections",
    "tiles",
]
