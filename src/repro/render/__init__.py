"""Differentiable 3DGS renderer: culling, projection, rasterization, backward.

Five interchangeable rasterization backends are available through
``RasterConfig.engine`` (see ``docs/raster_engines.md``): the per-splat
``reference`` loop, the ``tiled`` loop, the flat intersection-sorted
``vectorized`` engine, the multi-core tile-span ``parallel`` engine
(``RasterConfig.workers`` processes over a persistent shared-memory
pool), and the shard-parallel ``fragment`` engine (workers run the whole
per-shard pipeline and the host merges depth-ordered fragment buffers).
``RasterConfig.dtype="float32"`` selects the inference fast path of the
flat engines.
"""

from . import backward, culling, engine, projection, rasterize, tiles
from .culling import CullResult, frustum_cull
from .engine import (
    rasterize_backward_vectorized,
    rasterize_vectorized,
    tile_intersections,
)
from .fragment import (
    FragmentRasterResult,
    FragmentSource,
    rasterize_backward_fragment,
    rasterize_fragment,
    rasterize_fragment_sources,
)
from .parallel import (
    PersistentPool,
    rasterize_backward_parallel,
    rasterize_parallel,
    shutdown_raster_pools,
)
from .pipeline import RenderBackwardResult, RenderResult, render, render_backward
from .rasterize import ENGINES, RASTER_DTYPES, RasterConfig
from .tiles import TileBinning, bin_gaussians, partition_spans, rasterize_tiled

__all__ = [
    "CullResult",
    "ENGINES",
    "FragmentRasterResult",
    "FragmentSource",
    "PersistentPool",
    "RASTER_DTYPES",
    "RasterConfig",
    "RenderBackwardResult",
    "RenderResult",
    "TileBinning",
    "backward",
    "bin_gaussians",
    "culling",
    "engine",
    "frustum_cull",
    "partition_spans",
    "projection",
    "rasterize",
    "rasterize_backward_fragment",
    "rasterize_backward_parallel",
    "rasterize_backward_vectorized",
    "rasterize_fragment",
    "rasterize_fragment_sources",
    "rasterize_parallel",
    "rasterize_tiled",
    "rasterize_vectorized",
    "render",
    "render_backward",
    "shutdown_raster_pools",
    "tile_intersections",
    "tiles",
]
