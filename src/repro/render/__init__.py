"""Differentiable 3DGS renderer: culling, projection, rasterization, backward."""

from . import backward, culling, projection, rasterize, tiles
from .culling import CullResult, frustum_cull
from .pipeline import RenderBackwardResult, RenderResult, render, render_backward
from .rasterize import RasterConfig
from .tiles import TileBinning, bin_gaussians, rasterize_tiled

__all__ = [
    "CullResult",
    "RasterConfig",
    "RenderBackwardResult",
    "RenderResult",
    "TileBinning",
    "backward",
    "bin_gaussians",
    "culling",
    "frustum_cull",
    "projection",
    "rasterize",
    "rasterize_tiled",
    "render",
    "render_backward",
    "tiles",
]
