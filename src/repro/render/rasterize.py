"""Depth-sorted alpha compositing of projected 2D Gaussians (steps 2-3).

The rasterizer processes Gaussians in global depth order and composites each
splat over its pixel bounding box with the classical volume-rendering
equation. It is deliberately written without per-pixel Python loops: the
outer loop runs over Gaussians, the inner work is vectorized numpy over the
splat's bounding box.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Minimum alpha for a splat-pixel pair to contribute (3DGS uses 1/255).
ALPHA_MIN = 1.0 / 255.0

#: Maximum alpha per splat-pixel pair (3DGS caps at 0.99 for stability).
ALPHA_MAX = 0.99

#: Selectable rasterization backends (see ``docs/raster_engines.md``):
#: ``reference`` is the per-splat loop in this module, ``tiled`` the
#: tile-binned loop in :mod:`repro.render.tiles`, ``vectorized`` the flat
#: intersection-sorted engine in :mod:`repro.render.engine`, ``parallel``
#: the multi-core tile-span pool in :mod:`repro.render.parallel`, and
#: ``fragment`` the shard-parallel fragment compositor in
#: :mod:`repro.render.fragment` (workers run the whole per-shard
#: pipeline; the host merges depth-ordered fragment buffers).
ENGINES = ("reference", "tiled", "vectorized", "parallel", "fragment")

#: Compute dtypes the vectorized/parallel engines accept for
#: ``RasterConfig.dtype`` (``None`` keeps the input arrays' dtype).
RASTER_DTYPES = ("float32", "float64")


@dataclass
class RasterConfig:
    """Rasterizer knobs.

    Attributes:
        alpha_min: splat-pixel contributions below this are skipped. Setting
            it to 0 makes the forward/backward pair exactly smooth, which
            the numerical gradient tests rely on.
        alpha_max: per-splat alpha cap (gradient is zero where the cap binds).
        full_image_splats: rasterize every splat over the whole image instead
            of its 3-sigma bounding box. Removes the (measure-zero)
            discontinuity of the integer bbox, which finite-difference
            gradient checks would otherwise trip over.
        engine: which rasterization backend executes the forward/backward
            passes; one of :data:`ENGINES`. All four produce the same
            output (the loop engines bitwise, ``vectorized``/``parallel``
            to ~1e-12); the flat engines are much faster past a few
            hundred splats.
        workers: worker-process count of the ``parallel``/``fragment``
            engines. ``0``/``1`` run the pipelines in-process (no pool);
            ``>= 2`` ship work to a persistent multiprocessing pool via
            shared memory. Ignored by the other engines.
        dtype: compute dtype of the flat engines — one of
            :data:`RASTER_DTYPES`, or ``None`` to keep the input dtype.
            ``"float32"`` is the inference fast path: pair-level arithmetic
            (the exp2/scan hot loops) runs in single precision, roughly
            halving memory traffic, at ~1e-4 image tolerance. The loop
            engines ignore it (they are correctness oracles).
        span_oversubscription: spans planned per worker by the ``parallel``
            engine (plumbed to
            :func:`repro.render.tiles.adaptive_span_count`). Higher values
            smooth stragglers at the cost of per-span dispatch overhead.
        fragment_shards: shard count of the ``fragment`` engine when it is
            invoked through the generic engine interface (whole-scene
            inputs are cut into this many contiguous depth slabs). ``0``
            derives the count from ``workers``. The sharded systems bypass
            this and pass their own per-shard sources.
    """

    alpha_min: float = ALPHA_MIN
    alpha_max: float = ALPHA_MAX
    full_image_splats: bool = False
    engine: str = "reference"
    workers: int = 0
    dtype: str | None = None
    span_oversubscription: int = 3
    fragment_shards: int = 0

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown raster engine {self.engine!r}; choose from {ENGINES}"
            )
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.dtype is not None and self.dtype not in RASTER_DTYPES:
            raise ValueError(
                f"unknown raster dtype {self.dtype!r}; choose from "
                f"{RASTER_DTYPES} or None"
            )
        if self.span_oversubscription < 1:
            raise ValueError("span_oversubscription must be >= 1")
        if self.fragment_shards < 0:
            raise ValueError("fragment_shards must be >= 0")


@dataclass
class RasterResult:
    """Output of :func:`rasterize`.

    Attributes:
        image: composited RGB image, ``(H, W, 3)``.
        final_transmittance: per-pixel transmittance after all splats,
            ``(H, W)`` — multiplies the background color.
        order: Gaussian indices in the composited (depth-ascending) order.
        bboxes: integer pixel bounds ``(x0, x1, y0, y1)`` per Gaussian in
            input order; ``x0 >= x1`` marks a skipped splat.
    """

    image: np.ndarray
    final_transmittance: np.ndarray
    order: np.ndarray
    bboxes: np.ndarray


def splat_bboxes(
    means2d: np.ndarray, radii: np.ndarray, width: int, height: int
) -> np.ndarray:
    """Clipped integer bounding boxes ``(M, 4)`` as ``(x0, x1, y0, y1)``."""
    x0 = np.clip(np.floor(means2d[:, 0] - radii), 0, width).astype(np.int64)
    x1 = np.clip(np.ceil(means2d[:, 0] + radii) + 1, 0, width).astype(np.int64)
    y0 = np.clip(np.floor(means2d[:, 1] - radii), 0, height).astype(np.int64)
    y1 = np.clip(np.ceil(means2d[:, 1] + radii) + 1, 0, height).astype(np.int64)
    return np.stack([x0, x1, y0, y1], axis=-1)


def config_bboxes(
    means2d: np.ndarray,
    radii: np.ndarray,
    width: int,
    height: int,
    config: RasterConfig,
) -> np.ndarray:
    """Per-splat composite bounds honoring ``config.full_image_splats``.

    The single source of the bbox-selection rule for all three engines.
    """
    if config.full_image_splats:
        m_count = means2d.shape[0]
        return np.tile(
            np.array([0, width, 0, height], dtype=np.int64), (m_count, 1)
        )
    return splat_bboxes(means2d, radii, width, height)


def _splat_alpha(
    mean2d: np.ndarray,
    conic: np.ndarray,
    opacity: float,
    xs: np.ndarray,
    ys: np.ndarray,
    config: RasterConfig,
) -> np.ndarray:
    """Alpha map of one splat over a pixel box; entries below alpha_min are 0."""
    dx = xs[None, :] - mean2d[0]
    dy = ys[:, None] - mean2d[1]
    power = -0.5 * (
        conic[0] * dx * dx + conic[2] * dy * dy
    ) - conic[1] * dx * dy
    alpha = opacity * np.exp(power)
    alpha = np.minimum(alpha, config.alpha_max)
    if config.alpha_min > 0:
        alpha = np.where(alpha >= config.alpha_min, alpha, 0.0)
    return alpha


def rasterize(
    means2d: np.ndarray,
    conics: np.ndarray,
    colors: np.ndarray,
    opacities: np.ndarray,
    depths: np.ndarray,
    radii: np.ndarray,
    width: int,
    height: int,
    background: np.ndarray | None = None,
    config: RasterConfig | None = None,
) -> RasterResult:
    """Composite projected Gaussians into an image.

    Args:
        means2d: pixel-space centers, ``(M, 2)``.
        conics: inverse-covariance triplets ``(a, b, c)``, ``(M, 3)``.
        colors: RGB per splat, ``(M, 3)``.
        opacities: post-sigmoid opacities, ``(M,)``.
        depths: camera-space z for sorting, ``(M,)``.
        radii: splat radii in pixels, ``(M,)``.
        width, height: image size.
        background: background RGB (defaults to black).
        config: rasterizer thresholds.
    """
    config = config or RasterConfig()
    dtype = means2d.dtype
    if background is None:
        background = np.zeros(3, dtype=dtype)
    background = np.asarray(background, dtype=dtype)

    order = np.argsort(depths, kind="stable")
    bboxes = config_bboxes(means2d, radii, width, height, config)
    image = np.zeros((height, width, 3), dtype=dtype)
    transmittance = np.ones((height, width), dtype=dtype)
    xs_full = np.arange(width, dtype=dtype) + 0.5
    ys_full = np.arange(height, dtype=dtype) + 0.5

    for idx in order:
        x0, x1, y0, y1 = bboxes[idx]
        if x0 >= x1 or y0 >= y1:
            continue
        alpha = _splat_alpha(
            means2d[idx], conics[idx], opacities[idx], xs_full[x0:x1],
            ys_full[y0:y1], config,
        )
        t_box = transmittance[y0:y1, x0:x1]
        weight = t_box * alpha
        image[y0:y1, x0:x1] += weight[:, :, None] * colors[idx]
        transmittance[y0:y1, x0:x1] = t_box * (1.0 - alpha)

    image += transmittance[:, :, None] * background
    return RasterResult(
        image=image,
        final_transmittance=transmittance,
        order=order,
        bboxes=bboxes,
    )
