"""Multi-core tile-span rasterization (forward + backward).

PR 1's vectorized engine removed the interpreter from the raster hot path
but still runs on one core. This module adds the next multiplier: after
the flat intersection sort, the table is cut into contiguous **tile
spans** — load-balanced by pair counts (clipped-rect areas), not tile
counts, the BalanceGS observation — and the spans run on a **persistent**
``multiprocessing`` pool. A pixel's blend segment lives entirely inside
one tile, so spans composite disjoint pixels: the forward merge is a
scatter, and the backward merge is a fixed-order sum of per-span
``np.bincount`` partials.

Data reaches the workers through a shared-memory pair table
(:mod:`multiprocessing.shared_memory`): the parent packs the splat arrays
and the sorted intersection table into one segment, workers attach by
name and slice their span — nothing but the task tuple and the per-span
partial results crosses the pickle channel. The pool itself is managed by
:class:`PersistentPool`, the lifecycle helper shared with the sharded
system's culling fan-out: lazily started, reused across calls (so respawn
cost is paid once, not per render), and torn down deterministically — on
``close()``, on interpreter exit, and on every exception path.

Numerics match the vectorized engine to ~1e-12 (the only difference is
prefix-scan rounding at span boundaries) for every worker count, and
repeated runs with a fixed worker count are bit-identical: span
partitioning is a pure function of the inputs and the merge order is
fixed. ``tests/render/test_parallel_engine.py`` pins both.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import threading
import time
import weakref
from multiprocessing import shared_memory

import numpy as np

from .. import faults
from ..telemetry import trace as _trace
from ..telemetry.metrics import aggregate_counts
from ..telemetry.trace import span as _tspan
from .backward import RasterGrads, alloc_grads
from .engine import (
    TILE_SIZE,
    _check_config,
    _transmittance_scan,
    clip_isect_rects,
    pairs_for_isects,
    resolve_dtype,
    tile_intersections,
)
from .rasterize import RasterConfig, RasterResult, config_bboxes
from .tiles import adaptive_span_count, partition_spans

__all__ = [
    "PersistentPool",
    "PoolFaultError",
    "get_raster_pool",
    "raster_pool_fault_stats",
    "rasterize_parallel",
    "rasterize_backward_parallel",
    "shutdown_raster_pools",
]


# ---------------------------------------------------------------------------
# pool lifecycle
# ---------------------------------------------------------------------------

#: Every live pool, so one interpreter-exit hook can reap them all even
#: when an exception skipped the owner's teardown.
_LIVE_POOLS: "weakref.WeakSet[PersistentPool]" = weakref.WeakSet()

#: Serializes fork-based pool creation against background work that must
#: not be mid-flight at fork time. The async prefetch thread holds this
#: while it reads spill files, so a child process can never be forked
#: with that thread's locks/allocations half-done (hold it around any
#: similar background leg that coexists with PersistentPool use).
pool_fork_guard = threading.Lock()


@atexit.register
def _reap_pools() -> None:
    for pool in list(_LIVE_POOLS):
        pool.close()


class PoolFaultError(RuntimeError):
    """A pool map kept failing on worker death / deadline after all
    retries were spent (application exceptions re-raise as themselves)."""


class _WorkerDied(RuntimeError):
    """Internal: a worker process exited mid-map (supervision signal)."""


class _TaskDeadline(RuntimeError):
    """Internal: an in-flight map exceeded its per-call deadline."""


def _supervised_task(payload):
    """Pool task wrapper that carries a fault plan into the worker.

    Only installed when a :mod:`repro.faults` plan is armed in the
    parent — production maps ship bare ``(fn, task)`` pickles and never
    pay for this indirection. The plan is cleared afterward so a
    persistent worker never leaks one into later, unplanned maps.
    """
    fn, index, task, plan = payload
    faults.install_plan(plan)
    try:
        faults.fault_point("pool:task", index=index)
        return fn(task)
    finally:
        faults.clear_plan()


class PersistentPool:
    """A lazily-started, reusable, *supervised* multiprocessing pool.

    The shared lifecycle helper of the ``parallel`` raster engine, the
    fragment engine, the sharded system's ``shard_workers`` culling
    fan-out, the render farm, and ``train_patches``. Guarantees:

    * workers spawn on first :meth:`map`, not at construction, and are
      reused by every later call (no per-call respawn cost);
    * :meth:`close` is idempotent, exception-safe, and bounded — join
      runs under a hard timeout with a ``kill()`` fallback, so teardown
      after a worker death can never hang the caller;
    * a failed :meth:`map` tears the pool down before re-raising (wedged
      workers are never left behind for the next call to trip over);
    * **liveness supervision**: :meth:`map` dispatches asynchronously and
      polls, watching the worker processes it dispatched onto — a worker
      that exits mid-map (``stdlib`` ``Pool.map`` would deadlock: the
      dead worker's task is simply lost) or a map that exceeds its
      deadline tears the pool down, respawns it, and re-runs the whole
      map with exponential backoff. Every task kind routed through this
      pool is a pure function of its payload, so the retried map is
      bit-identical to what the fault-free run would have produced.
      Application exceptions are *not* retried — they re-raise
      immediately, exactly as before;
    * every live pool is reaped at interpreter exit, so exception paths
      that skip the owner's ``finalize()`` still leak nothing.

    Args:
        processes: worker count.
        start_method: multiprocessing start method; default prefers
            ``fork`` (cheap, data arrives via shared memory anyway) and
            falls back to the platform default where fork is unavailable.
        task_timeout: default per-:meth:`map` deadline in seconds
            (``None`` = no deadline).
        max_retries: default respawn-and-retry budget per :meth:`map`
            for worker-death / deadline faults.
        retry_backoff_s: initial backoff before a retry; doubles per
            attempt.

    Attributes:
        worker_deaths, respawns, retries, deadline_hits: cumulative
            supervision counters, surfaced by :meth:`fault_stats`.
    """

    #: How often the supervision loop samples result/liveness state.
    _poll_interval_s = 0.05

    def __init__(
        self,
        processes: int,
        start_method: str | None = None,
        task_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
    ):
        if processes < 1:
            raise ValueError("processes must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.processes = processes
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self._method = (
            start_method
            if start_method is not None
            else self.default_start_method()
        )
        self._pool = None
        self.worker_deaths = 0
        self.respawns = 0
        self.retries = 0
        self.deadline_hits = 0
        _LIVE_POOLS.add(self)

    @staticmethod
    def default_start_method() -> str:
        """``fork`` where available, else the platform default."""
        if "fork" in mp.get_all_start_methods():
            return "fork"
        return mp.get_start_method(allow_none=False)

    @property
    def started(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._pool is not None

    def _ensure(self):
        if self._pool is None:
            ctx = mp.get_context(self._method)
            with pool_fork_guard:
                self._pool = ctx.Pool(processes=self.processes)
        return self._pool

    def fault_stats(self) -> dict[str, int]:
        """Cumulative supervision counters for this pool."""
        return {
            "worker_deaths": self.worker_deaths,
            "respawns": self.respawns,
            "retries": self.retries,
            "deadline_hits": self.deadline_hits,
        }

    def _map_once(self, fn, tasks, timeout):
        """One supervised map attempt: dispatch async, poll, watch lives.

        Raises :class:`_WorkerDied` when a worker that this map was
        dispatched onto exits (its in-flight task is lost and the bare
        result would never complete), :class:`_TaskDeadline` past the
        per-call deadline. Application exceptions surface through
        ``result.get`` unchanged.
        """
        pool = self._ensure()
        procs = [p for p in pool._pool if p.exitcode is None]
        result = pool.map_async(fn, tasks)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                return result.get(timeout=self._poll_interval_s)
            except mp.TimeoutError:
                pass
            dead = [p for p in procs if p.exitcode is not None]
            if dead:
                self.worker_deaths += len(dead)
                raise _WorkerDied(
                    f"{len(dead)} pool worker(s) exited mid-map "
                    f"(exitcodes {[p.exitcode for p in dead]})"
                )
            if deadline is not None and time.monotonic() > deadline:
                self.deadline_hits += 1
                raise _TaskDeadline(f"map exceeded {timeout}s deadline")

    def map(self, fn, tasks, timeout=None, retries=None):
        """Supervised ``pool.map`` with respawn + bounded retry.

        Args:
            fn: top-level picklable function applied to each task.
            tasks: task payloads (pure inputs — retried maps re-run all
                of them, which is only sound because they are).
            timeout: per-call deadline override (default
                ``self.task_timeout``).
            retries: retry-budget override (default ``self.max_retries``).
        """
        timeout = self.task_timeout if timeout is None else timeout
        retries = self.max_retries if retries is None else retries
        # tracing wraps innermost (before any fault plan), so the span
        # capture rides inside the supervised wrapper and retried maps
        # re-ship their spans like any other result
        traced = _trace.enabled()
        if traced:
            tasks = [(fn, task) for task in tasks]
            fn = _trace.traced_task
        plan = faults.get_plan()
        if plan is not None:
            tasks = [
                (fn, i, task, plan) for i, task in enumerate(tasks)
            ]
            fn = _supervised_task
        else:
            tasks = list(tasks)
        backoff = self.retry_backoff_s
        attempt = 0
        tok = _trace.begin("pool/map", "pool")
        try:
            while True:
                try:
                    results = self._map_once(fn, tasks, timeout)
                    break
                except (_WorkerDied, _TaskDeadline) as exc:
                    self.close()
                    if attempt >= retries:
                        raise PoolFaultError(
                            f"map failed after {attempt + 1} attempt(s): {exc}"
                        ) from exc
                    attempt += 1
                    self.retries += 1
                    self.respawns += 1
                    time.sleep(backoff)
                    backoff *= 2
                except Exception:
                    self.close()
                    raise
        finally:
            _trace.end(tok)
        if traced:
            results = self._adopt_worker_spans(results, tok)
        return results

    def _adopt_worker_spans(self, results, tok):
        """Unwrap ``traced_task`` results, replaying shipped spans.

        Each task's spans land on a synthetic ``pool-worker-K`` lane
        (K = task index modulo pool size — a deterministic attribution;
        the OS scheduler's true assignment isn't observable from the
        results) anchored at the host-side map start.
        """
        tracer = _trace.get_tracer()
        anchor = tok[3] if tok is not None else None
        out = []
        for i, item in enumerate(results):
            result, spans = item
            if tracer is not None and anchor is not None:
                tracer.record_shipped(
                    spans, anchor, f"pool-worker-{i % self.processes}"
                )
            out.append(result)
        return out

    def close(self, join_timeout: float = 10.0) -> None:
        """Terminate and join the workers (idempotent, exception-safe).

        Join runs on a helper thread under ``join_timeout``; if the pool
        machinery wedges (e.g. after a SIGKILLed worker), the remaining
        workers are killed outright rather than hanging the caller.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        procs = list(getattr(pool, "_pool", None) or [])
        try:
            pool.terminate()
        except Exception:
            pass
        joiner = threading.Thread(target=pool.join, daemon=True)
        joiner.start()
        joiner.join(join_timeout)
        if joiner.is_alive():
            for proc in procs:
                try:
                    proc.kill()
                except Exception:
                    pass
            joiner.join(join_timeout)

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


#: Raster pools by worker count: renders with the same ``workers`` share
#: one persistent pool across calls, systems, and densification rebuilds.
_RASTER_POOLS: dict[int, PersistentPool] = {}


def get_raster_pool(workers: int) -> PersistentPool:
    """The shared persistent pool for ``workers`` processes.

    One pool per worker count, shared by every consumer that fans
    generic picklable tasks out — the tile-span raster engine and the
    serving subsystem's render farm — so their worker processes are
    pooled rather than duplicated. Torn down by
    :func:`shutdown_raster_pools` or at interpreter exit.
    """
    pool = _RASTER_POOLS.get(workers)
    if pool is None:
        pool = PersistentPool(workers)
        _RASTER_POOLS[workers] = pool
    return pool


def shutdown_raster_pools() -> None:
    """Tear down every persistent raster pool (idempotent).

    Raster pools are process-level caches shared by every system and
    render call, so ``finalize()`` deliberately leaves them running
    (tearing them down there would make each densification rebuild pay a
    respawn); they are reaped at interpreter exit. Call this explicitly
    to release the worker processes earlier — the next parallel render
    restarts them.

    Idempotent and exception-safe: the registry is cleared before any
    teardown runs (so a failure can't leave half-closed pools cached for
    reuse), every pool is attempted, and the first failure — if any —
    re-raises after the rest are down.
    """
    pools, errors = list(_RASTER_POOLS.values()), []
    _RASTER_POOLS.clear()
    for pool in pools:
        try:
            pool.close()
        except Exception as exc:  # noqa: BLE001 - collect, close the rest
            errors.append(exc)
    if errors:
        raise errors[0]


def raster_pool_fault_stats() -> dict[str, int]:
    """Aggregate supervision counters across the live raster pools.

    Serving reads this each tick to surface retry/respawn counts in its
    stats; counters of pools already shut down are not included.
    """
    return aggregate_counts(
        (pool.fault_stats() for pool in _RASTER_POOLS.values()),
        keys=("worker_deaths", "respawns", "retries", "deadline_hits"),
    )


# ---------------------------------------------------------------------------
# shared-memory pair tables
# ---------------------------------------------------------------------------

def _pack_shm(arrays: dict[str, np.ndarray]):
    """Copy ``arrays`` into one shared-memory segment.

    Returns ``(shm, metas)`` where ``metas`` is the picklable recipe
    (name, dtype, shape, byte offset) workers rebuild their views from.
    """
    items = [(k, np.ascontiguousarray(v)) for k, v in arrays.items()]
    metas, offset = [], 0
    for name, arr in items:
        metas.append((name, arr.dtype.str, arr.shape, offset))
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for (name, dt, shape, off), (_, arr) in zip(metas, items):
        np.ndarray(shape, dtype=dt, buffer=shm.buf, offset=off)[...] = arr
    return shm, metas


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without inheriting resource-tracker ownership
    (the parent unlinks; a tracking attach would double-free at exit)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13 has no track kwarg. On POSIX, pool workers —
        # fork and spawn alike — share the parent's resource tracker
        # process (its fd travels in the spawn preparation data), whose
        # name cache is a set: the attach-side re-register is a no-op
        # and the parent's unlink settles the one cache entry. Windows
        # has no resource tracker for shared memory at all.
        return shared_memory.SharedMemory(name=name)


def _shm_views(shm, metas) -> dict[str, np.ndarray]:
    return {
        name: np.ndarray(shape, dtype=dt, buffer=shm.buf, offset=off)
        for name, dt, shape, off in metas
    }


# ---------------------------------------------------------------------------
# per-span kernels (run in workers; also in-process for workers <= 1)
# ---------------------------------------------------------------------------

def _forward_span(arr, start, stop, width, height, tiles_x, config, tile_size):
    """Composite one tile span; returns ``(nz, trans, rgb)`` or ``None``.

    ``nz`` are the span's touched pixel ids — disjoint from every other
    span's, because spans cut only at tile boundaries.
    """
    faults.fault_point("span:forward")
    pairs = pairs_for_isects(
        arr["means2d"], arr["conics"], arr["opacities"], arr["bboxes"],
        arr["tile_ids"][start:stop], arr["sid"][start:stop], tiles_x,
        width, height, config, tile_size,
    )
    if pairs.alpha.size == 0:
        return None
    seg_log_t, t_before = _transmittance_scan(pairs)
    weight = np.multiply(t_before, pairs.alpha, out=t_before)
    # reduce onto segment ids, not global pixel ids: work stays O(span
    # pairs), never O(image) per span. Pair order within a segment is
    # unchanged, so the per-pixel sums are bit-identical to a global
    # bincount.
    seg_ids = np.repeat(
        np.arange(pairs.nz.size, dtype=np.int64), pairs.counts
    )
    rgb = np.empty((pairs.nz.size, 3), dtype=np.float64)
    for k in range(3):
        col = np.ascontiguousarray(arr["colors"][:, k])
        rgb[:, k] = np.bincount(
            seg_ids, weights=weight * col[pairs.sid],
            minlength=pairs.nz.size,
        )
    return pairs.nz, np.exp2(seg_log_t), rgb


def _backward_span(arr, start, stop, width, height, tiles_x, config, tile_size):
    """Gradient partials of one tile span.

    Mirrors the pair-level arithmetic of
    :func:`repro.render.engine.rasterize_backward_vectorized` exactly;
    only the reduction is local. Returns ``(uids, colors, opacities,
    conics, gmx, gmy)`` — partial sums over just the splats this span
    touches (``uids``), which the parent scatter-adds in span order — or
    ``None`` for an empty span. Keeping the partials sparse bounds the
    result shipped back through the pool by the span's splat count, not
    the scene's.
    """
    faults.fault_point("span:backward")
    means2d, conics, colors = arr["means2d"], arr["conics"], arr["colors"]
    pairs = pairs_for_isects(
        means2d, conics, arr["opacities"], arr["bboxes"],
        arr["tile_ids"][start:stop], arr["sid"][start:stop], tiles_x,
        width, height, config, tile_size,
    )
    if pairs.alpha.size == 0:
        return None
    pix, sid, alpha = pairs.pixel, pairs.sid, pairs.alpha
    starts, counts = pairs.starts, pairs.counts
    g_flat = arr["grad_image"]
    t_final = arr["t_final"]
    background = arr["background"]

    # reduce onto the span's own splat set: uids are sorted, so the
    # local-id mapping is monotonic and every per-splat sum sees its
    # pairs in the same order as a global bincount (bit-identical).
    # uids come from the intersection slice (orders of magnitude fewer
    # rows than pairs) and the pair-level mapping is one LUT gather.
    uids = np.unique(arr["sid"][start:stop])
    lut = np.zeros(means2d.shape[0], dtype=np.int64)
    lut[uids] = np.arange(uids.size)
    lid = lut[sid]
    m_local = uids.size

    _, t_before = _transmittance_scan(pairs)
    weight = t_before * alpha

    g_pair = [np.ascontiguousarray(g_flat[:, k])[pix] for k in range(3)]
    c_pair = [np.ascontiguousarray(colors[:, k])[sid] for k in range(3)]

    grad_colors = np.empty((m_local, 3), dtype=np.float64)
    for k in range(3):
        grad_colors[:, k] = np.bincount(
            lid, weights=g_pair[k] * weight, minlength=m_local
        )

    gdot_color = g_pair[0] * c_pair[0]
    gdot_color += g_pair[1] * c_pair[1]
    gdot_color += g_pair[2] * c_pair[2]
    gw = weight * gdot_color
    incl = np.cumsum(gw)
    ends = starts + counts - 1
    seg_gw = incl[ends] - incl[starts] + gw[starts]
    incl -= np.repeat(incl[starts] - gw[starts], counts)
    pref = (g_flat[pairs.nz] @ background) * t_final[pairs.nz]
    pref += seg_gw
    gdot_suffix = np.repeat(pref, counts)
    gdot_suffix -= incl

    one_minus = 1.0 - alpha
    grad_alpha = gdot_color * t_before
    grad_alpha -= gdot_suffix / one_minus
    np.copyto(grad_alpha, 0.0, where=alpha >= config.alpha_max)

    op_pair = arr["opacities"][sid]
    gval = alpha / op_pair
    grad_alpha *= gval
    grad_opac = np.bincount(lid, weights=grad_alpha, minlength=m_local)
    grad_power = np.multiply(grad_alpha, op_pair, out=grad_alpha)

    dx = (pix % width) + 0.5
    dx -= np.ascontiguousarray(means2d[:, 0])[sid]
    dy = (pix // width) + 0.5
    dy -= np.ascontiguousarray(means2d[:, 1])[sid]
    gpx = grad_power * dx
    gpy = grad_power * dy
    grad_conics = np.empty((m_local, 3), dtype=np.float64)
    grad_conics[:, 0] = -0.5 * np.bincount(
        lid, weights=gpx * dx, minlength=m_local
    )
    grad_conics[:, 1] = -np.bincount(lid, weights=gpx * dy, minlength=m_local)
    grad_conics[:, 2] = -0.5 * np.bincount(
        lid, weights=gpy * dy, minlength=m_local
    )
    c_a = np.ascontiguousarray(conics[:, 0])[sid]
    c_b = np.ascontiguousarray(conics[:, 1])[sid]
    c_c = np.ascontiguousarray(conics[:, 2])[sid]
    gmx_pair = c_a * gpx
    gmx_pair += c_b * gpy
    gmy_pair = c_b * gpx
    gmy_pair += c_c * gpy
    gmx = np.bincount(lid, weights=gmx_pair, minlength=m_local)
    gmy = np.bincount(lid, weights=gmy_pair, minlength=m_local)
    return uids, grad_colors, grad_opac, grad_conics, gmx, gmy


_SPAN_FNS = {"forward": _forward_span, "backward": _backward_span}


def _span_task(args):
    """Pool task: attach the shared pair table, run one span, detach."""
    (shm_name, metas, start, stop, mode, width, height, tiles_x, config,
     tile_size) = args
    shm = _attach_shm(shm_name)
    arr = None
    try:
        arr = _shm_views(shm, metas)
        with _tspan(f"pool/{mode}", "pool"):
            out = _SPAN_FNS[mode](
                arr, start, stop, width, height, tiles_x, config, tile_size
            )
    finally:
        del arr  # drop buffer views so close() cannot see exports
        shm.close()
    return out


# ---------------------------------------------------------------------------
# span planning / dispatch
# ---------------------------------------------------------------------------

def _plan_spans(tile_ids, sid, bboxes, tiles_x, tile_size, num_spans):
    """Pair-count-weighted contiguous spans of the intersection table."""
    rx0, rx1, ry0, ry1 = clip_isect_rects(
        bboxes, tile_ids, sid, tiles_x, tile_size
    )
    weights = (rx1 - rx0) * (ry1 - ry0)
    return partition_spans(tile_ids, weights, num_spans)


def _run_spans(mode, arrays, spans, width, height, tiles_x, config, tile_size):
    """Execute spans in-process (``workers <= 1``) or on the shared pool.

    Results come back in span order either way, so the merge — and the
    composited output — is identical for every worker count up to
    prefix-scan rounding, and bit-identical across repeated runs.
    """
    workers = config.workers
    if workers <= 1 or len(spans) <= 1:
        return [
            _SPAN_FNS[mode](
                arrays, s0, s1, width, height, tiles_x, config, tile_size
            )
            for s0, s1 in spans
        ]
    shm, metas = _pack_shm(arrays)
    try:
        tasks = [
            (shm.name, metas, s0, s1, mode, width, height, tiles_x, config,
             tile_size)
            for s0, s1 in spans
        ]
        return get_raster_pool(workers).map(_span_task, tasks)
    finally:
        shm.close()
        shm.unlink()


# ---------------------------------------------------------------------------
# forward
# ---------------------------------------------------------------------------

def rasterize_parallel(
    means2d: np.ndarray,
    conics: np.ndarray,
    colors: np.ndarray,
    opacities: np.ndarray,
    depths: np.ndarray,
    radii: np.ndarray,
    width: int,
    height: int,
    background: np.ndarray | None = None,
    config: RasterConfig | None = None,
    tile_size: int = TILE_SIZE,
) -> RasterResult:
    """Multi-core tile-span compositor; same contract as
    :func:`repro.render.rasterize.rasterize`.

    ``config.workers`` selects the span/pool fan-out; ``0``/``1`` run the
    span pipeline serially in-process (useful for parity testing the span
    machinery without process overhead).
    """
    config = _check_config(config)
    order = np.argsort(depths, kind="stable")
    bboxes = config_bboxes(means2d, radii, width, height, config)
    means2d, conics, colors, opacities = resolve_dtype(
        config, means2d, conics, colors, opacities
    )
    dtype = means2d.dtype
    if background is None:
        background = np.zeros(3, dtype=dtype)
    background = np.asarray(background, dtype=dtype)

    tile_ids, sid, tiles_x, _ = tile_intersections(
        bboxes, width, height, tile_size, order=order
    )
    n_pix = width * height
    image = np.zeros((n_pix, 3), dtype=dtype)
    trans = np.ones(n_pix, dtype=dtype)
    if tile_ids.size:
        spans = _plan_spans(
            tile_ids, sid, bboxes, tiles_x, tile_size,
            adaptive_span_count(
                config.workers, config.span_oversubscription
            ),
        )
        arrays = {
            "means2d": means2d, "conics": conics, "colors": colors,
            "opacities": opacities, "bboxes": bboxes,
            "tile_ids": tile_ids, "sid": sid,
        }
        for res in _run_spans(
            "forward", arrays, spans, width, height, tiles_x, config,
            tile_size,
        ):
            if res is None:
                continue
            nz, span_trans, rgb = res
            trans[nz] = span_trans
            image[nz] = rgb
    image += trans[:, None] * background
    return RasterResult(
        image=image.reshape(height, width, 3),
        final_transmittance=trans.reshape(height, width),
        order=order,
        bboxes=bboxes,
    )


# ---------------------------------------------------------------------------
# backward
# ---------------------------------------------------------------------------

def rasterize_backward_parallel(
    means2d: np.ndarray,
    conics: np.ndarray,
    colors: np.ndarray,
    opacities: np.ndarray,
    result: RasterResult,
    grad_image: np.ndarray,
    background: np.ndarray | None = None,
    config: RasterConfig | None = None,
    tile_size: int = TILE_SIZE,
) -> RasterGrads:
    """Multi-core adjoint of :func:`rasterize_parallel`; same contract as
    :func:`repro.render.backward.rasterize_backward`."""
    config = _check_config(config)
    means2d, conics, colors, opacities = resolve_dtype(
        config, means2d, conics, colors, opacities
    )
    dtype = means2d.dtype
    height, width = grad_image.shape[:2]
    if background is None:
        background = np.zeros(3, dtype=dtype)
    background = np.asarray(background, dtype=dtype)

    m_count = means2d.shape[0]
    grads = alloc_grads(m_count, dtype)
    tile_ids, sid, tiles_x, _ = tile_intersections(
        result.bboxes, width, height, tile_size, order=result.order
    )
    if tile_ids.size == 0:
        return grads
    spans = _plan_spans(
        tile_ids, sid, result.bboxes, tiles_x, tile_size,
        adaptive_span_count(
            config.workers, config.span_oversubscription
        ),
    )
    arrays = {
        "means2d": means2d, "conics": conics, "colors": colors,
        "opacities": opacities, "bboxes": result.bboxes,
        "tile_ids": tile_ids, "sid": sid,
        "grad_image": np.ascontiguousarray(
            grad_image.reshape(-1, 3), dtype=dtype
        ),
        "t_final": np.ascontiguousarray(
            result.final_transmittance.reshape(-1), dtype=dtype
        ),
        "background": background,
    }
    acc_colors = np.zeros((m_count, 3), dtype=np.float64)
    acc_opac = np.zeros(m_count, dtype=np.float64)
    acc_conics = np.zeros((m_count, 3), dtype=np.float64)
    acc_gmx = np.zeros(m_count, dtype=np.float64)
    acc_gmy = np.zeros(m_count, dtype=np.float64)
    for res in _run_spans(
        "backward", arrays, spans, width, height, tiles_x, config, tile_size
    ):
        if res is None:
            continue
        uids, span_colors, span_opac, span_conics, span_gmx, span_gmy = res
        acc_colors[uids] += span_colors
        acc_opac[uids] += span_opac
        acc_conics[uids] += span_conics
        acc_gmx[uids] += span_gmx
        acc_gmy[uids] += span_gmy
    grads.colors[:] = acc_colors
    grads.opacities[:] = acc_opac
    grads.conics[:] = acc_conics
    grads.means2d[:, 0] = acc_gmx
    grads.means2d[:, 1] = acc_gmy
    grads.mean2d_abs[:] = np.hypot(acc_gmx, acc_gmy)
    return grads
