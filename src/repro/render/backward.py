"""Backward pass of the rasterizer (steps 5-6 of Figure 2).

Traverses splats back-to-front, reconstructing each pixel's pre-splat
transmittance by division (alphas are capped at 0.99 so the divisor is at
least 0.01), and accumulates gradients w.r.t. each splat's 2D mean, conic,
color, and opacity. The suffix-color accumulator technique matches the 3DGS
CUDA kernel; see ``tests/render/test_gradcheck.py`` for numerical
verification of the whole chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .rasterize import RasterConfig, RasterResult, _splat_alpha


@dataclass
class RasterGrads:
    """Gradients w.r.t. rasterizer inputs, all in input (unsorted) order.

    Attributes:
        means2d: ``(M, 2)``.
        conics: ``(M, 3)`` for the ``(a, b, c)`` triplet.
        colors: ``(M, 3)``.
        opacities: ``(M,)``.
        mean2d_abs: accumulated ``|dL/d means2d|`` per splat, the statistic
            3DGS densification thresholds on (Section 2.4, step 7).
    """

    means2d: np.ndarray
    conics: np.ndarray
    colors: np.ndarray
    opacities: np.ndarray
    mean2d_abs: np.ndarray


def alloc_grads(m_count: int, dtype) -> RasterGrads:
    """Zero-initialized :class:`RasterGrads` for ``m_count`` splats.

    Shared by this loop implementation and the vectorized engine
    (:mod:`repro.render.engine`) so both fill the exact same contract.
    """
    return RasterGrads(
        means2d=np.zeros((m_count, 2), dtype=dtype),
        conics=np.zeros((m_count, 3), dtype=dtype),
        colors=np.zeros((m_count, 3), dtype=dtype),
        opacities=np.zeros(m_count, dtype=dtype),
        mean2d_abs=np.zeros(m_count, dtype=dtype),
    )


def rasterize_backward(
    means2d: np.ndarray,
    conics: np.ndarray,
    colors: np.ndarray,
    opacities: np.ndarray,
    result: RasterResult,
    grad_image: np.ndarray,
    background: np.ndarray | None = None,
    config: RasterConfig | None = None,
) -> RasterGrads:
    """Backpropagate ``dL/d image`` to the rasterizer inputs.

    Args:
        means2d, conics, colors, opacities: forward inputs.
        result: forward :class:`RasterResult`.
        grad_image: gradient w.r.t. the composited image, ``(H, W, 3)``.
        background: background color used in the forward pass.
        config: must match the forward configuration.
    """
    config = config or RasterConfig()
    dtype = means2d.dtype
    height, width = grad_image.shape[:2]
    if background is None:
        background = np.zeros(3, dtype=dtype)
    background = np.asarray(background, dtype=dtype)

    m_count = means2d.shape[0]
    grads = alloc_grads(m_count, dtype)

    # suffix[p] = sum over splats behind the current one of c_j alpha_j T_j,
    # plus the background term bg * T_final.
    suffix = result.final_transmittance[:, :, None] * background
    t_cur = result.final_transmittance.copy()
    xs_full = np.arange(width, dtype=dtype) + 0.5
    ys_full = np.arange(height, dtype=dtype) + 0.5

    for idx in result.order[::-1]:
        x0, x1, y0, y1 = result.bboxes[idx]
        if x0 >= x1 or y0 >= y1:
            continue
        xs = xs_full[x0:x1]
        ys = ys_full[y0:y1]
        alpha = _splat_alpha(
            means2d[idx], conics[idx], opacities[idx], xs, ys, config
        )
        one_minus = 1.0 - alpha
        t_after = t_cur[y0:y1, x0:x1]
        t_before = t_after / one_minus
        g_img = grad_image[y0:y1, x0:x1]  # (h, w, 3)
        sfx = suffix[y0:y1, x0:x1]

        # dL/dcolor = sum_p dL/dC * alpha * T_before
        weight = alpha * t_before
        grads.colors[idx] = np.einsum("hwc,hw->c", g_img, weight)

        # dL/dalpha = (dL/dC . c) T_before - (dL/dC . suffix) / (1 - alpha)
        gdot_color = g_img @ colors[idx]
        gdot_suffix = np.einsum("hwc,hwc->hw", g_img, sfx)
        grad_alpha = gdot_color * t_before - gdot_suffix / one_minus

        # contributions only where the splat actually fired
        active = alpha > 0
        capped = alpha >= config.alpha_max
        grad_alpha = np.where(active, grad_alpha, 0.0)

        g_alpha_free = np.where(capped, 0.0, grad_alpha)
        # alpha = o * g ; both grads use the uncapped branch only
        gaussian_val = np.where(
            active & ~capped, alpha / opacities[idx], 0.0
        )
        grads.opacities[idx] = np.sum(g_alpha_free * gaussian_val)
        # alpha = o * g, g = exp(power): dL/dpower = dL/dalpha * o * g
        grad_power = g_alpha_free * opacities[idx] * gaussian_val

        dx = xs[None, :] - means2d[idx, 0]
        dy = ys[:, None] - means2d[idx, 1]
        a_, b_, c_ = conics[idx]
        grads.conics[idx, 0] = np.sum(grad_power * (-0.5) * dx * dx)
        grads.conics[idx, 1] = np.sum(grad_power * (-dx * dy))
        grads.conics[idx, 2] = np.sum(grad_power * (-0.5) * dy * dy)
        gmx = np.sum(grad_power * (a_ * dx + b_ * dy))
        gmy = np.sum(grad_power * (b_ * dx + c_ * dy))
        grads.means2d[idx, 0] = gmx
        grads.means2d[idx, 1] = gmy
        grads.mean2d_abs[idx] = np.hypot(gmx, gmy)

        # roll state back to "before this splat"
        suffix[y0:y1, x0:x1] = sfx + (weight)[:, :, None] * colors[idx]
        t_cur[y0:y1, x0:x1] = t_before

    return grads
