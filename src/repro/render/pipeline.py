"""End-to-end differentiable rendering of a GaussianModel.

``render`` runs culling -> projection -> rasterization and returns an image
plus the context needed by ``render_backward``, which packs per-attribute
gradients into a single ``(M, 59)`` array aligned with the visible subset.
That packed layout is exactly what GS-Scale ships across the (simulated)
PCIe link as "G1/G3" in Figure 6.

Both passes dispatch the rasterization stage through
:mod:`repro.render.engine` according to ``RasterConfig.engine``, so every
caller (the training systems, benchmarks, examples) can pick the
reference loop, the tiled loop, the vectorized engine, or the multi-core
``parallel`` engine per run; ``RasterConfig.dtype`` additionally selects
the flat engines' float32 inference fast path (the raster stage computes
and returns single precision while projection stays in the model dtype).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cameras.camera import Camera
from ..gaussians import layout
from ..gaussians.layout import SH_DEGREE
from ..gaussians.model import GaussianModel
from . import culling, engine, projection, rasterize


@dataclass
class RenderResult:
    """Forward rendering output plus backward context.

    Attributes:
        image: composited RGB, ``(H, W, 3)``.
        valid_ids: indices of the rendered (visible) Gaussians.
        cull: culling statistics for this view.
        proj: projection result for the visible subset.
        raster: rasterization result.
        background: background color used.
        config: rasterizer configuration used.
    """

    image: np.ndarray
    valid_ids: np.ndarray
    cull: culling.CullResult
    proj: projection.ProjectionResult = field(repr=False)
    raster: rasterize.RasterResult = field(repr=False)
    background: np.ndarray = field(repr=False, default=None)
    config: rasterize.RasterConfig = field(repr=False, default=None)


@dataclass
class RenderBackwardResult:
    """Gradients of a rendered view.

    Attributes:
        param_grads: packed gradients ``(M, 59)`` for the visible subset,
            column layout per :mod:`repro.gaussians.layout`.
        valid_ids: the visible indices the rows correspond to.
        mean2d_abs: screen-space positional gradient magnitudes ``(M,)``
            used by densification.
    """

    param_grads: np.ndarray
    valid_ids: np.ndarray
    mean2d_abs: np.ndarray


def render(
    model: GaussianModel,
    camera: Camera,
    sh_degree: int = SH_DEGREE,
    background: np.ndarray | None = None,
    valid_ids: np.ndarray | None = None,
    config: rasterize.RasterConfig | None = None,
) -> RenderResult:
    """Render ``model`` from ``camera``.

    Args:
        model: the Gaussian scene.
        camera: viewing camera.
        sh_degree: active SH degree.
        background: background RGB (defaults to black).
        valid_ids: pre-computed visible indices; when ``None``, frustum
            culling runs here. GS-Scale passes this explicitly because its
            pipeline culls one iteration ahead (parameter forwarding).
        config: rasterizer thresholds.
    """
    config = config or rasterize.RasterConfig()
    if background is None:
        background = np.zeros(3, dtype=model.dtype)
    background = np.asarray(background, dtype=model.dtype)

    if valid_ids is None:
        cull = culling.frustum_cull(
            model.means, model.log_scales, model.quats, camera
        )
        valid_ids = cull.valid_ids
    else:
        valid_ids = np.asarray(valid_ids)
        cull = culling.CullResult(
            valid_ids=valid_ids,
            num_total=model.num_gaussians,
            num_in_depth=int(valid_ids.size),
            num_visible=int(valid_ids.size),
        )

    proj = projection.project(
        model.means[valid_ids],
        model.log_scales[valid_ids],
        model.quats[valid_ids],
        model.opacity_logits[valid_ids],
        model.sh[valid_ids],
        camera,
        sh_degree=sh_degree,
    )
    raster = engine.get_forward(config.engine)(
        proj.geom.means2d,
        proj.geom.conics,
        proj.colors,
        proj.opacities,
        proj.geom.depths,
        proj.geom.radii,
        camera.width,
        camera.height,
        background=background,
        config=config,
    )
    return RenderResult(
        image=raster.image,
        valid_ids=valid_ids,
        cull=cull,
        proj=proj,
        raster=raster,
        background=background,
        config=config,
    )


def render_backward(
    model: GaussianModel,
    camera: Camera,
    result: RenderResult,
    grad_image: np.ndarray,
) -> RenderBackwardResult:
    """Backpropagate ``dL/d image`` to packed per-Gaussian gradients.

    Args:
        model: the model used in the forward pass.
        camera: the forward camera.
        result: forward :class:`RenderResult`.
        grad_image: gradient w.r.t. ``result.image``, ``(H, W, 3)``.
    """
    ids = result.valid_ids
    proj = result.proj
    config = result.config or rasterize.RasterConfig()
    rgrads = engine.get_backward(config.engine)(
        proj.geom.means2d,
        proj.geom.conics,
        proj.colors,
        proj.opacities,
        result.raster,
        grad_image,
        background=result.background,
        config=config,
    )
    pgrads = projection.project_backward(
        model.means[ids],
        model.log_scales[ids],
        model.quats[ids],
        model.sh[ids],
        camera,
        proj,
        grad_means2d=rgrads.means2d,
        grad_conics=rgrads.conics,
        grad_colors=rgrads.colors,
        grad_opacities=rgrads.opacities,
    )
    packed = np.zeros((ids.size, layout.PARAM_DIM), dtype=model.dtype)
    packed[:, layout.MEAN_SLICE] = pgrads.means
    packed[:, layout.SCALE_SLICE] = pgrads.log_scales
    packed[:, layout.QUAT_SLICE] = pgrads.quats
    packed[:, layout.OPACITY_SLICE] = pgrads.opacity_logits
    packed[:, layout.SH_SLICE] = pgrads.sh.reshape(ids.size, layout.SH_DIM)
    return RenderBackwardResult(
        param_grads=packed, valid_ids=ids, mean2d_abs=rgrads.mean2d_abs
    )
