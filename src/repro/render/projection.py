"""EWA projection of 3D Gaussians to screen space, forward and backward.

Step 1 of the training pipeline (Figure 2): geometric parameters
(mean/scale/quaternion) map to a 2D mean and covariance via the perspective
Jacobian, and SH coefficients map to RGB via the view direction. The
backward pass here is the exact adjoint, verified against numerical
gradients in ``tests/render/test_gradcheck.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cameras.camera import Camera
from ..gaussians import covariance as cov3d
from ..gaussians import sh as sh_module
from ..gaussians.layout import SH_DEGREE

#: Low-pass filter added to the 2D covariance diagonal (3DGS uses 0.3 px^2)
#: so every splat covers at least ~one pixel.
EPS_2D = 0.3

#: Floor on the eigenvalue discriminant when computing splat radii.
_RADIUS_DISCRIMINANT_FLOOR = 0.1


@dataclass
class Projection2D:
    """Screen-space geometry of a set of Gaussians (no color).

    Attributes:
        means2d: pixel-space centers, ``(M, 2)``.
        cov2d: 2D covariances including the low-pass term, ``(M, 2, 2)``.
        conics: upper-triangular entries ``(a, b, c)`` of ``inv(cov2d)``,
            ``(M, 3)``.
        depths: camera-space z, ``(M,)``.
        radii: conservative splat radii in pixels (3 sigma), ``(M,)``.
        valid: mask of Gaussians with positive-definite 2D covariance, ``(M,)``.
    """

    means2d: np.ndarray
    cov2d: np.ndarray
    conics: np.ndarray
    depths: np.ndarray
    radii: np.ndarray
    valid: np.ndarray


@dataclass
class ProjectionContext:
    """Intermediates cached by :func:`project` for :func:`project_backward`."""

    cam_points: np.ndarray  # (M, 3)
    jacobians: np.ndarray  # (M, 2, 3)
    cov3d_ctx: dict
    cov3d_mats: np.ndarray  # (M, 3, 3)
    view_dirs: np.ndarray  # (M, 3) unit
    view_vec_norms: np.ndarray  # (M,)
    clamp_mask: np.ndarray  # (M, 3)
    opacities: np.ndarray  # (M,)
    sh_degree: int


@dataclass
class ProjectionResult:
    """Full forward projection: geometry, color, opacity plus backward context."""

    geom: Projection2D
    colors: np.ndarray  # (M, 3)
    opacities: np.ndarray  # (M,)
    ctx: ProjectionContext = field(repr=False)


@dataclass
class ProjectionGrads:
    """Gradients w.r.t. the raw Gaussian attributes of the projected subset."""

    means: np.ndarray  # (M, 3)
    log_scales: np.ndarray  # (M, 3)
    quats: np.ndarray  # (M, 4)
    opacity_logits: np.ndarray  # (M, 1)
    sh: np.ndarray  # (M, 16, 3)


def _perspective_jacobian(cam_points: np.ndarray, camera: Camera) -> np.ndarray:
    """Jacobian of the pinhole projection at each camera-space point."""
    tx, ty, tz = cam_points[:, 0], cam_points[:, 1], cam_points[:, 2]
    inv_z = 1.0 / tz
    inv_z2 = inv_z * inv_z
    jac = np.zeros(cam_points.shape[:-1] + (2, 3), dtype=cam_points.dtype)
    jac[:, 0, 0] = camera.fx * inv_z
    jac[:, 0, 2] = -camera.fx * tx * inv_z2
    jac[:, 1, 1] = camera.fy * inv_z
    jac[:, 1, 2] = -camera.fy * ty * inv_z2
    return jac


def _splat_radii(cov2d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Conservative 3-sigma pixel radii and validity mask from 2D covariances."""
    a = cov2d[:, 0, 0]
    b = cov2d[:, 0, 1]
    c = cov2d[:, 1, 1]
    det = a * c - b * b
    mid = 0.5 * (a + c)
    disc = np.sqrt(np.maximum(mid * mid - det, _RADIUS_DISCRIMINANT_FLOOR))
    lambda_max = mid + disc
    radii = np.ceil(3.0 * np.sqrt(np.maximum(lambda_max, 0.0)))
    return radii, det > 0


def project_geometry(
    means: np.ndarray,
    log_scales: np.ndarray,
    quats: np.ndarray,
    camera: Camera,
) -> tuple[Projection2D, ProjectionContext]:
    """Project geometric attributes to screen space.

    This is the shared kernel between frustum culling (which needs only
    geometry — the basis of selective offloading, Section 4.2.1) and the
    full forward pass.

    Returns:
        ``(geom, partial_ctx)`` — the context lacks color-related fields,
        which :func:`project` fills in.
    """
    dtype = means.dtype
    rot = camera.world_to_cam_rot.astype(dtype)
    trans = camera.world_to_cam_trans.astype(dtype)
    cam_points = means @ rot.T + trans

    u = camera.fx * cam_points[:, 0] / cam_points[:, 2] + camera.cx
    v = camera.fy * cam_points[:, 1] / cam_points[:, 2] + camera.cy
    means2d = np.stack([u, v], axis=-1)

    jac = _perspective_jacobian(cam_points, camera)
    cov_world, c3_ctx = cov3d.build_covariance(log_scales, quats)
    m = jac @ rot  # (M, 2, 3)
    cov2d = m @ cov_world @ np.swapaxes(m, -1, -2)
    cov2d[:, 0, 0] += EPS_2D
    cov2d[:, 1, 1] += EPS_2D

    a = cov2d[:, 0, 0]
    b = cov2d[:, 0, 1]
    c = cov2d[:, 1, 1]
    det = a * c - b * b
    safe_det = np.where(det > 0, det, 1.0)
    conics = np.stack([c / safe_det, -b / safe_det, a / safe_det], axis=-1)

    radii, valid = _splat_radii(cov2d)
    geom = Projection2D(
        means2d=means2d,
        cov2d=cov2d,
        conics=conics,
        depths=cam_points[:, 2].copy(),
        radii=radii,
        valid=valid,
    )
    ctx = ProjectionContext(
        cam_points=cam_points,
        jacobians=jac,
        cov3d_ctx=c3_ctx,
        cov3d_mats=cov_world,
        view_dirs=np.empty(0),
        view_vec_norms=np.empty(0),
        clamp_mask=np.empty(0),
        opacities=np.empty(0),
        sh_degree=SH_DEGREE,
    )
    return geom, ctx


def project(
    means: np.ndarray,
    log_scales: np.ndarray,
    quats: np.ndarray,
    opacity_logits: np.ndarray,
    sh_coeffs: np.ndarray,
    camera: Camera,
    sh_degree: int = SH_DEGREE,
) -> ProjectionResult:
    """Full forward projection of a (pre-culled) set of Gaussians.

    Args:
        means: world positions, ``(M, 3)``.
        log_scales: log extents, ``(M, 3)``.
        quats: raw quaternions, ``(M, 4)``.
        opacity_logits: ``(M,)`` or ``(M, 1)``.
        sh_coeffs: SH coefficients, ``(M, 16, 3)`` or ``(M, 48)``.
        camera: viewing camera.
        sh_degree: active SH degree (0..3) — 3DGS ramps this up during
            training.
    """
    m_count = means.shape[0]
    geom, ctx = project_geometry(means, log_scales, quats, camera)

    sh_coeffs = sh_coeffs.reshape(m_count, 16 if m_count == 0 else -1, 3)
    view_vec = means - camera.center.astype(means.dtype)
    norms = np.linalg.norm(view_vec, axis=-1)
    safe_norms = np.maximum(norms, 1e-12)
    dirs = view_vec / safe_norms[:, None]
    colors, clamp_mask = sh_module.eval_colors(sh_coeffs, dirs, sh_degree)

    logits = np.reshape(opacity_logits, (m_count,))
    opacities = 1.0 / (1.0 + np.exp(-logits))

    ctx.view_dirs = dirs
    ctx.view_vec_norms = safe_norms
    ctx.clamp_mask = clamp_mask
    ctx.opacities = opacities
    ctx.sh_degree = sh_degree
    return ProjectionResult(geom=geom, colors=colors, opacities=opacities, ctx=ctx)


def project_backward(
    means: np.ndarray,
    log_scales: np.ndarray,
    quats: np.ndarray,
    sh_coeffs: np.ndarray,
    camera: Camera,
    result: ProjectionResult,
    grad_means2d: np.ndarray,
    grad_conics: np.ndarray,
    grad_colors: np.ndarray,
    grad_opacities: np.ndarray,
) -> ProjectionGrads:
    """Backpropagate rasterizer gradients to raw Gaussian attributes.

    Args:
        means, log_scales, quats, sh_coeffs: forward inputs (projected subset).
        camera: viewing camera.
        result: forward :class:`ProjectionResult`.
        grad_means2d: ``dL/d means2d``, ``(M, 2)``.
        grad_conics: ``dL/d (a, b, c)`` of the conic, ``(M, 3)``.
        grad_colors: ``dL/d colors``, ``(M, 3)``.
        grad_opacities: ``dL/d opacities`` (post-sigmoid), ``(M,)``.
    """
    ctx = result.ctx
    geom = result.geom
    m_count = means.shape[0]
    dtype = means.dtype
    rot = camera.world_to_cam_rot.astype(dtype)
    cam_points = ctx.cam_points
    jac = ctx.jacobians
    sh_coeffs = sh_coeffs.reshape(m_count, -1, 3)

    # --- conic -> cov2d: C = V^{-1} so dL/dV = -C G C with G symmetrized.
    conic_mat_grad = np.empty((m_count, 2, 2), dtype=dtype)
    conic_mat_grad[:, 0, 0] = grad_conics[:, 0]
    conic_mat_grad[:, 0, 1] = 0.5 * grad_conics[:, 1]
    conic_mat_grad[:, 1, 0] = 0.5 * grad_conics[:, 1]
    conic_mat_grad[:, 1, 1] = grad_conics[:, 2]
    conic_full = np.empty((m_count, 2, 2), dtype=dtype)
    conic_full[:, 0, 0] = geom.conics[:, 0]
    conic_full[:, 0, 1] = geom.conics[:, 1]
    conic_full[:, 1, 0] = geom.conics[:, 1]
    conic_full[:, 1, 1] = geom.conics[:, 2]
    grad_cov2d = -(conic_full @ conic_mat_grad @ conic_full)

    # --- cov2d = M Sigma3 M^T + eps I with M = J W.
    m_mat = jac @ rot
    sym = grad_cov2d + np.swapaxes(grad_cov2d, -1, -2)
    grad_sigma3 = np.swapaxes(m_mat, -1, -2) @ grad_cov2d @ m_mat
    grad_m = sym @ m_mat @ ctx.cov3d_mats
    grad_jac = grad_m @ rot.T  # W constant

    # --- Jacobian entries -> camera-space point.
    tx, ty, tz = cam_points[:, 0], cam_points[:, 1], cam_points[:, 2]
    inv_z = 1.0 / tz
    inv_z2 = inv_z * inv_z
    inv_z3 = inv_z2 * inv_z
    grad_t = np.zeros_like(cam_points)
    grad_t[:, 0] += grad_jac[:, 0, 2] * (-camera.fx * inv_z2)
    grad_t[:, 1] += grad_jac[:, 1, 2] * (-camera.fy * inv_z2)
    grad_t[:, 2] += (
        grad_jac[:, 0, 0] * (-camera.fx * inv_z2)
        + grad_jac[:, 1, 1] * (-camera.fy * inv_z2)
        + grad_jac[:, 0, 2] * (2.0 * camera.fx * tx * inv_z3)
        + grad_jac[:, 1, 2] * (2.0 * camera.fy * ty * inv_z3)
    )

    # --- 2D mean -> camera-space point.
    grad_t[:, 0] += grad_means2d[:, 0] * camera.fx * inv_z
    grad_t[:, 2] += grad_means2d[:, 0] * (-camera.fx * tx * inv_z2)
    grad_t[:, 1] += grad_means2d[:, 1] * camera.fy * inv_z
    grad_t[:, 2] += grad_means2d[:, 1] * (-camera.fy * ty * inv_z2)

    grad_means = grad_t @ rot  # t = W p + c  =>  dL/dp = W^T dL/dt

    # --- colors -> SH coefficients and view direction -> mean.
    grad_sh, grad_dirs = sh_module.eval_colors_backward(
        sh_coeffs, ctx.view_dirs, ctx.clamp_mask, grad_colors, ctx.sh_degree
    )
    dirs = ctx.view_dirs
    inner = np.sum(dirs * grad_dirs, axis=-1, keepdims=True)
    grad_means += (grad_dirs - dirs * inner) / ctx.view_vec_norms[:, None]

    # --- covariance -> scales and quaternions.
    grad_log_scales, grad_quats = cov3d.build_covariance_backward(
        quats, ctx.cov3d_ctx, grad_sigma3
    )

    # --- opacity sigmoid.
    o = ctx.opacities
    grad_logits = (grad_opacities * o * (1.0 - o)).reshape(m_count, 1)

    if grad_sh.shape[1] < 16:
        padded = np.zeros((m_count, 16, 3), dtype=dtype)
        padded[:, : grad_sh.shape[1], :] = grad_sh
        grad_sh = padded

    return ProjectionGrads(
        means=grad_means,
        log_scales=grad_log_scales,
        quats=grad_quats,
        opacity_logits=grad_logits,
        sh=grad_sh,
    )
