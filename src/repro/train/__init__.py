"""Training-loop building blocks shared by all system variants."""

from .loss import DEFAULT_SSIM_LAMBDA, LossResult, l1_with_grad, photometric_loss

__all__ = [
    "DEFAULT_SSIM_LAMBDA",
    "LossResult",
    "l1_with_grad",
    "photometric_loss",
]
