"""3DGS photometric training loss: ``(1 - lambda) L1 + lambda (1 - SSIM)``.

Both terms come with exact analytic gradients so the renderer's backward
pass receives a correct ``dL/d image`` (step 4-5 of Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.ssim import ssim_with_grad

#: 3DGS default SSIM mixing weight.
DEFAULT_SSIM_LAMBDA = 0.2


@dataclass
class LossResult:
    """Loss value, components, and gradient w.r.t. the rendered image."""

    loss: float
    l1: float
    ssim: float
    grad_image: np.ndarray


def l1_with_grad(
    image: np.ndarray, reference: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean absolute error and its (sub)gradient w.r.t. ``image``."""
    diff = image - reference
    value = float(np.mean(np.abs(diff)))
    grad = np.sign(diff) / diff.size
    return value, grad


def photometric_loss(
    image: np.ndarray,
    reference: np.ndarray,
    ssim_lambda: float = DEFAULT_SSIM_LAMBDA,
) -> LossResult:
    """The 3DGS training loss with gradient.

    Args:
        image: rendered image, ``(H, W, 3)``.
        reference: ground-truth image.
        ssim_lambda: weight of the DSSIM term (0 disables SSIM entirely,
            which is noticeably faster for small-scale smoke tests).
    """
    l1_val, l1_grad = l1_with_grad(image, reference)
    if ssim_lambda == 0.0:
        return LossResult(loss=l1_val, l1=l1_val, ssim=0.0, grad_image=l1_grad)
    ssim_val, ssim_grad = ssim_with_grad(image, reference)
    loss = (1.0 - ssim_lambda) * l1_val + ssim_lambda * (1.0 - ssim_val)
    grad = (1.0 - ssim_lambda) * l1_grad - ssim_lambda * ssim_grad
    return LossResult(loss=loss, l1=l1_val, ssim=ssim_val, grad_image=grad)
