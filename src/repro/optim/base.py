"""Optimizer configuration and the functional Adam kernel.

All optimizers in this package operate on a packed ``(N, D)`` parameter
array (rows are Gaussians, columns are the 59-parameter layout). Learning
rates may be scalar or per-column — 3DGS uses different rates per attribute
(position/scale/rotation/opacity/SH), which maps to a ``(D,)`` vector here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np


@dataclass
class AdamConfig:
    """Hyperparameters of (decoupled-weight-decay) Adam.

    Attributes:
        lr: learning rate — scalar or per-column ``(D,)`` array.
        beta1: first-moment decay (paper Equation 1).
        beta2: second-moment decay.
        eps: denominator stabilizer. 3DGS/gsplat use 1e-15; the deferred
            update's only approximation is factoring this out (Section 4.3.1).
        weight_decay: decoupled (AdamW-style) decay; 0 gives plain Adam.
    """

    lr: float | np.ndarray = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-15
    weight_decay: float = 0.0

    def lr_vector(self, dim: int, dtype=np.float64) -> np.ndarray:
        """Learning rate broadcast to a ``(dim,)`` vector."""
        lr = np.asarray(self.lr, dtype=dtype)
        if lr.ndim == 0:
            return np.full(dim, float(lr), dtype=dtype)
        if lr.shape != (dim,):
            raise ValueError(f"lr must be scalar or ({dim},), got {lr.shape}")
        return lr


@dataclass
class StepStats:
    """Work accounting for one optimizer step (feeds the cost model).

    Attributes:
        rows_updated: Gaussians whose parameters/moments were written.
        rows_total: Gaussians in the parameter store.
        float_bytes: bytes of float traffic (4 reads + 3 writes per updated
            element, matching the paper's 7D words-per-Gaussian accounting).
        counter_bytes: bytes of defer-counter traffic (1 read + 1 write per
            Gaussian for deferred optimizers, 0 otherwise).
    """

    rows_updated: int
    rows_total: int
    float_bytes: int
    counter_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """All memory traffic of the step."""
        return self.float_bytes + self.counter_bytes


@runtime_checkable
class SparseOptimizer(Protocol):
    """The store-facing optimizer surface.

    A :class:`repro.core.stores.ParameterStore` drives its optimizer
    exclusively through this protocol, so dense Adam (which scatters sparse
    gradients and updates every row) and deferred Adam (which restores and
    updates only the touched rows) are interchangeable behind a store.
    """

    params: np.ndarray
    m: np.ndarray
    v: np.ndarray
    step_count: int

    def step_rows(self, valid_ids: np.ndarray, grads_rows: np.ndarray) -> StepStats:
        """Commit one step given only the nonzero gradient rows."""
        ...

    def peek_updated(
        self, ids: np.ndarray, grads_rows: np.ndarray
    ) -> np.ndarray:
        """Values rows ``ids`` will hold after the next step (no mutation)."""
        ...

    def materialized_params(self, ids: np.ndarray | None = None) -> np.ndarray:
        """Mathematically current parameter values."""
        ...

    def set_lr(self, lr_vec: np.ndarray) -> None:
        """Update the per-column learning rates."""
        ...

    def rewrite_rows(self, ids: np.ndarray, params_rows: np.ndarray) -> None:
        """Overwrite parameter rows and reset their optimizer state."""
        ...


#: Words of float traffic per updated element: read param/grad/m/v, write
#: param/m/v (paper Section 4.3.2: "7D 32-bit accesses per Gaussian").
FLOAT_ACCESSES_PER_ELEMENT = 7


def float_traffic_bytes(rows: int, dim: int, itemsize: int = 4) -> int:
    """Float bytes touched when updating ``rows`` Gaussians of width ``dim``."""
    return FLOAT_ACCESSES_PER_ELEMENT * rows * dim * itemsize


def adam_update(
    params: np.ndarray,
    grads: np.ndarray,
    m: np.ndarray,
    v: np.ndarray,
    step: int,
    config: AdamConfig,
    lr_vec: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One functional Adam step (Equation 1); returns new ``(params, m, v)``.

    Does not mutate its inputs. ``step`` is 1-based.
    """
    if step < 1:
        raise ValueError("Adam step numbers are 1-based")
    b1, b2 = config.beta1, config.beta2
    if lr_vec is None:
        lr_vec = config.lr_vector(params.shape[-1], dtype=params.dtype)
    m_new = b1 * m + (1.0 - b1) * grads
    v_new = b2 * v + (1.0 - b2) * grads * grads
    m_hat = m_new / (1.0 - b1**step)
    v_hat = v_new / (1.0 - b2**step)
    update = lr_vec * m_hat / (np.sqrt(v_hat) + config.eps)
    params_new = params - update
    if config.weight_decay > 0.0:
        params_new = params_new - lr_vec * config.weight_decay * params
    return params_new, m_new, v_new
