"""SGD with momentum, dense and deferred.

The paper notes (Section 4.3) that the deferred update "can be extended to
most momentum-based optimizers, such as SGD with momentum and AdamW". For
SGD the zero-gradient drift is a geometric series in the momentum
coefficient, so — unlike Adam — restoration is *exact*, with no epsilon
approximation. The test suite exploits this for bit-level equivalence
checks.
"""

from __future__ import annotations

import numpy as np

from .base import StepStats, float_traffic_bytes


class SGDConfig:
    """Hyperparameters for momentum SGD.

    Attributes:
        lr: learning rate, scalar or per-column ``(D,)``.
        momentum: momentum coefficient ``mu``.
    """

    def __init__(self, lr: float | np.ndarray = 1e-3, momentum: float = 0.9):
        self.lr = lr
        self.momentum = momentum
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")

    def lr_vector(self, dim: int, dtype=np.float64) -> np.ndarray:
        """Learning rate broadcast to a ``(dim,)`` vector."""
        lr = np.asarray(self.lr, dtype=dtype)
        if lr.ndim == 0:
            return np.full(dim, float(lr), dtype=dtype)
        if lr.shape != (dim,):
            raise ValueError(f"lr must be scalar or ({dim},), got {lr.shape}")
        return lr


class DenseSGD:
    """Reference momentum SGD updating every row every step."""

    def __init__(self, params: np.ndarray, config: SGDConfig | None = None):
        if params.ndim != 2:
            raise ValueError(f"params must be (N, D), got {params.shape}")
        self.params = params
        self.config = config or SGDConfig()
        self.m = np.zeros_like(params)
        self.step_count = 0
        self._lr_vec = self.config.lr_vector(params.shape[1], params.dtype)

    def step(self, grads: np.ndarray) -> StepStats:
        """One momentum-SGD step with a dense gradient array."""
        self.step_count += 1
        self.m *= self.config.momentum
        self.m += grads
        self.params -= self._lr_vec * self.m
        n, d = self.params.shape
        # 5D accesses: read grad/m/param, write m/param
        return StepStats(
            rows_updated=n,
            rows_total=n,
            float_bytes=float_traffic_bytes(n, d, self.params.itemsize),
        )

    def step_sparse(self, valid_ids: np.ndarray, grads_rows: np.ndarray) -> StepStats:
        """Dense step given only nonzero rows (scatters into zeros)."""
        dense = np.zeros_like(self.params)
        dense[valid_ids] = grads_rows
        return self.step(dense)


class DeferredSGD:
    """Momentum SGD with deferred, exactly-restorable updates.

    For a row deferred ``d`` steps with stored momentum ``m``:
    ``m_t = mu^d m`` and ``w_t = w - lr * m * (mu + ... + mu^d)``. Both are
    closed forms, so deferred SGD is bit-for-bit a reordering of dense SGD
    (up to float associativity).
    """

    def __init__(
        self,
        params: np.ndarray,
        config: SGDConfig | None = None,
        max_defer: int = 15,
    ):
        if params.ndim != 2:
            raise ValueError(f"params must be (N, D), got {params.shape}")
        self.params = params
        self.config = config or SGDConfig()
        self.max_defer = max_defer
        self.m = np.zeros_like(params)
        self.counter = np.zeros(params.shape[0], dtype=np.uint8)
        self.step_count = 0
        self._lr_vec = self.config.lr_vector(params.shape[1], params.dtype)

    def _geometric_lut(self) -> np.ndarray:
        """``lut[d] = mu + mu^2 + ... + mu^d`` for d in 0..max_defer."""
        mu = self.config.momentum
        lut = np.zeros(self.max_defer + 1, dtype=self.params.dtype)
        for i in range(1, self.max_defer + 1):
            lut[i] = lut[i - 1] + mu**i
        return lut

    def step(self, valid_ids: np.ndarray, grads_rows: np.ndarray) -> StepStats:
        """Commit one deferred-SGD step (same contract as DeferredAdam.step)."""
        valid_ids = np.asarray(valid_ids, dtype=np.int64)
        self.step_count += 1
        saturated = np.nonzero(self.counter >= self.max_defer)[0]
        update_ids = np.union1d(valid_ids, saturated)
        g = np.zeros((update_ids.size, self.params.shape[1]), self.params.dtype)
        g[np.searchsorted(update_ids, valid_ids)] = grads_rows

        mu = self.config.momentum
        lut = self._geometric_lut()
        d = self.counter[update_ids]
        m = self.m[update_ids]
        w = self.params[update_ids]

        w_restored = w - self._lr_vec * lut[d][:, None] * m
        m_new = (mu ** (d + 1.0))[:, None] * m + g
        self.params[update_ids] = w_restored - self._lr_vec * m_new
        self.m[update_ids] = m_new

        self.counter += 1
        self.counter[update_ids] = 0
        return StepStats(
            rows_updated=int(update_ids.size),
            rows_total=self.params.shape[0],
            float_bytes=float_traffic_bytes(
                int(update_ids.size), self.params.shape[1], self.params.itemsize
            ),
            counter_bytes=2 * self.params.shape[0],
        )

    def materialized_params(self, ids: np.ndarray | None = None) -> np.ndarray:
        """Current values including un-committed zero-gradient drift."""
        if ids is None:
            ids = np.arange(self.params.shape[0])
        lut = self._geometric_lut()
        d = self.counter[ids]
        return self.params[ids] - self._lr_vec * lut[d][:, None] * self.m[ids]

    def flush(self) -> None:
        """Commit all deferred drift and reset counters."""
        lut_m = self.config.momentum ** self.counter.astype(self.params.dtype)
        self.params[...] = self.materialized_params()
        self.m *= lut_m[:, None]
        self.counter[...] = 0
