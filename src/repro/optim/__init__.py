"""Optimizers: dense Adam/SGD references and the deferred variants."""

from .adam import DenseAdam
from .base import (
    AdamConfig,
    SparseOptimizer,
    StepStats,
    adam_update,
    float_traffic_bytes,
)
from .deferred import MAX_DEFER, DeferredAdam
from .lr_schedule import DEFAULT_LRS, exponential_decay, packed_lr_vector
from .sgd import DeferredSGD, DenseSGD, SGDConfig

__all__ = [
    "AdamConfig",
    "DEFAULT_LRS",
    "DeferredAdam",
    "DeferredSGD",
    "DenseAdam",
    "DenseSGD",
    "MAX_DEFER",
    "SGDConfig",
    "SparseOptimizer",
    "StepStats",
    "adam_update",
    "exponential_decay",
    "float_traffic_bytes",
    "packed_lr_vector",
]
