"""Per-attribute learning rates and the 3DGS position-lr decay schedule."""

from __future__ import annotations

import numpy as np

from ..gaussians import layout


#: 3DGS default learning rates per attribute (position is additionally
#: scaled by the scene extent and decayed exponentially during training).
DEFAULT_LRS = {
    "mean": 1.6e-4,
    "scale": 5e-3,
    "quat": 1e-3,
    "opacity": 5e-2,
    "sh": 2.5e-3,
}

#: 3DGS divides the learning rate of the non-DC SH bands by 20.
SH_REST_DIVISOR = 20.0


def packed_lr_vector(
    scene_extent: float = 1.0,
    overrides: dict[str, float] | None = None,
    dtype=np.float64,
) -> np.ndarray:
    """Per-column learning-rate vector for the packed 59-param layout.

    Args:
        scene_extent: world-space scene radius; the position lr scales with
            it (3DGS convention).
        overrides: replace the default per-attribute rates.
    """
    rates = dict(DEFAULT_LRS)
    if overrides:
        unknown = set(overrides) - set(rates)
        if unknown:
            raise KeyError(f"unknown attributes in lr overrides: {sorted(unknown)}")
        rates.update(overrides)
    lr = np.empty(layout.PARAM_DIM, dtype=dtype)
    lr[layout.MEAN_SLICE] = rates["mean"] * scene_extent
    lr[layout.SCALE_SLICE] = rates["scale"]
    lr[layout.QUAT_SLICE] = rates["quat"]
    lr[layout.OPACITY_SLICE] = rates["opacity"]
    sh_lr = np.full(layout.SH_DIM, rates["sh"], dtype=dtype)
    sh_lr[3:] /= SH_REST_DIVISOR  # bands 1..3 learn slower than DC
    lr[layout.SH_SLICE] = sh_lr
    return lr


def exponential_decay(
    step: int, total_steps: int, lr_init: float, lr_final: float
) -> float:
    """3DGS position-lr schedule: log-linear interpolation over training."""
    if total_steps <= 0:
        raise ValueError("total_steps must be positive")
    t = np.clip(step / total_steps, 0.0, 1.0)
    return float(np.exp((1 - t) * np.log(lr_init) + t * np.log(lr_final)))
