"""Deferred optimizer update — the paper's core algorithm (Section 4.3).

Momentum-based optimizers behave deterministically while a parameter's
gradient stays zero: Adam's moments decay by fixed factors (Equation 2) and
the weight moves by a precomputable multiple of ``m / sqrt(v)``
(Equation 3, after factoring out the tiny ``eps``). GS-Scale therefore
skips the update of any Gaussian outside the view frustum, counts how many
steps it has been deferred (a 4-bit counter, at most 15), and reconstructs
its state lazily — either when a gradient finally arrives or when the
counter saturates. Memory traffic per step drops from ``O(N)`` rows to
``O(active)`` rows plus one byte-sized counter access per Gaussian.

This module is a faithful vectorized port of the paper's Figure 10
pseudocode, generalized to per-column learning rates and optional decoupled
weight decay (the paper notes the scheme "can be extended to most
momentum-based optimizers, such as SGD with momentum and AdamW").
"""

from __future__ import annotations

import numpy as np

from .base import AdamConfig, StepStats, float_traffic_bytes

#: Default maximum defer count: 4-bit counter (paper Section 4.3.2), giving
#: at most 1/15 ~ 6.7% unnecessary updates from saturation.
MAX_DEFER = 15


class DeferredAdam:
    """Adam with deferred updates for zero-gradient rows.

    Produces results identical to :class:`repro.optim.adam.DenseAdam` up to
    the epsilon-factoring approximation of Equation 3 (exactly identical
    when ``eps`` is negligible against ``sqrt(v)``; Table 3 shows the
    rendering-quality impact is nil).

    Args:
        params: packed ``(N, D)`` parameter array, updated in place.
        config: Adam hyperparameters.
        max_defer: counter saturation value (15 for the paper's 4-bit field).
    """

    def __init__(
        self,
        params: np.ndarray,
        config: AdamConfig | None = None,
        max_defer: int = MAX_DEFER,
    ):
        if params.ndim != 2:
            raise ValueError(f"params must be (N, D), got {params.shape}")
        if not 1 <= max_defer <= 255:
            raise ValueError("max_defer must fit the uint8 counter")
        self.params = params
        self.config = config or AdamConfig()
        self.max_defer = max_defer
        self.m = np.zeros_like(params)
        self.v = np.zeros_like(params)
        self.counter = np.zeros(params.shape[0], dtype=np.uint8)
        self.step_count = 0
        self._lr_vec = self.config.lr_vector(params.shape[1], params.dtype)
        self._decay = 1.0 - self._lr_vec * self.config.weight_decay

    # ------------------------------------------------------------------
    # lookup tables (Figure 10, lines 13-23)
    # ------------------------------------------------------------------
    def _luts(self, step: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-delay scaling factors for restoration at Adam step ``step``.

        Returns ``(param_lut, decay_lut, mom_lut, var_lut)`` with shapes
        ``(max_defer + 1, D)``, ``(max_defer + 1, D)``, ``(max_defer + 1,)``,
        ``(max_defer + 1,)``. Entries at delays ``>= step`` are never used
        (a row cannot have been deferred longer than the training has run).
        """
        b1, b2 = self.config.beta1, self.config.beta2
        dim = self.params.shape[1]
        dtype = self.params.dtype
        n_lut = self.max_defer + 1

        param_lut = np.zeros((n_lut, dim), dtype=dtype)
        decay_lut = np.ones((n_lut, dim), dtype=dtype)
        scale = b1 / np.sqrt(b2)
        for i in range(1, n_lut):
            # bias-correction exponent of the oldest zero-grad step; clamp
            # to 1 for (unused) entries beyond the training length
            e = max(step - i, 1)
            term = (self._lr_vec * b1) * np.sqrt(1.0 - b2**e) / (
                np.sqrt(b2) * (1.0 - b1**e)
            )
            param_lut[i] = scale * param_lut[i - 1] + self._decay ** (i - 1) * term
            decay_lut[i] = decay_lut[i - 1] * self._decay

        delays = np.arange(n_lut, dtype=dtype)
        mom_lut = b1 ** (delays + 1)
        var_lut = b2 ** (delays + 1)
        return param_lut, decay_lut, mom_lut, var_lut

    # ------------------------------------------------------------------
    # core update math (Figure 10, lines 25-42)
    # ------------------------------------------------------------------
    def _compute_update(
        self,
        ids: np.ndarray,
        grads_rows: np.ndarray,
        step: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Restored-and-updated ``(w, m, v)`` rows for Adam step ``step``."""
        cfg = self.config
        b1, b2 = cfg.beta1, cfg.beta2
        param_lut, decay_lut, mom_lut, var_lut = self._luts(step)
        d = self.counter[ids]

        w = self.params[ids]
        m = self.m[ids]
        v = self.v[ids]
        g = grads_rows

        m_new = mom_lut[d][:, None] * m + (1.0 - b1) * g
        v_new = var_lut[d][:, None] * v + (1.0 - b2) * g * g

        # restore w_t from the deferred state (Equation 3)
        w_restored = decay_lut[d] * w - param_lut[d] * m / (np.sqrt(v) + cfg.eps)

        # standard Adam update at step t (Figure 10 lines 41-42)
        bias_correction = np.sqrt(1.0 - b2**step)
        step_size = self._lr_vec / (1.0 - b1**step)
        denom = np.sqrt(v_new) / bias_correction + cfg.eps
        w_next = w_restored - step_size * m_new / denom
        if cfg.weight_decay > 0.0:
            w_next = w_next - self._lr_vec * cfg.weight_decay * w_restored
        return w_next, m_new, v_new

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of parameter rows (Gaussians)."""
        return self.params.shape[0]

    def set_lr(self, lr_vec: np.ndarray) -> None:
        """Update the per-column learning rates.

        Restoration of deferred rows then uses the *current* rates for the
        whole deferred span — the same simplification as the paper's
        constant-lr pseudocode (Figure 10). With 3DGS's slow position-lr
        decay and at most 15 deferred steps, the induced error is far
        below the epsilon approximation's.
        """
        lr_vec = np.asarray(lr_vec, dtype=self.params.dtype)
        if lr_vec.shape != (self.params.shape[1],):
            raise ValueError(
                f"lr_vec must be ({self.params.shape[1]},), got {lr_vec.shape}"
            )
        self._lr_vec = lr_vec
        self._decay = 1.0 - self._lr_vec * self.config.weight_decay

    def update_ids_for(self, valid_ids: np.ndarray) -> np.ndarray:
        """Rows that the next step must touch (Figure 10, line 11).

        The union of rows with nonzero gradients and rows whose defer
        counter has saturated.
        """
        saturated = np.nonzero(self.counter >= self.max_defer)[0]
        return np.union1d(np.asarray(valid_ids, dtype=np.int64), saturated)

    def step(self, valid_ids: np.ndarray, grads_rows: np.ndarray) -> StepStats:
        """Commit one deferred-Adam step.

        Args:
            valid_ids: rows with nonzero gradient (sorted or not).
            grads_rows: their gradients, ``(len(valid_ids), D)``.
        """
        valid_ids = np.asarray(valid_ids, dtype=np.int64)
        if grads_rows.shape != (valid_ids.size, self.params.shape[1]):
            raise ValueError(
                f"grads_rows shape {grads_rows.shape} inconsistent with "
                f"{valid_ids.size} valid ids"
            )
        self.step_count += 1
        update_ids = self.update_ids_for(valid_ids)

        g = np.zeros((update_ids.size, self.params.shape[1]), self.params.dtype)
        pos = np.searchsorted(update_ids, valid_ids)
        g[pos] = grads_rows

        w, m, v = self._compute_update(update_ids, g, self.step_count)
        self.params[update_ids] = w
        self.m[update_ids] = m
        self.v[update_ids] = v

        # Figure 10 lines 44-48: increment all, reset updated
        self.counter += 1
        self.counter[update_ids] = 0

        return StepStats(
            rows_updated=int(update_ids.size),
            rows_total=self.num_rows,
            float_bytes=float_traffic_bytes(
                int(update_ids.size), self.params.shape[1], self.params.itemsize
            ),
            counter_bytes=2 * self.num_rows,  # one read + one write each
        )

    # store-facing sparse-step surface (repro.optim.base.SparseOptimizer)
    step_rows = step

    def peek_updated(self, ids: np.ndarray, grads_rows: np.ndarray) -> np.ndarray:
        """Values rows ``ids`` will hold after the next :meth:`step`.

        This is parameter forwarding's pre-update (Section 4.3.3):
        restoration plus the pending-gradient update are computed for the
        forwarded rows only, and *nothing* — parameters, moments, counters —
        is modified.
        """
        ids = np.asarray(ids, dtype=np.int64)
        w, _, _ = self._compute_update(ids, grads_rows, self.step_count + 1)
        return w

    def materialized_params(self, ids: np.ndarray | None = None) -> np.ndarray:
        """Mathematically current parameter values (read-only restoration).

        Deferred rows are stored at their last-commit value; this applies
        the zero-gradient drift they have accumulated since, without
        mutating state. Used whenever an outside consumer (rendering a test
        view, densification) needs true values.
        """
        if ids is None:
            ids = np.arange(self.num_rows)
        else:
            ids = np.asarray(ids, dtype=np.int64)
        cfg = self.config
        param_lut, decay_lut, _, _ = self._luts(self.step_count + 1)
        d = self.counter[ids]
        w = self.params[ids]
        m = self.m[ids]
        v = self.v[ids]
        return decay_lut[d] * w - param_lut[d] * m / (np.sqrt(v) + cfg.eps)

    def materialized_moments(
        self, ids: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mathematically current ``(m, v)`` (Equation 2, read-only).

        A row deferred ``d`` steps stores its moments from the last commit;
        the current values are those scaled by ``beta1**d`` and ``beta2**d``.
        """
        if ids is None:
            ids = np.arange(self.num_rows)
        else:
            ids = np.asarray(ids, dtype=np.int64)
        d = self.counter[ids].astype(self.params.dtype)
        m = self.m[ids] * (self.config.beta1**d)[:, None]
        v = self.v[ids] * (self.config.beta2**d)[:, None]
        return m, v

    def flush(self) -> StepStats:
        """Commit the deferred drift of every row and reset all counters.

        Called at the end of training (and before structural edits like
        densification) so that the stored arrays equal the mathematically
        current values.
        """
        _, _, mom_lut, var_lut = self._luts(self.step_count + 1)
        d = self.counter
        self.params[...] = self.materialized_params()
        self.m *= mom_lut[d][:, None] / self.config.beta1
        self.v *= var_lut[d][:, None] / self.config.beta2
        self.counter[...] = 0
        return StepStats(
            rows_updated=self.num_rows,
            rows_total=self.num_rows,
            float_bytes=float_traffic_bytes(
                self.num_rows, self.params.shape[1], self.params.itemsize
            ),
            counter_bytes=2 * self.num_rows,
        )

    def rewrite_rows(self, ids: np.ndarray, params_rows: np.ndarray) -> None:
        """Overwrite parameter rows and reset their optimizer state."""
        self.params[ids] = params_rows
        self.m[ids] = 0.0
        self.v[ids] = 0.0
        self.counter[ids] = 0
