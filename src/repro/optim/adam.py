"""Dense Adam: the reference optimizer ("Original" in Table 3).

Dense Adam updates *every* row every step, because momentum keeps moving
parameters even when their gradient is zero (paper Challenge 2). This is
exactly the memory-bound behaviour GS-Scale's deferred update eliminates.
"""

from __future__ import annotations

import numpy as np

from .base import AdamConfig, StepStats, adam_update, float_traffic_bytes


class DenseAdam:
    """Adam over a packed ``(N, D)`` parameter array, updating all rows.

    The parameter array is updated in place (it may be a view into a larger
    store, e.g. the geometric block pinned on the GPU by selective
    offloading).
    """

    def __init__(self, params: np.ndarray, config: AdamConfig | None = None):
        if params.ndim != 2:
            raise ValueError(f"params must be (N, D), got {params.shape}")
        self.params = params
        self.config = config or AdamConfig()
        self.m = np.zeros_like(params)
        self.v = np.zeros_like(params)
        self.step_count = 0
        self._lr_vec = self.config.lr_vector(params.shape[1], params.dtype)

    @property
    def num_rows(self) -> int:
        """Number of parameter rows (Gaussians)."""
        return self.params.shape[0]

    def set_lr(self, lr_vec: np.ndarray) -> None:
        """Update the per-column learning rates (3DGS decays the position
        lr during training)."""
        lr_vec = np.asarray(lr_vec, dtype=self.params.dtype)
        if lr_vec.shape != (self.params.shape[1],):
            raise ValueError(
                f"lr_vec must be ({self.params.shape[1]},), got {lr_vec.shape}"
            )
        self._lr_vec = lr_vec

    def step(self, grads: np.ndarray) -> StepStats:
        """Apply one Adam step with a full ``(N, D)`` gradient array."""
        if grads.shape != self.params.shape:
            raise ValueError(
                f"grads shape {grads.shape} != params shape {self.params.shape}"
            )
        self.step_count += 1
        new_p, self.m, self.v = adam_update(
            self.params, grads, self.m, self.v, self.step_count, self.config,
            lr_vec=self._lr_vec,
        )
        self.params[...] = new_p
        n, d = self.params.shape
        return StepStats(
            rows_updated=n,
            rows_total=n,
            float_bytes=float_traffic_bytes(n, d, self.params.itemsize),
        )

    def step_sparse(self, valid_ids: np.ndarray, grads_rows: np.ndarray) -> StepStats:
        """One step given only the nonzero gradient rows.

        Scatter ``grads_rows`` into a dense zero array and update everything
        — the semantics dense Adam requires. The traffic accounting still
        charges all rows, which is the point of comparison with
        :class:`repro.optim.deferred.DeferredAdam`.
        """
        dense = np.zeros_like(self.params)
        dense[valid_ids] = grads_rows
        return self.step(dense)

    # store-facing sparse-step surface (repro.optim.base.SparseOptimizer)
    step_rows = step_sparse

    def peek_updated(
        self, ids: np.ndarray, grads_rows: np.ndarray
    ) -> np.ndarray:
        """Parameter values rows ``ids`` will have after the *next* step.

        Used by parameter forwarding (Section 4.2.2): the next iteration's
        visible rows are pre-updated and shipped to the GPU before the lazy
        CPU update commits. No state is modified.
        """
        step = self.step_count + 1
        new_p, _, _ = adam_update(
            self.params[ids],
            grads_rows,
            self.m[ids],
            self.v[ids],
            step,
            self.config,
            lr_vec=self._lr_vec,
        )
        return new_p

    def materialized_params(self, ids: np.ndarray | None = None) -> np.ndarray:
        """Current parameter values (dense Adam stores them directly)."""
        if ids is None:
            return self.params
        return self.params[ids]

    def rewrite_rows(self, ids: np.ndarray, params_rows: np.ndarray) -> None:
        """Overwrite parameter rows (densification inserts/resets)."""
        self.params[ids] = params_rows
        self.m[ids] = 0.0
        self.v[ids] = 0.0
