"""Persistence: Gaussian models (npz / PLY), workload traces, histories.

The PLY layout follows the de-facto 3DGS interchange convention
(``x y z``, ``f_dc_*``, ``f_rest_*``, ``opacity``, ``scale_*``, ``rot_*``)
so scenes trained here can be inspected by standard splat viewers, and
checkpoints from gsplat-style pipelines can be imported.
"""

from __future__ import annotations

import json

import numpy as np

from .datasets.workload import WorkloadTrace
from .gaussians import GaussianModel, layout

_PLY_SH_REST = layout.SH_COEFFS_PER_CHANNEL - 1  # 15 per channel


def save_model(path: str, model: GaussianModel) -> None:
    """Save a model to ``.npz`` (fast, lossless)."""
    np.savez_compressed(path, params=model.params)


def load_model(path: str) -> GaussianModel:
    """Load a model saved by :func:`save_model`."""
    with np.load(path) as data:
        if "params" not in data:
            raise ValueError(f"{path!r} is not a saved GaussianModel")
        return GaussianModel(data["params"].copy())


def export_ply(path: str, model: GaussianModel) -> None:
    """Write the model in the standard 3DGS PLY layout (ASCII)."""
    n = model.num_gaussians
    sh = model.sh  # (N, 16, 3)
    header_fields = (
        ["x", "y", "z"]
        + [f"f_dc_{i}" for i in range(3)]
        + [f"f_rest_{i}" for i in range(3 * _PLY_SH_REST)]
        + ["opacity"]
        + [f"scale_{i}" for i in range(3)]
        + [f"rot_{i}" for i in range(4)]
    )
    # channel-major rest coefficients, matching the reference exporter
    rest = np.transpose(sh[:, 1:, :], (0, 2, 1)).reshape(n, 3 * _PLY_SH_REST)
    table = np.column_stack(
        [
            model.means,
            sh[:, 0, :],
            rest,
            model.opacity_logits,
            model.log_scales,
            model.quats,
        ]
    )
    with open(path, "w") as f:
        f.write("ply\nformat ascii 1.0\n")
        f.write(f"element vertex {n}\n")
        for field in header_fields:
            f.write(f"property float {field}\n")
        f.write("end_header\n")
        for row in table:
            f.write(" ".join(f"{v:.8g}" for v in row) + "\n")


def import_ply(path: str, dtype=np.float64) -> GaussianModel:
    """Read a 3DGS-layout PLY written by :func:`export_ply`."""
    with open(path) as f:
        line = f.readline().strip()
        if line != "ply":
            raise ValueError(f"{path!r} is not a PLY file")
        fields: list[str] = []
        count = 0
        while True:
            line = f.readline()
            if not line:
                raise ValueError("unexpected end of PLY header")
            line = line.strip()
            if line.startswith("element vertex"):
                count = int(line.split()[-1])
            elif line.startswith("property float"):
                fields.append(line.split()[-1])
            elif line == "end_header":
                break
        data = np.loadtxt(f, dtype=dtype, max_rows=count)
    if data.ndim == 1:
        data = data[None, :]
    col = {name: i for i, name in enumerate(fields)}

    def grab(names):
        return data[:, [col[n] for n in names]]

    means = grab(["x", "y", "z"])
    dc = grab([f"f_dc_{i}" for i in range(3)])
    rest = grab([f"f_rest_{i}" for i in range(3 * _PLY_SH_REST)])
    sh = np.zeros((count, layout.SH_COEFFS_PER_CHANNEL, 3), dtype=dtype)
    sh[:, 0, :] = dc
    sh[:, 1:, :] = np.transpose(
        rest.reshape(count, 3, _PLY_SH_REST), (0, 2, 1)
    )
    return GaussianModel.from_attributes(
        means=means,
        log_scales=grab([f"scale_{i}" for i in range(3)]),
        quats=grab([f"rot_{i}" for i in range(4)]),
        opacity_logits=grab(["opacity"])[:, 0],
        sh=sh,
        dtype=dtype,
    )


def save_trace(path: str, trace: WorkloadTrace) -> None:
    """Persist a workload trace as JSON."""
    with open(path, "w") as f:
        json.dump(
            {
                "scene_name": trace.scene_name,
                "total_gaussians": int(trace.total_gaussians),
                "active_ratios": [float(r) for r in trace.active_ratios],
            },
            f,
        )


def load_trace(path: str) -> WorkloadTrace:
    """Load a workload trace saved by :func:`save_trace`."""
    with open(path) as f:
        data = json.load(f)
    return WorkloadTrace(
        scene_name=data["scene_name"],
        total_gaussians=data["total_gaussians"],
        active_ratios=np.asarray(data["active_ratios"], dtype=np.float64),
    )
