"""Patch-pipeline demo: partition -> train -> merge -> clean -> serve.

Walks the scene-scale reconstruction vertical end to end:

1. build a synthetic capture and cut it into overlap-buffered spatial
   patches, each with its own camera assignment;
2. train every patch as an independent restartable job on the persistent
   process pool (each an ordinary ``Trainer`` run over its buffered
   subset, checkpointing to a manifest-tracked work directory);
3. fuse the trained patches with exactly-once boundary dedup and strip
   seam artifacts (oversized / isolated / near-transparent splats);
4. load the final checkpoint straight into ``RenderService`` — in-memory
   and paged under a host byte budget — and render a probe view;
5. re-run the pipeline on the same work directory to show resume: every
   finished patch is skipped from its manifest;
6. print the modeled farm schedule from ``sim.simulate_patch_farm`` for
   the same patch sizes on a calibrated platform.

Run:  python examples/patch_pipeline_demo.py
"""

import os
import tempfile

import numpy as np

from repro.core import GSScaleConfig
from repro.core.checkpoint import resume_model
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.metrics import psnr
from repro.recon import PatchPipelineConfig, run_patch_pipeline
from repro.serve import RenderRequest, RenderService
from repro.sim import get_platform, simulate_patch_farm

ITERATIONS = int(os.environ.get("DEMO_ITERATIONS", 24))


def main():
    scene = build_scene(
        SyntheticSceneConfig(
            name="patch-demo", num_points=280, width=40, height=30,
            num_train_cameras=8, num_test_cameras=2, altitude=12.0, seed=6,
        )
    )
    config = PatchPipelineConfig(
        num_patches=4,
        iterations=ITERATIONS,
        jobs=2,
        checkpoint_every=max(ITERATIONS // 2, 1),
        train=GSScaleConfig(
            system="gpu_only", scene_extent=scene.extent, seed=0
        ),
    )
    with tempfile.TemporaryDirectory() as workdir:
        print(
            f"== patch pipeline: {scene.initial.num_gaussians} splats, "
            f"{config.num_patches} patches x {ITERATIONS} iterations, "
            f"{config.jobs} jobs"
        )
        result = run_patch_pipeline(
            scene.initial, scene.train_cameras, scene.train_images,
            workdir, config,
        )

        print("\n== partition (core + boundary buffer -> cameras)")
        for p, job in zip(result.patches, result.jobs.results):
            print(
                f"  patch {p.index}: {p.num_core:3d} core "
                f"+ {p.num_buffered - p.num_core:3d} buffer, "
                f"{p.num_cameras} views -> {job.status} "
                f"({job.iterations_done} iters)"
            )

        merge, clean = result.merge, result.clean
        print(
            f"\n== merge [{merge.policy}]: {merge.num_gaussians} splats, "
            f"buffer rows dropped per patch: {merge.dropped}"
        )
        print(
            f"== clean: kept {clean.kept_rows}/{clean.input_rows} "
            f"(transparent {clean.dropped_transparent}, "
            f"oversized {clean.dropped_oversized}, "
            f"isolated {clean.dropped_isolated})"
        )
        print(
            f"== modeled peak host bytes: pipeline {result.peak_host_bytes} "
            f"< monolithic {result.monolithic_peak_host_bytes}"
        )
        assert result.peak_host_bytes < result.monolithic_peak_host_bytes

        # -- serve the final checkpoint -----------------------------------
        camera, truth = scene.test_cameras[0], scene.test_images[0]
        hot = RenderService.from_checkpoint(result.checkpoint_path)
        frame = hot.render(RenderRequest(camera=camera)).image
        paged = RenderService.from_checkpoint(
            result.checkpoint_path, host_budget_bytes=1 << 18, num_shards=4
        )
        paged_frame = paged.render(RenderRequest(camera=camera)).image
        assert np.array_equal(frame, paged_frame), "paging changes no pixel"
        print(
            f"\n== serving final checkpoint: probe view PSNR "
            f"{psnr(frame, truth):.1f} dB (in-memory == paged)"
        )
        paged.store.close()

        # -- resume: a second run costs one manifest read per patch -------
        again = run_patch_pipeline(
            scene.initial, scene.train_cameras, scene.train_images,
            workdir, config,
        )
        statuses = [r.status for r in again.jobs.results]
        assert all(s in ("skipped", "empty") for s in statuses)
        print(f"== resume: second run statuses {statuses}")

    # -- the modeled counterpart ------------------------------------------
    print("\n== modeled patch farm (laptop_4070m, 4 x 50k-splat patches)")
    platform = get_platform("laptop_4070m")
    for jobs in (1, 2, 4):
        farm = simulate_patch_farm(
            platform, [50_000] * 4, jobs, iterations=1000,
            num_pixels=640 * 360,
        )
        print(
            f"  jobs={jobs}: makespan {farm.makespan_seconds:7.1f} s "
            f"(monolithic {farm.monolithic_seconds:.1f} s, "
            f"speedup {farm.speedup:.2f}), peak host "
            f"{farm.peak_host_bytes / 1e6:.1f} MB vs "
            f"{farm.monolithic_peak_host_bytes / 1e6:.1f} MB"
        )
    print("\ndone.")


if __name__ == "__main__":
    main()
