"""Balance-aware image splitting on a density-skewed view (Section 4.4).

Builds a scene with most Gaussians crowded into one side of the image,
compares the naive midpoint split with the paper's 5-step binary search,
then trains one step with splitting forced on and shows the peak staging
memory drop at unchanged loss.

Run:  python examples/image_splitting_demo.py
"""

import numpy as np

from repro.cameras import Camera
from repro.core import GSScaleConfig, create_system, find_balanced_split
from repro.core.splitting import count_visible
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import GaussianModel


def skewed_scene():
    rng = np.random.default_rng(3)
    left = rng.uniform([-9, -3, 0], [-2, 3, 1.5], size=(520, 3))
    right = rng.uniform([3, -3, 0], [9, 3, 1.5], size=(80, 3))
    pts = np.concatenate([left, right])
    colors = rng.uniform(0, 1, size=(600, 3))
    model = GaussianModel.from_point_cloud(pts, colors)
    cam = Camera.look_at(
        [0.0, 0.0, 16.0], [0.0, 0.1, 0.0], width=96, height=64, fov_x_deg=80.0
    )
    return model, cam


def main():
    model, cam = skewed_scene()
    geo = (model.means, model.log_scales, model.quats)

    naive_left = count_visible(*geo, cam.crop(0, cam.width // 2))
    naive_right = count_visible(*geo, cam.crop(cam.width // 2, cam.width))
    split = find_balanced_split(*geo, cam)

    print("Skewed aerial view (85% of Gaussians on the left half):\n")
    print(f"naive midpoint   : {naive_left:4d} | {naive_right:4d}  "
          f"(balance {naive_left / (naive_left + naive_right):.3f})")
    bal_left = count_visible(*geo, split.left)
    bal_right = count_visible(*geo, split.right)
    print(f"balance-aware    : {bal_left:4d} | {bal_right:4d}  "
          f"(balance {split.balance:.3f}, split at column "
          f"{split.split_x}/{cam.width})")
    print("(paper reports an average balance of 0.551 : 0.449)\n")

    scene = build_scene(
        SyntheticSceneConfig(num_points=400, width=64, height=48,
                             num_train_cameras=3, num_test_cameras=1,
                             altitude=9.0, seed=5)
    )
    base = dict(system="gsscale", scene_extent=scene.extent,
                ssim_lambda=0.0, seed=0)
    whole = create_system(scene.initial.copy(),
                          GSScaleConfig(mem_limit=1.0, **base))
    forced = create_system(scene.initial.copy(),
                           GSScaleConfig(mem_limit=1e-6, **base))
    rw = whole.step(scene.train_cameras[0], scene.train_images[0])
    rs = forced.step(scene.train_cameras[0], scene.train_images[0])
    resident = 4 * scene.initial.num_gaussians * 10 * 4
    print("One training step, whole image vs forced split:")
    print(f"  regions    : {rw.num_regions} vs {rs.num_regions}")
    print(f"  loss       : {rw.loss:.6f} vs {rs.loss:.6f} (identical)")
    print(f"  peak staging+activations : "
          f"{(whole.memory.peak_bytes - resident) / 1e3:.0f} KB vs "
          f"{(forced.memory.peak_bytes - resident) / 1e3:.0f} KB")


if __name__ == "__main__":
    main()
