"""Render-serving demo: from trained checkpoint to batched multi-client
inference.

Walks the serving vertical end to end:

1. train a small out-of-core run and save its checkpoint;
2. open the checkpoint for serving — in-memory, and paged under a host
   byte budget smaller than the model (the read-only
   ``CheckpointReader`` open streams blocks, never materializing the
   packed matrix);
3. build nested LOD subsets and measure each level's PSNR cost;
4. serve an orbit client session and a walkthrough client session
   through the batching ``RenderService`` — full LOD is bit-identical to
   the direct render pipeline — then replay the orbit to show the
   pose-keyed cache absorbing it;
5. hot-swap the model and show the cache flush (no stale frames);
6. print the serving stats, the paged store's page-channel ledger, and
   the modeled p50/p99 latency of the same setup from ``sim.serve``.

Run:  python examples/serve_demo.py
"""

import os
import tempfile

import numpy as np

from repro.cameras import trajectories
from repro.core import GSScaleConfig, create_system
from repro.core.checkpoint import resume_model, save_checkpoint
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import layout
from repro.render import render
from repro.serve import (
    LODSet,
    RenderService,
    lod_quality_report,
    requests_from_cameras,
)
from repro.sim import ServeScenario, get_platform, simulate_serve

ITERATIONS = int(os.environ.get("DEMO_ITERATIONS", 24))


def train_checkpoint(scene, path: str) -> None:
    config = GSScaleConfig(
        system="outofcore", num_shards=4, resident_shards=1,
        scene_extent=scene.extent, ssim_lambda=0.2, seed=0,
        engine="vectorized",
    )
    system = create_system(scene.initial.copy(), config)
    cams, images = scene.train_cameras, scene.train_images
    for i in range(ITERATIONS):
        system.step(cams[i % len(cams)], images[i % len(cams)])
    save_checkpoint(path, system)
    system.finalize()


def main():
    scene = build_scene(
        SyntheticSceneConfig(
            name="serve-demo", num_points=360, width=48, height=36,
            num_train_cameras=6, num_test_cameras=2, altitude=12.0, seed=4,
        )
    )
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "trained.npz")
        print(f"== training {ITERATIONS} out-of-core steps -> checkpoint")
        train_checkpoint(scene, ckpt)
        model = resume_model(ckpt)
        n = model.num_gaussians

        # -- LOD ladder ---------------------------------------------------
        lod_set = LODSet.build(model.params)
        print("\n== LOD ladder (PSNR vs full detail, 2 probe views)")
        for entry in lod_quality_report(model, scene.test_cameras, lod_set):
            print(
                f"  lod {entry['lod']}: {entry['num_splats']:4d} splats, "
                f"SH degree {entry['sh_degree']}, "
                f"PSNR {entry['psnr_vs_full']:.1f} dB"
            )

        # -- client sessions through the batching service ----------------
        service = RenderService.from_checkpoint(ckpt, lod_set=lod_set)
        orbit = requests_from_cameras(
            trajectories.orbit(
                np.zeros(3), radius=12.0, height=8.0, num_cameras=12,
                width=48, height_px=36,
            ),
            lod=0,
        )
        walk = requests_from_cameras(
            trajectories.walkthrough(
                np.array([[-8.0, -8.0, 6.0], [8.0, -8.0, 6.0], [8.0, 8.0, 6.0]]),
                num_cameras=12, width=48, height_px=36,
            ),
            lod=1,
        )
        first = service.serve(orbit + walk)
        check = first[0]
        direct = render(
            model, check.request.camera, config=service.config
        ).image
        assert np.array_equal(check.image, direct), "full LOD must be exact"
        replay = service.serve(list(orbit))  # the cache absorbs the revisit
        assert all(r.cache_hit for r in replay)
        print("\n== serving stats (24-request mix + 12-request replay)")
        for key, value in service.stats.as_dict().items():
            print(f"  {key}: {value}")

        # -- hot swap: never a stale frame --------------------------------
        service.swap_model(scene.initial)
        swapped = service.serve(list(orbit))
        assert not any(r.cache_hit for r in swapped)
        assert not np.array_equal(swapped[0].image, replay[0].image)
        print("  hot swap: cache flushed, fresh frames served")
        service.close()

        # -- paged serving under a host budget ----------------------------
        budget = layout.param_bytes(n, layout.GEOMETRIC_DIM) + (
            layout.param_bytes(-(-n // 4), layout.NON_GEOMETRIC_DIM)
        )
        paged = RenderService.from_checkpoint(
            ckpt, host_budget_bytes=budget, num_shards=4
        )
        store = paged.store
        print(
            f"\n== paged serving: model {store.model_bytes} B > "
            f"budget {budget} B (resident shards: {store.resident_budget})"
        )
        out = paged.serve(requests_from_cameras([c for c in scene.train_cameras]))
        ref = render(model, scene.train_cameras[0], config=paged.config).image
        assert np.array_equal(out[0].image, ref), "paging must not change pixels"
        assert store.host_memory.peak_bytes <= budget
        print(
            f"  peak tracked host bytes: {store.host_memory.peak_bytes} "
            f"(<= budget)"
        )
        print(
            f"  page channel: {store.ledger.page_in_count} page-ins "
            f"({store.ledger.page_in_bytes} B), "
            f"{store.ledger.page_out_count} page-outs"
        )
        paged.close()

    # -- the modeled counterpart ------------------------------------------
    print("\n== modeled serving latency (desktop_4090, 2M splats, 500 req/s)")
    platform = get_platform("desktop_4090")
    for workers in (1, 4):
        result = simulate_serve(
            platform, 2_000_000, 0.1, 256 * 256,
            ServeScenario(workers=workers, arrival_rate_hz=500.0),
        )
        print(
            f"  workers={workers}: {result.requests_per_s:7.1f} req/s, "
            f"p50 {result.p50_latency_s * 1e3:6.2f} ms, "
            f"p99 {result.p99_latency_s * 1e3:6.2f} ms, "
            f"util {result.worker_utilization:.2f}"
        )
    print("\ndone.")


if __name__ == "__main__":
    main()
