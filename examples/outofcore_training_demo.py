"""Out-of-core GS-Scale: train with most of the host state on disk.

Builds on the sharded multi-device system (see
examples/sharded_training_demo.py): the scene is spatially partitioned
into K shards, but each shard's non-geometric parameters and Adam moments
now live in memory-mapped spill files, and only ``resident_shards`` of
them are paged into host DRAM at once. Each view prefetches its active
shards and spills the rest; spilled shards tick their deferred optimizer
as pure metadata, so an untouched shard pages in at most once per
``max_defer`` steps. Training numerics are bit-identical to the in-memory
sharded run — out-of-core placement changes accounting, never math — while
the tracked host working set drops to the resident-set budget.

The third run turns on the async prefetch leg (``async_prefetch=True``):
a background worker snapshots the *next* view's spilled shards while the
current view renders, so the page read comes off the critical path —
still bit-identical, same ledger, just overlapped. Next-view hints come
from the step loop (``hint_next_view``), exactly what
``Trainer.train(view_order="locality")`` automates. (This demo's wide
frustums touch every shard in every view, so the snapshots go stale and
every page-in falls back to the synchronous read — the honest worst
case; shard-local captures adopt most page-ins, as
``tests/core/test_async_prefetch.py`` demonstrates on a clustered
scene.)

The deep disk tier is a flag away: ``--codec float16`` stores spilled
pages half-size behind a per-column-scaled half-precision codec
(``lossless`` keeps them bit-exact and still smaller on real moment
pages), and ``--prefetch-depth D`` widens the async leg's single-slot
double buffer into a depth-D staging queue.

Run:  python examples/outofcore_training_demo.py [--codec float16]
      [--prefetch-depth 2]
"""

import argparse
import os

import numpy as np

from repro.core import GSScaleConfig, create_system
from repro.core.pagecodec import PAGE_CODECS
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import layout

ITERATIONS = int(os.environ.get("DEMO_ITERATIONS", 24))
NUM_SHARDS = 4
RESIDENT_SHARDS = 1


def parse_args():
    parser = argparse.ArgumentParser(
        description="Out-of-core training demo (deep disk tier knobs)"
    )
    parser.add_argument(
        "--codec", default="raw", choices=sorted(PAGE_CODECS),
        help="page codec for the spilled non-geometric state "
             "(default: raw memmaps)",
    )
    parser.add_argument(
        "--prefetch-depth", type=int, default=1, metavar="D",
        help="async staging-queue lookahead; 1 is the classic double "
             "buffer (default: 1)",
    )
    return parser.parse_args()


def train(scene, system, **cfg_kwargs):
    config = GSScaleConfig(
        system=system,
        scene_extent=scene.extent,
        ssim_lambda=0.2,
        seed=0,
        **cfg_kwargs,
    )
    engine = create_system(scene.initial.copy(), config)
    cams, images = scene.train_cameras, scene.train_images
    for i in range(ITERATIONS):
        if hasattr(engine, "hint_upcoming_views") and i + 1 < ITERATIONS:
            depth = max(getattr(engine, "prefetch_depth", 1), 1)
            engine.hint_upcoming_views(
                [cams[(i + 1 + d) % len(cams)] for d in range(depth)]
            )
        engine.step(cams[i % len(cams)], images[i % len(cams)])
    engine.finalize()
    return engine


def main():
    args = parse_args()
    print("Building synthetic aerial capture ...")
    scene = build_scene(
        SyntheticSceneConfig(
            name="outofcore-demo",
            num_points=400,
            width=48,
            height=36,
            num_train_cameras=8,
            num_test_cameras=2,
            altitude=8.0,
            seed=21,
        )
    )
    print(f"  {scene.initial.num_gaussians} Gaussians, "
          f"{len(scene.train_cameras)} train views")

    print(f"\nTraining in-memory sharded (K={NUM_SHARDS}) and out-of-core "
          f"(K={NUM_SHARDS}, resident={RESIDENT_SHARDS}) ...")
    sharded = train(scene, "sharded", num_shards=NUM_SHARDS)
    ooc = train(scene, "outofcore", num_shards=NUM_SHARDS,
                resident_shards=RESIDENT_SHARDS, page_codec=args.codec)
    asyn = train(scene, "outofcore", num_shards=NUM_SHARDS,
                 resident_shards=RESIDENT_SHARDS, async_prefetch=True,
                 prefetch_depth=args.prefetch_depth, page_codec=args.codec)
    # snapshot before materialized_model(): materializing pages every
    # shard through the R=1 budget and would inflate the counts
    trained_page_ins = (ooc.ledger.page_in_count, asyn.ledger.page_in_count)

    drift = np.max(np.abs(
        sharded.materialized_model().params
        - ooc.materialized_model().params
    ))
    print(f"  max parameter drift vs in-memory sharded: {drift:.2e} "
          + ("(spilling changes placement, not math)"
             if PAGE_CODECS[args.codec].lossless
             else "(float16 pages are tolerance-bounded, not bit-exact)"))
    async_drift = np.max(np.abs(
        asyn.materialized_model().params - ooc.materialized_model().params
    ))
    print(f"  async prefetch vs synchronous out-of-core: drift "
          f"{async_drift:.2e}, same page ledger: "
          f"{trained_page_ins[0] == trained_page_ins[1]} — "
          f"{asyn.prefetch_hits} page-ins adopted from the background "
          f"leg, {asyn.prefetch_misses} fell back to synchronous reads")

    n = ooc.num_gaussians
    full_host = 3 * layout.param_bytes(n, layout.NON_GEOMETRIC_DIM) + n
    print(f"\nHost working set after {ITERATIONS} iterations:")
    print(f"  in-memory non-geo state (params+m+v+counters): "
          f"{full_host / 1e6:.3f} MB")
    print(f"  out-of-core peak tracked host bytes:           "
          f"{ooc.host_memory.peak_bytes / 1e6:.3f} MB "
          f"({ooc.host_memory.peak_bytes / full_host:.0%} — the resident "
          "budget plus 1 counter byte per Gaussian)")

    print("\nPer-shard page traffic (disk channel of the ledger):")
    print("  shard  gaussians  resident  page-in MB  page-out MB")
    for r in ooc.shard_reports():
        resident = ooc._nongeo_store(r.shard).is_resident
        print(
            f"  {r.shard:>5}  {r.num_gaussians:>9}  {str(resident):>8}  "
            f"{r.page_in_bytes / 1e6:>10.3f}  {r.page_out_bytes / 1e6:>11.3f}"
        )
    print(
        f"  total: {ooc.ledger.page_in_bytes / 1e6:.3f} MB in / "
        f"{ooc.ledger.page_out_bytes / 1e6:.3f} MB out over "
        f"{ooc.ledger.page_in_count} page-ins / "
        f"{ooc.ledger.page_out_count} page-outs"
    )
    if args.codec != "raw":
        ratio = ooc.ledger.page_in_bytes / max(
            ooc.ledger.page_in_disk_bytes, 1
        )
        print(
            f"  {args.codec} pages on disk: "
            f"{ooc.ledger.page_in_disk_bytes / 1e6:.3f} MB actually read — "
            f"{ratio:.2f}x effective page-in bandwidth"
        )
    print(
        "PCIe traffic is conserved: "
        f"{ooc.ledger.h2d_bytes == sharded.ledger.h2d_bytes} "
        f"({ooc.ledger.h2d_bytes / 1e6:.3f} MB H2D) — the disk tier sits "
        "behind the host, invisible to the device."
    )


if __name__ == "__main__":
    main()
