"""The paper's motivating scenario: a VR hobbyist's laptop.

Section 1 motivates GS-Scale with users training personal captures on
consumer GPUs. This example uses the performance and quality models to
answer, for an RTX 4070 Mobile laptop and the Rubble-class scene:

  1. how large a scene each system can train (Figure 1),
  2. what quality that buys (Figure 13), and
  3. what throughput to expect (Figure 11).

Run:  python examples/laptop_scale_rubble.py
"""

import dataclasses

from repro.bench import QualityModel
from repro.datasets import get_scene, synthesize_trace
from repro.sim import (
    get_platform,
    max_trainable_gaussians,
    simulate_epoch,
)


def main():
    plat = get_platform("laptop_4070m")
    spec = get_scene("rubble")
    quality = QualityModel("rubble")
    print(f"Platform: {plat.gpu.name} ({plat.gpu.memory_bytes / 2**30:.0f} GB, "
          f"R_bw = {plat.r_bw:.1f})")
    print(f"Scene   : {spec.name} ({spec.width}x{spec.height}, "
          f"{spec.num_train_images} images)\n")

    print(f"{'System':<16} {'Max Gaussians':>14} {'PSNR':>7} {'SSIM':>7} "
          f"{'LPIPS':>7}")
    caps = {}
    for system in ("gpu_only", "gsscale"):
        n = max_trainable_gaussians(
            plat.gpu, spec.num_pixels, system,
            peak_active_ratio=spec.peak_active_ratio, mem_limit=0.3,
        )
        q = quality.point(n)
        caps[system] = n
        print(f"{system:<16} {n / 1e6:>13.1f}M {q.psnr:>7.2f} {q.ssim:>7.3f} "
              f"{q.lpips:>7.3f}")

    q_gpu = quality.point(caps["gpu_only"])
    q_gs = quality.point(caps["gsscale"])
    print(
        f"\nGS-Scale scales the scene {caps['gsscale'] / caps['gpu_only']:.1f}x "
        f"larger, improving LPIPS by {100 * (1 - q_gs.lpips / q_gpu.lpips):.1f}% "
        "(paper: 4M -> 18M, 35.3%).\n"
    )

    def epoch_at(system, n):
        sized = dataclasses.replace(spec, total_gaussians=int(n))
        trace = synthesize_trace(sized, num_views=300, seed=0)
        return simulate_epoch(plat, trace, system, spec.num_pixels)

    # the single-view bound above ignores the epoch's view distribution;
    # bisect the largest count that survives a whole simulated epoch
    lo, hi = 1e6, caps["gsscale"]
    for _ in range(12):
        mid = 0.5 * (lo + hi)
        lo, hi = (mid, hi) if not epoch_at("gsscale", mid).oom else (lo, mid)
    gs_epoch_max = int(lo)

    print("Throughput at each system's own epoch-feasible maximum:")
    for system, n in (
        ("gpu_only", caps["gpu_only"]),
        ("baseline_offload", gs_epoch_max),
        ("gsscale", gs_epoch_max),
    ):
        res = epoch_at(system, n)
        status = "OOM" if res.oom else f"{res.images_per_second:6.2f} images/s"
        print(f"  {system:<20} @ {n / 1e6:5.1f}M Gaussians : {status}")

    gpu_tp = epoch_at("gpu_only", caps["gpu_only"]).images_per_second
    gs_tp = epoch_at("gsscale", gs_epoch_max).images_per_second
    base_tp = epoch_at("baseline_offload", gs_epoch_max).images_per_second
    print(
        f"\nTakeaway: at {gs_epoch_max / 1e6:.0f}M Gaussians the GPU-only "
        f"system cannot train at all, naive offloading crawls at "
        f"{base_tp:.2f} images/s, and GS-Scale sustains {gs_tp:.2f} images/s "
        f"— {gs_tp / base_tp:.1f}x the baseline and in the same league as "
        f"GPU-only at its much smaller {caps['gpu_only'] / 1e6:.0f}M ceiling "
        f"({gpu_tp:.2f} images/s)."
    )


if __name__ == "__main__":
    main()
