"""Execution-timeline explorer (paper Figure 9).

Prints ASCII Gantt charts of one steady-state training iteration under all
four systems on any platform, and writes a Chrome trace
(chrome://tracing) for the full GS-Scale pipeline.

Run:  python examples/timeline_explorer.py [platform]
      platform in: laptop_4070m desktop_4080s server_h100
                   desktop_4070s desktop_4090
"""

import sys

from repro.datasets import get_scene
from repro.sim import (
    CostModel,
    get_platform,
    render_ascii,
    simulate_iteration,
    write_chrome_trace,
)

SYSTEMS = [
    ("gpu_only", "(a) GPU-Only"),
    ("baseline_offload", "(b) Baseline GS-Scale"),
    ("gsscale_no_deferred", "(c) GS-Scale w/o Deferred Adam"),
    ("gsscale", "(d) GS-Scale (all optimizations)"),
]


def main():
    platform_key = sys.argv[1] if len(sys.argv) > 1 else "laptop_4070m"
    plat = get_platform(platform_key)
    spec = get_scene("rubble")
    cost = CostModel(plat)
    n = spec.small_total_gaussians

    print(f"Platform: {plat.gpu.name} + {plat.cpu.name} "
          f"(R_bw = {plat.r_bw:.1f})")
    print(f"Workload: Rubble-small, {n / 1e6:.1f}M Gaussians, "
          f"{100 * spec.avg_active_ratio:.1f}% active, "
          f"{spec.width}x{spec.height}\n")

    times = {}
    for system, label in SYSTEMS:
        it = simulate_iteration(
            system, cost, n_total=n,
            active_ratio=spec.avg_active_ratio, num_pixels=spec.num_pixels,
        )
        times[system] = it.time
        print(f"{label} — {it.time * 1e3:.1f} ms/iteration")
        print(render_ascii(it.segments))
        print()
        if system == "gsscale":
            path = "gsscale_iteration.trace.json"
            write_chrome_trace(it.segments, path)
            print(f"  (full pipeline written to {path} — open in "
                  "chrome://tracing)\n")

    base = times["baseline_offload"]
    print("Speedup over baseline (Figure 11's per-scene story):")
    for system, label in SYSTEMS:
        print(f"  {label:<36} {base / times[system]:5.2f}x")


if __name__ == "__main__":
    main()
