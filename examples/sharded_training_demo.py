"""Sharded multi-device GS-Scale: train one scene across K shard stores.

Spatially partitions a synthetic scene into K shards — each with its own
device memory tracker and transfer ledger, modeling one GPU per shard (the
Grendel / TideGS regime; see docs/architecture.md) — trains end-to-end,
and prints the per-shard accounting next to the single-device GS-Scale
run. Training numerics are identical regardless of K.

Run:  python examples/sharded_training_demo.py
      python examples/sharded_training_demo.py --engine fragment

``--engine fragment`` renders each shard independently and composites the
per-shard fragment buffers (no gathered union matrix); any other raster
engine renders the gathered visible union. The trajectories agree to
compositing rounding.
"""

import argparse
import os

import numpy as np

from repro.core import GSScaleConfig, create_system
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.render import ENGINES

ITERATIONS = int(os.environ.get("DEMO_ITERATIONS", 24))
NUM_SHARDS = 4


def train(scene, system, engine="vectorized", **cfg_kwargs):
    config = GSScaleConfig(
        system=system,
        scene_extent=scene.extent,
        ssim_lambda=0.2,
        seed=0,
        engine=engine,
        **cfg_kwargs,
    )
    engine_sys = create_system(scene.initial.copy(), config)
    for i in range(ITERATIONS):
        view = i % len(scene.train_cameras)
        engine_sys.step(scene.train_cameras[view], scene.train_images[view])
    engine_sys.finalize()
    return engine_sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine", choices=ENGINES, default="vectorized",
        help="raster engine for the sharded run (fragment renders "
        "per-shard and composites, skipping the gathered union)",
    )
    args = parser.parse_args()

    print("Building synthetic aerial capture ...")
    scene = build_scene(
        SyntheticSceneConfig(
            name="sharded-demo",
            num_points=400,
            width=48,
            height=36,
            num_train_cameras=8,
            num_test_cameras=2,
            altitude=8.0,
            seed=21,
        )
    )
    print(f"  {scene.initial.num_gaussians} Gaussians, "
          f"{len(scene.train_cameras)} train views")

    print(f"\nTraining single-device GS-Scale and {NUM_SHARDS}-shard "
          f"sharded GS-Scale (engine={args.engine}) ...")
    single = train(scene, "gsscale")
    sharded = train(scene, "sharded", engine=args.engine,
                    num_shards=NUM_SHARDS, shard_workers=0)

    drift = np.max(np.abs(
        single.materialized_model().params
        - sharded.materialized_model().params
    ))
    print(f"  max parameter drift vs single-device: {drift:.2e} "
          "(sharding changes placement, not math)")

    print(f"\nPer-shard accounting after {ITERATIONS} iterations:")
    print("  shard  gaussians  peak MB  resident MB  H2D MB  D2H MB")
    for r in sharded.shard_reports():
        print(
            f"  {r.shard:>5}  {r.num_gaussians:>9}  "
            f"{r.peak_bytes / 1e6:>7.3f}  {r.live_bytes / 1e6:>11.3f}  "
            f"{r.h2d_bytes / 1e6:>6.3f}  {r.d2h_bytes / 1e6:>6.3f}"
        )

    reports = sharded.shard_reports()
    worst = max(r.peak_bytes for r in reports)
    total = sum(r.peak_bytes for r in reports)
    print(
        f"\nWorst shard peak (Gaussian state + staging) {worst / 1e6:.3f} MB "
        f"of a {total / 1e6:.3f} MB fleet total — each of the "
        f"{NUM_SHARDS} devices holds ~{total / worst:.1f}x less than one "
        "device would (activations are shared by the composited render and "
        "partition with the pixels on real hardware)."
    )
    if args.engine == "fragment":
        print(
            "Fragment compositing: shards staged one window at a time, "
            f"aggregate staging peak {sharded.memory.peak_bytes / 1e6:.3f} "
            "MB — the (N, 59) visible union is never materialized."
        )
    else:
        print(
            "Aggregate PCIe traffic is conserved: "
            f"{sharded.ledger.h2d_bytes == single.ledger.h2d_bytes} "
            f"({sharded.ledger.h2d_bytes / 1e6:.3f} MB H2D)."
        )


if __name__ == "__main__":
    main()
