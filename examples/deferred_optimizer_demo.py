"""Deferred optimizer update in isolation (paper Section 4.3).

Runs dense Adam and deferred Adam side by side on a sparse-gradient
workload shaped like 3DGS training (a small fraction of rows active per
step), then shows (1) the states match, (2) the memory traffic drops by
roughly the active ratio, and (3) the wall-clock win on this machine.

Run:  python examples/deferred_optimizer_demo.py
"""

import time

import numpy as np

from repro.gaussians import layout
from repro.optim import AdamConfig, DeferredAdam, DenseAdam

NUM_GAUSSIANS = 80_000
ACTIVE_PER_STEP = 6_600  # ~8.3%, the paper's average active ratio
STEPS = 20


def main():
    rng = np.random.default_rng(0)
    params = rng.normal(size=(NUM_GAUSSIANS, layout.PARAM_DIM))
    cfg = AdamConfig(lr=1e-3, eps=1e-15)

    dense = DenseAdam(params.copy(), cfg)
    deferred = DeferredAdam(params.copy(), cfg)

    dense_bytes = deferred_bytes = 0
    t_dense = t_deferred = 0.0
    for step in range(STEPS):
        ids = np.sort(
            rng.choice(NUM_GAUSSIANS, size=ACTIVE_PER_STEP, replace=False)
        )
        grads = rng.normal(size=(ACTIVE_PER_STEP, layout.PARAM_DIM))

        t0 = time.perf_counter()
        s = dense.step_sparse(ids, grads)
        t_dense += time.perf_counter() - t0
        dense_bytes += s.total_bytes

        t0 = time.perf_counter()
        s = deferred.step(ids, grads)
        t_deferred += time.perf_counter() - t0
        deferred_bytes += s.total_bytes

    drift = np.abs(deferred.materialized_params() - dense.params)
    rel = drift / np.maximum(np.abs(dense.params), 1.0)

    print(f"{NUM_GAUSSIANS} Gaussians x {layout.PARAM_DIM} params, "
          f"{STEPS} steps, {ACTIVE_PER_STEP / NUM_GAUSSIANS:.1%} active/step\n")
    print(f"max |param drift|          : {drift.max():.2e}")
    print(f"max relative drift         : {rel.max():.2e}  "
          "(the epsilon approximation, Section 4.3.1)")
    print(f"dense    traffic           : {dense_bytes / 1e9:7.2f} GB")
    print(f"deferred traffic           : {deferred_bytes / 1e9:7.2f} GB "
          f"({dense_bytes / deferred_bytes:.1f}x less)")
    print(f"dense    wall-clock        : {t_dense:7.3f} s")
    print(f"deferred wall-clock        : {t_deferred:7.3f} s "
          f"({t_dense / t_deferred:.1f}x faster)")

    counts = np.bincount(deferred.counter, minlength=16)
    print("\ndefer-counter histogram (how stale the idle rows are):")
    for d, c in enumerate(counts):
        if c:
            bar = "#" * max(1, int(60 * c / counts.max()))
            print(f"  d={d:2d}: {c:7d} {bar}")


if __name__ == "__main__":
    main()
