"""Quickstart: train a synthetic scene with GS-Scale and compare it to
GPU-only training.

Builds a small procedural aerial capture, trains it twice — once with
everything resident on the (simulated) device, once with GS-Scale's host
offloading — and reports quality, device memory, and PCIe traffic.

The placement machinery behind both systems (parameter stores, forwarding,
lazy commits, sharding) is described in docs/architecture.md; see
examples/sharded_training_demo.py for the multi-device variant.

Run:  python examples/quickstart.py
"""

from repro import GSScaleConfig, Trainer
from repro.datasets import SyntheticSceneConfig, build_scene

ITERATIONS = 48


def main():
    print("Building synthetic aerial capture ...")
    scene = build_scene(
        SyntheticSceneConfig(
            name="quickstart",
            num_points=300,
            width=48,
            height=36,
            num_train_cameras=12,
            num_test_cameras=3,
            altitude=7.0,
            fov_x_deg=50.0,
            seed=7,
        )
    )
    print(
        f"  oracle: {scene.oracle.num_gaussians} Gaussians, "
        f"{len(scene.train_cameras)} train views, "
        f"{len(scene.test_cameras)} test views"
    )

    results = {}
    for system in ("gpu_only", "gsscale"):
        trainer = Trainer(
            scene.initial.copy(),
            GSScaleConfig(
                system=system,
                scene_extent=scene.extent,
                ssim_lambda=0.2,
                sh_degree=0,  # view-independent color generalizes better
                seed=0,       # at quickstart scale (few training views)
            ),
        )
        before = trainer.evaluate(scene.test_cameras, scene.test_images)
        history = trainer.train(
            scene.train_cameras, scene.train_images, iterations=ITERATIONS,
            shuffle=True,
        )
        after = trainer.evaluate(scene.test_cameras, scene.test_images)
        results[system] = (before, after, history)
        print(f"\n=== {system} ===")
        print(f"  PSNR        : {before.psnr:6.2f} dB -> {after.psnr:6.2f} dB")
        print(f"  SSIM        : {before.ssim:6.3f}    -> {after.ssim:6.3f}")
        print(
            f"  LPIPS-proxy : {before.lpips_proxy:6.4f}  -> "
            f"{after.lpips_proxy:6.4f}"
        )
        print(f"  peak device memory : {history.peak_device_bytes / 1e6:8.2f} MB")
        print(f"  PCIe H2D traffic   : {history.h2d_bytes / 1e6:8.2f} MB")
        print(f"  mean active ratio  : {history.mean_active_ratio:.1%}")

    gpu_peak = results["gpu_only"][2].peak_device_bytes
    gs_peak = results["gsscale"][2].peak_device_bytes
    print(
        f"\nGS-Scale used {gpu_peak / gs_peak:.1f}x less device memory while "
        f"training to PSNR within "
        f"{abs(results['gpu_only'][1].psnr - results['gsscale'][1].psnr):.3f} dB "
        "of GPU-only (the paper's Table 3 result, functionally)."
    )


if __name__ == "__main__":
    main()
