"""Measured telemetry tier: trace a real run, export it, diff it vs the model.

Everything else in this repo that draws a timeline draws a *modeled* one
(``repro.sim``). This demo turns on :mod:`repro.telemetry` and records
what the system actually did:

1. train a short out-of-core run with ``telemetry=True`` — the trainer's
   step phases (cull / stage / forward / backward / unstage / commit),
   the async prefetch thread's page reads, and the disk tier's page
   traffic all land in one span ring buffer;
2. serve a burst of requests through a paged ``RenderService`` with
   ``ServeConfig(telemetry=True)`` — per-request latency goes into the
   unified metrics registry's histograms;
3. export ``out/trace.json`` — the measured Chrome trace merged with the
   simulator's modeled timeline of the same config, so both open side by
   side in chrome://tracing / ui.perfetto.dev — and ``out/metrics.prom``
   in Prometheus exposition format;
4. print the numbers a dashboard would scrape: serve latency p50/p99 and
   the measured page-stall fraction of training, then the per-phase
   measured-vs-modeled table ``tools/compare_trace.py`` builds.

Run:  python examples/telemetry_demo.py
"""

import os
import tempfile

import numpy as np

from repro.cameras import trajectories
from repro.core import GSScaleConfig, create_system
from repro.core.checkpoint import save_checkpoint
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import layout
from repro.serve import RenderService, ServeConfig, requests_from_cameras
from repro.sim import CostModel, PLATFORMS, get_platform, simulate_iteration
from repro.sim.trace import to_chrome_trace as modeled_chrome_trace
from repro.telemetry import compare, export, metrics, trace

ITERATIONS = int(os.environ.get("DEMO_ITERATIONS", 24))
NUM_SHARDS = 4
RESIDENT_SHARDS = 2
OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")


def train_traced(scene, ckpt_path: str):
    config = GSScaleConfig(
        system="outofcore",
        num_shards=NUM_SHARDS,
        resident_shards=RESIDENT_SHARDS,
        async_prefetch=True,
        telemetry=True,
        scene_extent=scene.extent,
        ssim_lambda=0.2,
        seed=0,
    )
    system = create_system(scene.initial.copy(), config)
    cams, images = scene.train_cameras, scene.train_images
    for i in range(ITERATIONS):
        if hasattr(system, "hint_upcoming_views") and i + 1 < ITERATIONS:
            system.hint_upcoming_views([cams[(i + 1) % len(cams)]])
        system.step(cams[i % len(cams)], images[i % len(cams)])
    save_checkpoint(ckpt_path, system)
    system.finalize()
    return system


def serve_burst(ckpt_path: str, scene, n_model: int):
    budget = layout.param_bytes(n_model, layout.GEOMETRIC_DIM) + (
        layout.param_bytes(-(-n_model // NUM_SHARDS), layout.NON_GEOMETRIC_DIM)
    )
    service = RenderService.from_checkpoint(
        ckpt_path,
        host_budget_bytes=budget,
        num_shards=NUM_SHARDS,
        serve_config=ServeConfig(telemetry=True),
    )
    orbit = requests_from_cameras(
        trajectories.orbit(
            np.zeros(3), radius=12.0, height=8.0, num_cameras=12,
            width=48, height_px=36,
        )
    )
    responses = service.serve(orbit)
    service.close()
    return responses


def main():
    os.makedirs(OUT_DIR, exist_ok=True)
    scene = build_scene(
        SyntheticSceneConfig(
            name="telemetry-demo", num_points=400, width=48, height=36,
            num_train_cameras=8, num_test_cameras=2, altitude=8.0, seed=21,
        )
    )

    print(f"== training {ITERATIONS} out-of-core steps with telemetry on")
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "trained.npz")
        system = train_traced(scene, ckpt)

        print("== serving a 12-request orbit burst (paged, telemetry on)")
        responses = serve_burst(ckpt, scene, system.num_gaussians)
    assert all(r.status == "ok" for r in responses)

    tracer = trace.get_tracer()
    registry = metrics.get_registry()

    # -- the dashboard numbers --------------------------------------------
    latency = registry.histogram("serve/latency_s").summary()
    print(f"\nserve latency over {latency['count']} requests: "
          f"p50 {latency['p50'] * 1e3:.2f} ms, p99 {latency['p99'] * 1e3:.2f} ms")

    phases = tracer.phase_seconds()
    step_s = phases.get("train/step", 0.0)
    stall_s = sum(
        s for name, s in phases.items()
        if name in ("page/in", "page/out", "train/prefetch", "train/spill")
    )
    print(f"page-stall fraction of training: {stall_s / max(step_s, 1e-12):.1%} "
          f"({stall_s * 1e3:.1f} ms of page traffic in {step_s * 1e3:.1f} ms "
          f"of stepping)")
    main_tid = None
    for ev in tracer.events():
        if ev.name == "train/step":
            main_tid = ev.tid
            break
    lanes = sorted(
        {
            tracer.thread_names.get(
                ev.tid, "main" if ev.tid == main_tid else str(ev.tid)
            )
            for ev in tracer.events()
        }
    )
    print(f"timeline lanes recorded: {', '.join(lanes)}")

    # -- exports ----------------------------------------------------------
    platform = sorted(PLATFORMS)[0]
    sim = simulate_iteration(
        "outofcore_async", CostModel(get_platform(platform)),
        n_total=400, active_ratio=0.5, num_pixels=48 * 36,
        num_shards=NUM_SHARDS, resident_shards=RESIDENT_SHARDS,
    )
    trace_path = os.path.join(OUT_DIR, "trace.json")
    export.write_chrome_trace(
        tracer, trace_path, modeled=modeled_chrome_trace(sim.segments)
    )
    prom_path = os.path.join(OUT_DIR, "metrics.prom")
    export.write_prometheus(registry, prom_path)
    print(f"\nwrote {trace_path} (modeled pid 1 + measured pid 2 — open in "
          "chrome://tracing or ui.perfetto.dev)")
    print(f"wrote {prom_path} (Prometheus exposition format)")

    # -- measured vs modeled, per phase -----------------------------------
    measured = compare.measured_breakdown(tracer, iterations=ITERATIONS)
    modeled = compare.modeled_breakdown(
        "outofcore_async", platform, 400, 0.5, 48 * 36,
        num_shards=NUM_SHARDS, resident_shards=RESIDENT_SHARDS,
    )
    rows = compare.compare_breakdowns(measured, modeled)
    print(f"\n== measured (this box) vs modeled ({platform}) per iteration")
    print(compare.format_table(rows))
    print("\ndone.")


if __name__ == "__main__":
    main()
