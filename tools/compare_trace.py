#!/usr/bin/env python
"""Diff a measured Chrome trace against the simulator's modeled breakdown.

Closes the loop between :mod:`repro.telemetry` (what the system did) and
:mod:`repro.sim` (what the cost model predicted): loads a measured
``trace.json`` (written by ``repro.telemetry.export.write_chrome_trace``),
rolls its spans up into the simulator's phase vocabulary, and prints
per-phase measured / modeled / delta / ratio rows.

Usage (modeled side simulated on the fly)::

    python tools/compare_trace.py trace.json --system outofcore \
        --platform a100 --n-total 100000 --active-ratio 0.2 \
        --width 640 --height 480 --iterations 12

or against a pre-computed breakdown JSON (``{"phase": seconds, ...}``)::

    python tools/compare_trace.py trace.json --modeled-json breakdown.json

Exit code is always 0 — the deltas are a report, not a gate (measured
wall time on a shared CI box is not the modeled platform's).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.telemetry.compare import (  # noqa: E402
    compare_breakdowns,
    format_table,
    measured_breakdown,
    modeled_breakdown,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="measured Chrome trace JSON")
    parser.add_argument(
        "--iterations", type=int, default=1,
        help="training iterations the trace covers (divides measured totals)",
    )
    parser.add_argument(
        "--modeled-json",
        help="pre-computed modeled breakdown JSON ({phase: seconds})",
    )
    parser.add_argument("--system", default="outofcore")
    parser.add_argument("--platform", default=None,
                        help="sim platform key (default: first registered)")
    parser.add_argument("--n-total", type=int, default=100_000)
    parser.add_argument("--active-ratio", type=float, default=0.2)
    parser.add_argument("--width", type=int, default=640)
    parser.add_argument("--height", type=int, default=480)
    parser.add_argument("--num-shards", type=int, default=4)
    parser.add_argument("--resident-shards", type=int, default=1)
    parser.add_argument("--json", dest="json_out",
                        help="also write the comparison rows as JSON")
    args = parser.parse_args(argv)

    with open(args.trace, encoding="utf-8") as fh:
        trace_doc = json.load(fh)
    measured = measured_breakdown(trace_doc, iterations=args.iterations)

    if args.modeled_json:
        with open(args.modeled_json, encoding="utf-8") as fh:
            modeled = json.load(fh)
    else:
        platform = args.platform
        if platform is None:
            from repro.sim import PLATFORMS

            platform = sorted(PLATFORMS)[0]
        modeled = modeled_breakdown(
            args.system, platform, args.n_total, args.active_ratio,
            args.width * args.height, num_shards=args.num_shards,
            resident_shards=args.resident_shards,
        )

    rows = compare_breakdowns(measured, modeled)
    print(format_table(rows))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(rows, fh, indent=1)
    return 0


if __name__ == "__main__":
    sys.exit(main())
