"""Warn-only diff of fresh perf-smoke runs against committed baselines.

Usage::

    python tools/diff_bench_baseline.py BASELINE NEW [BASELINE NEW ...]

Each argument pair is a (committed baseline, fresh run) of the
``BENCH_*.json`` payloads the micro-kernel, serve-throughput, and
disk-paging matrices write. Entries are matched on every non-timing
field (engine, workers, dtype, splat count, shard count, codec, ...); a
timing regression past ``THRESHOLD`` prints a GitHub Actions
``::warning::`` annotation. Throughput-style keys (requests/sec) count
as regressions when they *drop*; wall-clock keys when they *grow*.

The exit code is always 0 — shared CI runners are far too noisy for a
hard gate, so the diff only annotates the run for reviewers. Entries
present on one side only (a new matrix cell, a removed one) are listed
too, so the baseline is regenerated when the grid changes.
"""

import json
import sys

#: Fresh-over-baseline wall-clock ratio that triggers a warning. Shared
#: runners routinely wobble 2x; only flag what a reviewer should see.
THRESHOLD = 2.5

#: Lower-is-better measurements (wall clock, stall fractions).
COST_KEYS = (
    "forward_s", "backward_s", "step_s", "roundtrip_s",
    "page_in_s", "page_out_s", "sync_spill_s", "page_stall_fraction",
    "pipeline_s", "monolithic_s", "makespan_s",
    "disabled_span_ns", "enabled_span_ns",
)
#: Higher-is-better measurements (throughput): the regression ratio
#: inverts for these.
RATE_KEYS = ("requests_per_s",)
TIMING_KEYS = COST_KEYS + RATE_KEYS

#: Fault-tier counters (supervised-pool retries, shed/degraded request
#: fractions). Informational only: they are neither part of an entry's
#: identity nor gated against the threshold — a drift prints a plain
#: ``::notice::`` so reviewers can eyeball resilience changes.
INFO_KEYS = (
    "retries", "worker_deaths", "respawns", "deadline_hits",
    "degraded", "rejected", "shed_fraction", "availability",
    "telemetry_overhead_pct",
)


def entry_key(entry):
    return tuple(
        sorted(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in entry.items()
            if k not in TIMING_KEYS + INFO_KEYS
        )
    )


def diff(baseline_path, new_path):
    warnings = 0
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        with open(new_path) as fh:
            new = json.load(fh)
    except OSError as exc:
        print(f"::warning::cannot diff {baseline_path}: {exc}")
        return 1
    base_entries = {entry_key(e): e for e in baseline.get("entries", [])}
    new_entries = {entry_key(e): e for e in new.get("entries", [])}
    for key, fresh in new_entries.items():
        base = base_entries.get(key)
        label = ", ".join(f"{k}={v}" for k, v in key)
        if base is None:
            print(f"::notice::{new_path}: no baseline entry for [{label}] "
                  "— regenerate the committed baseline")
            continue
        for tk in TIMING_KEYS:
            old, cur = base.get(tk), fresh.get(tk)
            if not old or not cur:
                continue
            # regression ratio > 1 means "worse", whichever way the
            # measurement points
            ratio = old / cur if tk in RATE_KEYS else cur / old
            if ratio > THRESHOLD:
                warnings += 1
                print(
                    f"::warning::{new_path}: [{label}] {tk} "
                    f"{ratio:.2f}x baseline ({old:.4f} -> {cur:.4f})"
                )
        for ik in INFO_KEYS:
            old, cur = base.get(ik), fresh.get(ik)
            if old is not None and cur is not None and old != cur:
                print(f"::notice::{new_path}: [{label}] {ik} "
                      f"{old} -> {cur} (informational, not gated)")
    for key in base_entries.keys() - new_entries.keys():
        label = ", ".join(f"{k}={v}" for k, v in key)
        print(f"::notice::{new_path}: baseline entry [{label}] missing "
              "from this run")
    return warnings


def main(argv):
    if len(argv) < 2 or len(argv) % 2:
        print(__doc__)
        return 2
    total = 0
    for baseline_path, new_path in zip(argv[::2], argv[1::2]):
        total += diff(baseline_path, new_path)
    print(f"baseline diff done: {total} timing warning(s) (informational)")
    return 0  # warn-only by design


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
