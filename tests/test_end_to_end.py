"""Full-pipeline integration test: the downstream-user journey.

COLMAP reconstruction -> Gaussian initialization -> GS-Scale training with
densification -> checkpoint/resume -> PLY export -> reload -> render and
evaluate. Exercises every public subsystem in one realistic flow.
"""

import numpy as np
import pytest

from repro import (
    GSScaleConfig,
    GaussianModel,
    Trainer,
    load_colmap,
    render,
    save_checkpoint,
    write_colmap,
)
from repro.core import create_system
from repro.core.checkpoint import load_checkpoint, resume_model
from repro.densify import DensifyConfig
from repro.datasets import SyntheticSceneConfig, build_scene, generate_point_cloud
from repro.io import export_ply, import_ply
from repro.metrics import psnr


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """A synthetic capture written to and read back from COLMAP format."""
    cfg = SyntheticSceneConfig(
        num_points=220, width=32, height=24,
        num_train_cameras=6, num_test_cameras=2,
        altitude=8.0, fov_x_deg=55.0, seed=202,
    )
    scene = build_scene(cfg)
    points, colors = generate_point_cloud(cfg)
    colmap_dir = str(tmp_path_factory.mktemp("colmap"))
    write_colmap(colmap_dir, scene.train_cameras, points, colors)
    return scene, colmap_dir


def test_full_pipeline(capture, tmp_path):
    scene, colmap_dir = capture

    # 1. ingest the SfM reconstruction
    recon = load_colmap(colmap_dir)
    assert len(recon.cameras) == len(scene.train_cameras)
    model = GaussianModel.from_point_cloud(
        recon.points, recon.colors, initial_opacity=0.1, dtype=np.float64
    )

    # 2. train with GS-Scale + densification, first leg
    config = GSScaleConfig(
        system="gsscale",
        scene_extent=scene.extent,
        ssim_lambda=0.0,
        mem_limit=1.0,
        seed=0,
    )
    densify = DensifyConfig(
        interval=6, start_iteration=6, stop_iteration=40,
        grad_threshold=1e-9, percent_dense=0.05,
        max_gaussians=model.num_gaussians + 60,
    )
    trainer = Trainer(model, config, densify=densify)
    before = trainer.evaluate(scene.test_cameras, scene.test_images)
    trainer.train(scene.train_cameras, scene.train_images, iterations=8)

    # 3. checkpoint mid-run, then resume into a fresh system
    ckpt = str(tmp_path / "run.npz")
    save_checkpoint(ckpt, trainer.system)
    resumed_sys = create_system(
        resume_model(ckpt),
        GSScaleConfig(
            system="gsscale", scene_extent=scene.extent,
            ssim_lambda=0.0, mem_limit=1.0, seed=0,
        ),
    )
    load_checkpoint(ckpt, resumed_sys)
    for i in range(8, 16):
        resumed_sys.step(
            scene.train_cameras[i % 6], scene.train_images[i % 6]
        )
    resumed_sys.finalize()

    # 4. export the trained scene to PLY, reload, verify identical renders
    trained = resumed_sys.materialized_model()
    ply = str(tmp_path / "scene.ply")
    export_ply(ply, trained)
    reloaded = import_ply(ply)
    cam = scene.test_cameras[0]
    img_a = render(trained, cam).image
    img_b = render(reloaded, cam).image
    np.testing.assert_allclose(img_a, img_b, atol=1e-5)

    # 5. the journey improved quality over the raw initialization
    final_psnr = np.mean(
        [
            psnr(render(trained, c).image, gt)
            for c, gt in zip(scene.test_cameras, scene.test_images)
        ]
    )
    assert final_psnr > before.psnr

    # 6. offloading actually happened: transfers recorded, and the
    # resident Gaussian state is only the geometric block (17%)
    assert resumed_sys.ledger.h2d_bytes > 0
    live = resumed_sys.memory.live_by_category()
    resident_state = (
        live["geo_params"] + live["geo_grads"] + live["geo_opt_states"]
    )
    full_state = 4 * trained.num_gaussians * 59 * 4
    assert resident_state == pytest.approx(full_state * 10 / 59, rel=1e-9)


def test_vectorized_engine_matches_reference_training(capture):
    """Full GS-Scale training on the vectorized raster engine reproduces
    the reference engine's loss trajectory."""
    scene, _ = capture
    trajectories = {}
    for engine in ("reference", "vectorized"):
        config = GSScaleConfig(
            system="gsscale", scene_extent=scene.extent,
            ssim_lambda=0.0, mem_limit=1.0, seed=0, engine=engine,
        )
        trainer = Trainer(scene.initial.copy(), config)
        history = trainer.train(
            scene.train_cameras, scene.train_images, iterations=12
        )
        trajectories[engine] = np.array([r.loss for r in history.steps])
    np.testing.assert_allclose(
        trajectories["vectorized"], trajectories["reference"],
        atol=1e-9, rtol=0,
    )


def test_pipeline_memory_pressure_scenario(capture):
    """The paper's OOM story at integration level: a device that fits
    GS-Scale but not GPU-only."""
    scene, _ = capture
    peaks = {}
    for name in ("gsscale", "gpu_only"):
        probe = create_system(
            scene.initial.copy(),
            GSScaleConfig(system=name, scene_extent=scene.extent,
                          ssim_lambda=0.0, mem_limit=1.0, seed=0),
        )
        probe.step(scene.train_cameras[0], scene.train_images[0])
        peaks[name] = probe.memory.peak_bytes
    assert peaks["gsscale"] < peaks["gpu_only"]
    budget = (peaks["gsscale"] + peaks["gpu_only"]) // 2

    ok = create_system(
        scene.initial.copy(),
        GSScaleConfig(system="gsscale", scene_extent=scene.extent,
                      ssim_lambda=0.0, mem_limit=1.0, seed=0,
                      device_capacity_bytes=budget),
    )
    ok.step(scene.train_cameras[0], scene.train_images[0])  # fits

    with pytest.raises(MemoryError):
        doomed = create_system(
            scene.initial.copy(),
            GSScaleConfig(system="gpu_only", scene_extent=scene.extent,
                          ssim_lambda=0.0, mem_limit=1.0, seed=0,
                          device_capacity_bytes=budget),
        )
        doomed.step(scene.train_cameras[0], scene.train_images[0])
