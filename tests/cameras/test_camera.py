"""Tests for the pinhole camera and trajectory generators."""

import numpy as np
import pytest

from repro.cameras import Camera, trajectories


class TestLookAt:
    def test_target_projects_to_center(self):
        cam = Camera.look_at([5.0, -3.0, 2.0], [0.0, 0.0, 0.0], width=64, height=64)
        cam_pt = cam.world_to_cam(np.array([[0.0, 0.0, 0.0]]))
        assert cam_pt[0, 2] > 0  # in front
        uv = cam.project(cam_pt)
        np.testing.assert_allclose(uv[0], [32.0, 32.0], atol=1e-9)

    def test_center_roundtrip(self):
        pos = np.array([1.0, 2.0, 3.0])
        cam = Camera.look_at(pos, [0.0, 0.0, 0.0])
        np.testing.assert_allclose(cam.center, pos, atol=1e-12)

    def test_rotation_orthonormal(self):
        cam = Camera.look_at([1.0, 1.0, 1.0], [0.0, 0.0, 0.0])
        r = cam.world_to_cam_rot
        np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)

    def test_straight_down_view_ok(self):
        cam = Camera.look_at([0.0, 0.0, 10.0], [0.0, 0.0, 0.0])
        pt = cam.world_to_cam(np.array([[0.0, 0.0, 0.0]]))
        assert pt[0, 2] == pytest.approx(10.0)

    def test_coincident_raises(self):
        with pytest.raises(ValueError):
            Camera.look_at([0.0, 0.0, 0.0], [0.0, 0.0, 0.0])

    def test_depth_is_distance_along_axis(self):
        cam = Camera.look_at([0.0, -5.0, 0.0], [0.0, 0.0, 0.0])
        pts = np.array([[0.0, 0.0, 0.0], [0.0, 5.0, 0.0]])
        z = cam.world_to_cam(pts)[:, 2]
        np.testing.assert_allclose(z, [5.0, 10.0], atol=1e-12)


class TestValidation:
    def make(self, **kw):
        args = dict(
            width=10,
            height=10,
            fx=10.0,
            fy=10.0,
            cx=5.0,
            cy=5.0,
            world_to_cam_rot=np.eye(3),
            world_to_cam_trans=np.zeros(3),
        )
        args.update(kw)
        return Camera(**args)

    def test_bad_rot_shape(self):
        with pytest.raises(ValueError):
            self.make(world_to_cam_rot=np.eye(4))

    def test_bad_near_far(self):
        with pytest.raises(ValueError):
            self.make(near=1.0, far=0.5)
        with pytest.raises(ValueError):
            self.make(near=0.0)

    def test_num_pixels(self):
        assert self.make().num_pixels == 100


class TestCrop:
    def test_crop_preserves_projection(self):
        """A point projecting to column u lands at u - x_min in the crop."""
        cam = Camera.look_at([0.0, -5.0, 1.0], [0.0, 0.0, 0.0], width=128, height=64)
        pt = np.array([[0.3, 0.1, 0.2]])
        uv_full = cam.project(cam.world_to_cam(pt))
        sub = cam.crop(40, 100)
        uv_sub = sub.project(sub.world_to_cam(pt))
        np.testing.assert_allclose(uv_sub[0, 0], uv_full[0, 0] - 40, atol=1e-12)
        np.testing.assert_allclose(uv_sub[0, 1], uv_full[0, 1], atol=1e-12)
        assert sub.width == 60

    def test_bad_crop_raises(self):
        cam = Camera.look_at([0.0, -5.0, 1.0], [0.0, 0.0, 0.0], width=128)
        with pytest.raises(ValueError):
            cam.crop(100, 40)
        with pytest.raises(ValueError):
            cam.crop(0, 300)


class TestTrajectories:
    def test_orbit_count_and_focus(self):
        cams = trajectories.orbit([0, 0, 0], radius=5.0, height=2.0, num_cameras=8)
        assert len(cams) == 8
        for cam in cams:
            z = cam.world_to_cam(np.zeros((1, 3)))[0, 2]
            assert z > 0  # all look at the center

    def test_aerial_grid_count(self):
        cams = trajectories.aerial_grid(extent=10.0, altitude=5.0, rows=3, cols=4)
        assert len(cams) == 12
        for cam in cams:
            assert cam.center[2] == pytest.approx(5.0)

    def test_random_views_altitude_floor(self):
        rng = np.random.default_rng(0)
        cams = trajectories.random_views(
            [0, 0, 0], (3.0, 6.0), 20, rng, min_altitude=1.0
        )
        assert len(cams) == 20
        for cam in cams:
            assert cam.center[2] >= 1.0 - 1e-9
