"""Trajectory-generator tests (client-session paths for serving)."""

import numpy as np
import pytest

from repro.cameras import trajectories


class TestWalkthrough:
    WAYPOINTS = np.array([[0.0, 0.0, 5.0], [10.0, 0.0, 5.0], [10.0, 10.0, 5.0]])

    def test_count_and_endpoints(self):
        cams = trajectories.walkthrough(self.WAYPOINTS, num_cameras=7)
        assert len(cams) == 7
        np.testing.assert_allclose(cams[0].center, self.WAYPOINTS[0], atol=1e-9)
        np.testing.assert_allclose(cams[-1].center, self.WAYPOINTS[-1], atol=1e-9)

    def test_stations_on_the_polyline(self):
        cams = trajectories.walkthrough(self.WAYPOINTS, num_cameras=9)
        for cam in cams:
            c = cam.center
            on_first = abs(c[1]) < 1e-9 and -1e-9 <= c[0] <= 10 + 1e-9
            on_second = abs(c[0] - 10) < 1e-9 and -1e-9 <= c[1] <= 10 + 1e-9
            assert on_first or on_second

    def test_looks_along_the_path(self):
        cams = trajectories.walkthrough(self.WAYPOINTS, num_cameras=4)
        # first camera walks +x: its forward axis (3rd rotation row) is +x
        forward = cams[0].world_to_cam_rot[2]
        np.testing.assert_allclose(forward, [1.0, 0.0, 0.0], atol=1e-9)
        # last camera has passed the corner and walks +y
        forward = cams[-1].world_to_cam_rot[2]
        np.testing.assert_allclose(forward, [0.0, 1.0, 0.0], atol=1e-9)

    def test_deterministic(self):
        a = trajectories.walkthrough(self.WAYPOINTS, num_cameras=5)
        b = trajectories.walkthrough(self.WAYPOINTS, num_cameras=5)
        for x, y in zip(a, b):
            assert np.array_equal(x.world_to_cam_rot, y.world_to_cam_rot)
            assert np.array_equal(x.world_to_cam_trans, y.world_to_cam_trans)

    def test_image_size_knobs(self):
        cams = trajectories.walkthrough(
            self.WAYPOINTS, num_cameras=3, width=64, height_px=48
        )
        assert all(c.width == 64 and c.height == 48 for c in cams)

    def test_validation(self):
        with pytest.raises(ValueError, match="waypoints"):
            trajectories.walkthrough(np.zeros((1, 3)), num_cameras=3)
        with pytest.raises(ValueError, match="num_cameras"):
            trajectories.walkthrough(self.WAYPOINTS, num_cameras=0)
        with pytest.raises(ValueError, match="look_ahead"):
            trajectories.walkthrough(self.WAYPOINTS, num_cameras=3, look_ahead=0.0)
        with pytest.raises(ValueError, match="distinct"):
            trajectories.walkthrough(
                np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0]]), num_cameras=2
            )
