"""Smoke tests for the figure-regeneration CLI (python -m repro.figures)."""


from repro import figures


class TestCli:
    def test_fast_subset(self, capsys):
        rc = figures.run(["table1", "table2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "RTX 4070 Mobile" in out

    def test_unknown_experiment(self, capsys):
        rc = figures.run(["fig99"])
        assert rc == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_every_experiment_registered(self):
        """All 13 evaluation artifacts are regenerable from the CLI."""
        expected = {
            "table1", "table2", "fig01", "fig03", "fig04", "fig07",
            "fig09", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
        }
        assert set(figures.EXPERIMENTS) == expected

    def test_fig12_writes_report(self, capsys):
        import os

        from repro.bench import output_dir

        rc = figures.run(["fig12"])
        assert rc == 0
        assert os.path.exists(os.path.join(output_dir(), "fig12_cli.txt"))
