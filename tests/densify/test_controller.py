"""Tests for the densification controller."""

import numpy as np

from repro.densify import DensificationController, DensifyConfig
from repro.gaussians import GaussianModel, layout


def make_model(n=10, scale=0.05, opacity_logit=2.0, seed=0):
    rng = np.random.default_rng(seed)
    params = np.zeros((n, layout.PARAM_DIM))
    params[:, 0:3] = rng.uniform(-1, 1, size=(n, 3))
    params[:, 3:6] = np.log(scale)
    params[:, 6] = 1.0  # identity quat
    params[:, 10] = opacity_logit
    return GaussianModel(params)


def controller(n, **kw):
    cfg_args = dict(
        interval=10, start_iteration=10, stop_iteration=100,
        grad_threshold=0.5, percent_dense=0.1,
    )
    cfg_args.update(kw)
    return DensificationController(DensifyConfig(**cfg_args), n)


class TestSchedule:
    def test_respects_interval_and_window(self):
        c = controller(5)
        assert not c.should_run(5)       # before start
        assert c.should_run(10)
        assert not c.should_run(15)      # off-interval
        assert c.should_run(50)
        assert not c.should_run(110)     # after stop

    def test_maybe_run_none_off_schedule(self):
        c = controller(5)
        assert c.maybe_run(make_model(5), 7, scene_extent=1.0) is None


class TestClone:
    def test_small_high_grad_gaussians_cloned(self):
        model = make_model(6, scale=0.01)
        c = controller(6)
        # rows 0 and 3 exceed the threshold
        c.accumulate(np.array([0, 3]), np.array([1.0, 2.0]))
        new_model, report = c.run(model, 10, scene_extent=1.0)
        assert report.num_cloned == 2
        assert report.num_split == 0
        assert new_model.num_gaussians == 8
        # clones are exact copies of their parents
        np.testing.assert_array_equal(new_model.params[6], model.params[0])
        np.testing.assert_array_equal(new_model.params[7], model.params[3])

    def test_grad_averaged_over_views(self):
        """A Gaussian seen often with small grads must not densify."""
        model = make_model(2, scale=0.01)
        c = controller(2)
        for _ in range(10):
            c.accumulate(np.array([0]), np.array([0.3]))  # avg 0.3 < 0.5
        c.accumulate(np.array([1]), np.array([0.9]))  # avg 0.9 > 0.5
        _, report = c.run(model, 10, scene_extent=1.0)
        assert report.num_cloned == 1


class TestSplit:
    def test_large_high_grad_gaussians_split(self):
        model = make_model(4, scale=0.5)  # 0.5 > percent_dense * extent
        c = controller(4)
        c.accumulate(np.array([1]), np.array([3.0]))
        new_model, report = c.run(model, 10, scene_extent=1.0)
        assert report.num_split == 1
        assert new_model.num_gaussians == 5
        # parent and child both shrank by the split factor
        expected = np.log(0.5 / 1.6)
        np.testing.assert_allclose(new_model.log_scales[1], expected)
        np.testing.assert_allclose(new_model.log_scales[4], expected)

    def test_split_child_near_parent(self):
        model = make_model(3, scale=0.3)
        c = controller(3)
        c.accumulate(np.array([0]), np.array([5.0]))
        new_model, _ = c.run(model, 10, scene_extent=1.0)
        dist = np.linalg.norm(new_model.means[3] - model.means[0])
        assert dist < 10 * 0.3  # within a few parent sigmas


class TestPrune:
    def test_transparent_gaussians_pruned(self):
        model = make_model(5)
        model.opacity_logits[2] = -10.0  # sigmoid ~ 4.5e-5 < 0.005
        c = controller(5)
        new_model, report = c.run(model, 10, scene_extent=1.0)
        assert report.num_pruned == 1
        assert new_model.num_gaussians == 4

    def test_counter_reset_after_run(self):
        model = make_model(5)
        c = controller(5)
        c.accumulate(np.array([0]), np.array([9.0]))
        new_model, _ = c.run(model, 10, scene_extent=1.0)
        assert c.num_tracked == new_model.num_gaussians
        # fresh stats: nothing densifies now
        _, report2 = c.run(new_model, 20, scene_extent=1.0)
        assert report2.num_cloned == 0 and report2.num_split == 0


class TestCap:
    def test_max_gaussians_blocks_growth(self):
        model = make_model(10, scale=0.01)
        c = controller(10, max_gaussians=10)
        c.accumulate(np.arange(10), np.full(10, 9.0))
        new_model, report = c.run(model, 10, scene_extent=1.0)
        assert new_model.num_gaussians == 10
        assert report.num_cloned == 0

    def test_partial_budget_prefers_high_grad(self):
        model = make_model(4, scale=0.01)
        c = controller(4, max_gaussians=5)  # room for 1 new Gaussian
        c.accumulate(np.arange(4), np.array([1.0, 9.0, 2.0, 3.0]))
        new_model, report = c.run(model, 10, scene_extent=1.0)
        assert new_model.num_gaussians == 5
        assert report.num_cloned == 1
        np.testing.assert_array_equal(new_model.params[4], model.params[1])


class TestScaleControlEmulation:
    def test_threshold_controls_final_count(self):
        """The paper scales scenes by adjusting densification settings
        (Section 5.1). Lower thresholds must yield more Gaussians."""
        rng = np.random.default_rng(1)
        grads = rng.uniform(0.3, 1.2, size=8)
        counts = {}
        for thresh in (0.4, 0.8):
            model = make_model(8, scale=0.01)
            c = controller(8, grad_threshold=thresh)
            c.accumulate(np.arange(8), grads)
            new_model, _ = c.run(model, 10, scene_extent=1.0)
            counts[thresh] = new_model.num_gaussians
        assert counts[0.4] > counts[0.8]
