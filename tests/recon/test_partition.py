"""Buffered spatial partitioning + camera assignment tests."""

import numpy as np
import pytest

from repro.core.splitting import (
    buffered_spatial_partition,
    spatial_partition,
    spatial_partition_bounds,
)
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.recon import default_buffer, partition_scene


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=180,
            width=32,
            height=24,
            num_train_cameras=8,
            num_test_cameras=2,
            seed=7,
        )
    )


def cloud(n=200, seed=11):
    return np.random.default_rng(seed).normal(size=(n, 3)) * 5.0


class TestPartitionBounds:
    def test_ids_match_spatial_partition(self):
        means = cloud()
        for k in (1, 3, 4, 7):
            plain = spatial_partition(means, k)
            with_bounds = spatial_partition_bounds(means, k)
            assert len(plain) == len(with_bounds) == k
            for ids, (bids, _, _) in zip(plain, with_bounds):
                np.testing.assert_array_equal(ids, bids)

    def test_boxes_tile_space(self):
        """Every point — member or not — lies in exactly one cell box."""
        means = cloud()
        cells = spatial_partition_bounds(means, 6)
        probes = np.random.default_rng(3).normal(size=(500, 3)) * 6.0
        owners = np.zeros(len(probes), dtype=int)
        for ids, lo, hi in cells:
            owners += np.all((probes >= lo) & (probes < hi), axis=1)
        assert np.all(owners == 1)

    def test_members_in_own_box(self):
        """Continuous data (no cut-plane ties): ids agree with boxes."""
        means = cloud()
        for ids, lo, hi in spatial_partition_bounds(means, 5):
            inside = np.all((means[ids] >= lo) & (means[ids] < hi), axis=1)
            assert np.all(inside)

    def test_empty_padding_has_empty_boxes(self):
        means = cloud(3)
        cells = spatial_partition_bounds(means, 8)
        assert len(cells) == 8
        for ids, lo, hi in cells[3:]:
            assert ids.size == 0
            assert np.all(lo > hi)  # claims no point


class TestBufferedPartition:
    def test_cores_disjoint_and_exhaustive(self):
        means = cloud()
        patches = buffered_spatial_partition(means, 4, buffer=1.0)
        cores = np.concatenate([p.core_ids for p in patches])
        np.testing.assert_array_equal(np.sort(cores), np.arange(len(means)))
        assert len(np.unique(cores)) == len(means)

    def test_buffered_superset_of_core(self):
        means = cloud()
        for p in buffered_spatial_partition(means, 4, buffer=1.0):
            assert np.all(np.isin(p.core_ids, p.buffered_ids))

    def test_zero_buffer_is_core_only(self):
        means = cloud()
        for p in buffered_spatial_partition(means, 4, buffer=0.0):
            np.testing.assert_array_equal(p.core_ids, p.buffered_ids)

    def test_buffer_captures_near_boundary_points(self):
        """A point within `buffer` of a neighbor cell's box joins its
        buffered set."""
        means = cloud()
        buffer = 1.5
        for p in buffered_spatial_partition(means, 4, buffer=buffer):
            if p.num_core == 0:
                continue
            lo, hi = p.lo - buffer, p.hi + buffer
            inside = np.all((means >= lo) & (means < hi), axis=1)
            expect = np.union1d(p.core_ids, np.flatnonzero(inside))
            np.testing.assert_array_equal(p.buffered_ids, expect)
            # and strictly more than the core when outsiders sit nearby
            outsiders = np.setdiff1d(np.flatnonzero(inside), p.core_ids)
            assert p.num_buffered == p.num_core + outsiders.size

    def test_more_patches_than_points(self):
        means = cloud(3)
        patches = buffered_spatial_partition(means, 6, buffer=0.5)
        assert len(patches) == 6
        assert sum(p.num_core for p in patches) == 3
        for p in patches[3:]:
            assert p.num_core == p.num_buffered == 0

    def test_negative_buffer_rejected(self):
        with pytest.raises(ValueError):
            buffered_spatial_partition(cloud(10), 2, buffer=-0.1)


class TestPartitionScene:
    def test_every_nonempty_patch_gets_cameras(self, scene):
        patches = partition_scene(scene.initial, scene.train_cameras, 4)
        for p in patches:
            assert p.num_cameras >= 1
            assert np.all(p.camera_ids >= 0)
            assert np.all(p.camera_ids < len(scene.train_cameras))

    def test_empty_patches_tolerated(self, scene):
        sub = scene.initial.select(np.arange(3))
        patches = partition_scene(sub, scene.train_cameras, 8)
        assert len(patches) == 8
        for p in patches:
            if p.num_core == 0:
                assert p.num_cameras == 0

    def test_min_cameras_floor(self, scene):
        patches = partition_scene(
            scene.initial, scene.train_cameras, 4, min_cameras=3
        )
        for p in patches:
            if p.num_core:
                assert p.num_cameras >= 3

    def test_default_buffer_scales_with_extent(self, scene):
        b = default_buffer(scene.initial.means)
        span = float(np.max(np.ptp(scene.initial.means, axis=0)))
        assert 0 < b < span

    def test_requires_cameras(self, scene):
        with pytest.raises(ValueError):
            partition_scene(scene.initial, [], 4)
