"""End-to-end patch pipeline: partition -> train -> merge -> clean -> serve."""

import numpy as np
import pytest

from repro.core.checkpoint import resume_model
from repro.core.config import GSScaleConfig
from repro.core.trainer import Trainer
from repro.gaussians import GaussianModel
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.metrics import psnr
from repro.recon import (
    CleanConfig,
    PatchPipelineConfig,
    run_patch_job,
    run_patch_pipeline,
    train_patches,
)
from repro.recon.jobs import build_specs
from repro.recon.partition import partition_scene
from repro.serve import RenderRequest, RenderService

ITERATIONS = 6
TRAIN = GSScaleConfig(system="gpu_only")
# keep-everything thresholds: lets the e2e test assert exactly-once on
# the *final* checkpoint (filter behaviour is covered in test_merge_clean)
KEEP_ALL = CleanConfig(max_extent=1e9, neighbor_radius=1e9, min_opacity=0.0)


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=160,
            width=32,
            height=24,
            num_train_cameras=8,
            num_test_cameras=2,
            seed=3,
        )
    )


@pytest.fixture(scope="module")
def pipeline(scene, tmp_path_factory):
    workdir = tmp_path_factory.mktemp("pipeline")
    result = run_patch_pipeline(
        scene.initial,
        scene.train_cameras,
        scene.train_images,
        str(workdir),
        PatchPipelineConfig(
            num_patches=4,
            iterations=ITERATIONS,
            jobs=2,
            train=TRAIN,
            clean=KEEP_ALL,
        ),
    )
    return result, workdir


@pytest.fixture(scope="module")
def monolithic(scene):
    trainer = Trainer(scene.initial.copy(), TRAIN)
    trainer.train(scene.train_cameras, scene.train_images, ITERATIONS)
    return GaussianModel(np.asarray(trainer.system.params).copy())


class TestEndToEnd:
    def test_every_splat_exactly_once(self, scene, pipeline):
        result, _ = pipeline
        assert result.jobs.all_done
        assert result.merge.num_gaussians == scene.initial.num_gaussians
        assert result.clean.kept_rows == scene.initial.num_gaussians
        final = resume_model(result.checkpoint_path)
        assert final.num_gaussians == scene.initial.num_gaussians
        # positions are a permutation of the originals (gpu_only training
        # moves them, but each original splat has exactly one descendant;
        # uniqueness of rows proves no boundary splat was kept twice)
        assert np.unique(final.params, axis=0).shape[0] == final.num_gaussians

    def test_interior_views_match_monolithic(self, scene, pipeline, monolithic):
        result, _ = pipeline
        service = RenderService(resume_model(result.checkpoint_path))
        mono_service = RenderService(monolithic)
        margins = []
        for camera, gt in zip(scene.test_cameras, scene.test_images):
            patch_img = service.render(RenderRequest(camera=camera)).image
            mono_img = mono_service.render(RenderRequest(camera=camera)).image
            margins.append(psnr(patch_img, gt) - psnr(mono_img, gt))
        # patch training sees only local views, so allow a small quality
        # gap — but it must stay within tolerance of the single run
        assert min(margins) > -2.0

    def test_servable_in_memory_and_paged(self, scene, pipeline):
        result, _ = pipeline
        camera = scene.test_cameras[0]
        hot = RenderService.from_checkpoint(result.checkpoint_path)
        paged = RenderService.from_checkpoint(
            result.checkpoint_path,
            host_budget_bytes=1 << 16,
            num_shards=4,
        )
        a = hot.render(RenderRequest(camera=camera)).image
        b = paged.render(RenderRequest(camera=camera)).image
        np.testing.assert_array_equal(a, b)

    def test_peak_host_bytes_below_monolithic(self, pipeline):
        result, _ = pipeline
        assert result.peak_host_bytes < result.monolithic_peak_host_bytes

    def test_rerun_skips_finished_patches(self, scene, pipeline):
        result, workdir = pipeline
        again = run_patch_pipeline(
            scene.initial,
            scene.train_cameras,
            scene.train_images,
            str(workdir),
            PatchPipelineConfig(
                num_patches=4,
                iterations=ITERATIONS,
                jobs=1,
                train=TRAIN,
                clean=KEEP_ALL,
            ),
        )
        statuses = {r.status for r in again.jobs.results}
        assert statuses <= {"skipped", "empty"}
        np.testing.assert_array_equal(
            resume_model(again.checkpoint_path).params,
            resume_model(result.checkpoint_path).params,
        )


class TestResume:
    def one_spec(self, scene, workdir, iterations, checkpoint_every=0):
        patches = partition_scene(scene.initial, scene.train_cameras, 2)
        specs = build_specs(
            patches,
            scene.initial,
            scene.train_cameras,
            scene.train_images,
            TRAIN,
            iterations,
            str(workdir),
            checkpoint_every=checkpoint_every,
        )
        return specs[0]

    def test_killed_job_resumes_bit_exact(self, scene, tmp_path):
        straight = self.one_spec(scene, tmp_path / "a", 8)
        (tmp_path / "a").mkdir()
        assert run_patch_job(straight).status == "trained"

        # "kill" a checkpointing job at iteration 4, then re-run to 8:
        # the manifest protocol guarantees restart from the last snapshot
        (tmp_path / "b").mkdir()
        killed = self.one_spec(scene, tmp_path / "b", 4, checkpoint_every=2)
        assert run_patch_job(killed).status == "trained"
        killed.iterations = 8
        resumed = run_patch_job(killed)
        assert resumed.status == "resumed"
        assert resumed.iterations_done == 8

        np.testing.assert_array_equal(
            resume_model(killed.checkpoint_path).params,
            resume_model(straight.checkpoint_path).params,
        )

    def test_finished_job_skipped(self, scene, tmp_path):
        spec = self.one_spec(scene, tmp_path, 3, checkpoint_every=1)
        assert run_patch_job(spec).status == "trained"
        assert run_patch_job(spec).status == "skipped"

    def test_driver_resumes_partial_farm(self, scene, tmp_path):
        patches = partition_scene(scene.initial, scene.train_cameras, 4)
        # pre-train one patch halfway, as if the farm died mid-run
        half = build_specs(
            patches,
            scene.initial,
            scene.train_cameras,
            scene.train_images,
            TRAIN,
            2,
            str(tmp_path),
            checkpoint_every=1,
        )[1]
        run_patch_job(half)

        report = train_patches(
            patches,
            scene.initial,
            scene.train_cameras,
            scene.train_images,
            TRAIN,
            4,
            str(tmp_path),
            jobs=2,
        )
        assert report.all_done
        by_index = {r.index: r.status for r in report.results}
        assert by_index[1] == "resumed"
        assert all(
            s in ("trained", "resumed", "empty") for s in by_index.values()
        )


class TestFailureContainment:
    def test_broken_job_reports_failed(self, scene, tmp_path):
        spec = self.broken_spec(scene, tmp_path)
        result = run_patch_job(spec)
        assert result.status == "failed"
        assert not result.ok
        assert result.error

    def broken_spec(self, scene, tmp_path):
        spec = build_specs(
            partition_scene(scene.initial, scene.train_cameras, 2),
            scene.initial,
            scene.train_cameras,
            scene.train_images,
            TRAIN,
            2,
            str(tmp_path),
        )[0]
        spec.images = [img[:1] for img in spec.images]  # shape mismatch
        return spec

    def test_pipeline_surfaces_failures(self, scene, tmp_path, monkeypatch):
        import repro.recon.jobs as jobs_mod

        original = jobs_mod.build_specs

        def broken_build(*args, **kwargs):
            specs = original(*args, **kwargs)
            for s in specs:
                s.images = [img[:1] for img in s.images]
            return specs

        monkeypatch.setattr(jobs_mod, "build_specs", broken_build)
        with pytest.raises(RuntimeError, match="re-run with workdir"):
            run_patch_pipeline(
                scene.initial,
                scene.train_cameras,
                scene.train_images,
                str(tmp_path),
                PatchPipelineConfig(
                    num_patches=2, iterations=2, jobs=1, train=TRAIN
                ),
            )


def test_tiny_scene_with_empty_patches(scene, tmp_path):
    """More patches than splats: empties flow through the whole pipeline."""
    sub = scene.initial.select(np.arange(5))
    result = run_patch_pipeline(
        sub,
        scene.train_cameras,
        scene.train_images,
        str(tmp_path),
        PatchPipelineConfig(
            num_patches=8, iterations=1, jobs=2, train=TRAIN, clean=KEEP_ALL
        ),
    )
    assert result.merge.num_gaussians == 5
    assert resume_model(result.checkpoint_path).num_gaussians == 5
    assert any(r.status == "empty" for r in result.jobs.results)


def test_validation_errors(scene, tmp_path):
    with pytest.raises(ValueError):
        train_patches(
            partition_scene(scene.initial, scene.train_cameras, 2),
            scene.initial,
            scene.train_cameras,
            scene.train_images,
            TRAIN,
            -1,
            str(tmp_path),
        )
