"""Merge dedup policies and clean-filter unit tests."""

import numpy as np
import pytest

from repro.core.checkpoint import (
    CheckpointReader,
    resume_model,
    write_model_checkpoint,
)
from repro.gaussians import GaussianModel, layout
from repro.recon import (
    CleanConfig,
    clean_checkpoint,
    clean_model,
    merge_patch_checkpoints,
    partition_scene,
)
from repro.recon.partition import ScenePatch


def toy_model(n=60, seed=2, spread=4.0):
    rng = np.random.default_rng(seed)
    params = np.zeros((n, layout.PARAM_DIM), dtype=np.float64)
    params[:, layout.MEAN_SLICE] = rng.normal(size=(n, 3)) * spread
    params[:, layout.SCALE_SLICE] = np.log(0.05)
    params[:, 6] = 1.0  # identity quats
    params[:, layout.OPACITY_SLICE] = 2.0  # opaque
    params[:, layout.SH_SLICE] = rng.normal(size=(n, layout.SH_DIM)) * 0.1
    return GaussianModel(params)


def patch_checkpoints(model, patches, tmp_path, mutate=None):
    """Write one params-only checkpoint per patch, as a trained job
    would (rows = the buffered subset, optionally perturbed)."""
    paths = {}
    for p in patches:
        if p.num_buffered == 0:
            continue
        params = model.params[p.buffered_ids].copy()
        if mutate is not None:
            params = mutate(p, params)
        path = str(tmp_path / f"patch{p.index}.npz")
        write_model_checkpoint(
            path, [("", None, params)],
            system="gpu_only", iteration=5, num_gaussians=params.shape[0],
        )
        paths[p.index] = path
    return paths


def fake_cameras():
    from repro.cameras import Camera

    return [
        Camera.look_at(
            np.array([0.0, 0.0, 20.0]), np.zeros(3), up=(0.0, 1.0, 0.0),
            width=24, height=18, fov_x_deg=70.0,
        )
    ]


@pytest.fixture()
def partitioned(tmp_path):
    model = toy_model()
    patches = partition_scene(model, fake_cameras(), 4, buffer=1.0)
    return model, patches


class TestMergeIdentity:
    def test_exactly_once_and_values_preserved(self, tmp_path, partitioned):
        model, patches = partitioned
        paths = patch_checkpoints(model, patches, tmp_path)
        report = merge_patch_checkpoints(
            patches, paths, str(tmp_path / "merged.npz")
        )
        assert report.policy == "identity"
        assert report.num_gaussians == model.num_gaussians
        assert sum(report.kept) == model.num_gaussians
        merged = resume_model(report.path)
        # merged rows are a permutation of the originals: sort by the
        # mean triplet and compare full parameter rows
        def ordered(params):
            return params[np.lexsort(params[:, :3].T)]

        np.testing.assert_allclose(
            ordered(merged.params.astype(np.float64)),
            ordered(model.params),
            rtol=0, atol=1e-6,
        )

    def test_buffer_rows_dropped(self, tmp_path, partitioned):
        model, patches = partitioned
        paths = patch_checkpoints(model, patches, tmp_path)
        report = merge_patch_checkpoints(
            patches, paths, str(tmp_path / "merged.npz"), policy="identity"
        )
        for p, dropped in zip(patches, report.dropped):
            assert dropped == p.num_buffered - p.num_core

    def test_row_mismatch_rejected(self, tmp_path, partitioned):
        model, patches = partitioned

        def densify(p, params):
            return np.vstack([params, params[:1]])

        paths = patch_checkpoints(model, patches, tmp_path, mutate=densify)
        with pytest.raises(ValueError, match="spatial"):
            merge_patch_checkpoints(
                patches, paths, str(tmp_path / "m.npz"), policy="identity"
            )


class TestMergeSpatial:
    def test_exactly_once_by_position(self, tmp_path, partitioned):
        model, patches = partitioned
        paths = patch_checkpoints(model, patches, tmp_path)
        report = merge_patch_checkpoints(
            patches, paths, str(tmp_path / "merged.npz"), policy="spatial"
        )
        assert report.policy == "spatial"
        assert report.num_gaussians == model.num_gaussians

    def test_auto_falls_back_when_densified(self, tmp_path, partitioned):
        model, patches = partitioned

        def densify(p, params):
            # clone the patch's first *core-interior* row; position is
            # unchanged so spatial ownership stays in this patch
            return np.vstack([params, params[:1]])

        paths = patch_checkpoints(model, patches, tmp_path, mutate=densify)
        report = merge_patch_checkpoints(
            patches, paths, str(tmp_path / "merged.npz"), policy="auto"
        )
        assert report.policy == "spatial"
        # each clone lands in exactly one core box, never twice
        assert report.num_gaussians <= model.num_gaussians + len(
            [p for p in patches if p.num_buffered]
        )
        with CheckpointReader(report.path) as reader:
            rows = np.concatenate(
                [b.rows for b in reader.blocks() if b.rows is not None]
            )
        np.testing.assert_array_equal(
            np.sort(rows), np.arange(report.num_gaussians)
        )

    def test_missing_checkpoint_rejected(self, partitioned, tmp_path):
        model, patches = partitioned
        with pytest.raises(ValueError, match="no checkpoint"):
            merge_patch_checkpoints(patches, {}, str(tmp_path / "m.npz"))


class TestCleanFilters:
    def test_each_filter_drops_its_target(self):
        model = toy_model(n=80, spread=1.0)
        params = model.params
        # a dense blob, plus three planted artifacts
        params[0, layout.SCALE_SLICE] = np.log(50.0)  # oversized
        params[1, layout.MEAN_SLICE] = [500.0, 500.0, 500.0]  # isolated
        params[2, layout.OPACITY_SLICE] = -12.0  # transparent
        cleaned, report = clean_model(GaussianModel(params))
        assert report.input_rows == 80
        assert report.dropped_oversized == 1
        assert report.dropped_isolated == 1
        assert report.dropped_transparent == 1
        assert report.kept_rows == cleaned.num_gaussians == 77

    def test_absolute_thresholds(self):
        model = toy_model(n=40, spread=1.0)
        cfg = CleanConfig(
            max_extent=1e9, neighbor_radius=1e9, min_opacity=0.0
        )
        cleaned, report = clean_model(model, cfg)
        assert report.kept_rows == 40
        assert cleaned.num_gaussians == 40

    def test_isolation_filter_disabled(self):
        model = toy_model(n=40, spread=1.0)
        model.params[1, layout.MEAN_SLICE] = [900.0, 0.0, 0.0]
        _, report = clean_model(model, CleanConfig(min_neighbors=0))
        assert report.dropped_isolated == 0

    def test_clean_checkpoint_streams_blocks(self, tmp_path, partitioned):
        model, patches = partitioned
        model.params[5, layout.OPACITY_SLICE] = -12.0
        paths = patch_checkpoints(model, patches, tmp_path)
        merge = merge_patch_checkpoints(
            patches, paths, str(tmp_path / "merged.npz")
        )
        report = clean_checkpoint(
            merge.path, str(tmp_path / "final.npz"),
            CleanConfig(max_extent=1e9, neighbor_radius=1e9),
        )
        assert report.input_rows == model.num_gaussians
        assert report.dropped_transparent == 1
        final = resume_model(str(tmp_path / "final.npz"))
        assert final.num_gaussians == model.num_gaussians - 1

    def test_empty_model_roundtrip(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        write_model_checkpoint(
            path,
            [("", None, np.empty((0, layout.PARAM_DIM), np.float32))],
            num_gaussians=0,
        )
        report = clean_checkpoint(path, str(tmp_path / "clean.npz"))
        assert report.kept_rows == 0
        assert resume_model(str(tmp_path / "clean.npz")).num_gaussians == 0


class TestWriteModelCheckpoint:
    def test_block_coverage_validated(self, tmp_path):
        with pytest.raises(ValueError, match="cover"):
            write_model_checkpoint(
                str(tmp_path / "x.npz"),
                [("", None, np.zeros((3, layout.PARAM_DIM)))],
                num_gaussians=5,
            )

    def test_multi_block_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        full = rng.normal(size=(10, layout.PARAM_DIM))
        rows_a = np.array([0, 2, 4, 6, 8], dtype=np.int64)
        rows_b = np.array([1, 3, 5, 7, 9], dtype=np.int64)
        path = str(tmp_path / "m.npz")
        write_model_checkpoint(
            path,
            [("even", rows_a, full[rows_a]), ("odd", rows_b, full[rows_b])],
            num_gaussians=10,
        )
        np.testing.assert_allclose(
            resume_model(path).params, full, rtol=0, atol=0
        )


def test_spatial_patch_dedup_is_exclusive(partitioned):
    """The spatial rule itself: each mean claimed by exactly one core."""
    model, patches = partitioned
    claims = np.zeros(model.num_gaussians, dtype=int)
    for p in patches:
        claims += p.patch.contains(model.means)
    assert np.all(claims == 1)


def test_scene_patch_accessors(partitioned):
    _, patches = partitioned
    for p in patches:
        assert isinstance(p, ScenePatch)
        assert p.num_core == p.core_ids.size
        assert p.num_buffered == p.buffered_ids.size
