"""Frame-cache tests: LRU byte budget, counters, keys, invalidation."""

import numpy as np
import pytest

from repro.cameras import Camera
from repro.serve import FrameCache, frame_key


def make_camera(**overrides):
    defaults = dict(position=np.array([0.0, -5.0, 3.0]), target=np.zeros(3))
    defaults.update(overrides)
    return Camera.look_at(**defaults)


def frame(seed: int, shape=(8, 8, 3)) -> np.ndarray:
    return np.random.default_rng(seed).random(shape)


class TestFrameKey:
    def test_same_inputs_same_key(self):
        a = frame_key(make_camera(), 0, 0)
        b = frame_key(make_camera(), 0, 0)
        assert a == b

    def test_negative_zero_pose_entries_share_a_key(self):
        """Axis-aligned poses emit -0.0 rotation entries; the two zeros
        are bit-different but render identically, so they must hash to
        one key (regression: byte-hashing raw floats split them)."""
        base = make_camera(position=np.array([0.0, 0.0, 10.0]))
        rot_pos = base.world_to_cam_rot + 0.0  # every zero is +0.0
        rot_neg = np.where(rot_pos == 0.0, -0.0, rot_pos)  # ... -0.0

        def variant(rot):
            return Camera(
                width=base.width,
                height=base.height,
                fx=base.fx,
                fy=base.fy,
                cx=base.cx,
                cy=base.cy,
                world_to_cam_rot=rot,
                world_to_cam_trans=base.world_to_cam_trans,
                near=base.near,
                far=base.far,
            )

        # liveness: the rotations really are bit-different...
        assert np.any(rot_pos == 0.0)
        assert not np.array_equal(np.signbit(rot_pos), np.signbit(rot_neg))
        # ...yet equal poses share one cache line
        assert frame_key(variant(rot_pos), 0, 0) == frame_key(
            variant(rot_neg), 0, 0
        )

    def test_two_axis_aligned_look_at_poses_share_a_key(self):
        a = make_camera(position=np.array([0.0, 0.0, 10.0]))
        b = make_camera(position=np.array([0.0, 0.0, 10.0]))
        assert frame_key(a, 0, 0) == frame_key(b, 0, 0)

    def test_pose_size_lod_version_all_distinguish(self):
        base = frame_key(make_camera(), 0, 0)
        moved = frame_key(
            make_camera(position=np.array([0.0, -5.0, 3.1])), 0, 0
        )
        resized = frame_key(make_camera(width=64), 0, 0)
        lodded = frame_key(make_camera(), 1, 0)
        swapped = frame_key(make_camera(), 0, 1)
        assert len({base, moved, resized, lodded, swapped}) == 5


class TestFrameCache:
    def test_hit_returns_same_array(self):
        cache = FrameCache(1 << 20)
        key = frame_key(make_camera(), 0, 0)
        image = frame(0)
        assert cache.get(key) is None
        cache.put(key, image)
        hit = cache.get(key)
        assert np.array_equal(hit, image)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_cached_frames_are_frozen(self):
        cache = FrameCache(1 << 20)
        key = frame_key(make_camera(), 0, 0)
        cache.put(key, frame(0))
        hit = cache.get(key)
        with pytest.raises(ValueError):
            hit[0, 0, 0] = 0.0

    def test_view_is_snapshotted_against_base_mutation(self):
        """Regression: caching a reshaped view of a renderer's flat
        buffer froze the view but left the base writable — rewriting the
        buffer poisoned later hits."""
        cache = FrameCache(1 << 20)
        key = frame_key(make_camera(), 0, 0)
        flat = np.random.default_rng(0).random(8 * 8 * 3)
        view = flat.reshape(8, 8, 3)
        expected = view.copy()
        cache.put(key, view)
        flat[:] = -1.0  # renderer reuses its pixel buffer
        hit = cache.get(key)
        assert np.array_equal(hit, expected)
        assert not hit.flags.writeable
        with pytest.raises(ValueError):
            hit[0, 0, 0] = 0.0

    def test_owning_array_not_copied(self):
        cache = FrameCache(1 << 20)
        key = frame_key(make_camera(), 0, 0)
        image = frame(1)
        cache.put(key, image)
        assert cache.get(key) is image  # frozen in place, no snapshot
        assert not image.flags.writeable

    def test_lru_eviction_respects_byte_budget(self):
        img = frame(0)
        cache = FrameCache(3 * img.nbytes)
        keys = [frame_key(make_camera(), 0, version) for version in range(5)]
        for k in keys:
            cache.put(k, frame(1))
            assert cache.live_bytes <= cache.capacity_bytes
        assert len(cache) == 3
        assert cache.evictions == 2
        # oldest two evicted, newest three live
        assert cache.get(keys[0]) is None and cache.get(keys[1]) is None
        assert all(cache.get(k) is not None for k in keys[2:])

    def test_recency_refresh_on_hit(self):
        img = frame(0)
        cache = FrameCache(2 * img.nbytes)
        k1, k2, k3 = (frame_key(make_camera(), 0, v) for v in range(3))
        cache.put(k1, frame(1))
        cache.put(k2, frame(2))
        cache.get(k1)  # k1 is now most recent
        cache.put(k3, frame(3))  # evicts k2, not k1
        assert cache.get(k1) is not None
        assert cache.get(k2) is None

    def test_oversized_frame_never_stored(self):
        img = frame(0)
        cache = FrameCache(img.nbytes - 1)
        cache.put(frame_key(make_camera(), 0, 0), img)
        assert len(cache) == 0 and cache.live_bytes == 0

    def test_replacing_a_key_reclaims_its_bytes(self):
        img = frame(0)
        cache = FrameCache(2 * img.nbytes)
        key = frame_key(make_camera(), 0, 0)
        cache.put(key, frame(1))
        cache.put(key, frame(2))
        assert len(cache) == 1
        assert cache.live_bytes == img.nbytes

    def test_invalidate_drops_everything(self):
        cache = FrameCache(1 << 20)
        keys = [frame_key(make_camera(), 0, v) for v in range(4)]
        for k in keys:
            cache.put(k, frame(0))
        dropped = cache.invalidate()
        assert dropped == 4
        assert len(cache) == 0 and cache.live_bytes == 0
        assert cache.invalidations == 1
        assert all(cache.get(k) is None for k in keys)

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameCache(0)
