"""RenderService acceptance tests.

The PR acceptance bar lives here: a synthetic 100-request trace at full
LOD is served bit-identical to direct ``render/pipeline.py`` calls, and
the DiskStore-style paged service stays under its host byte budget
(tracker-verified) while serving a model larger than the budget.
"""

import numpy as np
import pytest

from repro.cameras import trajectories
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import layout
from repro.render import render
from repro.serve import (
    LODSet,
    PagedServingStore,
    RenderRequest,
    RenderService,
    default_serve_raster_config,
    requests_from_cameras,
)


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=220, width=36, height=28,
            num_train_cameras=5, num_test_cameras=2,
            altitude=12.0, seed=7,
        )
    )


@pytest.fixture(scope="module")
def trace_cameras(scene):
    """100 client poses: an orbit session plus a walkthrough session."""
    center = np.zeros(3)
    orbit = trajectories.orbit(
        center, radius=12.0, height=8.0, num_cameras=50,
        width=36, height_px=28,
    )
    walk = trajectories.walkthrough(
        np.array([[-8.0, -8.0, 6.0], [8.0, -8.0, 6.0], [8.0, 8.0, 6.0]]),
        num_cameras=50, width=36, height_px=28,
    )
    return orbit + walk


class TestBitIdentity:
    def test_100_request_trace_matches_direct_pipeline(
        self, scene, trace_cameras
    ):
        """Acceptance: full-LOD serving == direct render(), bit for bit."""
        model = scene.oracle
        config = default_serve_raster_config()
        service = RenderService(model, cache_bytes=0)
        responses = service.serve(requests_from_cameras(trace_cameras))
        assert len(responses) == 100
        for cam, resp in zip(trace_cameras, responses):
            direct = render(model, cam, config=config).image
            assert np.array_equal(resp.image, direct)
        assert service.stats.frames_rendered == 100
        service.close()

    def test_paged_service_matches_and_stays_under_budget(
        self, scene, trace_cameras
    ):
        """Acceptance: a paged model larger than the host budget serves
        the same bytes while the capacity-capped tracker enforces the
        budget."""
        model = scene.oracle
        n = model.num_gaussians
        budget = layout.param_bytes(n, layout.GEOMETRIC_DIM) + (
            layout.param_bytes(-(-n // 4), layout.NON_GEOMETRIC_DIM)
        )
        store = PagedServingStore.from_model(model, budget, num_shards=4)
        assert store.model_bytes > budget
        config = default_serve_raster_config()
        service = RenderService(store, cache_bytes=0)
        for cam in trace_cameras[:20]:
            resp = service.render(RenderRequest(camera=cam))
            assert np.array_equal(resp.image, render(model, cam, config=config).image)
            assert store.host_memory.live_bytes <= budget
        assert store.host_memory.peak_bytes <= budget
        assert store.ledger.page_in_count > 0
        service.close()


class TestBatching:
    def test_identical_requests_render_once(self, scene):
        cam = scene.train_cameras[0]
        service = RenderService(scene.oracle, cache_bytes=0)
        for _ in range(5):
            service.submit(RenderRequest(camera=cam))
        responses = service.tick()
        assert len(responses) == 5
        assert service.stats.frames_rendered == 1
        assert service.stats.deduped == 4
        assert all(np.array_equal(r.image, responses[0].image) for r in responses)
        assert all(r.batch_size == 1 for r in responses)
        service.close()

    def test_mixed_batch_keeps_submission_order(self, scene):
        service = RenderService(scene.oracle, cache_bytes=0)
        cams = scene.train_cameras[:3]
        for cam in cams + cams:  # each pose twice
            service.submit(RenderRequest(camera=cam))
        responses = service.tick()
        assert service.stats.frames_rendered == 3
        for i, resp in enumerate(responses):
            assert resp.request.camera is cams[i % 3]
            assert np.array_equal(resp.image, responses[i % 3].image)
        service.close()

    def test_empty_tick(self, scene):
        service = RenderService(scene.oracle)
        assert service.tick() == []
        service.close()

    def test_cache_serves_second_trace(self, scene):
        service = RenderService(scene.oracle)
        cams = scene.train_cameras
        first = service.serve(requests_from_cameras(cams))
        second = service.serve(requests_from_cameras(cams))
        assert all(not r.cache_hit for r in first)
        assert all(r.cache_hit for r in second)
        assert service.stats.frames_rendered == len(cams)
        for a, b in zip(first, second):
            assert np.array_equal(a.image, b.image)
        service.close()


class TestRequestModel:
    def test_size_override_scales_intrinsics(self, scene):
        cam = scene.train_cameras[0]
        req = RenderRequest(camera=cam, width=cam.width * 2, height=cam.height)
        resolved = req.resolved_camera()
        assert resolved.width == cam.width * 2
        assert resolved.fx == pytest.approx(cam.fx * 2)
        assert resolved.fy == pytest.approx(cam.fy)
        service = RenderService(scene.oracle, cache_bytes=0)
        resp = service.render(req)
        assert resp.image.shape == (cam.height, cam.width * 2, 3)
        service.close()

    def test_same_pose_different_size_are_distinct_frames(self, scene):
        cam = scene.train_cameras[0]
        service = RenderService(scene.oracle)
        service.submit(RenderRequest(camera=cam))
        service.submit(RenderRequest(camera=cam, width=18, height=14))
        responses = service.tick()
        assert service.stats.frames_rendered == 2
        assert responses[0].image.shape != responses[1].image.shape
        service.close()

    def test_invalid_lod_rejected(self, scene):
        service = RenderService(scene.oracle)  # no LOD set: only lod 0
        with pytest.raises(ValueError, match="lod"):
            service.submit(RenderRequest(camera=scene.train_cameras[0], lod=1))
        lod_set = LODSet.build(scene.oracle.params)
        service2 = RenderService(scene.oracle, lod_set=lod_set)
        with pytest.raises(ValueError, match="lod"):
            service2.submit(
                RenderRequest(camera=scene.train_cameras[0], lod=lod_set.num_levels)
            )
        service.close()
        service2.close()

    def test_invalid_size_rejected(self, scene):
        service = RenderService(scene.oracle)
        with pytest.raises(ValueError, match="size"):
            service.submit(RenderRequest(camera=scene.train_cameras[0], width=0))
        service.close()

    def test_lod_levels_serve_reduced_detail(self, scene):
        model = scene.oracle
        lod_set = LODSet.build(model.params)
        service = RenderService(model, lod_set=lod_set, cache_bytes=0)
        cam = scene.train_cameras[0]
        full = service.render(RenderRequest(camera=cam, lod=0)).image
        coarse = service.render(
            RenderRequest(camera=cam, lod=lod_set.num_levels - 1)
        ).image
        assert full.shape == coarse.shape
        assert not np.array_equal(full, coarse)
        # full LOD through the service is still the direct pipeline
        direct = render(model, cam, config=service.config).image
        assert np.array_equal(full, direct)
        service.close()


class TestHotSwap:
    def test_swap_flushes_cache_and_never_serves_stale(self, scene):
        """Satellite acceptance: a model hot-swap must flush the
        pose-keyed cache — bit-compare pre/post-swap responses."""
        model_a = scene.oracle
        model_b = scene.initial  # genuinely different parameters
        config = default_serve_raster_config()
        service = RenderService(model_a)
        cams = scene.train_cameras
        pre = service.serve(requests_from_cameras(cams))
        warm = service.serve(requests_from_cameras(cams))
        assert all(r.cache_hit for r in warm)  # the cache is hot pre-swap

        service.swap_model(model_b)
        assert len(service.cache) == 0  # eager flush, bytes reclaimed
        post = service.serve(requests_from_cameras(cams))
        for cam, before, after in zip(cams, pre, post):
            assert not after.cache_hit  # nothing served from the old model
            assert np.array_equal(
                after.image, render(model_b, cam, config=config).image
            )
            assert not np.array_equal(after.image, before.image)
        assert service.stats.model_swaps == 1
        service.close()

    def test_swap_bumps_version_even_without_cache(self, scene):
        service = RenderService(scene.oracle, cache_bytes=0)
        v0 = service.model_version
        service.swap_model(scene.initial)
        assert service.model_version == v0 + 1
        service.close()

    def test_swap_to_shorter_lod_ladder_clamps_queued_requests(self, scene):
        """A hot swap must not drop (or crash on) requests validated
        against the old, taller LOD ladder — they clamp to the new
        coarsest level."""
        tall = LODSet.build(scene.oracle.params)
        service = RenderService(scene.oracle, lod_set=tall)
        service.submit(RenderRequest(camera=scene.train_cameras[0], lod=3))
        service.submit(RenderRequest(camera=scene.train_cameras[1], lod=0))
        service.swap_model(scene.oracle.copy(), lod_set=None)  # 1 level now
        responses = service.tick()
        assert len(responses) == 2
        assert responses[0].lod == 0  # clamped, served, not lost
        assert responses[1].lod == 0
        service.close()


class TestResponseIntegrity:
    def test_render_returns_the_submitted_request(self, scene):
        """render() must answer *its* request, not the oldest queued one."""
        service = RenderService(scene.oracle, cache_bytes=0)
        first = RenderRequest(camera=scene.train_cameras[0])
        second = RenderRequest(camera=scene.train_cameras[1])
        service.submit(first)
        resp = service.render(second)
        assert resp.request is second
        service.close()

    def test_client_cannot_poison_the_cache(self, scene):
        """The miss response aliases the cached buffer, so it must be
        frozen: a client mutation raises instead of corrupting hits."""
        service = RenderService(scene.oracle)
        cam = scene.train_cameras[0]
        miss = service.render(RenderRequest(camera=cam))
        with pytest.raises(ValueError):
            miss.image[0, 0, 0] = 123.0
        hit = service.render(RenderRequest(camera=cam))
        assert hit.cache_hit
        direct = render(scene.oracle, cam, config=service.config).image
        assert np.array_equal(hit.image, direct)
        service.close()
