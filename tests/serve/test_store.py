"""Serving-store tests: paged placement changes accounting, never pixels.

The acceptance bar for the paged tier: a model larger than the host byte
budget serves with every tracked host byte under the budget (capacity-
enforced, not just reported), page traffic quantized in whole shard
pages on the ledger's disk channel, and gathers bit-identical to the
in-memory store.
"""

import os

import numpy as np
import pytest

from repro.core import GSScaleConfig, create_system
from repro.core.checkpoint import CheckpointReader, resume_model, save_checkpoint
from repro.datasets import SyntheticSceneConfig, build_scene
from repro.gaussians import layout
from repro.serve import InMemoryServingStore, PagedServingStore


@pytest.fixture(scope="module")
def scene():
    return build_scene(
        SyntheticSceneConfig(
            num_points=240, width=36, height=28,
            num_train_cameras=6, num_test_cameras=2,
            altitude=12.0, seed=11,
        )
    )


def tight_budget(n: int, num_shards: int = 4, shards_resident: int = 1) -> int:
    """Geometry + ``shards_resident`` worst-case shard pages."""
    worst = -(-n // num_shards)
    return layout.param_bytes(n, layout.GEOMETRIC_DIM) + (
        shards_resident * layout.param_bytes(worst, layout.NON_GEOMETRIC_DIM)
    )


class TestInMemoryStore:
    def test_gather_and_geometry_match_model(self, scene):
        model = scene.oracle
        store = InMemoryServingStore.from_model(model)
        ids = np.arange(0, model.num_gaussians, 3)
        assert np.array_equal(store.gather(ids), model.params[ids])
        means, log_scales, quats = store.geometry()
        assert np.array_equal(means, model.means)
        assert np.array_equal(log_scales, model.log_scales)
        assert np.array_equal(quats, model.quats)

    def test_copy_decouples_from_model(self, scene):
        model = scene.oracle.copy()
        store = InMemoryServingStore.from_model(model)
        model.params[:] = 0.0
        assert not np.array_equal(store.params, model.params)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError, match="params"):
            InMemoryServingStore(np.zeros((4, 10)))


class TestPagedStore:
    def test_gather_bit_identical_to_in_memory(self, scene):
        model = scene.oracle
        n = model.num_gaussians
        paged = PagedServingStore.from_model(model, tight_budget(n))
        rng = np.random.default_rng(0)
        for _ in range(4):
            ids = np.sort(rng.choice(n, size=60, replace=False))
            assert np.array_equal(paged.gather(ids), model.params[ids])
        paged.close()

    def test_budget_enforced_while_model_larger(self, scene):
        model = scene.oracle
        n = model.num_gaussians
        budget = tight_budget(n)
        paged = PagedServingStore.from_model(model, budget)
        assert paged.model_bytes > budget  # the model cannot be hosted whole
        rng = np.random.default_rng(1)
        for _ in range(6):
            ids = np.sort(rng.choice(n, size=80, replace=False))
            paged.gather(ids)
            assert paged.host_memory.live_bytes <= budget
        # tracker-verified: capacity equals the budget, so an accounting
        # bug would have raised MemoryError above
        assert paged.host_memory.capacity_bytes == budget
        assert paged.host_memory.peak_bytes <= budget
        paged.close()

    def test_page_traffic_quantized_on_ledger(self, scene):
        model = scene.oracle
        n = model.num_gaussians
        paged = PagedServingStore.from_model(model, tight_budget(n))
        assert paged.resident_budget == 1
        paged.gather(np.arange(n))  # touches every shard, in shard order
        ledger = paged.ledger
        sizes = [
            layout.param_bytes(int(r.size), layout.NON_GEOMETRIC_DIM)
            for r in paged.shard_rows
        ]
        # each shard pages in exactly once; all but the last spill to make
        # room for the next — whole shard pages, nothing partial
        assert ledger.page_in_count == len(sizes)
        assert ledger.page_in_bytes == sum(sizes)
        assert ledger.page_out_count == len(sizes) - 1
        assert ledger.page_out_bytes == sum(sizes[:-1])
        paged.close()

    def test_lru_revisit_does_not_repage(self, scene):
        model = scene.oracle
        n = model.num_gaussians
        paged = PagedServingStore.from_model(
            model, tight_budget(n, shards_resident=4)
        )
        assert paged.resident_budget == 4
        ids = paged.shard_rows[0][:10]
        paged.gather(ids)
        pages = paged.ledger.page_in_count
        paged.gather(ids)  # resident: a touch, not a page-in
        assert paged.ledger.page_in_count == pages
        paged.close()

    def test_budget_too_small_raises(self, scene):
        model = scene.oracle
        with pytest.raises(ValueError, match="host budget"):
            PagedServingStore.from_model(
                model, layout.param_bytes(model.num_gaussians, layout.GEOMETRIC_DIM)
            )

    def test_explicit_page_dir_is_used(self, scene, tmp_path):
        model = scene.oracle
        paged = PagedServingStore.from_model(
            model, tight_budget(model.num_gaussians),
            page_dir=str(tmp_path / "pages"),
        )
        files = os.listdir(tmp_path / "pages")
        pages = [f for f in files if not f.endswith(".crc")]
        sidecars = [f for f in files if f.endswith(".crc")]
        assert len(pages) == len(paged.shards)
        # sealing a raw page records its CRC sidecar next to it
        assert len(sidecars) == len(paged.shards)
        paged.close()


class TestPagedStoreCodecs:
    """Compressed serving pages: the codec changes bytes on disk, never
    the served values (bit-exactly for lossless, within half-precision
    tolerance for float16) — and the ledger's disk channel meters the
    encoded size next to the fp32-equivalent accounting."""

    def test_lossless_gather_bit_identical(self, scene):
        model = scene.oracle
        n = model.num_gaussians
        paged = PagedServingStore.from_model(
            model, tight_budget(n), codec="lossless"
        )
        rng = np.random.default_rng(2)
        for _ in range(4):
            ids = np.sort(rng.choice(n, size=70, replace=False))
            assert np.array_equal(paged.gather(ids), model.params[ids])
        paged.close()

    def test_float16_gather_tolerance_geometry_exact(self, scene):
        model = scene.oracle
        n = model.num_gaussians
        paged = PagedServingStore.from_model(
            model, tight_budget(n), codec="float16"
        )
        ids = np.arange(n)
        got = paged.gather(ids)
        # geometric columns never touch the codec: bit-exact
        np.testing.assert_array_equal(
            got[:, layout.GEOMETRIC_SLICE],
            model.params[:, layout.GEOMETRIC_SLICE],
        )
        np.testing.assert_allclose(
            got[:, layout.NON_GEOMETRIC_SLICE],
            model.params[:, layout.NON_GEOMETRIC_SLICE],
            rtol=2e-3, atol=1e-6,
        )
        paged.close()

    def test_disk_channel_meters_encoded_bytes(self, scene):
        model = scene.oracle
        n = model.num_gaussians
        stores = {
            name: PagedServingStore.from_model(
                model, tight_budget(n), codec=name
            )
            for name in ("raw", "float16", "lossless")
        }
        try:
            for s in stores.values():
                s.gather(np.arange(n))  # page every shard in once
            raw, f16, loz = (
                stores[k].ledger for k in ("raw", "float16", "lossless")
            )
            # accounting side is placement-independent
            assert f16.page_in_bytes == raw.page_in_bytes
            assert loz.page_in_bytes == raw.page_in_bytes
            # raw: both sides agree; f16: ~2x (2 bytes/value + a 2-byte
            # per-column scale header); lossless: encoded, just different
            assert raw.page_in_disk_bytes == raw.page_in_bytes
            assert 1.5 < f16.page_in_bytes / f16.page_in_disk_bytes <= 2.0
            assert 0 < loz.page_in_disk_bytes != loz.page_in_bytes
        finally:
            for s in stores.values():
                s.close()


class TestCheckpointOpen:
    @pytest.fixture(scope="class")
    def checkpoint(self, scene, tmp_path_factory):
        cfg = GSScaleConfig(
            system="outofcore", num_shards=4, resident_shards=1,
            scene_extent=scene.extent, mem_limit=1.0, seed=0,
            engine="vectorized",
        )
        system = create_system(scene.initial.copy(), cfg)
        for i in range(6):
            system.step(scene.train_cameras[i % 6], scene.train_images[i % 6])
        path = str(tmp_path_factory.mktemp("ck") / "serve_ck.npz")
        save_checkpoint(path, system)
        system.finalize()
        return path

    def test_reader_blocks_cover_all_columns(self, checkpoint):
        with CheckpointReader(checkpoint) as reader:
            cols = np.zeros(layout.PARAM_DIM, dtype=np.int64)
            for info in reader.blocks():
                rows = (
                    reader.num_gaussians if info.rows is None else info.rows.size
                )
                cols[info.start : info.stop] += rows
            assert (cols == reader.num_gaussians).all()

    def test_assemble_matches_resume_model(self, checkpoint):
        ref = resume_model(checkpoint)
        with CheckpointReader(checkpoint) as reader:
            geo = reader.assemble_columns(layout.GEOMETRIC_SLICE)
            sh = reader.assemble_columns(layout.SH_SLICE)
        assert np.array_equal(geo, ref.params[:, layout.GEOMETRIC_SLICE])
        assert np.array_equal(sh, ref.params[:, layout.SH_SLICE])

    def test_assemble_uncovered_columns_raises(self, checkpoint, tmp_path):
        with CheckpointReader(checkpoint) as reader:
            with pytest.raises(ValueError, match="cover"):
                reader.assemble_columns(slice(0, layout.PARAM_DIM + 1))

    def test_paged_from_checkpoint_matches_resume(self, checkpoint):
        ref = resume_model(checkpoint)
        n = ref.num_gaussians
        paged = PagedServingStore.from_checkpoint(
            checkpoint, tight_budget(n), num_shards=4
        )
        ids = np.arange(n)
        assert np.array_equal(paged.gather(ids), ref.params[ids])
        assert paged.host_memory.peak_bytes <= paged.host_memory.capacity_bytes
        paged.close()

    def test_paged_from_checkpoint_with_lossless_codec(self, checkpoint):
        """Opening a trained checkpoint straight into compressed serving
        pages loses nothing: gathers still match ``resume_model``."""
        ref = resume_model(checkpoint)
        n = ref.num_gaussians
        paged = PagedServingStore.from_checkpoint(
            checkpoint, tight_budget(n), num_shards=4, codec="lossless"
        )
        assert np.array_equal(paged.gather(np.arange(n)), ref.params)
        assert paged.ledger.page_in_disk_bytes != paged.ledger.page_in_bytes
        paged.close()

    def test_render_service_forwards_codec(self, checkpoint):
        """``RenderService.from_checkpoint(codec=...)`` reaches the paged
        store — the serving entry point can select compressed pages."""
        from repro.serve import RenderService

        ref = resume_model(checkpoint)
        service = RenderService.from_checkpoint(
            checkpoint, host_budget_bytes=tight_budget(ref.num_gaussians),
            num_shards=4, codec="float16",
        )
        try:
            assert service.store.codec.name == "float16"
            n = ref.num_gaussians
            gathered = service.store.gather(np.arange(n))
            geo = layout.GEOMETRIC_SLICE
            assert np.array_equal(gathered[:, geo], ref.params[:, geo])
        finally:
            service.store.close()

    def test_from_checkpoint_respects_shard_count(self, checkpoint):
        ref = resume_model(checkpoint)
        paged = PagedServingStore.from_checkpoint(
            checkpoint, tight_budget(ref.num_gaussians, num_shards=2),
            num_shards=2,
        )
        assert len(paged.shards) == 2
        assert np.array_equal(
            paged.gather(np.arange(ref.num_gaussians)), ref.params
        )
        paged.close()


class TestEmptyShards:
    """More shards than splats: the partitioner pads empty shards, whose
    zero-row pages must build, seal, page, and gather under every codec
    (regression guard for the patch pipeline's tiny-cell outputs)."""

    @pytest.mark.parametrize("codec", ("raw", "float16", "lossless"))
    def test_paged_store_with_empty_shards(self, scene, codec):
        model = scene.oracle.select(np.arange(3))
        paged = PagedServingStore.from_model(
            model, tight_budget(3, num_shards=8), num_shards=8, codec=codec
        )
        assert len(paged.shards) == 8
        assert any(r.size == 0 for r in paged.shard_rows)
        gathered = paged.gather(np.arange(3))
        geo = layout.GEOMETRIC_SLICE
        ng = layout.NON_GEOMETRIC_SLICE
        assert np.array_equal(gathered[:, geo], model.params[:, geo])
        if codec == "float16":  # lossy on the paged block, by design
            np.testing.assert_allclose(
                gathered[:, ng], model.params[:, ng], rtol=2e-3, atol=1e-6
            )
        else:
            assert np.array_equal(gathered[:, ng], model.params[:, ng])
        assert paged.gather(np.empty(0, dtype=np.int64)).shape == (
            0,
            layout.PARAM_DIM,
        )
        paged.close()

    def test_in_memory_store_empty_gather(self, scene):
        store = InMemoryServingStore.from_model(scene.oracle)
        ids = np.empty(0, dtype=np.int64)
        assert store.gather(ids).shape == (0, layout.PARAM_DIM)
